//! Switched RF terminations: open waveguides and absorptive loads.
//!
//! The paper's prototype element (Figure 3) attaches each PRESS antenna to a
//! single-pole four-throw RF switch whose throws lead to "three different
//! reflective path lengths (0, λ/4, and λ/2 additional path length) and one
//! absorptive load". An open waveguide reflects the incident wave with a
//! phase set by its length; the absorptive load "effectively eliminates any
//! reflection".
//!
//! Phase convention: the paper labels its configurations by the phase
//! `2π·ΔL/λ` (λ/4 → π/2, λ/2 → π), and we follow that labelling throughout.

use press_math::Complex64;

/// One switch throw: what terminates the antenna when selected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// An open-ended waveguide adding `extra_length` meters of path,
    /// reflecting with phase `2π·ΔL/λ` and amplitude `reflectivity`.
    OpenWaveguide {
        /// Additional path length, meters.
        extra_length_m: f64,
        /// Reflection amplitude of the open end (≤ 1; cable and connector
        /// losses keep it slightly below unity).
        reflectivity: f64,
    },
    /// A matched absorptive load; `residual` is the small leftover
    /// reflection amplitude of a real (imperfect) load.
    Absorber {
        /// Residual reflection amplitude (e.g. 0.03 ≈ −30 dB return loss).
        residual: f64,
    },
}

impl Termination {
    /// An ideal-ish open waveguide with 0.95 reflectivity.
    pub fn open(extra_length_m: f64) -> Termination {
        Termination::OpenWaveguide {
            extra_length_m,
            reflectivity: 0.95,
        }
    }

    /// A good absorptive load (−30 dB return loss).
    pub fn absorber() -> Termination {
        Termination::Absorber { residual: 0.0316 }
    }

    /// A waveguide whose length produces reflection phase `phase_rad` at
    /// wavelength `lambda_m` (the paper's labelling: phase = 2π·ΔL/λ).
    pub fn with_phase(phase_rad: f64, lambda_m: f64) -> Termination {
        Termination::open(phase_rad / (2.0 * std::f64::consts::PI) * lambda_m)
    }

    /// Complex reflection coefficient at wavelength `lambda_m`.
    pub fn reflection_coefficient(&self, lambda_m: f64) -> Complex64 {
        match *self {
            Termination::OpenWaveguide {
                extra_length_m,
                reflectivity,
            } => {
                let phase = 2.0 * std::f64::consts::PI * extra_length_m / lambda_m;
                Complex64::from_polar(reflectivity, phase)
            }
            Termination::Absorber { residual } => Complex64::real(residual),
        }
    }

    /// The paper's label for this throw: the reflection phase in radians, or
    /// `None` for a terminated (absorber) state — printed as "T" in Figure 4.
    pub fn phase_label(&self, lambda_m: f64) -> Option<f64> {
        match *self {
            Termination::OpenWaveguide { extra_length_m, .. } => Some(
                (2.0 * std::f64::consts::PI * extra_length_m / lambda_m)
                    .rem_euclid(2.0 * std::f64::consts::PI),
            ),
            Termination::Absorber { .. } => None,
        }
    }

    /// True for the absorptive state.
    pub fn is_absorber(&self) -> bool {
        matches!(self, Termination::Absorber { .. })
    }
}

/// Formats a phase label the way the paper's Figure 4 legends do:
/// multiples of π (e.g. "0.5π"), or "T" for terminated.
pub fn format_phase_label(label: Option<f64>) -> String {
    match label {
        None => "T".to_string(),
        Some(phase) => {
            let in_pi = phase / std::f64::consts::PI;
            if in_pi.abs() < 1e-9 {
                "0".to_string()
            } else if (in_pi - 1.0).abs() < 1e-9 {
                "π".to_string()
            } else {
                format!("{in_pi:.2}π")
                    .replace(".00π", "π")
                    .replace(".50π", ".5π")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 0.1218; // ~2.462 GHz

    #[test]
    fn quarter_wave_gives_half_pi_phase() {
        let t = Termination::open(LAMBDA / 4.0);
        let g = t.reflection_coefficient(LAMBDA);
        assert!((g.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((g.abs() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn half_wave_gives_pi_phase() {
        let t = Termination::open(LAMBDA / 2.0);
        let g = t.reflection_coefficient(LAMBDA);
        assert!((g.arg().abs() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn zero_length_reflects_in_phase() {
        let g = Termination::open(0.0).reflection_coefficient(LAMBDA);
        assert!((g.arg()).abs() < 1e-12);
    }

    #[test]
    fn absorber_kills_reflection() {
        let g = Termination::absorber().reflection_coefficient(LAMBDA);
        assert!(g.abs() < 0.05);
        assert!(Termination::absorber().is_absorber());
    }

    #[test]
    fn with_phase_roundtrips() {
        for phase in [0.0, 0.5, 1.0, 2.5] {
            let t = Termination::with_phase(phase, LAMBDA);
            let got = t.phase_label(LAMBDA).unwrap();
            assert!((got - phase).abs() < 1e-9, "{phase} vs {got}");
        }
    }

    #[test]
    fn phase_is_frequency_dependent() {
        // A fixed waveguide produces different phases at different
        // wavelengths — the physical source of PRESS frequency selectivity.
        let t = Termination::open(LAMBDA / 4.0);
        let g_low = t.reflection_coefficient(LAMBDA * 1.01);
        let g_high = t.reflection_coefficient(LAMBDA * 0.99);
        assert!((g_low.arg() - g_high.arg()).abs() > 1e-4);
    }

    #[test]
    fn labels_format_like_the_paper() {
        assert_eq!(format_phase_label(None), "T");
        assert_eq!(format_phase_label(Some(0.0)), "0");
        assert_eq!(format_phase_label(Some(std::f64::consts::PI)), "π");
        assert_eq!(
            format_phase_label(Some(std::f64::consts::FRAC_PI_2)),
            "0.5π"
        );
        assert_eq!(format_phase_label(Some(1.5 * std::f64::consts::PI)), "1.5π");
    }
}
