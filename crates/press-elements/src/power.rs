//! Power and cost models for PRESS deployments.
//!
//! §2 of the paper frames the core hardware trade-off: active radios "are
//! relatively expensive and power-hungry, and so are unlikely to scale to
//! deployment ... across an entire building", while passive elements "have
//! a cost advantage, so can scale to a relatively large and dense array".
//! §4.1 adds that "power issues for the active elements could be addressed
//! with energy harvesting devices". This module quantifies those arguments
//! so the hybrid-design ablation can report watts and dollars next to dB.

use crate::element::{Element, ElementKind};

/// Power draw and unit cost of one element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElementBudget {
    /// Static power draw, watts.
    pub power_w: f64,
    /// Unit hardware cost, USD (rough 2017 BOM-level figures).
    pub cost_usd: f64,
    /// Whether an indoor RF/light energy harvester (~100 µW class) can
    /// sustain it.
    pub harvestable: bool,
}

/// Representative budget for an element.
///
/// Passive: an SP4T switch + microcontroller sleep current — tens of µW,
/// a few dollars. Active: full receive + transmit chains with mixers and a
/// PA — watts, hundreds of dollars (the Braidio/PhyCloak-class numbers the
/// paper cites).
pub fn element_budget(e: &Element) -> ElementBudget {
    match &e.kind {
        ElementKind::Passive { switch } => ElementBudget {
            // Switch driver + control logic; scales mildly with throw count.
            power_w: 20e-6 + 2e-6 * switch.n_throws() as f64,
            cost_usd: 4.0 + 0.5 * switch.n_throws() as f64,
            harvestable: true,
        },
        ElementKind::Active { max_gain_db, .. } => ElementBudget {
            // Mixers + PA; grows with the gain the PA must deliver.
            power_w: 0.8 + 0.05 * max_gain_db.max(0.0),
            cost_usd: 250.0 + 5.0 * max_gain_db.max(0.0),
            harvestable: false,
        },
    }
}

/// Aggregate deployment budget.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeploymentBudget {
    /// Total power, watts.
    pub total_power_w: f64,
    /// Total cost, USD.
    pub total_cost_usd: f64,
    /// How many elements an indoor harvester could power.
    pub harvestable_count: usize,
    /// Element count.
    pub n_elements: usize,
}

/// Sums budgets over a deployment.
pub fn deployment_budget(elements: &[Element]) -> DeploymentBudget {
    let mut total = DeploymentBudget::default();
    for e in elements {
        let b = element_budget(e);
        total.total_power_w += b.power_w;
        total.total_cost_usd += b.cost_usd;
        if b.harvestable {
            total.harvestable_count += 1;
        }
        total.n_elements += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 0.1218;

    #[test]
    fn passive_is_harvestable_active_is_not() {
        assert!(element_budget(&Element::paper_passive(LAMBDA)).harvestable);
        assert!(!element_budget(&Element::active(20.0)).harvestable);
    }

    #[test]
    fn active_costs_orders_of_magnitude_more_power() {
        let p = element_budget(&Element::paper_passive(LAMBDA)).power_w;
        let a = element_budget(&Element::active(20.0)).power_w;
        assert!(a / p > 1e3, "ratio {}", a / p);
    }

    #[test]
    fn hundred_passive_cheaper_than_three_active() {
        // The paper's scaling argument: "the latter significantly
        // outnumbering the former".
        let passive: Vec<Element> = (0..100).map(|_| Element::paper_passive(LAMBDA)).collect();
        let active: Vec<Element> = (0..3).map(|_| Element::active(20.0)).collect();
        let bp = deployment_budget(&passive);
        let ba = deployment_budget(&active);
        assert!(bp.total_cost_usd < ba.total_cost_usd);
        assert_eq!(bp.harvestable_count, 100);
        assert_eq!(ba.harvestable_count, 0);
    }

    #[test]
    fn budget_sums_linearly() {
        let es = vec![Element::paper_passive(LAMBDA), Element::active(10.0)];
        let total = deployment_budget(&es);
        let sum: f64 = es.iter().map(|e| element_budget(e).power_w).sum();
        assert!((total.total_power_w - sum).abs() < 1e-15);
        assert_eq!(total.n_elements, 2);
    }

    #[test]
    fn empty_deployment_is_zero() {
        let b = deployment_budget(&[]);
        assert_eq!(b.total_power_w, 0.0);
        assert_eq!(b.n_elements, 0);
    }
}
