//! SP4T RF switch banks.
//!
//! Models the Peregrine PE42441 SP4T switch the paper uses: four selectable
//! throws, a small insertion loss applied to whatever the selected throw
//! reflects, and a finite switching time (the datasheet-level microseconds
//! that matter when PRESS must reconfigure within a channel coherence time).

use crate::termination::Termination;
use press_math::db::db_to_amp;
use press_math::Complex64;

/// Errors from switch operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchError {
    /// Requested throw index is out of range.
    NoSuchThrow {
        /// Requested index.
        requested: usize,
        /// Number of throws available.
        available: usize,
    },
}

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchError::NoSuchThrow {
                requested,
                available,
            } => {
                write!(f, "throw {requested} out of range (switch has {available})")
            }
        }
    }
}

impl std::error::Error for SwitchError {}

/// A single-pole multi-throw RF switch with terminations on each throw.
#[derive(Debug, Clone, PartialEq)]
pub struct RfSwitch {
    /// The selectable terminations.
    throws: Vec<Termination>,
    /// Currently selected throw.
    selected: usize,
    /// Insertion loss through the switch, dB (applied twice: in and out).
    pub insertion_loss_db: f64,
    /// Time to change throws, seconds (PE42441-class: sub-microsecond).
    pub switching_time_s: f64,
}

impl RfSwitch {
    /// Builds a switch from its throws; throw 0 starts selected.
    ///
    /// Panics on an empty throw list.
    pub fn new(throws: Vec<Termination>) -> Self {
        assert!(!throws.is_empty(), "a switch needs at least one throw");
        RfSwitch {
            throws,
            selected: 0,
            insertion_loss_db: 0.4, // PE42441 datasheet-class
            switching_time_s: 1e-6,
        }
    }

    /// The paper's §3.2 configuration: three open waveguides differing by a
    /// quarter wavelength (phases 0, π/2, π) plus an absorptive load.
    pub fn paper_sp4t(lambda_m: f64) -> Self {
        RfSwitch::new(vec![
            Termination::open(0.0),
            Termination::open(lambda_m / 4.0),
            Termination::open(lambda_m / 2.0),
            Termination::absorber(),
        ])
    }

    /// The Figure 7 variant: "four different reflective cable lengths and no
    /// absorptive load, to decrease the reflected phase granularity"
    /// (phases 0, π/2, π, 3π/2).
    pub fn four_phase_sp4t(lambda_m: f64) -> Self {
        RfSwitch::new(vec![
            Termination::open(0.0),
            Termination::open(lambda_m / 4.0),
            Termination::open(lambda_m / 2.0),
            Termination::open(3.0 * lambda_m / 4.0),
        ])
    }

    /// A switch with `n` evenly spaced reflection phases (plus an absorber
    /// when `with_off`), for the §4.1 phase-resolution ablation.
    pub fn evenly_spaced(n_phases: usize, with_off: bool, lambda_m: f64) -> Self {
        assert!(n_phases >= 1, "need at least one phase");
        let mut throws: Vec<Termination> = (0..n_phases)
            .map(|k| {
                let phase = 2.0 * std::f64::consts::PI * k as f64 / n_phases as f64;
                Termination::with_phase(phase, lambda_m)
            })
            .collect();
        if with_off {
            throws.push(Termination::absorber());
        }
        RfSwitch::new(throws)
    }

    /// Number of throws.
    pub fn n_throws(&self) -> usize {
        self.throws.len()
    }

    /// Currently selected throw index.
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// The selected termination.
    pub fn selected_termination(&self) -> &Termination {
        &self.throws[self.selected]
    }

    /// All throws.
    pub fn throws(&self) -> &[Termination] {
        &self.throws
    }

    /// Selects a throw.
    ///
    /// # Errors
    /// [`SwitchError::NoSuchThrow`] when the index is out of range.
    pub fn select(&mut self, throw: usize) -> Result<(), SwitchError> {
        if throw >= self.throws.len() {
            return Err(SwitchError::NoSuchThrow {
                requested: throw,
                available: self.throws.len(),
            });
        }
        self.selected = throw;
        Ok(())
    }

    /// Effective reflection coefficient of the antenna port at wavelength
    /// `lambda_m`: the selected termination's coefficient attenuated by the
    /// switch's round-trip insertion loss.
    pub fn reflection_coefficient(&self, lambda_m: f64) -> Complex64 {
        let through = db_to_amp(-2.0 * self.insertion_loss_db);
        self.throws[self.selected].reflection_coefficient(lambda_m) * through
    }

    /// Reflection coefficient a given throw *would* produce, without
    /// selecting it — used by search algorithms to evaluate configurations.
    pub fn coefficient_of(&self, throw: usize, lambda_m: f64) -> Result<Complex64, SwitchError> {
        if throw >= self.throws.len() {
            return Err(SwitchError::NoSuchThrow {
                requested: throw,
                available: self.throws.len(),
            });
        }
        let through = db_to_amp(-2.0 * self.insertion_loss_db);
        Ok(self.throws[throw].reflection_coefficient(lambda_m) * through)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 0.1218;

    #[test]
    fn paper_switch_has_four_throws() {
        let s = RfSwitch::paper_sp4t(LAMBDA);
        assert_eq!(s.n_throws(), 4);
        assert!(s.throws()[3].is_absorber());
        let phases: Vec<Option<f64>> = s.throws().iter().map(|t| t.phase_label(LAMBDA)).collect();
        assert!((phases[0].unwrap() - 0.0).abs() < 1e-9);
        assert!((phases[1].unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        assert!((phases[2].unwrap() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn four_phase_switch_has_no_absorber() {
        let s = RfSwitch::four_phase_sp4t(LAMBDA);
        assert_eq!(s.n_throws(), 4);
        assert!(s.throws().iter().all(|t| !t.is_absorber()));
    }

    #[test]
    fn select_and_reflect() {
        let mut s = RfSwitch::paper_sp4t(LAMBDA);
        s.select(1).unwrap();
        let g = s.reflection_coefficient(LAMBDA);
        assert!((g.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        // 0.95 reflectivity * 0.8 dB round-trip insertion loss.
        let expect = 0.95 * db_to_amp(-0.8);
        assert!((g.abs() - expect).abs() < 1e-12);
    }

    #[test]
    fn select_out_of_range_errors() {
        let mut s = RfSwitch::paper_sp4t(LAMBDA);
        assert_eq!(
            s.select(4),
            Err(SwitchError::NoSuchThrow {
                requested: 4,
                available: 4
            })
        );
        assert!(s.coefficient_of(9, LAMBDA).is_err());
    }

    #[test]
    fn coefficient_of_matches_select() {
        let mut s = RfSwitch::paper_sp4t(LAMBDA);
        let predicted = s.coefficient_of(2, LAMBDA).unwrap();
        s.select(2).unwrap();
        assert_eq!(s.reflection_coefficient(LAMBDA), predicted);
    }

    #[test]
    fn evenly_spaced_phases() {
        let s = RfSwitch::evenly_spaced(8, true, LAMBDA);
        assert_eq!(s.n_throws(), 9);
        let phases: Vec<f64> = s.throws()[..8]
            .iter()
            .map(|t| t.phase_label(LAMBDA).unwrap())
            .collect();
        for (k, p) in phases.iter().enumerate() {
            let expect = 2.0 * std::f64::consts::PI * k as f64 / 8.0;
            assert!((p - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn terminated_throw_reflects_almost_nothing() {
        let mut s = RfSwitch::paper_sp4t(LAMBDA);
        s.select(3).unwrap();
        assert!(s.reflection_coefficient(LAMBDA).abs() < 0.05);
    }
}
