//! PRESS elements: passive switched reflectors and active relays.
//!
//! §2 of the paper weighs passive backscatter-style elements (cheap, dense,
//! weak) against active full-duplex "obfuscator" radios in the PhyCloak
//! mold (strong, expensive, power-hungry) and "anticipate\[s\] that our
//! eventual design will involve a mixture of both". Both live here behind
//! one interface: *what complex coefficient does this element apply to the
//! signal it re-radiates, and what does it cost to run*.

use crate::switch::{RfSwitch, SwitchError};
use press_math::db::db_to_amp;
use press_math::Complex64;

/// The electrical behaviour of one PRESS element.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementKind {
    /// A passive element: antenna + switched reflective termination.
    /// Its re-radiation coefficient is the switch's reflection coefficient
    /// (|Γ| ≤ 1 — passive elements can only redirect energy).
    Passive {
        /// The termination switch.
        switch: RfSwitch,
    },
    /// An active full-duplex relay (PhyCloak-style): receives, applies a
    /// programmable complex coefficient with gain, and retransmits.
    Active {
        /// Programmable amplitude gain, dB (can exceed 0 dB).
        gain_db: f64,
        /// Programmable phase, radians.
        phase_rad: f64,
        /// Whether the relay is enabled.
        enabled: bool,
        /// Maximum amplitude gain the hardware supports, dB.
        max_gain_db: f64,
    },
}

/// One deployed PRESS element (hardware only — placement and antenna
/// pattern are attached by `press-core`, which owns the geometry).
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Electrical behaviour.
    pub kind: ElementKind,
}

impl Element {
    /// The paper's passive prototype element: SP4T over {0, λ/4, λ/2,
    /// absorber} waveguides.
    pub fn paper_passive(lambda_m: f64) -> Element {
        Element {
            kind: ElementKind::Passive {
                switch: RfSwitch::paper_sp4t(lambda_m),
            },
        }
    }

    /// The Figure 7 passive variant with four reflective phases and no off
    /// state.
    pub fn four_phase_passive(lambda_m: f64) -> Element {
        Element {
            kind: ElementKind::Passive {
                switch: RfSwitch::four_phase_sp4t(lambda_m),
            },
        }
    }

    /// A passive element with `n` evenly spaced phases (+ optional off
    /// state) for the phase-resolution ablation.
    pub fn quantized_passive(n_phases: usize, with_off: bool, lambda_m: f64) -> Element {
        Element {
            kind: ElementKind::Passive {
                switch: RfSwitch::evenly_spaced(n_phases, with_off, lambda_m),
            },
        }
    }

    /// An active relay element, initially disabled, with the given gain cap.
    pub fn active(max_gain_db: f64) -> Element {
        Element {
            kind: ElementKind::Active {
                gain_db: 0.0,
                phase_rad: 0.0,
                enabled: false,
                max_gain_db,
            },
        }
    }

    /// Number of discrete states this element can take (used to size the
    /// configuration search space, `M^N`). Active elements are treated as
    /// continuously tunable and report `usize::MAX`.
    pub fn n_states(&self) -> usize {
        match &self.kind {
            ElementKind::Passive { switch } => switch.n_throws(),
            ElementKind::Active { .. } => usize::MAX,
        }
    }

    /// True for passive (switched) elements.
    pub fn is_passive(&self) -> bool {
        matches!(self.kind, ElementKind::Passive { .. })
    }

    /// Sets a passive element's switch throw.
    ///
    /// # Errors
    /// [`SwitchError::NoSuchThrow`] when out of range, or when called on an
    /// active element (reported as a zero-throw switch).
    pub fn set_state(&mut self, state: usize) -> Result<(), SwitchError> {
        match &mut self.kind {
            ElementKind::Passive { switch } => switch.select(state),
            ElementKind::Active { .. } => Err(SwitchError::NoSuchThrow {
                requested: state,
                available: 0,
            }),
        }
    }

    /// Current state of a passive element (0 for active elements).
    pub fn state(&self) -> usize {
        match &self.kind {
            ElementKind::Passive { switch } => switch.selected(),
            ElementKind::Active { .. } => 0,
        }
    }

    /// Programs an active element. Gain is clamped to the hardware cap.
    /// No-op on passive elements.
    pub fn program_active(&mut self, gain_db: f64, phase_rad: f64, on: bool) {
        if let ElementKind::Active {
            gain_db: g,
            phase_rad: p,
            enabled,
            max_gain_db,
        } = &mut self.kind
        {
            *g = gain_db.min(*max_gain_db);
            *p = phase_rad;
            *enabled = on;
        }
    }

    /// The complex coefficient this element applies to what it re-radiates,
    /// at wavelength `lambda_m`.
    pub fn coefficient(&self, lambda_m: f64) -> Complex64 {
        match &self.kind {
            ElementKind::Passive { switch } => switch.reflection_coefficient(lambda_m),
            ElementKind::Active {
                gain_db,
                phase_rad,
                enabled,
                ..
            } => {
                if *enabled {
                    Complex64::from_polar(db_to_amp(*gain_db), *phase_rad)
                } else {
                    Complex64::ZERO
                }
            }
        }
    }

    /// Coefficient a passive element *would* apply in a given state, without
    /// mutating it.
    ///
    /// # Errors
    /// [`SwitchError::NoSuchThrow`] out of range / active element.
    pub fn coefficient_in_state(
        &self,
        state: usize,
        lambda_m: f64,
    ) -> Result<Complex64, SwitchError> {
        match &self.kind {
            ElementKind::Passive { switch } => switch.coefficient_of(state, lambda_m),
            ElementKind::Active { .. } => Err(SwitchError::NoSuchThrow {
                requested: state,
                available: 0,
            }),
        }
    }

    /// The element's *wideband* response in a given state: an amplitude
    /// coefficient plus the extra time delay its termination adds.
    ///
    /// A waveguide of extra length ΔL is physically extra *delay*
    /// (`ΔL/c`), so its reflection phase varies across the band —
    /// `2π·f·ΔL/c` equals the paper's `2π·ΔL/λ` label at the carrier but
    /// drifts with frequency, which is part of how PRESS shapes frequency
    /// selectivity. Channel synthesis must therefore fold the delay into the
    /// path's `delay_s` rather than bake a fixed carrier phase into the gain.
    ///
    /// For active elements (`state` ignored) the gain carries the programmed
    /// phase directly and the delay is a fixed ~50 ns processing latency.
    pub fn response_in_state(&self, state: usize) -> Result<ElementResponse, SwitchError> {
        match &self.kind {
            ElementKind::Passive { switch } => {
                let throws = switch.throws();
                if state >= throws.len() {
                    return Err(SwitchError::NoSuchThrow {
                        requested: state,
                        available: throws.len(),
                    });
                }
                let through = db_to_amp(-2.0 * switch.insertion_loss_db);
                match throws[state] {
                    crate::termination::Termination::OpenWaveguide {
                        extra_length_m,
                        reflectivity,
                    } => Ok(ElementResponse {
                        gain: Complex64::real(reflectivity * through),
                        extra_delay_s: extra_length_m / 299_792_458.0,
                    }),
                    crate::termination::Termination::Absorber { residual } => Ok(ElementResponse {
                        gain: Complex64::real(residual * through),
                        extra_delay_s: 0.0,
                    }),
                }
            }
            ElementKind::Active {
                gain_db,
                phase_rad,
                enabled,
                ..
            } => Ok(ElementResponse {
                gain: if *enabled {
                    Complex64::from_polar(db_to_amp(*gain_db), *phase_rad)
                } else {
                    Complex64::ZERO
                },
                extra_delay_s: 50e-9,
            }),
        }
    }
}

/// Wideband element response: amplitude coefficient + extra delay.
/// See [`Element::response_in_state`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElementResponse {
    /// Complex amplitude applied at the element (delay-free part).
    pub gain: Complex64,
    /// Extra delay the termination or processing adds, seconds.
    pub extra_delay_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 0.1218;

    #[test]
    fn paper_element_has_64_configs_for_three() {
        let e = Element::paper_passive(LAMBDA);
        assert_eq!(e.n_states(), 4);
        assert_eq!(e.n_states().pow(3), 64, "the paper's 64 configurations");
    }

    #[test]
    fn passive_coefficient_bounded_by_unity() {
        let mut e = Element::paper_passive(LAMBDA);
        for s in 0..e.n_states() {
            e.set_state(s).unwrap();
            assert!(e.coefficient(LAMBDA).abs() <= 1.0);
        }
    }

    #[test]
    fn state_roundtrip() {
        let mut e = Element::paper_passive(LAMBDA);
        e.set_state(2).unwrap();
        assert_eq!(e.state(), 2);
        assert!(e.set_state(7).is_err());
        assert_eq!(e.state(), 2, "failed set must not change state");
    }

    #[test]
    fn coefficient_in_state_is_pure() {
        let e = Element::paper_passive(LAMBDA);
        let before = e.state();
        let c = e.coefficient_in_state(3, LAMBDA).unwrap();
        assert!(c.abs() < 0.05, "state 3 is the absorber");
        assert_eq!(e.state(), before);
    }

    #[test]
    fn active_element_amplifies() {
        let mut e = Element::active(20.0);
        assert_eq!(e.coefficient(LAMBDA), Complex64::ZERO, "disabled => silent");
        e.program_active(10.0, 1.0, true);
        let c = e.coefficient(LAMBDA);
        assert!((c.abs() - db_to_amp(10.0)).abs() < 1e-12);
        assert!((c.arg() - 1.0).abs() < 1e-12);
        assert!(c.abs() > 1.0, "active elements can exceed passive unity");
    }

    #[test]
    fn active_gain_clamped_to_cap() {
        let mut e = Element::active(12.0);
        e.program_active(30.0, 0.0, true);
        assert!((e.coefficient(LAMBDA).abs() - db_to_amp(12.0)).abs() < 1e-12);
    }

    #[test]
    fn active_rejects_switch_interface() {
        let mut e = Element::active(10.0);
        assert!(e.set_state(0).is_err());
        assert!(e.coefficient_in_state(0, LAMBDA).is_err());
        assert_eq!(e.n_states(), usize::MAX);
    }

    #[test]
    fn quantized_passive_state_count() {
        let e = Element::quantized_passive(8, true, LAMBDA);
        assert_eq!(e.n_states(), 9, "the paper's conjectured 8 phases + off");
    }

    #[test]
    fn response_delay_matches_carrier_phase_label() {
        // gain * e^{-j2π f τ} at the carrier must equal the narrowband
        // coefficient (up to conjugate phase convention).
        let e = Element::paper_passive(LAMBDA);
        let f_c = 299_792_458.0 / LAMBDA;
        for s in 0..3 {
            let narrow = e.coefficient_in_state(s, LAMBDA).unwrap();
            let wide = e.response_in_state(s).unwrap();
            let at_carrier =
                wide.gain * Complex64::cis(2.0 * std::f64::consts::PI * f_c * wide.extra_delay_s);
            assert!(
                (at_carrier - narrow).abs() < 1e-9,
                "state {s}: {at_carrier} vs {narrow}"
            );
        }
    }

    #[test]
    fn absorber_response_has_no_delay_and_tiny_gain() {
        let e = Element::paper_passive(LAMBDA);
        let r = e.response_in_state(3).unwrap();
        assert_eq!(r.extra_delay_s, 0.0);
        assert!(r.gain.abs() < 0.05);
    }

    #[test]
    fn active_response_carries_programmed_phase() {
        let mut e = Element::active(20.0);
        e.program_active(6.0, 0.7, true);
        let r = e.response_in_state(0).unwrap();
        assert!((r.gain.arg() - 0.7).abs() < 1e-12);
        assert!(r.extra_delay_s > 0.0);
    }

    #[test]
    fn response_out_of_range_errors() {
        let e = Element::paper_passive(LAMBDA);
        assert!(e.response_in_state(4).is_err());
    }
}
