//! # press-elements
//!
//! Hardware models of PRESS array elements, matching the paper's prototype
//! (Figure 3) and the §4.1 design space:
//!
//! * [`termination`] — open-waveguide and absorptive switch throws with the
//!   paper's phase labelling (λ/4 → π/2, λ/2 → π, "T" = terminated);
//! * [`switch`] — SP4T switch banks (PE42441-class) including the paper's
//!   {0, π/2, π, off} and Figure 7's {0, π/2, π, 3π/2} configurations, plus
//!   evenly spaced phase quantizers for the resolution ablation;
//! * [`element`] — passive switched reflectors and active (PhyCloak-style)
//!   relay elements behind one coefficient interface;
//! * [`power`] — power/cost budgets underpinning the passive-vs-active
//!   scaling argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod element;
pub mod power;
pub mod switch;
pub mod termination;

pub use element::{Element, ElementKind, ElementResponse};
pub use power::{deployment_budget, element_budget, DeploymentBudget, ElementBudget};
pub use switch::{RfSwitch, SwitchError};
pub use termination::{format_phase_label, Termination};
