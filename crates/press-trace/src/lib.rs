//! Deterministic structured event tracing for the PRESS stack.
//!
//! The simulation crates must stay bit-reproducible, so this crate is built
//! around three rules:
//!
//! 1. **No ambient entropy.** Events carry a monotonic sequence number and a
//!    sim-time stamp supplied by the caller. A wall-clock stamp is *optional*
//!    and only attached when a harness (press-bench) explicitly installs a
//!    clock via [`Tracer::set_wall_clock`] — sim crates never observe the
//!    outside world.
//! 2. **Zero dependencies.** Events serialize to JSON Lines with a hand-rolled
//!    codec (like press-lint's JSON diagnostics); `f64` fields use Rust's
//!    shortest round-trip `Display`, so serialize→parse is lossless and two
//!    identical runs produce byte-identical output.
//! 3. **Free when off.** [`NullSink`] is a zero-sized type whose `record` is an
//!    inlined empty body; a `Tracer<NullSink>` with flight capacity 0 does no
//!    work per event beyond a sequence-counter increment.
//!
//! The crate also provides the [`FlightRecorder`], a bounded ring buffer the
//! controller uses to snapshot the last N events into a post-mortem when an
//! episode reverts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::io::Write;

/// Controller episode phases, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Baseline measurement of the incumbent configuration.
    Measure,
    /// Configuration search (exhaustive / greedy / random / annealing).
    Search,
    /// Driving the chosen configuration onto the surface.
    Actuate,
    /// Sounding the realized configuration to confirm the predicted gain.
    Verify,
    /// Rolling back to the baseline after a verification loss.
    Revert,
}

impl Phase {
    /// Stable lowercase label used in JSONL and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Measure => "measure",
            Phase::Search => "search",
            Phase::Actuate => "actuate",
            Phase::Verify => "verify",
            Phase::Revert => "revert",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(s: &str) -> Option<Phase> {
        Some(match s {
            "measure" => Phase::Measure,
            "search" => Phase::Search,
            "actuate" => Phase::Actuate,
            "verify" => Phase::Verify,
            "revert" => Phase::Revert,
            _ => return None,
        })
    }
}

/// Interns a strategy label to the known `&'static str` set so parsed events
/// compare equal to emitted ones.
fn intern_strategy(s: &str) -> &'static str {
    match s {
        "exhaustive" => "exhaustive",
        "greedy" => "greedy",
        "random" => "random",
        "annealing" => "annealing",
        "joint-annealing" => "joint-annealing",
        _ => "unknown",
    }
}

/// What happened. Every variant maps to a stable `kind` tag in JSONL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A controller episode began.
    EpisodeStart {
        /// Episode seed (stream discipline: seed / seed+1 / seed+2).
        seed: u64,
        /// Number of links closed over (1 for `run_episode`).
        links: u32,
        /// Search strategy label.
        strategy: &'static str,
    },
    /// A `LinkBasis` was built (or fetched) for a link.
    BasisBuild {
        /// Link id (0 for single-link episodes).
        link: u32,
        /// Elements in the configuration space.
        elements: u32,
        /// Subcarriers in the basis.
        subcarriers: u32,
        /// Scene revision the basis captures.
        revision: u64,
    },
    /// An episode phase began.
    PhaseStart {
        /// Which phase.
        phase: Phase,
    },
    /// An episode phase finished.
    PhaseEnd {
        /// Which phase.
        phase: Phase,
        /// Channel measurements consumed during the phase.
        measurements: u32,
    },
    /// One sounded score observation.
    Measurement {
        /// Link id the measurement belongs to.
        link: u32,
        /// Objective score of the sounded profile.
        score: f64,
    },
    /// One search iteration (convergence telemetry).
    SearchStep {
        /// Strategy label.
        strategy: &'static str,
        /// Iteration index within the search.
        iteration: u32,
        /// Score of the candidate evaluated this iteration.
        score: f64,
        /// Best score seen so far (running max).
        best: f64,
        /// Whether the candidate was adopted as the current point.
        accepted: bool,
    },
    /// A control frame addressed an element.
    FrameTx {
        /// Element id.
        element: u16,
        /// Attempt index (0 = first try).
        attempt: u32,
    },
    /// A frame (or its ack) was lost in flight.
    FrameLost {
        /// Element id.
        element: u16,
    },
    /// A seq-checked acknowledgement arrived.
    AckRx {
        /// Element id.
        element: u16,
    },
    /// The element applied a state.
    Applied {
        /// Element id.
        element: u16,
        /// Realized state.
        state: u8,
    },
    /// A retransmission timer fired (DES actuation).
    TimerFired {
        /// Element id.
        element: u16,
    },
    /// Adaptive pacing stalled the sender.
    Backoff {
        /// Seconds the sender waited beyond its natural send time.
        wait_s: f64,
    },
    /// The Gilbert–Elliott chain changed state.
    BurstTransition {
        /// `true` when entering the burst (bad) state.
        into_burst: bool,
    },
    /// Retries exhausted for an element.
    GaveUp {
        /// Element id.
        element: u16,
    },
    /// The actuation round-trip completed.
    ActuationDone {
        /// Frames transmitted (commands + acks).
        frames: u32,
        /// Retransmissions beyond first attempts.
        retries: u32,
        /// Wire completion time in seconds.
        completion_s: f64,
        /// Elements that failed to apply.
        failed: u32,
    },
    /// Verification lost to baseline; the controller rolled back.
    Reverted {
        /// Baseline score the episode fell back to.
        baseline_score: f64,
        /// Verified score that triggered the revert.
        verified_score: f64,
    },
    /// The episode finished.
    EpisodeEnd {
        /// Final score of the episode.
        score: f64,
        /// Total channel measurements consumed.
        measurements: u32,
        /// Whether the episode reverted to baseline.
        reverted: bool,
    },
}

impl EventKind {
    /// Stable `kind` tag used in JSONL.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::EpisodeStart { .. } => "episode_start",
            EventKind::BasisBuild { .. } => "basis_build",
            EventKind::PhaseStart { .. } => "phase_start",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::Measurement { .. } => "measurement",
            EventKind::SearchStep { .. } => "search_step",
            EventKind::FrameTx { .. } => "frame_tx",
            EventKind::FrameLost { .. } => "frame_lost",
            EventKind::AckRx { .. } => "ack_rx",
            EventKind::Applied { .. } => "applied",
            EventKind::TimerFired { .. } => "timer_fired",
            EventKind::Backoff { .. } => "backoff",
            EventKind::BurstTransition { .. } => "burst",
            EventKind::GaveUp { .. } => "gave_up",
            EventKind::ActuationDone { .. } => "actuation_done",
            EventKind::Reverted { .. } => "reverted",
            EventKind::EpisodeEnd { .. } => "episode_end",
        }
    }
}

/// One trace event: sequence number, sim-time, optional wall-time, payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Monotonic per-tracer sequence number.
    pub seq: u64,
    /// Simulation time in seconds (episode/DES clock).
    pub t_s: f64,
    /// Wall-clock seconds, present only when a harness installed a clock.
    pub wall_s: Option<f64>,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Copy of the event with the wall-time field removed (the determinism
    /// contract compares traces in this form).
    pub fn without_wall(&self) -> Event {
        Event {
            wall_s: None,
            ..*self
        }
    }

    /// Serializes to one JSON line (no trailing newline). Field order is
    /// fixed, floats use shortest round-trip notation, so equal events
    /// serialize to equal bytes.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"seq\":{},\"t_s\":{}", self.seq, self.t_s);
        if let Some(w) = self.wall_s {
            let _ = write!(s, ",\"wall_s\":{w}");
        }
        let _ = write!(s, ",\"kind\":\"{}\"", self.kind.tag());
        match self.kind {
            EventKind::EpisodeStart {
                seed,
                links,
                strategy,
            } => {
                let _ = write!(
                    s,
                    ",\"seed\":{seed},\"links\":{links},\"strategy\":\"{strategy}\""
                );
            }
            EventKind::BasisBuild {
                link,
                elements,
                subcarriers,
                revision,
            } => {
                let _ = write!(
                    s,
                    ",\"link\":{link},\"elements\":{elements},\"subcarriers\":{subcarriers},\"revision\":{revision}"
                );
            }
            EventKind::PhaseStart { phase } => {
                let _ = write!(s, ",\"phase\":\"{}\"", phase.name());
            }
            EventKind::PhaseEnd {
                phase,
                measurements,
            } => {
                let _ = write!(
                    s,
                    ",\"phase\":\"{}\",\"measurements\":{measurements}",
                    phase.name()
                );
            }
            EventKind::Measurement { link, score } => {
                let _ = write!(s, ",\"link\":{link},\"score\":{score}");
            }
            EventKind::SearchStep {
                strategy,
                iteration,
                score,
                best,
                accepted,
            } => {
                let _ = write!(
                    s,
                    ",\"strategy\":\"{strategy}\",\"iteration\":{iteration},\"score\":{score},\"best\":{best},\"accepted\":{accepted}"
                );
            }
            EventKind::FrameTx { element, attempt } => {
                let _ = write!(s, ",\"element\":{element},\"attempt\":{attempt}");
            }
            EventKind::FrameLost { element }
            | EventKind::AckRx { element }
            | EventKind::TimerFired { element }
            | EventKind::GaveUp { element } => {
                let _ = write!(s, ",\"element\":{element}");
            }
            EventKind::Applied { element, state } => {
                let _ = write!(s, ",\"element\":{element},\"state\":{state}");
            }
            EventKind::Backoff { wait_s } => {
                let _ = write!(s, ",\"wait_s\":{wait_s}");
            }
            EventKind::BurstTransition { into_burst } => {
                let _ = write!(s, ",\"into_burst\":{into_burst}");
            }
            EventKind::ActuationDone {
                frames,
                retries,
                completion_s,
                failed,
            } => {
                let _ = write!(
                    s,
                    ",\"frames\":{frames},\"retries\":{retries},\"completion_s\":{completion_s},\"failed\":{failed}"
                );
            }
            EventKind::Reverted {
                baseline_score,
                verified_score,
            } => {
                let _ = write!(
                    s,
                    ",\"baseline_score\":{baseline_score},\"verified_score\":{verified_score}"
                );
            }
            EventKind::EpisodeEnd {
                score,
                measurements,
                reverted,
            } => {
                let _ = write!(
                    s,
                    ",\"score\":{score},\"measurements\":{measurements},\"reverted\":{reverted}"
                );
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSON line produced by [`Event::to_jsonl`]. Returns `None`
    /// on anything malformed or with an unknown `kind`.
    pub fn from_jsonl(line: &str) -> Option<Event> {
        let fields = parse_flat_json(line.trim())?;
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        let seq: u64 = get("seq")?.parse().ok()?;
        let t_s: f64 = get("t_s")?.parse().ok()?;
        let wall_s: Option<f64> = match get("wall_s") {
            Some(v) => Some(v.parse().ok()?),
            None => None,
        };
        let u32f = |k: &str| -> Option<u32> { get(k)?.parse().ok() };
        let u64f = |k: &str| -> Option<u64> { get(k)?.parse().ok() };
        let f64f = |k: &str| -> Option<f64> { get(k)?.parse().ok() };
        let boolf = |k: &str| -> Option<bool> { get(k)?.parse().ok() };
        let u16f = |k: &str| -> Option<u16> { get(k)?.parse().ok() };
        let kind = match get("kind")? {
            "episode_start" => EventKind::EpisodeStart {
                seed: u64f("seed")?,
                links: u32f("links")?,
                strategy: intern_strategy(get("strategy")?),
            },
            "basis_build" => EventKind::BasisBuild {
                link: u32f("link")?,
                elements: u32f("elements")?,
                subcarriers: u32f("subcarriers")?,
                revision: u64f("revision")?,
            },
            "phase_start" => EventKind::PhaseStart {
                phase: Phase::from_name(get("phase")?)?,
            },
            "phase_end" => EventKind::PhaseEnd {
                phase: Phase::from_name(get("phase")?)?,
                measurements: u32f("measurements")?,
            },
            "measurement" => EventKind::Measurement {
                link: u32f("link")?,
                score: f64f("score")?,
            },
            "search_step" => EventKind::SearchStep {
                strategy: intern_strategy(get("strategy")?),
                iteration: u32f("iteration")?,
                score: f64f("score")?,
                best: f64f("best")?,
                accepted: boolf("accepted")?,
            },
            "frame_tx" => EventKind::FrameTx {
                element: u16f("element")?,
                attempt: u32f("attempt")?,
            },
            "frame_lost" => EventKind::FrameLost {
                element: u16f("element")?,
            },
            "ack_rx" => EventKind::AckRx {
                element: u16f("element")?,
            },
            "applied" => EventKind::Applied {
                element: u16f("element")?,
                state: get("state")?.parse().ok()?,
            },
            "timer_fired" => EventKind::TimerFired {
                element: u16f("element")?,
            },
            "backoff" => EventKind::Backoff {
                wait_s: f64f("wait_s")?,
            },
            "burst" => EventKind::BurstTransition {
                into_burst: boolf("into_burst")?,
            },
            "gave_up" => EventKind::GaveUp {
                element: u16f("element")?,
            },
            "actuation_done" => EventKind::ActuationDone {
                frames: u32f("frames")?,
                retries: u32f("retries")?,
                completion_s: f64f("completion_s")?,
                failed: u32f("failed")?,
            },
            "reverted" => EventKind::Reverted {
                baseline_score: f64f("baseline_score")?,
                verified_score: f64f("verified_score")?,
            },
            "episode_end" => EventKind::EpisodeEnd {
                score: f64f("score")?,
                measurements: u32f("measurements")?,
                reverted: boolf("reverted")?,
            },
            _ => return None,
        };
        Some(Event {
            seq,
            t_s,
            wall_s,
            kind,
        })
    }
}

/// Splits a flat one-level JSON object (no nesting, no escapes — all our
/// string values are static labels) into `(key, raw_value)` pairs with string
/// quotes stripped from values.
///
/// This is the stack's shared line-oriented JSON reader: [`Event::from_jsonl`]
/// is built on it, and downstream consumers (the press-metrics trace
/// aggregator, pressd session rebuilds) use it to pick fields out of summary
/// lines that are not trace events. Returns `None` on anything that is not a
/// single flat object.
pub fn parse_flat_json(line: &str) -> Option<Vec<(String, String)>> {
    let inner = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let rest2 = rest.strip_prefix('"')?;
        let kend = rest2.find('"')?;
        let key = &rest2[..kend];
        let rest3 = rest2[kend + 1..].strip_prefix(':')?;
        let (value, tail) = if let Some(v) = rest3.strip_prefix('"') {
            let vend = v.find('"')?;
            (&v[..vend], &v[vend + 1..])
        } else {
            match rest3.find(',') {
                Some(c) => (&rest3[..c], &rest3[c..]),
                None => (rest3, ""),
            }
        };
        out.push((key.to_string(), value.to_string()));
        rest = tail.strip_prefix(',').unwrap_or(tail);
        if tail.is_empty() {
            break;
        }
        if !tail.starts_with(',') {
            return None;
        }
    }
    Some(out)
}

/// Destination for trace events.
pub trait TraceSink {
    /// Records one event. Called in emission (sequence) order.
    fn record(&mut self, ev: &Event);
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn record(&mut self, ev: &Event) {
        (**self).record(ev);
    }
}

/// Zero-sized sink that discards everything; the disabled-tracing path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _ev: &Event) {}
}

/// In-memory sink collecting every event; the test/assertion sink.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    /// Recorded events, in sequence order.
    pub events: Vec<Event>,
}

impl MemorySink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serializes all events to JSONL (one line per event, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in &self.events {
            s.push_str(&ev.to_jsonl());
            s.push('\n');
        }
        s
    }

    /// JSONL with wall-time fields stripped — the determinism-contract form.
    pub fn to_jsonl_without_wall(&self) -> String {
        let mut s = String::new();
        for ev in &self.events {
            s.push_str(&ev.without_wall().to_jsonl());
            s.push('\n');
        }
        s
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, ev: &Event) {
        self.events.push(*ev);
    }
}

/// Writer-backed sink emitting one JSON line per event.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Prefer a buffered writer for file output.
    pub fn new(writer: W) -> Self {
        Self { writer }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &Event) {
        // I/O errors are swallowed: tracing must never change control flow.
        let _ = writeln!(self.writer, "{}", ev.to_jsonl());
    }
}

/// Bounded ring over the most recent events in *serialized* JSONL form:
/// the `trace-tail` sink a long-running daemon answers operator queries
/// from without retaining an unbounded session trace.
///
/// Unlike [`FlightRecorder`] (which holds structured [`Event`]s for
/// post-mortems), this holds the exact bytes a [`JsonlSink`] would have
/// written, so a tail query returns the live stream's own lines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TailSink {
    lines: Vec<String>,
    next: usize,
    cap: usize,
}

impl TailSink {
    /// A tail retaining the last `capacity` lines (0 disables retention).
    pub fn new(capacity: usize) -> Self {
        TailSink {
            lines: Vec::with_capacity(capacity),
            next: 0,
            cap: capacity,
        }
    }

    /// Maximum retained lines.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Lines currently held.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The retained JSONL lines, oldest first.
    pub fn tail(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.lines.len());
        if self.lines.len() < self.cap {
            out.extend(self.lines.iter().cloned());
        } else {
            for i in 0..self.cap {
                out.push(self.lines[(self.next + i) % self.cap].clone());
            }
        }
        out
    }

    /// Drops every retained line.
    pub fn clear(&mut self) {
        self.lines.clear();
        self.next = 0;
    }
}

impl TraceSink for TailSink {
    fn record(&mut self, ev: &Event) {
        if self.cap == 0 {
            return;
        }
        let line = ev.to_jsonl();
        if self.lines.len() < self.cap {
            self.lines.push(line);
        } else {
            self.lines[self.next] = line;
        }
        self.next = (self.next + 1) % self.cap;
    }
}

/// Fans each event out to two sinks in order — e.g. a live [`JsonlSink`]
/// stream plus a bounded [`TailSink`] for operator queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TeeSink<A: TraceSink, B: TraceSink> {
    /// First sink; records before `b`.
    pub a: A,
    /// Second sink.
    pub b: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Fans out to `a` then `b`.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn record(&mut self, ev: &Event) {
        self.a.record(ev);
        self.b.record(ev);
    }
}

/// Bounded ring buffer over the most recent events (wall-time stripped).
///
/// The controller keeps one of these per episode and snapshots it into the
/// post-mortem when verification fails. Capacity is allocated once up front;
/// recording never allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    cap: usize,
    buf: Vec<Event>,
    next: usize,
}

impl FlightRecorder {
    /// Ring holding the last `cap` events. `cap == 0` disables recording.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            buf: Vec::with_capacity(cap),
            next: 0,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&mut self, ev: &Event) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(*ev);
        } else {
            self.buf[self.next] = *ev;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// The held events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }

    /// Empties the ring without releasing its allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, ev: &Event) {
        FlightRecorder::record(self, ev);
    }
}

/// Default number of events the controller's flight recorder retains.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 64;

/// Stamps events with sequence numbers (and optionally wall time) and fans
/// them out to a sink plus the flight recorder.
pub struct Tracer<S: TraceSink> {
    sink: S,
    seq: u64,
    wall: Option<Box<dyn FnMut() -> f64>>,
    flight: FlightRecorder,
}

impl Tracer<NullSink> {
    /// The disabled tracer: null sink, zero-capacity flight recorder. Per
    /// event this does a sequence increment and nothing else.
    pub fn null() -> Self {
        Tracer {
            sink: NullSink,
            seq: 0,
            wall: None,
            flight: FlightRecorder::new(0),
        }
    }
}

impl<S: TraceSink> Tracer<S> {
    /// Tracer over `sink` with the default flight-recorder capacity.
    pub fn new(sink: S) -> Self {
        Self::with_flight_capacity(sink, DEFAULT_FLIGHT_CAPACITY)
    }

    /// Tracer over `sink` retaining the last `cap` events for post-mortems.
    pub fn with_flight_capacity(sink: S, cap: usize) -> Self {
        Tracer {
            sink,
            seq: 0,
            wall: None,
            flight: FlightRecorder::new(cap),
        }
    }

    /// Installs a wall-clock source; subsequent events carry `wall_s`.
    ///
    /// Only harness code (press-bench) may call this — attaching a wall clock
    /// inside a simulation crate breaks the determinism contract, and
    /// press-lint's ambient-entropy rule flags such calls.
    // press-lint: allow(ambient-entropy) — definition site; callers are policed, not the API.
    pub fn set_wall_clock(&mut self, clock: impl FnMut() -> f64 + 'static) {
        self.wall = Some(Box::new(clock));
    }

    /// Stamps and records one event at sim-time `t_s`.
    #[inline]
    pub fn emit(&mut self, t_s: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        let wall_s = self.wall.as_mut().map(|c| c());
        let ev = Event {
            seq,
            t_s,
            wall_s,
            kind,
        };
        self.sink.record(&ev);
        self.flight.record(&ev.without_wall());
    }

    /// Events emitted so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The flight recorder (read side).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The flight recorder (for `clear` at episode boundaries).
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flight
    }

    /// The sink (read side).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The sink (write side).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the tracer, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

impl<S: TraceSink + std::fmt::Debug> std::fmt::Debug for Tracer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sink", &self.sink)
            .field("seq", &self.seq)
            .field("wall", &self.wall.is_some())
            .field("flight", &self.flight)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let kinds = vec![
            EventKind::EpisodeStart {
                seed: 7,
                links: 3,
                strategy: "annealing",
            },
            EventKind::BasisBuild {
                link: 0,
                elements: 16,
                subcarriers: 64,
                revision: 2,
            },
            EventKind::PhaseStart {
                phase: Phase::Measure,
            },
            EventKind::PhaseEnd {
                phase: Phase::Measure,
                measurements: 3,
            },
            EventKind::Measurement {
                link: 1,
                score: -3.25,
            },
            EventKind::SearchStep {
                strategy: "greedy",
                iteration: 12,
                score: 1.5,
                best: 2.625,
                accepted: false,
            },
            EventKind::FrameTx {
                element: 300,
                attempt: 1,
            },
            EventKind::FrameLost { element: 300 },
            EventKind::AckRx { element: 300 },
            EventKind::Applied {
                element: 12,
                state: 3,
            },
            EventKind::TimerFired { element: 5 },
            EventKind::Backoff {
                wait_s: 0.001953125,
            },
            EventKind::BurstTransition { into_burst: true },
            EventKind::GaveUp { element: 9 },
            EventKind::ActuationDone {
                frames: 40,
                retries: 4,
                completion_s: 0.03125,
                failed: 1,
            },
            EventKind::Reverted {
                baseline_score: 4.5,
                verified_score: 4.0,
            },
            EventKind::EpisodeEnd {
                score: 4.5,
                measurements: 20,
                reverted: true,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                seq: i as u64,
                t_s: i as f64 * 0.125,
                wall_s: None,
                kind,
            })
            .collect()
    }

    #[test]
    fn tail_sink_keeps_the_last_lines_in_stream_order() {
        let mut tail = TailSink::new(4);
        assert!(tail.is_empty());
        for ev in sample_events() {
            tail.record(&ev);
        }
        let lines = tail.tail();
        assert_eq!(lines.len(), 4);
        assert_eq!(tail.len(), 4);
        // The last four events of the stream, oldest first, byte-equal to
        // what a JsonlSink would have written.
        let all = sample_events();
        for (line, ev) in lines.iter().zip(&all[all.len() - 4..]) {
            assert_eq!(*line, ev.to_jsonl());
        }
        tail.clear();
        assert!(tail.is_empty());
        // Capacity 0 disables retention entirely.
        let mut off = TailSink::new(0);
        off.record(&all[0]);
        assert!(off.tail().is_empty());
    }

    #[test]
    fn tee_sink_fans_out_to_both_sinks() {
        let mut tee = TeeSink::new(MemorySink::new(), TailSink::new(2));
        for ev in sample_events() {
            tee.record(&ev);
        }
        assert_eq!(tee.a.events.len(), sample_events().len());
        assert_eq!(tee.b.len(), 2);
        let jsonl_tail: Vec<String> = tee
            .a
            .events
            .iter()
            .rev()
            .take(2)
            .rev()
            .map(Event::to_jsonl)
            .collect();
        assert_eq!(tee.b.tail(), jsonl_tail);
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for ev in sample_events() {
            let line = ev.to_jsonl();
            let back = Event::from_jsonl(&line).expect(&line);
            assert_eq!(ev, back, "{line}");
            // Serialization is deterministic: re-serializing reproduces bytes.
            assert_eq!(line, back.to_jsonl());
        }
    }

    #[test]
    fn jsonl_round_trips_wall_time() {
        let ev = Event {
            seq: 4,
            t_s: 1.5,
            wall_s: Some(123.0625),
            kind: EventKind::FrameLost { element: 2 },
        };
        let line = ev.to_jsonl();
        assert!(line.contains("\"wall_s\":123.0625"));
        assert_eq!(Event::from_jsonl(&line), Some(ev));
        assert!(!ev.without_wall().to_jsonl().contains("wall_s"));
    }

    #[test]
    fn from_jsonl_rejects_malformed() {
        assert_eq!(Event::from_jsonl(""), None);
        assert_eq!(Event::from_jsonl("{}"), None);
        assert_eq!(Event::from_jsonl("{\"seq\":1}"), None);
        assert_eq!(
            Event::from_jsonl("{\"seq\":1,\"t_s\":0,\"kind\":\"nope\"}"),
            None
        );
        assert_eq!(Event::from_jsonl("not json"), None);
    }

    #[test]
    fn shortest_roundtrip_floats_are_exact() {
        // Rust's `{}` Display for f64 prints the shortest string that parses
        // back to the same bits — the codec's losslessness hinges on this.
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -7.25] {
            let ev = Event {
                seq: 0,
                t_s: v,
                wall_s: None,
                kind: EventKind::Backoff { wait_s: v },
            };
            let back = Event::from_jsonl(&ev.to_jsonl()).unwrap();
            assert_eq!(back.t_s.to_bits(), v.to_bits());
            match back.kind {
                EventKind::Backoff { wait_s } => assert_eq!(wait_s.to_bits(), v.to_bits()),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut tracer = Tracer::new(MemorySink::new());
        tracer.emit(
            0.0,
            EventKind::PhaseStart {
                phase: Phase::Search,
            },
        );
        tracer.emit(
            1.0,
            EventKind::PhaseEnd {
                phase: Phase::Search,
                measurements: 5,
            },
        );
        let sink = tracer.into_sink();
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].seq, 0);
        assert_eq!(sink.events[1].seq, 1);
        assert_eq!(sink.events[1].t_s, 1.0);
        assert_eq!(sink.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn null_sink_is_zero_sized_and_emits_nothing() {
        assert_eq!(std::mem::size_of::<NullSink>(), 0);
        let mut tracer = Tracer::null();
        assert_eq!(tracer.flight().capacity(), 0);
        for i in 0..10_000 {
            tracer.emit(
                i as f64,
                EventKind::FrameTx {
                    element: 0,
                    attempt: 0,
                },
            );
        }
        // Nothing buffered, nothing allocated: the ring kept capacity 0.
        assert_eq!(tracer.seq(), 10_000);
        assert_eq!(tracer.flight().len(), 0);
        assert_eq!(tracer.flight().capacity(), 0);
    }

    #[test]
    fn flight_recorder_wraps_oldest_first() {
        let mut ring = FlightRecorder::new(3);
        let mk = |i: u64| Event {
            seq: i,
            t_s: i as f64,
            wall_s: None,
            kind: EventKind::FrameLost { element: i as u16 },
        };
        ring.record(&mk(0));
        ring.record(&mk(1));
        assert_eq!(
            ring.snapshot().iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1]
        );
        for i in 2..7 {
            ring.record(&mk(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(
            ring.snapshot().iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn wall_clock_is_opt_in_and_stripped_by_flight() {
        let mut tracer = Tracer::new(MemorySink::new());
        // Deterministic stand-in for a wall clock: the lint rule polices the
        // *source*, not this mechanism.
        let mut fake = 0.0f64;
        // press-lint: allow(ambient-entropy) — deterministic counter, no wall clock
        tracer.set_wall_clock(move || {
            fake += 0.5;
            fake
        });
        tracer.emit(0.0, EventKind::GaveUp { element: 1 });
        tracer.emit(0.0, EventKind::GaveUp { element: 2 });
        let flight = tracer.flight().snapshot();
        let sink = tracer.into_sink();
        assert_eq!(sink.events[0].wall_s, Some(0.5));
        assert_eq!(sink.events[1].wall_s, Some(1.0));
        // Flight recorder mirrors events with wall time stripped.
        assert_eq!(flight[0].wall_s, None);
        assert_eq!(flight[1].wall_s, None);
        // And the strip-helper produces wall-free JSONL.
        assert!(!sink.to_jsonl_without_wall().contains("wall_s"));
        assert!(sink.to_jsonl().contains("wall_s"));
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        let ev = Event {
            seq: 0,
            t_s: 0.25,
            wall_s: None,
            kind: EventKind::AckRx { element: 7 },
        };
        sink.record(&ev);
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, format!("{}\n", ev.to_jsonl()));
        assert_eq!(Event::from_jsonl(text.trim()), Some(ev));
    }

    #[test]
    fn phase_names_round_trip() {
        for p in [
            Phase::Measure,
            Phase::Search,
            Phase::Actuate,
            Phase::Verify,
            Phase::Revert,
        ] {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("warp"), None);
    }
}
