//! Interference alignment at a multi-antenna bystander.
//!
//! §1 of the paper: "Another instance of network harmonization is
//! interference alignment: aligning the interference that two networks
//! cause at a receiver in a third network, so that that receiver may remove
//! the interference from both interfering networks in a single nulling
//! step." At a two-antenna receiver, each interferer arrives as a complex
//! 2-vector per subcarrier; when the two vectors are collinear, one spatial
//! projection kills both. PRESS's job is to *make* them collinear by
//! reshaping the interferers' multipath.
//!
//! This module provides the alignment metric, the optimal single-step
//! nulling filter, and the post-nulling SINR accounting the objective
//! ultimately answers to.

use press_math::Complex64;

/// A per-subcarrier channel to a two-antenna receiver.
pub type Steering = [Complex64; 2];

fn inner(a: &Steering, b: &Steering) -> Complex64 {
    a[0].conj() * b[0] + a[1].conj() * b[1]
}

fn norm_sqr(a: &Steering) -> f64 {
    a[0].norm_sqr() + a[1].norm_sqr()
}

/// Cosine of the angle between two interference vectors at one subcarrier:
/// 1 = perfectly aligned (one nulling step removes both), 0 = orthogonal
/// (nulling one leaves the other untouched).
pub fn alignment(v1: &Steering, v2: &Steering) -> f64 {
    let denom = (norm_sqr(v1) * norm_sqr(v2)).sqrt();
    if denom <= 0.0 {
        return 1.0; // a vanished interferer is trivially aligned
    }
    (inner(v1, v2).abs() / denom).min(1.0)
}

/// Mean alignment across subcarriers — the objective PRESS maximizes.
pub fn mean_alignment(i1: &[Steering], i2: &[Steering]) -> f64 {
    assert_eq!(i1.len(), i2.len(), "subcarrier counts differ");
    if i1.is_empty() {
        return 1.0;
    }
    i1.iter().zip(i2).map(|(a, b)| alignment(a, b)).sum::<f64>() / i1.len() as f64
}

/// The best single nulling filter at one subcarrier: the unit vector `w`
/// minimizing the residual interference power `w^H R w` with
/// `R = v1·v1^H + v2·v2^H` — i.e. the eigenvector of the smaller eigenvalue
/// of the 2×2 Hermitian interference covariance. Returns `(w, residual)`
/// where `residual` is the total leftover interference power.
pub fn nulling_filter(v1: &Steering, v2: &Steering) -> (Steering, f64) {
    // R = [[a, b], [conj(b), c]] (Hermitian PSD).
    let a = v1[0].norm_sqr() + v2[0].norm_sqr();
    let c = v1[1].norm_sqr() + v2[1].norm_sqr();
    let b = v1[0] * v1[1].conj() + v2[0] * v2[1].conj();
    let tr = a + c;
    let det = a * c - b.norm_sqr();
    let disc = ((tr * tr / 4.0 - det).max(0.0)).sqrt();
    let lambda_min = (tr / 2.0 - disc).max(0.0);
    // Eigenvector for lambda_min: (R - lambda I) w = 0.
    // Row 1: (a - l) w0 + b w1 = 0 -> w = [-b, a - l] (or use row 2 if degenerate).
    let cand = if (a - lambda_min).abs() + b.abs() > 1e-30 {
        [-b, Complex64::real(a - lambda_min)]
    } else {
        [Complex64::real(c - lambda_min), -b.conj()]
    };
    let n = (cand[0].norm_sqr() + cand[1].norm_sqr()).sqrt();
    let w = if n > 0.0 {
        [cand[0] / n, cand[1] / n]
    } else {
        // R = 0: no interference at all; any unit vector nulls nothing.
        [Complex64::ONE, Complex64::ZERO]
    };
    (w, lambda_min)
}

/// Post-nulling SINR per subcarrier: apply the optimal nulling filter for
/// the two interferers and measure what remains of the desired signal
/// against residual interference + noise.
pub fn post_nulling_sinr_db(
    signal: &[Steering],
    i1: &[Steering],
    i2: &[Steering],
    noise_power: f64,
) -> Vec<f64> {
    assert!(signal.len() == i1.len() && i1.len() == i2.len());
    signal
        .iter()
        .zip(i1.iter().zip(i2))
        .map(|(s, (v1, v2))| {
            let (w, residual) = nulling_filter(v1, v2);
            let s_out = (w[0].conj() * s[0] + w[1].conj() * s[1]).norm_sqr();
            10.0 * (s_out / (residual + noise_power)).max(1e-12).log10()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn collinear_interferers_fully_aligned() {
        let v1 = [c(1.0, 0.5), c(-0.3, 0.2)];
        let v2 = [v1[0] * c(0.0, 2.0), v1[1] * c(0.0, 2.0)]; // complex multiple
        assert!((alignment(&v1, &v2) - 1.0).abs() < 1e-12);
        let (_, residual) = nulling_filter(&v1, &v2);
        assert!(residual < 1e-12, "one step must null both: {residual}");
    }

    #[test]
    fn orthogonal_interferers_unaligned_and_unnullable() {
        let v1 = [c(1.0, 0.0), c(0.0, 0.0)];
        let v2 = [c(0.0, 0.0), c(1.0, 0.0)];
        assert!(alignment(&v1, &v2) < 1e-12);
        let (_, residual) = nulling_filter(&v1, &v2);
        // Both have unit power; the best single null leaves one unit behind.
        assert!((residual - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nulling_filter_is_unit_norm_and_kills_dominant_direction() {
        let v1 = [c(2.0, 1.0), c(0.5, -0.5)];
        let v2 = [c(1.9, 1.1), c(0.45, -0.55)]; // nearly aligned with v1
        let (w, residual) = nulling_filter(&v1, &v2);
        assert!(((w[0].norm_sqr() + w[1].norm_sqr()) - 1.0).abs() < 1e-9);
        let leak1 = (w[0].conj() * v1[0] + w[1].conj() * v1[1]).norm_sqr();
        let leak2 = (w[0].conj() * v2[0] + w[1].conj() * v2[1]).norm_sqr();
        assert!((leak1 + leak2 - residual).abs() < 1e-9);
        assert!(residual < 0.05 * (norm_sqr(&v1) + norm_sqr(&v2)));
    }

    #[test]
    fn aligned_interference_buys_sinr() {
        // Same interference power; aligned vs orthogonal.
        let signal = vec![[c(1.0, 0.0), c(0.5, 0.5)]; 8];
        let i_base = [c(0.8, 0.1), c(-0.2, 0.6)];
        let aligned1 = vec![i_base; 8];
        let aligned2 = vec![[i_base[0] * 0.9, i_base[1] * 0.9]; 8];
        let ortho2 = vec![[i_base[1].conj() * 0.9, -i_base[0].conj() * 0.9]; 8];
        let noise = 1e-3;
        let sinr_aligned = post_nulling_sinr_db(&signal, &aligned1, &aligned2, noise);
        let sinr_ortho = post_nulling_sinr_db(&signal, &aligned1, &ortho2, noise);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&sinr_aligned) > mean(&sinr_ortho) + 10.0,
            "aligned {} vs orthogonal {}",
            mean(&sinr_aligned),
            mean(&sinr_ortho)
        );
    }

    #[test]
    fn mean_alignment_bounds() {
        let v = [c(1.0, 0.0), c(0.0, 1.0)];
        let u = [c(0.3, -0.4), c(0.2, 0.9)];
        let m = mean_alignment(&[v; 4], &[u; 4]);
        assert!((0.0..=1.0).contains(&m));
        assert_eq!(mean_alignment(&[], &[]), 1.0);
    }

    #[test]
    fn zero_interferer_is_trivially_aligned() {
        let v = [c(1.0, 0.0), c(0.5, 0.0)];
        let z = [Complex64::ZERO, Complex64::ZERO];
        assert_eq!(alignment(&v, &z), 1.0);
        let (_, residual) = nulling_filter(&z, &z);
        assert_eq!(residual, 0.0);
    }
}
