//! Basis-cached configuration evaluation: the O(N·K) fast path.
//!
//! The received channel is affine in the element states: with the
//! environment response `H_env[k]` and the per-element, per-state additive
//! contribution `B[i][s][k]`, any configuration `c` synthesizes as
//!
//! `H_c[k] = H_env[k] + Σ_i B[i][c_i][k]`.
//!
//! Path tracing, antenna gains, and the per-subcarrier `cis()` calls all
//! live in the basis *build*; evaluating a configuration afterwards is a
//! pure complex accumulation over `N` cached columns of length `K` — no
//! path re-trace, no trig, no allocation. Single-coordinate moves (the
//! greedy / hill-climbing / annealing inner loop) are cheaper still:
//! subtract the old column, add the new one, O(K).
//!
//! Time dependence is handled analytically: a path with Doppler `d` obeys
//! `response(f, t) = response(f, 0) · e^{j2πdt}`, so each cached column
//! carries its Doppler and is rotated by a single `cis()` per evaluation
//! instead of `K` of them. Static paths (`d == 0`, the common case) are
//! added verbatim, which keeps the fast path bit-identical to the direct
//! [`press_propagation::frequency_response`] sum.
//!
//! Staleness is explicit: [`LinkBasis`] records the
//! [`CachedLink::revision`] it was built from, and
//! [`LinkBasis::ensure_fresh`] re-derives the environment response after
//! drift ([`CachedLink::apply_drift`]) bumps it. Element-side changes
//! (repositioned or re-programmed elements) require a full
//! [`LinkBasis::rebuild`] — drift never touches those columns.

use crate::config::{ConfigSpace, Configuration};
use crate::objective::LinkObjective;
use crate::system::{CachedLink, PressSystem};
use press_math::Complex64;
use press_phy::numerology::Numerology;
use press_phy::snr::SnrProfile;
use press_propagation::path::SignalPath;
use press_sdr::SnrParams;
use std::f64::consts::TAU;

/// Precomputed per-link channel basis over a fixed frequency grid.
#[derive(Debug, Clone)]
pub struct LinkBasis {
    /// Frequency grid, Hz (the numerology's active subcarriers, normally).
    freqs_hz: Vec<f64>,
    /// Static (zero-Doppler) environment response, summed in path order.
    env_static: Vec<Complex64>,
    /// Per-Doppler-path environment columns: `(doppler_hz, H_path(f, 0))`.
    env_doppler: Vec<(f64, Vec<Complex64>)>,
    /// Flattened `B[i][s][k]` columns, `columns[col·K .. (col+1)·K]`.
    columns: Vec<Complex64>,
    /// Doppler of each column's underlying path, Hz.
    col_doppler: Vec<f64>,
    /// Whether the column's element path exists in that state (absorber /
    /// below-floor states contribute nothing and are skipped exactly like
    /// the direct path-list evaluation skips them).
    col_present: Vec<bool>,
    /// First column index of each element (prefix sums of the radices).
    state_offsets: Vec<usize>,
    /// The configuration space the columns cover.
    space: ConfigSpace,
    /// Number of frequency points `K`.
    n_k: usize,
    /// The [`CachedLink::revision`] this basis reflects.
    revision: u64,
}

/// Adds `col` (a t=0 response) into `acc`, rotated to time `t_s` by the
/// path's Doppler. The `d == 0` / `t == 0` case adds verbatim so static
/// scenes stay bit-identical to the direct sum.
#[inline]
fn add_rotated(
    acc: &mut [Complex64],
    col: &[Complex64],
    doppler_hz: f64,
    t_s: f64,
    subtract: bool,
) {
    // Exact zeros select the add-verbatim fast path; see the doc comment.
    // press-lint: allow(float-ordering)
    if doppler_hz == 0.0 || t_s == 0.0 {
        if subtract {
            for (a, &c) in acc.iter_mut().zip(col) {
                *a -= c;
            }
        } else {
            for (a, &c) in acc.iter_mut().zip(col) {
                *a += c;
            }
        }
    } else {
        let rot = Complex64::cis(TAU * doppler_hz * t_s);
        let rot = if subtract { -rot } else { rot };
        for (a, &c) in acc.iter_mut().zip(col) {
            *a += c * rot;
        }
    }
}

impl LinkBasis {
    /// Builds the basis for a link over an explicit frequency grid.
    ///
    /// Cost: one [`PressArray::element_path`](crate::array::PressArray::element_path)
    /// trace per (element, state) plus `O((L + ΣMᵢ)·K)` `cis()` calls —
    /// paid once, then amortized over every configuration evaluated.
    pub fn build(system: &PressSystem, link: &CachedLink, freqs_hz: &[f64]) -> Self {
        let space = system.array.config_space_passive_only();
        let n_k = freqs_hz.len();
        let mut state_offsets = Vec::with_capacity(space.n_elements());
        let mut n_cols = 0usize;
        for &m in &space.states_per_element {
            state_offsets.push(n_cols);
            n_cols += m;
        }
        let mut columns = vec![Complex64::ZERO; n_cols * n_k];
        let mut col_doppler = vec![0.0; n_cols];
        let mut col_present = vec![false; n_cols];
        for (i, &m) in space.states_per_element.iter().enumerate() {
            for s in 0..m {
                if let Some(path) =
                    system
                        .array
                        .element_path(&system.scene, &link.tx, &link.rx, i, s)
                {
                    let col = state_offsets[i] + s;
                    fill_column(&mut columns[col * n_k..(col + 1) * n_k], &path, freqs_hz);
                    col_doppler[col] = path.doppler_hz;
                    col_present[col] = true;
                }
            }
        }
        let (env_static, env_doppler) = build_environment(&link.environment, freqs_hz);
        LinkBasis {
            freqs_hz: freqs_hz.to_vec(),
            env_static,
            env_doppler,
            columns,
            col_doppler,
            col_present,
            state_offsets,
            space,
            n_k,
            revision: link.revision,
        }
    }

    /// Builds the basis over a numerology's active subcarriers — the grid
    /// [`press_sdr::Sounder::oracle_channel`] evaluates on.
    pub fn for_numerology(system: &PressSystem, link: &CachedLink, num: &Numerology) -> Self {
        LinkBasis::build(system, link, &num.active_freqs_hz())
    }

    /// Rebuilds everything (environment *and* element columns) in place.
    /// Needed after the system itself changes — elements re-programmed,
    /// repositioned, endpoints moved.
    pub fn rebuild(&mut self, system: &PressSystem, link: &CachedLink) {
        *self = LinkBasis::build(system, link, &self.freqs_hz.clone());
    }

    /// Re-derives only the environment response from the link's (drifted)
    /// environment paths. Element columns are untouched — drift perturbs
    /// environment path gains only — so this costs `O(L·K)`, not a full
    /// rebuild.
    pub fn rebuild_environment(&mut self, link: &CachedLink) {
        let (env_static, env_doppler) = build_environment(&link.environment, &self.freqs_hz);
        self.env_static = env_static;
        self.env_doppler = env_doppler;
        self.revision = link.revision;
    }

    /// The [`CachedLink::revision`] this basis reflects.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// True when the basis still matches the link's environment.
    pub fn is_fresh(&self, link: &CachedLink) -> bool {
        self.revision == link.revision
    }

    /// Refreshes the environment response if the link has drifted since the
    /// basis was built. Returns true when a rebuild happened.
    pub fn ensure_fresh(&mut self, link: &CachedLink) -> bool {
        if self.is_fresh(link) {
            false
        } else {
            self.rebuild_environment(link);
            true
        }
    }

    /// The configuration space the basis covers (active elements collapse
    /// to a single state, as in
    /// [`config_space_passive_only`](crate::array::PressArray::config_space_passive_only)).
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The frequency grid, Hz.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// Number of frequency points `K`.
    pub fn n_subcarriers(&self) -> usize {
        self.n_k
    }

    /// The cached t=0 contribution of one (element, state), or `None` when
    /// that state contributes no path (absorber, below trace floor, element
    /// disabled). Feeds the inverse-problem dictionary.
    pub fn column(&self, element: usize, state: usize) -> Option<&[Complex64]> {
        assert!(
            state < self.space.states_per_element[element],
            "state out of range"
        );
        let col = self.state_offsets[element] + state;
        if self.col_present[col] {
            Some(&self.columns[col * self.n_k..(col + 1) * self.n_k])
        } else {
            None
        }
    }

    /// The environment-only response at elapsed time `t_s` (no element
    /// contribution), into a caller-owned buffer — the inverse problem's
    /// "base" channel.
    pub fn environment_into(&self, t_s: f64, out: &mut Vec<Complex64>) {
        out.clear();
        out.extend_from_slice(&self.env_static);
        for (d, col) in &self.env_doppler {
            add_rotated(out, col, *d, t_s, false);
        }
    }

    /// Synthesizes the channel of a configuration at elapsed time `t_s`
    /// into a caller-owned buffer: `O(N·K)` complex adds, no allocation
    /// beyond the buffer's first growth.
    pub fn synthesize_into(&self, config: &Configuration, t_s: f64, out: &mut Vec<Complex64>) {
        assert_eq!(
            config.len(),
            self.space.n_elements(),
            "configuration/basis size mismatch"
        );
        self.environment_into(t_s, out);
        for (i, &s) in config.states.iter().enumerate() {
            assert!(s < self.space.states_per_element[i], "state out of range");
            let col = self.state_offsets[i] + s;
            if self.col_present[col] {
                add_rotated(
                    out,
                    &self.columns[col * self.n_k..(col + 1) * self.n_k],
                    self.col_doppler[col],
                    t_s,
                    false,
                );
            }
        }
    }

    /// Synthesizes the channel a *partially applied* actuation produces:
    /// element `i` contributes its `target` column where `applied[i]` and
    /// its `prev` column otherwise — the array the control plane actually
    /// left behind when some set-state commands were lost. Equivalent to
    /// `synthesize_into(&prev.overlay(target, applied), ..)` without
    /// building the merged configuration.
    pub fn synthesize_partial_into(
        &self,
        prev: &Configuration,
        target: &Configuration,
        applied: &[bool],
        t_s: f64,
        out: &mut Vec<Complex64>,
    ) {
        assert_eq!(
            prev.len(),
            self.space.n_elements(),
            "configuration/basis size mismatch"
        );
        assert_eq!(target.len(), prev.len(), "configuration lengths differ");
        assert_eq!(applied.len(), prev.len(), "applied mask length differs");
        self.environment_into(t_s, out);
        for (i, &done) in applied.iter().enumerate() {
            let s = if done {
                target.states[i]
            } else {
                prev.states[i]
            };
            assert!(s < self.space.states_per_element[i], "state out of range");
            let col = self.state_offsets[i] + s;
            if self.col_present[col] {
                add_rotated(
                    out,
                    &self.columns[col * self.n_k..(col + 1) * self.n_k],
                    self.col_doppler[col],
                    t_s,
                    false,
                );
            }
        }
    }

    /// Allocating convenience wrapper over
    /// [`synthesize_into`](Self::synthesize_into).
    pub fn synthesize(&self, config: &Configuration, t_s: f64) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.synthesize_into(config, t_s, &mut out);
        out
    }

    /// Updates a synthesized channel in place for a single-coordinate move
    /// `element: old_state → new_state`: subtract the old column, add the
    /// new one. O(K) — the incremental step behind greedy sweeps, hill
    /// climbing and annealing.
    pub fn apply_move(
        &self,
        h: &mut [Complex64],
        element: usize,
        old_state: usize,
        new_state: usize,
        t_s: f64,
    ) {
        assert_eq!(h.len(), self.n_k, "channel buffer length mismatch");
        if old_state == new_state {
            return;
        }
        let old_col = self.state_offsets[element] + old_state;
        let new_col = self.state_offsets[element] + new_state;
        if self.col_present[old_col] {
            add_rotated(
                h,
                &self.columns[old_col * self.n_k..(old_col + 1) * self.n_k],
                self.col_doppler[old_col],
                t_s,
                true,
            );
        }
        if self.col_present[new_col] {
            add_rotated(
                h,
                &self.columns[new_col * self.n_k..(new_col + 1) * self.n_k],
                self.col_doppler[new_col],
                t_s,
                false,
            );
        }
    }
}

/// Fills `out` with one path's t=0 response over the grid.
fn fill_column(out: &mut [Complex64], path: &SignalPath, freqs_hz: &[f64]) {
    for (o, &f) in out.iter_mut().zip(freqs_hz) {
        *o = path.response_at(f, 0.0);
    }
}

/// Splits the environment into the static partial sum (accumulated in path
/// order, so zero-Doppler scenes reproduce the direct sum bit-for-bit) and
/// one column per Doppler-shifted path.
fn build_environment(
    environment: &[SignalPath],
    freqs_hz: &[f64],
) -> (Vec<Complex64>, Vec<(f64, Vec<Complex64>)>) {
    let mut env_static = vec![Complex64::ZERO; freqs_hz.len()];
    let mut env_doppler = Vec::new();
    for p in environment {
        // Exactly-static paths fold into the precomputed sum; any nonzero
        // Doppler, however small, must rotate analytically instead.
        // press-lint: allow(float-ordering)
        if p.doppler_hz == 0.0 {
            for (h, &f) in env_static.iter_mut().zip(freqs_hz) {
                *h += p.response_at(f, 0.0);
            }
        } else {
            let col = freqs_hz.iter().map(|&f| p.response_at(f, 0.0)).collect();
            env_doppler.push((p.doppler_hz, col));
        }
    }
    (env_static, env_doppler)
}

/// If `b` differs from `a` in exactly one coordinate, returns
/// `(element, b's state)`.
fn single_move(a: &Configuration, b: &Configuration) -> Option<(usize, usize)> {
    if a.len() != b.len() {
        return None;
    }
    let mut found = None;
    for (i, (&sa, &sb)) in a.states.iter().zip(&b.states).enumerate() {
        if sa != sb {
            if found.is_some() {
                return None;
            }
            found = Some((i, sb));
        }
    }
    found
}

/// A stateful configuration scorer over a [`LinkBasis`]: synthesizes the
/// channel allocation-free and feeds it to a metric closure
/// `FnMut(&[Complex64]) -> f64`.
///
/// The evaluator remembers the last two (configuration, channel) pairs it
/// produced. Search loops that probe single-coordinate moves off a base —
/// greedy sweeps, hill climbing, simulated annealing — therefore hit the
/// O(K) [`LinkBasis::apply_move`] path automatically: a probe one move
/// away from the base updates incrementally, and when the search *commits*
/// a probe (its next probes depart from it), the buffers swap in O(1). Any
/// other configuration falls back to a full O(N·K) synthesis, so the
/// evaluator is a drop-in `FnMut(&Configuration) -> f64` (via
/// [`evaluate`](Self::evaluate)) for every search algorithm.
#[derive(Debug)]
pub struct BasisEvaluator<'a, F> {
    basis: &'a LinkBasis,
    metric: F,
    t_s: f64,
    incremental: bool,
    current: Option<Configuration>,
    current_h: Vec<Complex64>,
    pending: Option<Configuration>,
    pending_h: Vec<Complex64>,
    evaluations: usize,
    full_syntheses: usize,
}

impl<'a, F: FnMut(&[Complex64]) -> f64> BasisEvaluator<'a, F> {
    /// Creates an evaluator at elapsed time `t_s` with the incremental
    /// move fast path enabled.
    pub fn new(basis: &'a LinkBasis, t_s: f64, metric: F) -> Self {
        BasisEvaluator {
            basis,
            metric,
            t_s,
            incremental: true,
            current: None,
            current_h: Vec::with_capacity(basis.n_subcarriers()),
            pending: None,
            pending_h: Vec::with_capacity(basis.n_subcarriers()),
            evaluations: 0,
            full_syntheses: 0,
        }
    }

    /// Creates an evaluator that always synthesizes from scratch (still
    /// allocation-free O(N·K), just no O(K) move shortcut).
    ///
    /// The incremental path's floating-point result depends (at the last-ulp
    /// level) on the *sequence* of configurations evaluated; exact mode is
    /// history-independent, which the parallel sweeps rely on for
    /// thread-count-invariant results.
    pub fn exact(basis: &'a LinkBasis, t_s: f64, metric: F) -> Self {
        let mut e = BasisEvaluator::new(basis, t_s, metric);
        e.incremental = false;
        e
    }

    /// Scores one configuration (see the type docs for the incremental
    /// fast paths).
    pub fn evaluate(&mut self, config: &Configuration) -> f64 {
        self.evaluations += 1;
        if !self.incremental {
            self.full_syntheses += 1;
            self.basis
                .synthesize_into(config, self.t_s, &mut self.current_h);
            return (self.metric)(&self.current_h);
        }
        // The probe we produced last time became the new base: swap, O(1).
        if self.pending.as_deref_states() == Some(&config.states) {
            std::mem::swap(&mut self.current, &mut self.pending);
            std::mem::swap(&mut self.current_h, &mut self.pending_h);
            self.pending = None;
            return (self.metric)(&self.current_h);
        }
        if self.current.as_deref_states() == Some(&config.states) {
            return (self.metric)(&self.current_h);
        }
        // One move off the base: incremental O(K) update into the probe
        // buffer, leaving the base intact for sibling probes.
        if let Some(cur) = &self.current {
            if let Some((i, s_new)) = single_move(cur, config) {
                let s_old = cur.states[i];
                self.pending_h.clear();
                self.pending_h.extend_from_slice(&self.current_h);
                self.basis
                    .apply_move(&mut self.pending_h, i, s_old, s_new, self.t_s);
                self.pending = Some(config.clone());
                return (self.metric)(&self.pending_h);
            }
        }
        // One move off the last probe (annealing accepts without
        // re-evaluating): commit the probe as the new base, then move.
        if let Some(pend) = self.pending.take() {
            if let Some((i, s_new)) = single_move(&pend, config) {
                std::mem::swap(&mut self.current_h, &mut self.pending_h);
                let s_old = pend.states[i];
                self.current = Some(pend);
                self.pending_h.clear();
                self.pending_h.extend_from_slice(&self.current_h);
                self.basis
                    .apply_move(&mut self.pending_h, i, s_old, s_new, self.t_s);
                self.pending = Some(config.clone());
                return (self.metric)(&self.pending_h);
            }
        }
        // Anywhere else in the space: full O(N·K) synthesis becomes the
        // new base.
        self.full_syntheses += 1;
        self.basis
            .synthesize_into(config, self.t_s, &mut self.current_h);
        self.current = Some(config.clone());
        self.pending = None;
        (self.metric)(&self.current_h)
    }

    /// Total configurations scored.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// How many of them needed a full synthesis (the rest were O(K)
    /// incremental or O(1) cache hits).
    pub fn full_syntheses(&self) -> usize {
        self.full_syntheses
    }

    /// Moves the evaluator to a new elapsed time, dropping cached channels
    /// (they are only valid at the time they were synthesized for).
    pub fn set_time(&mut self, t_s: f64) {
        if t_s != self.t_s {
            self.t_s = t_s;
            self.current = None;
            self.pending = None;
        }
    }
}

/// Tiny helper so the hot path compares configurations without constructing
/// anything: `Option<Configuration> → Option<&[usize]>`.
trait AsStates {
    fn as_deref_states(&self) -> Option<&[usize]>;
}

impl AsStates for Option<Configuration> {
    fn as_deref_states(&self) -> Option<&[usize]> {
        self.as_ref().map(|c| c.states.as_slice())
    }
}

/// A reusable, allocation-free metric turning a synthesized channel into a
/// [`LinkObjective`] score — the basis-side equivalent of
/// `objective.score(&sounder.oracle_snr(&paths, t))`.
pub fn snr_metric(params: SnrParams, objective: LinkObjective) -> impl FnMut(&[Complex64]) -> f64 {
    let mut profile = SnrProfile::new(Vec::new());
    move |h| {
        params.profile_into(h, &mut profile.snr_db);
        objective.score(&profile)
    }
}

/// Worst-subcarrier channel magnitude, dB — the raw link-quality metric the
/// large-space search ablations use when no link budget is in play.
pub fn min_magnitude_db_metric() -> impl FnMut(&[Complex64]) -> f64 {
    |h: &[Complex64]| {
        h.iter()
            .map(|hk| 20.0 * hk.abs().max(1e-30).log10())
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_propagation::path::frequency_response;
    use press_propagation::scene::RadioNode;
    use press_propagation::{Material, Scene, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PressSystem, CachedLink, Vec<f64>) {
        let scene = Scene::shoebox(WIFI_CHANNEL_11_HZ, 6.0, 5.0, 3.0, Material::DRYWALL);
        let lambda = scene.wavelength();
        let array = PressArray::paper_passive(
            &[
                Vec3::new(2.5, 1.5, 1.5),
                Vec3::new(3.0, 3.5, 1.5),
                Vec3::new(3.5, 2.0, 1.5),
            ],
            lambda,
        );
        let system = PressSystem::new(scene, array);
        let tx = RadioNode::omni_at(Vec3::new(1.5, 2.0, 1.5));
        let rx = RadioNode::omni_at(Vec3::new(4.5, 3.0, 1.5));
        let link = CachedLink::trace(&system, tx, rx);
        let freqs: Vec<f64> = (0..52)
            .map(|k| WIFI_CHANNEL_11_HZ + (k as f64 - 26.0) * 312_500.0)
            .collect();
        (system, link, freqs)
    }

    #[test]
    fn synthesis_matches_direct_bit_for_bit_when_static() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        for cfg in basis.space().clone().iter() {
            let direct = frequency_response(&link.paths(&system, &cfg), &freqs, 0.0);
            let fast = basis.synthesize(&cfg, 0.0);
            assert_eq!(direct, fast, "config {:?}", cfg.states);
        }
    }

    #[test]
    fn static_scene_is_time_invariant_like_direct() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let cfg = Configuration::new(vec![2, 0, 1]);
        let direct = frequency_response(&link.paths(&system, &cfg), &freqs, 17.5);
        let fast = basis.synthesize(&cfg, 17.5);
        assert_eq!(direct, fast);
    }

    #[test]
    fn doppler_columns_rotate_analytically() {
        let (system, mut link, freqs) = setup();
        for (i, p) in link.environment.iter_mut().enumerate() {
            p.doppler_hz = 3.0 + i as f64;
        }
        link.mark_dirty();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let cfg = Configuration::new(vec![1, 3, 2]);
        let t = 0.37;
        let direct = frequency_response(&link.paths(&system, &cfg), &freqs, t);
        let fast = basis.synthesize(&cfg, t);
        for (d, f) in direct.iter().zip(&fast) {
            assert!((*d - *f).abs() <= 1e-9 * d.abs().max(1.0), "{d:?} vs {f:?}");
        }
    }

    #[test]
    fn apply_move_matches_full_synthesis() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let mut h = basis.synthesize(&Configuration::new(vec![0, 0, 0]), 0.0);
        basis.apply_move(&mut h, 1, 0, 3, 0.0);
        basis.apply_move(&mut h, 0, 0, 2, 0.0);
        let full = basis.synthesize(&Configuration::new(vec![2, 3, 0]), 0.0);
        for (a, b) in h.iter().zip(&full) {
            assert!((*a - *b).abs() <= 1e-12 * b.abs().max(1.0));
        }
    }

    #[test]
    fn partial_synthesis_matches_overlay_bit_for_bit() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let prev = Configuration::new(vec![0, 2, 1]);
        let target = Configuration::new(vec![3, 1, 1]);
        for mask in [
            [true, true, true],
            [false, false, false],
            [true, false, true],
        ] {
            let mut partial = Vec::new();
            basis.synthesize_partial_into(&prev, &target, &mask, 0.0, &mut partial);
            let merged = basis.synthesize(&prev.overlay(&target, &mask), 0.0);
            assert_eq!(partial, merged, "mask {mask:?}");
        }
    }

    #[test]
    fn drift_invalidates_and_rebuild_refreshes() {
        let (system, mut link, freqs) = setup();
        let mut basis = LinkBasis::build(&system, &link, &freqs);
        let cfg = Configuration::new(vec![3, 1, 0]);
        let before = basis.synthesize(&cfg, 0.0);
        let drift = press_propagation::fading::ChannelDrift::quiet_lab();
        let mut rng = StdRng::seed_from_u64(5);
        link.apply_drift(&drift, &mut rng);
        assert!(!basis.is_fresh(&link), "drift must mark the basis stale");
        // Stale basis still returns the old response...
        assert_eq!(basis.synthesize(&cfg, 0.0), before);
        // ...and refreshing re-derives the drifted one exactly.
        assert!(basis.ensure_fresh(&link));
        let direct = frequency_response(&link.paths(&system, &cfg), &freqs, 0.0);
        assert_eq!(basis.synthesize(&cfg, 0.0), direct);
        assert!(!basis.ensure_fresh(&link), "second refresh is a no-op");
    }

    #[test]
    fn evaluator_incremental_probes_match_full_synthesis() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let mut eval = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
        // A greedy-like probe pattern: base, then single moves, then commit.
        let base = Configuration::zeros(3);
        let s0 = eval.evaluate(&base);
        let mut probe = base.clone();
        probe.states[1] = 2;
        let s1 = eval.evaluate(&probe);
        let s1_again = eval.evaluate(&probe); // commit: O(1) swap
        assert_eq!(s1, s1_again);
        // Reference scores from scratch evaluators.
        let mut fresh = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
        assert_eq!(s0, fresh.evaluate(&base));
        let mut fresh2 = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
        assert_eq!(s1, fresh2.evaluate(&probe));
        assert_eq!(eval.evaluations(), 3);
        assert_eq!(
            eval.full_syntheses(),
            1,
            "only the base paid full synthesis"
        );
    }

    #[test]
    fn evaluator_annealing_chain_stays_incremental() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let mut eval = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
        // Accepted-move chain: each config is one move off the previous
        // *probe*, never re-evaluated — the annealing accept pattern.
        let mut c = Configuration::zeros(3);
        let mut scores = Vec::new();
        scores.push(eval.evaluate(&c));
        for (i, s) in [(0usize, 1usize), (2, 3), (1, 2), (0, 3), (2, 1)] {
            c.states[i] = s;
            scores.push(eval.evaluate(&c));
        }
        assert_eq!(eval.full_syntheses(), 1, "chain must stay incremental");
        // Every score must match a from-scratch synthesis.
        let mut replay = Configuration::zeros(3);
        let check = |cfg: &Configuration| {
            let mut e = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
            e.evaluate(cfg)
        };
        let mut idx = 0;
        assert!((scores[idx] - check(&replay)).abs() < 1e-9);
        for (i, s) in [(0usize, 1usize), (2, 3), (1, 2), (0, 3), (2, 1)] {
            replay.states[i] = s;
            idx += 1;
            assert!((scores[idx] - check(&replay)).abs() < 1e-9);
        }
    }

    #[test]
    fn snr_metric_matches_oracle_scoring() {
        use press_phy::Numerology;
        use press_sdr::{SdrRadio, Sounder};
        let (system, link, _) = setup();
        let sounder = Sounder::new(
            Numerology::wifi20(WIFI_CHANNEL_11_HZ),
            SdrRadio::warp(link.tx.clone()),
            SdrRadio::warp(link.rx.clone()),
        );
        let basis = LinkBasis::for_numerology(&system, &link, &sounder.num);
        let mut metric = snr_metric(sounder.snr_params(), LinkObjective::MaxMinSnr);
        for cfg in [Configuration::zeros(3), Configuration::new(vec![3, 1, 2])] {
            let direct = LinkObjective::MaxMinSnr
                .score(&sounder.oracle_snr(&link.paths(&system, &cfg), 0.0));
            let fast = metric(&basis.synthesize(&cfg, 0.0));
            assert_eq!(direct, fast);
        }
    }

    #[test]
    fn columns_are_the_per_element_path_responses() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        for i in 0..3 {
            for s in 0..4 {
                let path = system
                    .array
                    .element_path(&system.scene, &link.tx, &link.rx, i, s);
                match (basis.column(i, s), path) {
                    (Some(col), Some(p)) => {
                        for (c, &f) in col.iter().zip(&freqs) {
                            assert_eq!(*c, p.response_at(f, 0.0));
                        }
                    }
                    (None, None) => {}
                    (col, p) => panic!(
                        "column presence mismatch at ({i},{s}): basis {:?} vs trace {:?}",
                        col.is_some(),
                        p.is_some()
                    ),
                }
            }
        }
    }
}
