//! Basis-cached configuration evaluation: the O(N·K) fast path.
//!
//! The received channel is affine in the element states: with the
//! environment response `H_env[k]` and the per-element, per-state additive
//! contribution `B[i][s][k]`, any configuration `c` synthesizes as
//!
//! `H_c[k] = H_env[k] + Σ_i B[i][c_i][k]`.
//!
//! Path tracing, antenna gains, and the per-subcarrier `cis()` calls all
//! live in the basis *build*; evaluating a configuration afterwards is a
//! pure complex accumulation over `N` cached columns of length `K` — no
//! path re-trace, no trig, no allocation. Single-coordinate moves (the
//! greedy / hill-climbing / annealing inner loop) are cheaper still:
//! subtract the old column, add the new one, O(K).
//!
//! Time dependence is handled analytically: a path with Doppler `d` obeys
//! `response(f, t) = response(f, 0) · e^{j2πdt}`, so each cached column
//! carries its Doppler and is rotated by a single `cis()` per evaluation
//! instead of `K` of them. Static paths (`d == 0`, the common case) are
//! added verbatim, which keeps the fast path bit-identical to the direct
//! [`press_propagation::frequency_response`] sum.
//!
//! Staleness is explicit: [`LinkBasis`] records the
//! [`CachedLink::revision`] it was built from, and
//! [`LinkBasis::ensure_fresh`] re-derives the environment response after
//! drift ([`CachedLink::apply_drift`]) bumps it. Element-side changes
//! (repositioned or re-programmed elements) require a full
//! [`LinkBasis::rebuild`] — drift never touches those columns.
//!
//! # Structure-of-arrays layout and the batch kernel
//!
//! Element columns are stored as two separate `f64` planes (`col_re`,
//! `col_im`) rather than an interleaved `Vec<Complex64>`. Complex addition
//! is componentwise and the rotated multiply-accumulate decomposes into
//! the same four real multiplies and two adds per point either way, so the
//! split changes *nothing* numerically — every synthesis stays bitwise
//! identical to the interleaved layout — while letting the kernels stream
//! each plane through fixed-width lanes (`LANES` `f64`s at a time via
//! `chunks_exact`, no external SIMD deps).
//!
//! [`BatchEvaluator`] scores a whole slice of candidate configurations
//! through a shared prefix stack: candidates are visited in lexicographic
//! state order, partial sums `env + col₀ + … + col_{d-1}` are kept per
//! element depth, and only the columns below each candidate's longest
//! common prefix with its predecessor are re-accumulated (duplicates are
//! scored once). Each candidate's own accumulation order stays exactly
//! the scalar order (environment first, then elements `0..N`), and lanes
//! are elementwise over the frequency axis — there is **no cross-lane
//! reduction** anywhere in the kernel — which is what makes batch scores
//! bitwise-equal to the per-candidate [`LinkBasis::synthesize_into`] path
//! (enforced by test and by press-lint's `kernel-reduction` rule; see
//! DESIGN.md).

use crate::config::{ConfigSpace, Configuration};
use crate::objective::LinkObjective;
use crate::system::{CachedLink, PressSystem};
use press_math::Complex64;
use press_phy::numerology::Numerology;
use press_phy::snr::SnrProfile;
use press_propagation::path::SignalPath;
use press_sdr::SnrParams;
use std::f64::consts::TAU;

/// Precomputed per-link channel basis over a fixed frequency grid.
#[derive(Debug, Clone)]
pub struct LinkBasis {
    /// Frequency grid, Hz (the numerology's active subcarriers, normally).
    freqs_hz: Vec<f64>,
    /// Static (zero-Doppler) environment response, summed in path order.
    env_static: Vec<Complex64>,
    /// Per-Doppler-path environment columns: `(doppler_hz, H_path(f, 0))`.
    env_doppler: Vec<(f64, Vec<Complex64>)>,
    /// Real plane of the flattened `B[i][s][k]` columns,
    /// `col_re[col·K .. (col+1)·K]` (structure-of-arrays; see module docs).
    col_re: Vec<f64>,
    /// Imaginary plane, same layout as `col_re`.
    col_im: Vec<f64>,
    /// Doppler of each column's underlying path, Hz.
    col_doppler: Vec<f64>,
    /// Whether the column's element path exists in that state (absorber /
    /// below-floor states contribute nothing and are skipped exactly like
    /// the direct path-list evaluation skips them).
    col_present: Vec<bool>,
    /// First column index of each element (prefix sums of the radices).
    state_offsets: Vec<usize>,
    /// The configuration space the columns cover.
    space: ConfigSpace,
    /// Number of frequency points `K`.
    n_k: usize,
    /// The [`CachedLink::revision`] this basis reflects.
    revision: u64,
}

/// Adds `col` (a t=0 response) into `acc`, rotated to time `t_s` by the
/// path's Doppler. The `d == 0` / `t == 0` case adds verbatim so static
/// scenes stay bit-identical to the direct sum.
#[inline]
fn add_rotated(
    acc: &mut [Complex64],
    col: &[Complex64],
    doppler_hz: f64,
    t_s: f64,
    subtract: bool,
) {
    // Exact zeros select the add-verbatim fast path; see the doc comment.
    // press-lint: allow(float-ordering)
    if doppler_hz == 0.0 || t_s == 0.0 {
        if subtract {
            for (a, &c) in acc.iter_mut().zip(col) {
                *a -= c;
            }
        } else {
            for (a, &c) in acc.iter_mut().zip(col) {
                *a += c;
            }
        }
    } else {
        let rot = Complex64::cis(TAU * doppler_hz * t_s);
        let rot = if subtract { -rot } else { rot };
        for (a, &c) in acc.iter_mut().zip(col) {
            *a += c * rot;
        }
    }
}

/// Fixed lane width of the manual SIMD-style kernels below: four `f64`s
/// fill one 256-bit vector register, and `chunks_exact` hands the
/// optimizer a constant-trip inner loop it can keep in registers. Lanes
/// are *elementwise over the frequency axis* — lane `l` owns subcarrier
/// `base + l` exclusively and nothing is ever summed across lanes — so the
/// results are bitwise identical to the scalar loop at any lane width.
/// That no-cross-lane-reduction contract is what press-lint's
/// `kernel-reduction` rule pins down (see DESIGN.md).
const LANES: usize = 4;

/// `acc[k] += (col_re[k], col_im[k])` — the verbatim static-path add, from
/// split planes into an interleaved accumulator.
#[inline]
fn lanes_add(acc: &mut [Complex64], col_re: &[f64], col_im: &[f64]) {
    let mut a = acc.chunks_exact_mut(LANES);
    let mut cr = col_re.chunks_exact(LANES);
    let mut ci = col_im.chunks_exact(LANES);
    for ((a, cr), ci) in (&mut a).zip(&mut cr).zip(&mut ci) {
        for l in 0..LANES {
            a[l].re += cr[l];
            a[l].im += ci[l];
        }
    }
    for (a, (&re, &im)) in a
        .into_remainder()
        .iter_mut()
        .zip(cr.remainder().iter().zip(ci.remainder()))
    {
        a.re += re;
        a.im += im;
    }
}

/// `acc[k] -= (col_re[k], col_im[k])` — the incremental-move subtract.
#[inline]
fn lanes_sub(acc: &mut [Complex64], col_re: &[f64], col_im: &[f64]) {
    let mut a = acc.chunks_exact_mut(LANES);
    let mut cr = col_re.chunks_exact(LANES);
    let mut ci = col_im.chunks_exact(LANES);
    for ((a, cr), ci) in (&mut a).zip(&mut cr).zip(&mut ci) {
        for l in 0..LANES {
            a[l].re -= cr[l];
            a[l].im -= ci[l];
        }
    }
    for (a, (&re, &im)) in a
        .into_remainder()
        .iter_mut()
        .zip(cr.remainder().iter().zip(ci.remainder()))
    {
        a.re -= re;
        a.im -= im;
    }
}

/// `acc[k] += (col_re[k], col_im[k]) · rot` — the Doppler-rotated complex
/// multiply-accumulate, written out as the same four multiplies and two
/// adds `Complex64::mul` performs so the result is bit-identical to the
/// interleaved `*a += c * rot`.
#[inline]
fn lanes_mac(acc: &mut [Complex64], col_re: &[f64], col_im: &[f64], rot: Complex64) {
    let mut a = acc.chunks_exact_mut(LANES);
    let mut cr = col_re.chunks_exact(LANES);
    let mut ci = col_im.chunks_exact(LANES);
    for ((a, cr), ci) in (&mut a).zip(&mut cr).zip(&mut ci) {
        for l in 0..LANES {
            let pr = cr[l] * rot.re - ci[l] * rot.im;
            let pi = cr[l] * rot.im + ci[l] * rot.re;
            a[l].re += pr;
            a[l].im += pi;
        }
    }
    for (a, (&re, &im)) in a
        .into_remainder()
        .iter_mut()
        .zip(cr.remainder().iter().zip(ci.remainder()))
    {
        let pr = re * rot.re - im * rot.im;
        let pi = re * rot.im + im * rot.re;
        a.re += pr;
        a.im += pi;
    }
}

/// Adds one split-plane column into an interleaved accumulator, rotated to
/// time `t_s` by the path's Doppler — [`add_rotated`]'s twin over the SoA
/// column layout, with the same exact-zero fast path.
#[inline]
fn add_rotated_split(
    acc: &mut [Complex64],
    col_re: &[f64],
    col_im: &[f64],
    doppler_hz: f64,
    t_s: f64,
    subtract: bool,
) {
    // Exact zeros select the add-verbatim fast path; see add_rotated.
    // press-lint: allow(float-ordering)
    if doppler_hz == 0.0 || t_s == 0.0 {
        if subtract {
            lanes_sub(acc, col_re, col_im);
        } else {
            lanes_add(acc, col_re, col_im);
        }
    } else {
        let rot = Complex64::cis(TAU * doppler_hz * t_s);
        let rot = if subtract { -rot } else { rot };
        lanes_mac(acc, col_re, col_im, rot);
    }
}

/// `dst[k] = base[k] + (col_re[k], col_im[k])` — the fused seed-plus-add
/// the batch prefix stack uses to extend a shared partial row into the
/// next one. One pass instead of copy-then-add, and the single `+` per
/// component is the same operation the in-place [`lanes_add`] performs, so
/// the bits match.
#[inline]
fn lanes_sum(dst: &mut [Complex64], base: &[Complex64], col_re: &[f64], col_im: &[f64]) {
    let mut d = dst.chunks_exact_mut(LANES);
    let mut b = base.chunks_exact(LANES);
    let mut cr = col_re.chunks_exact(LANES);
    let mut ci = col_im.chunks_exact(LANES);
    for (((d, b), cr), ci) in (&mut d).zip(&mut b).zip(&mut cr).zip(&mut ci) {
        for l in 0..LANES {
            d[l].re = b[l].re + cr[l];
            d[l].im = b[l].im + ci[l];
        }
    }
    for ((d, b), (&re, &im)) in d
        .into_remainder()
        .iter_mut()
        .zip(b.remainder())
        .zip(cr.remainder().iter().zip(ci.remainder()))
    {
        d.re = b.re + re;
        d.im = b.im + im;
    }
}

/// `dst[k] = base[k] + (col_re[k], col_im[k])·rot` — the rotated twin of
/// [`lanes_sum`], with [`lanes_mac`]'s exact 4-mult/2-add product order.
#[inline]
fn lanes_sum_mac(
    dst: &mut [Complex64],
    base: &[Complex64],
    col_re: &[f64],
    col_im: &[f64],
    rot: Complex64,
) {
    let mut d = dst.chunks_exact_mut(LANES);
    let mut b = base.chunks_exact(LANES);
    let mut cr = col_re.chunks_exact(LANES);
    let mut ci = col_im.chunks_exact(LANES);
    for (((d, b), cr), ci) in (&mut d).zip(&mut b).zip(&mut cr).zip(&mut ci) {
        for l in 0..LANES {
            let pr = cr[l] * rot.re - ci[l] * rot.im;
            let pi = cr[l] * rot.im + ci[l] * rot.re;
            d[l].re = b[l].re + pr;
            d[l].im = b[l].im + pi;
        }
    }
    for ((d, b), (&re, &im)) in d
        .into_remainder()
        .iter_mut()
        .zip(b.remainder())
        .zip(cr.remainder().iter().zip(ci.remainder()))
    {
        let pr = re * rot.re - im * rot.im;
        let pi = re * rot.im + im * rot.re;
        d.re = b.re + pr;
        d.im = b.im + pi;
    }
}

/// Writes `base + column·rot(t_s)` into `dst` without touching `base` —
/// the batch prefix-stack step, with [`add_rotated`]'s exact-zero fast
/// path.
#[inline]
fn write_rotated_split(
    dst: &mut [Complex64],
    base: &[Complex64],
    col_re: &[f64],
    col_im: &[f64],
    doppler_hz: f64,
    t_s: f64,
) {
    // Exact zeros select the add-verbatim fast path; see add_rotated.
    // press-lint: allow(float-ordering)
    if doppler_hz == 0.0 || t_s == 0.0 {
        lanes_sum(dst, base, col_re, col_im);
    } else {
        let rot = Complex64::cis(TAU * doppler_hz * t_s);
        lanes_sum_mac(dst, base, col_re, col_im, rot);
    }
}

impl LinkBasis {
    /// Builds the basis for a link over an explicit frequency grid.
    ///
    /// Cost: one [`PressArray::element_path`](crate::array::PressArray::element_path)
    /// trace per (element, state) plus `O((L + ΣMᵢ)·K)` `cis()` calls —
    /// paid once, then amortized over every configuration evaluated.
    pub fn build(system: &PressSystem, link: &CachedLink, freqs_hz: &[f64]) -> Self {
        LinkBasis::build_owned(system, link, freqs_hz.to_vec())
    }

    /// As [`build`](Self::build), taking ownership of the grid — the
    /// [`rebuild`](Self::rebuild) path hands its existing allocation back
    /// instead of cloning it.
    pub fn build_owned(system: &PressSystem, link: &CachedLink, freqs_hz: Vec<f64>) -> Self {
        let space = system.array.config_space_passive_only();
        let n_k = freqs_hz.len();
        let mut state_offsets = Vec::with_capacity(space.n_elements());
        let mut n_cols = 0usize;
        for &m in &space.states_per_element {
            state_offsets.push(n_cols);
            n_cols += m;
        }
        let mut col_re = vec![0.0; n_cols * n_k];
        let mut col_im = vec![0.0; n_cols * n_k];
        let mut col_doppler = vec![0.0; n_cols];
        let mut col_present = vec![false; n_cols];
        for (i, &m) in space.states_per_element.iter().enumerate() {
            for s in 0..m {
                if let Some(path) =
                    system
                        .array
                        .element_path(&system.scene, &link.tx, &link.rx, i, s)
                {
                    let col = state_offsets[i] + s;
                    fill_column(
                        &mut col_re[col * n_k..(col + 1) * n_k],
                        &mut col_im[col * n_k..(col + 1) * n_k],
                        &path,
                        &freqs_hz,
                    );
                    col_doppler[col] = path.doppler_hz;
                    col_present[col] = true;
                }
            }
        }
        let (env_static, env_doppler) = build_environment(&link.environment, &freqs_hz);
        LinkBasis {
            freqs_hz,
            env_static,
            env_doppler,
            col_re,
            col_im,
            col_doppler,
            col_present,
            state_offsets,
            space,
            n_k,
            revision: link.revision,
        }
    }

    /// Builds the basis over a numerology's active subcarriers — the grid
    /// [`press_sdr::Sounder::oracle_channel`] evaluates on.
    pub fn for_numerology(system: &PressSystem, link: &CachedLink, num: &Numerology) -> Self {
        LinkBasis::build(system, link, &num.active_freqs_hz())
    }

    /// Rebuilds everything (environment *and* element columns) in place.
    /// Needed after the system itself changes — elements re-programmed,
    /// repositioned, endpoints moved.
    pub fn rebuild(&mut self, system: &PressSystem, link: &CachedLink) {
        *self = LinkBasis::build_owned(system, link, std::mem::take(&mut self.freqs_hz));
    }

    /// Re-derives only the environment response from the link's (drifted)
    /// environment paths. Element columns are untouched — drift perturbs
    /// environment path gains only — so this costs `O(L·K)`, not a full
    /// rebuild.
    pub fn rebuild_environment(&mut self, link: &CachedLink) {
        let (env_static, env_doppler) = build_environment(&link.environment, &self.freqs_hz);
        self.env_static = env_static;
        self.env_doppler = env_doppler;
        self.revision = link.revision;
    }

    /// The [`CachedLink::revision`] this basis reflects.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// True when the basis still matches the link's environment.
    pub fn is_fresh(&self, link: &CachedLink) -> bool {
        self.revision == link.revision
    }

    /// Refreshes the environment response if the link has drifted since the
    /// basis was built. Returns true when a rebuild happened.
    pub fn ensure_fresh(&mut self, link: &CachedLink) -> bool {
        if self.is_fresh(link) {
            false
        } else {
            self.rebuild_environment(link);
            true
        }
    }

    /// The configuration space the basis covers (active elements collapse
    /// to a single state, as in
    /// [`config_space_passive_only`](crate::array::PressArray::config_space_passive_only)).
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The frequency grid, Hz.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// Number of frequency points `K`.
    pub fn n_subcarriers(&self) -> usize {
        self.n_k
    }

    /// The cached t=0 contribution of one (element, state), interleaved
    /// from the split planes into a fresh buffer, or `None` when that
    /// state contributes no path (absorber, below trace floor, element
    /// disabled). Cold path — feeds the inverse-problem dictionary build.
    pub fn column(&self, element: usize, state: usize) -> Option<Vec<Complex64>> {
        assert!(
            state < self.space.states_per_element[element],
            "state out of range"
        );
        let col = self.state_offsets[element] + state;
        if self.col_present[col] {
            let r = col * self.n_k..(col + 1) * self.n_k;
            Some(
                self.col_re[r.clone()]
                    .iter()
                    .zip(&self.col_im[r])
                    .map(|(&re, &im)| Complex64::new(re, im))
                    .collect(),
            )
        } else {
            None
        }
    }

    /// RF coupling of one element to this link: the energy of the
    /// element's strongest state column relative to the static environment
    /// energy, in dB.
    ///
    /// This is the reachability measure campus sharding partitions on — an
    /// element behind a concrete slab contributes tens of dB less than the
    /// environment and can be handed to another shard without moving the
    /// link's score. Returns `-inf` for an element whose every state is
    /// absent (absorber-only, below the trace floor) and `+inf` in the
    /// degenerate zero-environment case where any reachable element
    /// dominates.
    pub fn element_coupling_db(&self, element: usize) -> f64 {
        let mut env_energy = 0.0f64;
        for h in &self.env_static {
            env_energy += h.norm_sqr();
        }
        let m = self.space.states_per_element[element];
        let mut strongest = 0.0f64;
        for s in 0..m {
            let col = self.state_offsets[element] + s;
            if !self.col_present[col] {
                continue;
            }
            let r = col * self.n_k..(col + 1) * self.n_k;
            let mut e = 0.0f64;
            for (&re, &im) in self.col_re[r.clone()].iter().zip(&self.col_im[r]) {
                e += re * re + im * im;
            }
            strongest = strongest.max(e);
        }
        10.0 * (strongest / env_energy).log10()
    }

    /// The environment-only response at elapsed time `t_s` (no element
    /// contribution), into a caller-owned buffer — the inverse problem's
    /// "base" channel.
    pub fn environment_into(&self, t_s: f64, out: &mut Vec<Complex64>) {
        out.clear();
        out.extend_from_slice(&self.env_static);
        for (d, col) in &self.env_doppler {
            add_rotated(out, col, *d, t_s, false);
        }
    }

    /// Synthesizes the channel of a configuration at elapsed time `t_s`
    /// into a caller-owned buffer: `O(N·K)` complex adds, no allocation
    /// beyond the buffer's first growth.
    pub fn synthesize_into(&self, config: &Configuration, t_s: f64, out: &mut Vec<Complex64>) {
        assert_eq!(
            config.len(),
            self.space.n_elements(),
            "configuration/basis size mismatch"
        );
        self.environment_into(t_s, out);
        for (i, &s) in config.states.iter().enumerate() {
            assert!(s < self.space.states_per_element[i], "state out of range");
            let col = self.state_offsets[i] + s;
            if self.col_present[col] {
                let (lo, hi) = (col * self.n_k, (col + 1) * self.n_k);
                add_rotated_split(
                    out,
                    &self.col_re[lo..hi],
                    &self.col_im[lo..hi],
                    self.col_doppler[col],
                    t_s,
                    false,
                );
            }
        }
    }

    /// Synthesizes the channel a *partially applied* actuation produces:
    /// element `i` contributes its `target` column where `applied[i]` and
    /// its `prev` column otherwise — the array the control plane actually
    /// left behind when some set-state commands were lost. Equivalent to
    /// `synthesize_into(&prev.overlay(target, applied), ..)` without
    /// building the merged configuration.
    pub fn synthesize_partial_into(
        &self,
        prev: &Configuration,
        target: &Configuration,
        applied: &[bool],
        t_s: f64,
        out: &mut Vec<Complex64>,
    ) {
        assert_eq!(
            prev.len(),
            self.space.n_elements(),
            "configuration/basis size mismatch"
        );
        assert_eq!(target.len(), prev.len(), "configuration lengths differ");
        assert_eq!(applied.len(), prev.len(), "applied mask length differs");
        self.environment_into(t_s, out);
        for (i, &done) in applied.iter().enumerate() {
            let s = if done {
                target.states[i]
            } else {
                prev.states[i]
            };
            assert!(s < self.space.states_per_element[i], "state out of range");
            let col = self.state_offsets[i] + s;
            if self.col_present[col] {
                let (lo, hi) = (col * self.n_k, (col + 1) * self.n_k);
                add_rotated_split(
                    out,
                    &self.col_re[lo..hi],
                    &self.col_im[lo..hi],
                    self.col_doppler[col],
                    t_s,
                    false,
                );
            }
        }
    }

    /// Allocating convenience wrapper over
    /// [`synthesize_into`](Self::synthesize_into).
    pub fn synthesize(&self, config: &Configuration, t_s: f64) -> Vec<Complex64> {
        let mut out = Vec::with_capacity(self.n_k);
        self.synthesize_into(config, t_s, &mut out);
        out
    }

    /// Updates a synthesized channel in place for a single-coordinate move
    /// `element: old_state → new_state`: subtract the old column, add the
    /// new one. O(K) — the incremental step behind greedy sweeps, hill
    /// climbing and annealing.
    pub fn apply_move(
        &self,
        h: &mut [Complex64],
        element: usize,
        old_state: usize,
        new_state: usize,
        t_s: f64,
    ) {
        assert_eq!(h.len(), self.n_k, "channel buffer length mismatch");
        if old_state == new_state {
            return;
        }
        let old_col = self.state_offsets[element] + old_state;
        let new_col = self.state_offsets[element] + new_state;
        if self.col_present[old_col] {
            let r = old_col * self.n_k..(old_col + 1) * self.n_k;
            add_rotated_split(
                h,
                &self.col_re[r.clone()],
                &self.col_im[r],
                self.col_doppler[old_col],
                t_s,
                true,
            );
        }
        if self.col_present[new_col] {
            let r = new_col * self.n_k..(new_col + 1) * self.n_k;
            add_rotated_split(
                h,
                &self.col_re[r.clone()],
                &self.col_im[r],
                self.col_doppler[new_col],
                t_s,
                false,
            );
        }
    }
}

/// Fills one column's split planes with a path's t=0 response over the
/// grid.
fn fill_column(out_re: &mut [f64], out_im: &mut [f64], path: &SignalPath, freqs_hz: &[f64]) {
    for ((re, im), &f) in out_re.iter_mut().zip(out_im.iter_mut()).zip(freqs_hz) {
        let r = path.response_at(f, 0.0);
        *re = r.re;
        *im = r.im;
    }
}

/// Splits the environment into the static partial sum (accumulated in path
/// order, so zero-Doppler scenes reproduce the direct sum bit-for-bit) and
/// one column per Doppler-shifted path.
fn build_environment(
    environment: &[SignalPath],
    freqs_hz: &[f64],
) -> (Vec<Complex64>, Vec<(f64, Vec<Complex64>)>) {
    let mut env_static = vec![Complex64::ZERO; freqs_hz.len()];
    let mut env_doppler = Vec::new();
    for p in environment {
        // Exactly-static paths fold into the precomputed sum; any nonzero
        // Doppler, however small, must rotate analytically instead.
        // press-lint: allow(float-ordering)
        if p.doppler_hz == 0.0 {
            for (h, &f) in env_static.iter_mut().zip(freqs_hz) {
                *h += p.response_at(f, 0.0);
            }
        } else {
            let col = freqs_hz.iter().map(|&f| p.response_at(f, 0.0)).collect();
            env_doppler.push((p.doppler_hz, col));
        }
    }
    (env_static, env_doppler)
}

/// If `b` differs from `a` in exactly one coordinate, returns
/// `(element, b's state)`.
fn single_move(a: &Configuration, b: &Configuration) -> Option<(usize, usize)> {
    if a.len() != b.len() {
        return None;
    }
    let mut found = None;
    for (i, (&sa, &sb)) in a.states.iter().zip(&b.states).enumerate() {
        if sa != sb {
            if found.is_some() {
                return None;
            }
            found = Some((i, sb));
        }
    }
    found
}

/// A stateful configuration scorer over a [`LinkBasis`]: synthesizes the
/// channel allocation-free and feeds it to a metric closure
/// `FnMut(&[Complex64]) -> f64`.
///
/// The evaluator remembers the last two (configuration, channel) pairs it
/// produced. Search loops that probe single-coordinate moves off a base —
/// greedy sweeps, hill climbing, simulated annealing — therefore hit the
/// O(K) [`LinkBasis::apply_move`] path automatically: a probe one move
/// away from the base updates incrementally, and when the search *commits*
/// a probe (its next probes depart from it), the buffers swap in O(1). Any
/// other configuration falls back to a full O(N·K) synthesis, so the
/// evaluator is a drop-in `FnMut(&Configuration) -> f64` (via
/// [`evaluate`](Self::evaluate)) for every search algorithm.
#[derive(Debug)]
pub struct BasisEvaluator<'a, F> {
    basis: &'a LinkBasis,
    metric: F,
    t_s: f64,
    incremental: bool,
    current: Option<Configuration>,
    current_h: Vec<Complex64>,
    pending: Option<Configuration>,
    pending_h: Vec<Complex64>,
    evaluations: usize,
    full_syntheses: usize,
}

impl<'a, F: FnMut(&[Complex64]) -> f64> BasisEvaluator<'a, F> {
    /// Creates an evaluator at elapsed time `t_s` with the incremental
    /// move fast path enabled.
    pub fn new(basis: &'a LinkBasis, t_s: f64, metric: F) -> Self {
        BasisEvaluator {
            basis,
            metric,
            t_s,
            incremental: true,
            current: None,
            current_h: Vec::with_capacity(basis.n_subcarriers()),
            pending: None,
            pending_h: Vec::with_capacity(basis.n_subcarriers()),
            evaluations: 0,
            full_syntheses: 0,
        }
    }

    /// Creates an evaluator that always synthesizes from scratch (still
    /// allocation-free O(N·K), just no O(K) move shortcut).
    ///
    /// The incremental path's floating-point result depends (at the last-ulp
    /// level) on the *sequence* of configurations evaluated; exact mode is
    /// history-independent, which the parallel sweeps rely on for
    /// thread-count-invariant results.
    pub fn exact(basis: &'a LinkBasis, t_s: f64, metric: F) -> Self {
        let mut e = BasisEvaluator::new(basis, t_s, metric);
        e.incremental = false;
        e
    }

    /// Scores one configuration (see the type docs for the incremental
    /// fast paths).
    pub fn evaluate(&mut self, config: &Configuration) -> f64 {
        self.evaluations += 1;
        if !self.incremental {
            self.full_syntheses += 1;
            self.basis
                .synthesize_into(config, self.t_s, &mut self.current_h);
            return (self.metric)(&self.current_h);
        }
        // The probe we produced last time became the new base: swap, O(1).
        if self.pending.as_deref_states() == Some(&config.states) {
            std::mem::swap(&mut self.current, &mut self.pending);
            std::mem::swap(&mut self.current_h, &mut self.pending_h);
            self.pending = None;
            return (self.metric)(&self.current_h);
        }
        if self.current.as_deref_states() == Some(&config.states) {
            return (self.metric)(&self.current_h);
        }
        // One move off the base: incremental O(K) update into the probe
        // buffer, leaving the base intact for sibling probes.
        if let Some(cur) = &self.current {
            if let Some((i, s_new)) = single_move(cur, config) {
                let s_old = cur.states[i];
                self.pending_h.clear();
                self.pending_h.extend_from_slice(&self.current_h);
                self.basis
                    .apply_move(&mut self.pending_h, i, s_old, s_new, self.t_s);
                self.pending = Some(config.clone());
                return (self.metric)(&self.pending_h);
            }
        }
        // One move off the last probe (annealing accepts without
        // re-evaluating): commit the probe as the new base, then move.
        if let Some(pend) = self.pending.take() {
            if let Some((i, s_new)) = single_move(&pend, config) {
                std::mem::swap(&mut self.current_h, &mut self.pending_h);
                let s_old = pend.states[i];
                self.current = Some(pend);
                self.pending_h.clear();
                self.pending_h.extend_from_slice(&self.current_h);
                self.basis
                    .apply_move(&mut self.pending_h, i, s_old, s_new, self.t_s);
                self.pending = Some(config.clone());
                return (self.metric)(&self.pending_h);
            }
        }
        // Anywhere else in the space: full O(N·K) synthesis becomes the
        // new base.
        self.full_syntheses += 1;
        self.basis
            .synthesize_into(config, self.t_s, &mut self.current_h);
        self.current = Some(config.clone());
        self.pending = None;
        (self.metric)(&self.current_h)
    }

    /// Total configurations scored.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// How many of them needed a full synthesis (the rest were O(K)
    /// incremental or O(1) cache hits).
    pub fn full_syntheses(&self) -> usize {
        self.full_syntheses
    }

    /// Moves the evaluator to a new elapsed time, dropping cached channels
    /// (they are only valid at the time they were synthesized for).
    pub fn set_time(&mut self, t_s: f64) {
        if t_s != self.t_s {
            self.t_s = t_s;
            self.current = None;
            self.pending = None;
        }
    }
}

/// Tiny helper so the hot path compares configurations without constructing
/// anything: `Option<Configuration> → Option<&[usize]>`.
trait AsStates {
    fn as_deref_states(&self) -> Option<&[usize]>;
}

impl AsStates for Option<Configuration> {
    fn as_deref_states(&self) -> Option<&[usize]> {
        self.as_ref().map(|c| c.states.as_slice())
    }
}

/// Scores a whole batch of candidate configurations through a shared
/// prefix stack — the throughput path behind batched exhaustive sweeps
/// and genetic generations.
///
/// Candidates are visited in lexicographic state order, and the evaluator
/// keeps one partial row per element depth: row `d` holds `env +
/// col(0, s₀) + … + col(d-1, s_{d-1})` for the prefix currently on the
/// stack. Consecutive candidates in sorted order share their longest
/// common prefix, so each shared prefix row is computed exactly once and
/// only the `N - prefix` differing columns are re-accumulated per
/// candidate; exact duplicates reuse the previous score outright. A batch
/// drawn from a contiguous exhaustive sweep re-accumulates ~`M/(M-1)`
/// columns per candidate instead of `N`.
///
/// Each candidate's value is still built by exactly the scalar chain —
/// environment first, then elements `0..N` in order, with the same
/// fused-add bit pattern — and the lane kernels have no cross-lane
/// reduction, so every score is **bitwise identical** to scoring that
/// candidate alone through [`LinkBasis::synthesize_into`] (enforced by
/// unit test and proptest). The only observable difference is the order
/// (and, for duplicates, the count) of metric invocations, so the metric
/// must be a pure function of the channel it is handed.
///
/// All buffers are owned by the evaluator and reused across calls: after
/// the first batch of a given shape, scoring allocates nothing.
#[derive(Debug)]
pub struct BatchEvaluator<'a> {
    basis: &'a LinkBasis,
    env: Vec<Complex64>,
    /// `(N + 1) × K` interleaved rows; row `d` is the depth-`d` prefix sum.
    partials: Vec<Complex64>,
    /// Candidate visit order (indices into the batch), lexicographic —
    /// only populated on the wide-space fallback path.
    order: Vec<u32>,
    /// Sorted `(packed states << 32) | batch index` keys when a candidate
    /// packs into 32 bits; one `u64` sort then drives both the visit order
    /// and the common-prefix computation (by XOR of adjacent keys) without
    /// ever touching the state slices again.
    keys: Vec<u64>,
    /// Counting-sort bucket offsets over the packed-state domain.
    counts: Vec<u32>,
    /// Counting-sort scatter target, swapped with `keys`.
    sorted: Vec<u64>,
}

impl<'a> BatchEvaluator<'a> {
    /// A batch evaluator over one basis. Buffers grow to the largest batch
    /// scored and are reused from then on.
    pub fn new(basis: &'a LinkBasis) -> Self {
        BatchEvaluator {
            basis,
            env: Vec::with_capacity(basis.n_subcarriers()),
            partials: Vec::new(),
            order: Vec::new(),
            keys: Vec::new(),
            counts: Vec::new(),
            sorted: Vec::new(),
        }
    }

    /// Bits per element state when packing a whole candidate into the high
    /// 32 bits of a combined sort key, or `None` when the space is too wide
    /// and sorting must fall back to slice comparison.
    fn pack_bits(&self) -> Option<u32> {
        let bits = self
            .basis
            .space
            .states_per_element
            .iter()
            .map(|&m| (usize::BITS - m.saturating_sub(1).leading_zeros()).max(1))
            .max()
            .unwrap_or(1);
        (bits as usize * self.basis.space.n_elements() <= 32).then_some(bits)
    }

    /// Synthesizes every candidate's channel at elapsed time `t_s` and
    /// writes `metric(H_c)` per candidate to `out` (cleared first; output
    /// order matches `configs` order). Metric invocation order follows the
    /// internal lexicographic visit order, and duplicate configurations
    /// share one invocation.
    pub fn scores_into<F>(
        &mut self,
        configs: &[Configuration],
        t_s: f64,
        metric: &mut F,
        out: &mut Vec<f64>,
    ) where
        F: FnMut(&[Complex64]) -> f64,
    {
        out.clear();
        if configs.is_empty() {
            return;
        }
        let k = self.basis.n_k;
        let n = self.basis.space.n_elements();
        assert!(configs.len() <= u32::MAX as usize, "batch too large");
        let pack_bits = self.pack_bits();
        match pack_bits {
            Some(bits) => {
                // Validation rides along with key packing: one walk over
                // each candidate's states builds the combined key.
                self.keys.clear();
                self.keys.extend(configs.iter().enumerate().map(|(i, c)| {
                    assert_eq!(c.len(), n, "configuration/basis size mismatch");
                    let packed = c
                        .states
                        .iter()
                        .zip(&self.basis.space.states_per_element)
                        .fold(0u64, |key, (&s, &m)| {
                            assert!(s < m, "state out of range");
                            (key << bits) | s as u64
                        });
                    (packed << 32) | i as u64
                }));
                let total_bits = bits as usize * n;
                if total_bits <= 13 && (1usize << total_bits) <= 4 * self.keys.len() {
                    // Dense enough for a counting sort over the packed-state
                    // domain: the batch is re-sorted on every call, so the
                    // O(K + 2^bits) stable scatter beats the comparison sort
                    // on the hot sweep shapes. Stability keeps ties in batch
                    // order — the same total order `sort_unstable` produces,
                    // since the low index bits make every key distinct.
                    self.counts.clear();
                    self.counts.resize(1usize << total_bits, 0);
                    for &key in &self.keys {
                        self.counts[(key >> 32) as usize] += 1;
                    }
                    let mut run = 0u32;
                    for c in &mut self.counts {
                        run += std::mem::replace(c, run);
                    }
                    self.sorted.clear();
                    self.sorted.resize(self.keys.len(), 0);
                    for &key in &self.keys {
                        let bucket = (key >> 32) as usize;
                        self.sorted[self.counts[bucket] as usize] = key;
                        self.counts[bucket] += 1;
                    }
                    std::mem::swap(&mut self.keys, &mut self.sorted);
                } else {
                    self.keys.sort_unstable();
                }
            }
            None => {
                for config in configs {
                    assert_eq!(config.len(), n, "configuration/basis size mismatch");
                    for (i, &s) in config.states.iter().enumerate() {
                        assert!(
                            s < self.basis.space.states_per_element[i],
                            "state out of range"
                        );
                    }
                }
                self.order.clear();
                self.order.extend(0..configs.len() as u32);
                self.order.sort_unstable_by(|&a, &b| {
                    configs[a as usize]
                        .states
                        .cmp(&configs[b as usize].states)
                        .then(a.cmp(&b))
                });
            }
        }
        // Row 0 of the prefix stack is the shared environment response.
        self.basis.environment_into(t_s, &mut self.env);
        self.partials.resize((n + 1) * k, Complex64::new(0.0, 0.0));
        self.partials[..k].copy_from_slice(&self.env);
        out.resize(configs.len(), 0.0);
        let mut prev_states: Option<&[usize]> = None;
        let mut last = 0.0f64;
        for j in 0..configs.len() {
            // Batch index of the j-th candidate in visit order, and the
            // length of the prefix it shares with its predecessor — from
            // one XOR on adjacent keys (the highest differing bit locates
            // the first differing element), or a state-slice walk on the
            // wide-space fallback path.
            let (oi, cp) = match pack_bits {
                Some(bits) => {
                    let key = self.keys[j];
                    let oi = (key & 0xFFFF_FFFF) as usize;
                    let cp = if j == 0 {
                        0
                    } else {
                        let xor = (self.keys[j - 1] ^ key) >> 32;
                        if xor == 0 {
                            n
                        } else {
                            n - 1 - ((63 - xor.leading_zeros()) / bits) as usize
                        }
                    };
                    (oi, cp)
                }
                None => {
                    let oi = self.order[j] as usize;
                    let cp = match prev_states {
                        Some(prev) => prev
                            .iter()
                            .zip(&configs[oi].states)
                            .take_while(|(a, b)| a == b)
                            .count(),
                        None => 0,
                    };
                    (oi, cp)
                }
            };
            if cp == n {
                // Exact duplicate of the previous candidate.
                out[oi] = last;
                continue;
            }
            let states = configs[oi].states.as_slice();
            // Rebuild only the rows below the shared prefix, in scalar
            // accumulation order.
            for d in cp..n {
                let (lo, hi) = self.partials.split_at_mut((d + 1) * k);
                let base = &lo[d * k..];
                let dst = &mut hi[..k];
                let col = self.basis.state_offsets[d] + states[d];
                if self.basis.col_present[col] {
                    let (lo, hi) = (col * k, (col + 1) * k);
                    write_rotated_split(
                        dst,
                        base,
                        &self.basis.col_re[lo..hi],
                        &self.basis.col_im[lo..hi],
                        self.basis.col_doppler[col],
                        t_s,
                    );
                } else {
                    dst.copy_from_slice(base);
                }
            }
            last = metric(&self.partials[n * k..(n + 1) * k]);
            out[oi] = last;
            prev_states = Some(states);
        }
    }

    /// Allocating convenience wrapper over
    /// [`scores_into`](Self::scores_into).
    pub fn scores<F>(&mut self, configs: &[Configuration], t_s: f64, metric: &mut F) -> Vec<f64>
    where
        F: FnMut(&[Complex64]) -> f64,
    {
        let mut out = Vec::with_capacity(configs.len());
        self.scores_into(configs, t_s, metric, &mut out);
        out
    }
}

/// A reusable, allocation-free metric turning a synthesized channel into a
/// [`LinkObjective`] score — the basis-side equivalent of
/// `objective.score(&sounder.oracle_snr(&paths, t))`.
pub fn snr_metric(params: SnrParams, objective: LinkObjective) -> impl FnMut(&[Complex64]) -> f64 {
    let mut profile = SnrProfile::new(Vec::new());
    move |h| {
        params.profile_into(h, &mut profile.snr_db);
        objective.score(&profile)
    }
}

/// Worst-subcarrier channel magnitude, dB — the raw link-quality metric the
/// large-space search ablations use when no link budget is in play.
///
/// Selects the worst subcarrier by squared magnitude — `sqrt` and `log10`
/// are monotone, so the minimum in `|H|²` is the minimum in dB — and pays
/// the `hypot`/`log10` pair once per call instead of once per subcarrier.
pub fn min_magnitude_db_metric() -> impl FnMut(&[Complex64]) -> f64 {
    |h: &[Complex64]| {
        let mut min_ns = f64::INFINITY;
        let mut min_hk = None;
        for &hk in h {
            let ns = hk.norm_sqr();
            // press-lint: allow(float-ordering)
            if ns < min_ns {
                min_ns = ns;
                min_hk = Some(hk);
            }
        }
        match min_hk {
            Some(hk) => 20.0 * hk.abs().max(1e-30).log10(),
            None => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_propagation::path::frequency_response;
    use press_propagation::scene::RadioNode;
    use press_propagation::{Material, Scene, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PressSystem, CachedLink, Vec<f64>) {
        let scene = Scene::shoebox(WIFI_CHANNEL_11_HZ, 6.0, 5.0, 3.0, Material::DRYWALL);
        let lambda = scene.wavelength();
        let array = PressArray::paper_passive(
            &[
                Vec3::new(2.5, 1.5, 1.5),
                Vec3::new(3.0, 3.5, 1.5),
                Vec3::new(3.5, 2.0, 1.5),
            ],
            lambda,
        );
        let system = PressSystem::new(scene, array);
        let tx = RadioNode::omni_at(Vec3::new(1.5, 2.0, 1.5));
        let rx = RadioNode::omni_at(Vec3::new(4.5, 3.0, 1.5));
        let link = CachedLink::trace(&system, tx, rx);
        let freqs: Vec<f64> = (0..52)
            .map(|k| WIFI_CHANNEL_11_HZ + (k as f64 - 26.0) * 312_500.0)
            .collect();
        (system, link, freqs)
    }

    #[test]
    fn synthesis_matches_direct_bit_for_bit_when_static() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        for cfg in basis.space().clone().iter() {
            let direct = frequency_response(&link.paths(&system, &cfg), &freqs, 0.0);
            let fast = basis.synthesize(&cfg, 0.0);
            assert_eq!(direct, fast, "config {:?}", cfg.states);
        }
    }

    #[test]
    fn static_scene_is_time_invariant_like_direct() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let cfg = Configuration::new(vec![2, 0, 1]);
        let direct = frequency_response(&link.paths(&system, &cfg), &freqs, 17.5);
        let fast = basis.synthesize(&cfg, 17.5);
        assert_eq!(direct, fast);
    }

    #[test]
    fn doppler_columns_rotate_analytically() {
        let (system, mut link, freqs) = setup();
        for (i, p) in link.environment.iter_mut().enumerate() {
            p.doppler_hz = 3.0 + i as f64;
        }
        link.mark_dirty();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let cfg = Configuration::new(vec![1, 3, 2]);
        let t = 0.37;
        let direct = frequency_response(&link.paths(&system, &cfg), &freqs, t);
        let fast = basis.synthesize(&cfg, t);
        for (d, f) in direct.iter().zip(&fast) {
            assert!((*d - *f).abs() <= 1e-9 * d.abs().max(1.0), "{d:?} vs {f:?}");
        }
    }

    #[test]
    fn apply_move_matches_full_synthesis() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let mut h = basis.synthesize(&Configuration::new(vec![0, 0, 0]), 0.0);
        basis.apply_move(&mut h, 1, 0, 3, 0.0);
        basis.apply_move(&mut h, 0, 0, 2, 0.0);
        let full = basis.synthesize(&Configuration::new(vec![2, 3, 0]), 0.0);
        for (a, b) in h.iter().zip(&full) {
            assert!((*a - *b).abs() <= 1e-12 * b.abs().max(1.0));
        }
    }

    #[test]
    fn partial_synthesis_matches_overlay_bit_for_bit() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let prev = Configuration::new(vec![0, 2, 1]);
        let target = Configuration::new(vec![3, 1, 1]);
        for mask in [
            [true, true, true],
            [false, false, false],
            [true, false, true],
        ] {
            let mut partial = Vec::new();
            basis.synthesize_partial_into(&prev, &target, &mask, 0.0, &mut partial);
            let merged = basis.synthesize(&prev.overlay(&target, &mask), 0.0);
            assert_eq!(partial, merged, "mask {mask:?}");
        }
    }

    #[test]
    fn drift_invalidates_and_rebuild_refreshes() {
        let (system, mut link, freqs) = setup();
        let mut basis = LinkBasis::build(&system, &link, &freqs);
        let cfg = Configuration::new(vec![3, 1, 0]);
        let before = basis.synthesize(&cfg, 0.0);
        let drift = press_propagation::fading::ChannelDrift::quiet_lab();
        let mut rng = StdRng::seed_from_u64(5);
        link.apply_drift(&drift, &mut rng);
        assert!(!basis.is_fresh(&link), "drift must mark the basis stale");
        // Stale basis still returns the old response...
        assert_eq!(basis.synthesize(&cfg, 0.0), before);
        // ...and refreshing re-derives the drifted one exactly.
        assert!(basis.ensure_fresh(&link));
        let direct = frequency_response(&link.paths(&system, &cfg), &freqs, 0.0);
        assert_eq!(basis.synthesize(&cfg, 0.0), direct);
        assert!(!basis.ensure_fresh(&link), "second refresh is a no-op");
    }

    #[test]
    fn evaluator_incremental_probes_match_full_synthesis() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let mut eval = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
        // A greedy-like probe pattern: base, then single moves, then commit.
        let base = Configuration::zeros(3);
        let s0 = eval.evaluate(&base);
        let mut probe = base.clone();
        probe.states[1] = 2;
        let s1 = eval.evaluate(&probe);
        let s1_again = eval.evaluate(&probe); // commit: O(1) swap
        assert_eq!(s1, s1_again);
        // Reference scores from scratch evaluators.
        let mut fresh = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
        assert_eq!(s0, fresh.evaluate(&base));
        let mut fresh2 = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
        assert_eq!(s1, fresh2.evaluate(&probe));
        assert_eq!(eval.evaluations(), 3);
        assert_eq!(
            eval.full_syntheses(),
            1,
            "only the base paid full synthesis"
        );
    }

    #[test]
    fn evaluator_annealing_chain_stays_incremental() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let mut eval = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
        // Accepted-move chain: each config is one move off the previous
        // *probe*, never re-evaluated — the annealing accept pattern.
        let mut c = Configuration::zeros(3);
        let mut scores = Vec::new();
        scores.push(eval.evaluate(&c));
        for (i, s) in [(0usize, 1usize), (2, 3), (1, 2), (0, 3), (2, 1)] {
            c.states[i] = s;
            scores.push(eval.evaluate(&c));
        }
        assert_eq!(eval.full_syntheses(), 1, "chain must stay incremental");
        // Every score must match a from-scratch synthesis.
        let mut replay = Configuration::zeros(3);
        let check = |cfg: &Configuration| {
            let mut e = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
            e.evaluate(cfg)
        };
        let mut idx = 0;
        assert!((scores[idx] - check(&replay)).abs() < 1e-9);
        for (i, s) in [(0usize, 1usize), (2, 3), (1, 2), (0, 3), (2, 1)] {
            replay.states[i] = s;
            idx += 1;
            assert!((scores[idx] - check(&replay)).abs() < 1e-9);
        }
    }

    #[test]
    fn snr_metric_matches_oracle_scoring() {
        use press_phy::Numerology;
        use press_sdr::{SdrRadio, Sounder};
        let (system, link, _) = setup();
        let sounder = Sounder::new(
            Numerology::wifi20(WIFI_CHANNEL_11_HZ),
            SdrRadio::warp(link.tx.clone()),
            SdrRadio::warp(link.rx.clone()),
        );
        let basis = LinkBasis::for_numerology(&system, &link, &sounder.num);
        let mut metric = snr_metric(sounder.snr_params(), LinkObjective::MaxMinSnr);
        for cfg in [Configuration::zeros(3), Configuration::new(vec![3, 1, 2])] {
            let direct = LinkObjective::MaxMinSnr
                .score(&sounder.oracle_snr(&link.paths(&system, &cfg), 0.0));
            let fast = metric(&basis.synthesize(&cfg, 0.0));
            assert_eq!(direct, fast);
        }
    }

    #[test]
    fn batch_scores_match_scalar_bitwise_across_batch_sizes() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let all: Vec<Configuration> = basis.space().clone().iter().collect();
        // Scalar reference: per-candidate synthesize_into + metric.
        let mut metric = min_magnitude_db_metric();
        let mut h = Vec::new();
        let reference: Vec<f64> = all
            .iter()
            .map(|c| {
                basis.synthesize_into(c, 0.0, &mut h);
                metric(&h)
            })
            .collect();
        let mut batch = BatchEvaluator::new(&basis);
        for chunk_len in [1usize, 3, 7, 64] {
            let mut got = Vec::new();
            let mut scores = Vec::new();
            for chunk in all.chunks(chunk_len) {
                batch.scores_into(chunk, 0.0, &mut min_magnitude_db_metric(), &mut scores);
                got.extend_from_slice(&scores);
            }
            assert_eq!(got, reference, "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn batch_scores_match_scalar_bitwise_under_doppler() {
        let (system, mut link, freqs) = setup();
        for (i, p) in link.environment.iter_mut().enumerate() {
            p.doppler_hz = 2.0 + i as f64;
        }
        link.mark_dirty();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let all: Vec<Configuration> = basis.space().clone().iter().collect();
        let t = 0.41;
        let mut metric = min_magnitude_db_metric();
        let mut h = Vec::new();
        let reference: Vec<f64> = all
            .iter()
            .map(|c| {
                basis.synthesize_into(c, t, &mut h);
                metric(&h)
            })
            .collect();
        let mut batch = BatchEvaluator::new(&basis);
        let got = batch.scores(&all, t, &mut min_magnitude_db_metric());
        assert_eq!(got, reference);
    }

    #[test]
    fn batch_channels_match_scalar_channels_bitwise() {
        // Down to the synthesized channel itself, not just the score: feed
        // a metric that captures every H it sees. Invocation order is the
        // evaluator's internal (lexicographic) order, so match channels by
        // content rather than position.
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let configs: Vec<Configuration> = (0..64)
            .step_by(5)
            .map(|i| basis.space().config_at(i))
            .collect();
        let mut captured: Vec<Vec<Complex64>> = Vec::new();
        let mut batch = BatchEvaluator::new(&basis);
        let mut capture = |h: &[Complex64]| {
            captured.push(h.to_vec());
            0.0
        };
        batch.scores(&configs, 0.0, &mut capture);
        assert_eq!(captured.len(), configs.len(), "distinct configs, no dedup");
        for c in &configs {
            let want = basis.synthesize(c, 0.0);
            assert!(
                captured.contains(&want),
                "missing channel for config {:?}",
                c.states
            );
        }
    }

    #[test]
    fn batch_dedups_exact_duplicates_and_scores_them_identically() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        let a = basis.space().config_at(17);
        let b = basis.space().config_at(42);
        let configs = vec![a.clone(), b.clone(), a.clone(), a.clone(), b.clone()];
        let mut calls = 0usize;
        let mut metric = min_magnitude_db_metric();
        let mut batch = BatchEvaluator::new(&basis);
        let mut counting = |h: &[Complex64]| {
            calls += 1;
            metric(h)
        };
        let got = batch.scores(&configs, 0.0, &mut counting);
        assert_eq!(calls, 2, "two distinct configs → two metric calls");
        assert_eq!(got[0], got[2]);
        assert_eq!(got[0], got[3]);
        assert_eq!(got[1], got[4]);
        let mut scalar_metric = min_magnitude_db_metric();
        let mut h = Vec::new();
        basis.synthesize_into(&a, 0.0, &mut h);
        assert_eq!(got[0], scalar_metric(&h));
        basis.synthesize_into(&b, 0.0, &mut h);
        assert_eq!(got[1], scalar_metric(&h));
    }

    #[test]
    fn columns_are_the_per_element_path_responses() {
        let (system, link, freqs) = setup();
        let basis = LinkBasis::build(&system, &link, &freqs);
        for i in 0..3 {
            for s in 0..4 {
                let path = system
                    .array
                    .element_path(&system.scene, &link.tx, &link.rx, i, s);
                match (basis.column(i, s), path) {
                    (Some(col), Some(p)) => {
                        for (c, &f) in col.iter().zip(&freqs) {
                            assert_eq!(*c, p.response_at(f, 0.0));
                        }
                    }
                    (None, None) => {}
                    (col, p) => panic!(
                        "column presence mismatch at ({i},{s}): basis {:?} vs trace {:?}",
                        col.is_some(),
                        p.is_some()
                    ),
                }
            }
        }
    }
}
