//! The closed-loop PRESS controller.
//!
//! §2 of the paper lists the three actuation tasks: (1) gather channel
//! information, (2) navigate the configuration space quickly, (3) apply the
//! chosen configuration — all "during the channel coherence time", and
//! ideally on packet-level timescales of one to two milliseconds. The
//! [`Controller`] here runs that loop against the simulated system, charging
//! wall-clock cost for every measurement, computation and actuation so the
//! coherence budget is a real constraint, not an aspiration.

use crate::basis::LinkBasis;
use crate::config::Configuration;
use crate::objective::LinkObjective;
use crate::search;
use crate::space::{LinkId, SmartSpace};
use crate::system::{CachedLink, PressSystem};
use press_control::{
    actuate_traced, simulate_actuation_traced, AckPolicy, ControlMetrics, DesConfig, FaultPlan,
    SpaceMetrics, Transport,
};
use press_math::Complex64;
use press_sdr::Sounder;
use press_trace::{Event, EventKind, Phase, TraceSink, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::Cell;

/// Wall-clock cost model of the control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Cost of one channel measurement (frame airtime + CSI processing +
    /// feedback to the controller), seconds.
    pub measurement_s: f64,
    /// Cost of actuating one array configuration over the control plane,
    /// seconds.
    pub actuation_s: f64,
    /// Controller compute per candidate evaluated, seconds.
    pub compute_per_eval_s: f64,
}

impl TimingModel {
    /// The paper's prototype: ~78 ms per measured configuration (5 s / 64),
    /// with actuation folded into that figure.
    pub fn paper_prototype() -> TimingModel {
        TimingModel {
            measurement_s: 5.0 / 64.0,
            actuation_s: 0.0,
            compute_per_eval_s: 1e-5,
        }
    }

    /// A production-grade target: per-packet sounding (~100 µs), 1 ms-class
    /// control-plane actuation, microsecond compute.
    pub fn fast_control_plane() -> TimingModel {
        TimingModel {
            measurement_s: 100e-6,
            actuation_s: 1e-3,
            compute_per_eval_s: 1e-6,
        }
    }
}

/// Which search strategy the controller runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Measure every configuration (only feasible for small arrays).
    Exhaustive,
    /// Greedy coordinate descent with the given sweep limit.
    Greedy {
        /// Maximum sweeps.
        max_sweeps: usize,
    },
    /// Random sampling with a fixed measurement budget.
    Random {
        /// Number of configurations measured.
        budget: usize,
    },
    /// Simulated annealing with the given measurement budget.
    Annealing {
        /// Number of configurations measured.
        budget: usize,
    },
}

impl Strategy {
    /// Stable lowercase label used in trace events and convergence CSVs.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::Greedy { .. } => "greedy",
            Strategy::Random { .. } => "random",
            Strategy::Annealing { .. } => "annealing",
        }
    }
}

/// Transport-backed actuation settings for [`ActuationMode::Transport`]:
/// the chosen configuration is driven over a real control-plane transport
/// with the round-based [`press_control::actuate_with`] model, and elements the protocol
/// could not reach stay at their previous switch state.
#[derive(Debug, Clone)]
pub struct TransportActuation {
    /// The control channel.
    pub transport: Transport,
    /// Acknowledgement / retransmission policy.
    pub policy: AckPolicy,
    /// Worst-case controller-element range, meters.
    pub distance_m: f64,
    /// Fault injection (burst loss, dead/stuck elements). Cloned per
    /// episode so burst-chain state does not leak between episodes.
    pub faults: FaultPlan,
}

impl TransportActuation {
    /// A clean wired control bus with per-element acks.
    pub fn wired() -> TransportActuation {
        TransportActuation {
            transport: Transport::wired(),
            policy: AckPolicy::PerElement { max_retries: 4 },
            distance_m: 15.0,
            faults: FaultPlan::none(),
        }
    }

    /// A low-rate ISM radio with adaptive retry.
    pub fn ism() -> TransportActuation {
        TransportActuation {
            transport: Transport::ism(),
            policy: AckPolicy::Adaptive {
                max_retries: 6,
                batch_cap: 16,
            },
            distance_m: 15.0,
            faults: FaultPlan::none(),
        }
    }
}

/// Discrete-event-simulated actuation settings for [`ActuationMode::Des`].
#[derive(Debug, Clone)]
pub struct DesActuation {
    /// The control channel.
    pub transport: Transport,
    /// Simulator parameters (timeouts, backoff, attempt budget).
    pub cfg: DesConfig,
    /// Fault injection, cloned per episode.
    pub faults: FaultPlan,
}

/// How [`Controller::run_episode`] applies configurations to the array.
#[derive(Debug, Clone)]
pub enum ActuationMode {
    /// Instant, perfect actuation charged at the flat
    /// [`TimingModel::actuation_s`] cost — the historical behavior, and
    /// bit-identical to it.
    Oracle,
    /// Drive the round-based [`press_control::actuate_with`] protocol over a transport;
    /// completion time is charged as measured and unreached elements stay
    /// at their previous state.
    Transport(TransportActuation),
    /// Drive the discrete-event simulator ([`press_control::simulate_actuation_with`])
    /// instead of the round model.
    Des(DesActuation),
}

/// Post-mortem captured when a *traced* episode reverts: the flight
/// recorder's last events (wall-clock stripped) plus the configuration the
/// search wanted and the one the control plane actually produced.
///
/// Only the traced entry points with a live flight recorder populate this —
/// the silent paths run a capacity-0 recorder and leave the field `None`,
/// so instrumented-vs-bare bitwise comparisons still hold.
#[derive(Debug, Clone, PartialEq)]
pub struct PostMortem {
    /// The flight recorder's snapshot at the moment of the revert,
    /// oldest event first.
    pub events: Vec<Event>,
    /// The configuration the search chose (what actuation attempted).
    pub attempted: Configuration,
    /// The configuration the array was actually in when verification
    /// rejected it.
    pub realized: Configuration,
}

/// What one control-plane actuation physically achieved.
struct ActuationOutcome {
    /// Per-element (full array): did the protocol apply this element.
    applied: Vec<bool>,
    /// Wall-clock cost of the actuation, seconds.
    completion_s: f64,
    /// Control frames spent.
    frames: usize,
    /// Retransmission effort (retry rounds for the round model,
    /// retransmitted frames for the DES).
    retries: usize,
}

/// Outcome of one control episode.
///
/// Derives `PartialEq` so determinism tests can assert two same-seed
/// episodes are bit-identical, scores included.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlReport {
    /// Configuration in force before the episode.
    pub baseline_config: Configuration,
    /// Objective score of the baseline.
    pub baseline_score: f64,
    /// Configuration chosen by the episode.
    pub chosen_config: Configuration,
    /// Objective score of the chosen configuration (verification measurement).
    pub chosen_score: f64,
    /// Number of channel measurements spent.
    pub measurements: usize,
    /// Total emulated wall-clock time of the episode, seconds.
    pub elapsed_s: f64,
    /// Coherence time the episode was budgeted against, seconds.
    pub coherence_budget_s: f64,
    /// Whether the episode finished within the coherence budget.
    pub within_coherence: bool,
    /// Whether the verification measurement rejected the search result and
    /// the controller fell back to the baseline configuration.
    pub reverted: bool,
    /// The configuration the array is physically in at episode end. Under
    /// [`ActuationMode::Oracle`] this equals [`chosen_config`](Self::chosen_config);
    /// under a lossy transport, unreached elements hold their previous
    /// state and stuck elements hold their stuck state.
    pub realized_config: Configuration,
    /// Elements whose realized state differs from the chosen configuration.
    pub stale_elements: usize,
    /// Control frames spent actuating (0 under the oracle).
    pub actuation_frames: usize,
    /// Retransmission effort spent actuating (retry rounds for the round
    /// model, retransmitted frames for the DES; 0 under the oracle).
    pub actuation_retries: usize,
    /// Flight-recorder post-mortem, populated only when a traced episode
    /// with a live flight recorder reverted.
    pub post_mortem: Option<PostMortem>,
}

impl ControlReport {
    /// Improvement of the chosen configuration over the baseline, in the
    /// objective's units (dB for the SNR objectives).
    pub fn improvement(&self) -> f64 {
        self.chosen_score - self.baseline_score
    }
}

/// One link's view of a multi-link episode (all scores are *measured*, on
/// the array the control plane actually produced).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkReport {
    /// Registry identity of the link.
    pub id: LinkId,
    /// The link's registry label.
    pub label: String,
    /// The link's weight in the space-wide objective.
    pub weight: f64,
    /// This link's objective score of the baseline measurement.
    pub baseline_score: f64,
    /// This link's objective score of the verification measurement (the
    /// baseline values when the episode reverted).
    pub chosen_score: f64,
    /// Mean measured SNR of the baseline, dB.
    pub baseline_mean_snr_db: f64,
    /// Mean measured SNR of the verification (baseline when reverted), dB.
    pub chosen_mean_snr_db: f64,
}

impl LinkReport {
    /// Improvement of this link's verified score over its baseline, in the
    /// link objective's units.
    pub fn improvement(&self) -> f64 {
        self.chosen_score - self.baseline_score
    }
}

/// Outcome of one multi-link ([`SmartSpace`]) control episode.
///
/// The scalar fields mirror [`ControlReport`] with scores replaced by the
/// space-wide weighted objective; [`links`](Self::links) carries each
/// link's verified view. Derives `PartialEq` so determinism tests can
/// assert two same-seed episodes are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceReport {
    /// Configuration in force before the episode.
    pub baseline_config: Configuration,
    /// Weighted space-wide score of the baseline.
    pub baseline_score: f64,
    /// Configuration chosen by the episode.
    pub chosen_config: Configuration,
    /// Weighted space-wide score of the verification measurement.
    pub chosen_score: f64,
    /// Per-link verified outcomes, in registry order.
    pub links: Vec<LinkReport>,
    /// Number of channel measurements spent (each link counts its own).
    pub measurements: usize,
    /// Total emulated wall-clock time of the episode, seconds.
    pub elapsed_s: f64,
    /// Coherence time the episode was budgeted against, seconds.
    pub coherence_budget_s: f64,
    /// Whether the episode finished within the coherence budget.
    pub within_coherence: bool,
    /// Whether verification rejected the search result and the controller
    /// fell back to the baseline configuration.
    pub reverted: bool,
    /// The configuration the array is physically in at episode end.
    pub realized_config: Configuration,
    /// Elements whose realized state differs from the chosen configuration.
    pub stale_elements: usize,
    /// Control frames spent actuating (0 under the oracle).
    pub actuation_frames: usize,
    /// Retransmission effort spent actuating.
    pub actuation_retries: usize,
    /// Flight-recorder post-mortem, populated only when a traced episode
    /// with a live flight recorder reverted.
    pub post_mortem: Option<PostMortem>,
}

impl SpaceReport {
    /// Improvement of the chosen configuration over the baseline in the
    /// weighted space objective's units.
    pub fn improvement(&self) -> f64 {
        self.chosen_score - self.baseline_score
    }
}

/// The closed-loop controller.
#[derive(Debug, Clone)]
pub struct Controller {
    /// Search strategy.
    pub strategy: Strategy,
    /// Cost model.
    pub timing: TimingModel,
    /// Objective to maximize.
    pub objective: LinkObjective,
    /// Coherence budget to judge the episode against (seconds).
    pub coherence_budget_s: f64,
    /// Sounding frames averaged per measurement.
    pub frames_per_measurement: usize,
    /// RNG seed.
    pub seed: u64,
    /// How configurations are applied to the array.
    pub actuation: ActuationMode,
}

impl Controller {
    /// A controller with the paper-prototype timing and a standing-user
    /// coherence budget (~80 ms).
    pub fn new(strategy: Strategy, objective: LinkObjective) -> Controller {
        Controller {
            strategy,
            timing: TimingModel::paper_prototype(),
            objective,
            coherence_budget_s: 0.08,
            frames_per_measurement: 2,
            seed: 0,
            actuation: ActuationMode::Oracle,
        }
    }

    /// Runs one control episode on a link: measure the baseline, search for
    /// a better configuration (each candidate evaluated by *measurement*,
    /// not oracle), actuate it over the configured [`ActuationMode`], and
    /// verify against the array the control plane actually produced.
    pub fn run_episode(&self, system: &PressSystem, sounder: &Sounder) -> ControlReport {
        self.run_episode_instrumented(system, sounder, None)
    }

    /// [`run_episode`](Self::run_episode) with an optional control-plane
    /// metrics registry the actuations record into. Instrumentation never
    /// perturbs the episode: the report is bit-identical with or without it.
    pub fn run_episode_instrumented(
        &self,
        system: &PressSystem,
        sounder: &Sounder,
        metrics: Option<&mut ControlMetrics>,
    ) -> ControlReport {
        self.run_episode_traced(system, sounder, metrics, &mut Tracer::null())
    }

    /// [`run_episode`](Self::run_episode) with full structured tracing: the
    /// episode emits [`press_trace`] events (phase spans, per-candidate
    /// search steps, transport frames, actuation summaries) into the given
    /// [`Tracer`]. This *is* the episode implementation — the silent entry
    /// points delegate here with a [`Tracer::null`], whose disabled cost is
    /// a sequence-counter increment per event.
    ///
    /// Tracing never perturbs the episode: events are emitted outside the
    /// RNG streams, so the report is bit-identical across sinks (the
    /// [`post_mortem`](ControlReport::post_mortem) field aside, which only a
    /// live flight recorder populates).
    pub fn run_episode_traced<S: TraceSink>(
        &self,
        system: &PressSystem,
        sounder: &Sounder,
        mut metrics: Option<&mut ControlMetrics>,
        tracer: &mut Tracer<S>,
    ) -> ControlReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let link = CachedLink::trace(system, sounder.tx.node.clone(), sounder.rx.node.clone());
        let space = system.array.config_space();

        // Shared interior-mutable counters: the measure closure advances
        // them while trace emission reads the episode clock between calls.
        let measurements = Cell::new(0usize);
        let elapsed = Cell::new(0.0f64);

        tracer.flight_mut().clear();
        tracer.emit(
            0.0,
            EventKind::EpisodeStart {
                seed: self.seed,
                links: 1,
                strategy: self.strategy.label(),
            },
        );

        // Candidate channels come from the basis fast path (O(N·K) per
        // configuration, no per-measurement path re-trace); the measurement
        // noise itself still goes through the full sounding pipeline.
        let basis = LinkBasis::for_numerology(system, &link, &sounder.num);
        tracer.emit(
            0.0,
            EventKind::BasisBuild {
                link: 0,
                elements: space.n_elements() as u32,
                subcarriers: basis.n_subcarriers() as u32,
                revision: basis.revision(),
            },
        );
        let mut h: Vec<Complex64> = Vec::with_capacity(basis.n_subcarriers());
        let mut measure = |config: &Configuration, rng: &mut StdRng| -> f64 {
            basis.synthesize_into(config, elapsed.get(), &mut h);
            let profile = sounder
                .sound_averaged_channel(&h, self.frames_per_measurement, rng)
                .expect("sounder has >=2 training symbols"); // press-lint: allow(panic-freedom) — infallible with >=2 training symbols
            measurements.set(measurements.get() + 1);
            elapsed.set(elapsed.get() + self.timing.measurement_s + self.timing.compute_per_eval_s);
            self.objective.score(&profile)
        };

        tracer.emit(
            0.0,
            EventKind::PhaseStart {
                phase: Phase::Measure,
            },
        );
        let baseline_config = Configuration::zeros(space.n_elements());
        let baseline_score = measure(&baseline_config, &mut rng);
        tracer.emit(
            elapsed.get(),
            EventKind::Measurement {
                link: 0,
                score: baseline_score,
            },
        );
        tracer.emit(
            elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Measure,
                measurements: measurements.get() as u32,
            },
        );

        tracer.emit(
            elapsed.get(),
            EventKind::PhaseStart {
                phase: Phase::Search,
            },
        );
        let search_start = measurements.get();
        let result = {
            let label = self.strategy.label();
            let mut on_step = |s: &search::SearchStep| {
                tracer.emit(
                    elapsed.get(),
                    EventKind::SearchStep {
                        strategy: label,
                        iteration: s.iteration as u32,
                        score: s.score,
                        best: s.best,
                        accepted: s.accepted,
                    },
                );
            };
            match self.strategy {
                Strategy::Exhaustive => {
                    search::exhaustive_observed(&space, |c| measure(c, &mut rng), &mut on_step)
                }
                Strategy::Greedy { max_sweeps } => search::greedy_coordinate_observed(
                    &space,
                    baseline_config.clone(),
                    max_sweeps,
                    |c| measure(c, &mut rng),
                    &mut on_step,
                ),
                Strategy::Random { budget } => {
                    let mut search_rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
                    search::random_search_observed(
                        &space,
                        budget,
                        &mut search_rng,
                        |c| measure(c, &mut rng),
                        &mut on_step,
                    )
                }
                Strategy::Annealing { budget } => {
                    let mut search_rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
                    search::simulated_annealing_observed(
                        &space,
                        budget,
                        3.0,
                        0.05,
                        &mut search_rng,
                        |c| measure(c, &mut rng),
                        &mut on_step,
                    )
                }
            }
        };
        tracer.emit(
            elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Search,
                measurements: (measurements.get() - search_start) as u32,
            },
        );

        // Actuate over the control plane and verify against the array it
        // actually produced; if the verification measurement contradicts
        // the search (it chased measurement noise, or the actuation left
        // the array worse), fall back to the baseline — never leave the
        // link worse than it was found. The actuation RNG is a separate
        // seed stream so transport randomness never perturbs the
        // measurement stream (the oracle path stays bit-identical).
        let mut act_rng = StdRng::seed_from_u64(self.seed.wrapping_add(2));
        let mut faults = match &self.actuation {
            ActuationMode::Oracle => FaultPlan::none(),
            ActuationMode::Transport(t) => t.faults.clone(),
            ActuationMode::Des(d) => d.faults.clone(),
        };

        tracer.emit(
            elapsed.get(),
            EventKind::PhaseStart {
                phase: Phase::Actuate,
            },
        );
        let outcome = self.actuate_config(
            &baseline_config,
            &result.best,
            &mut faults,
            metrics.as_deref_mut(),
            tracer,
            elapsed.get(),
            &mut act_rng,
        );
        elapsed.set(elapsed.get() + outcome.completion_s);
        tracer.emit(
            elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Actuate,
                measurements: 0,
            },
        );
        let mut actuation_frames = outcome.frames;
        let mut actuation_retries = outcome.retries;
        // The array the control plane produced: applied elements hold the
        // target (stuck ones their frozen state), unreached ones the
        // baseline. Verification measures *this* channel, not the intent.
        let realized = realize(
            &baseline_config,
            &result.best,
            &outcome.applied,
            &faults,
            &space,
        );
        tracer.emit(
            elapsed.get(),
            EventKind::PhaseStart {
                phase: Phase::Verify,
            },
        );
        let chosen_score = measure(&realized, &mut rng);
        tracer.emit(
            elapsed.get(),
            EventKind::Measurement {
                link: 0,
                score: chosen_score,
            },
        );
        tracer.emit(
            elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Verify,
                measurements: 1,
            },
        );

        let mut post_mortem = None;
        let (chosen_config, chosen_score, reverted, realized_config) =
            if chosen_score < baseline_score {
                tracer.emit(
                    elapsed.get(),
                    EventKind::Reverted {
                        baseline_score,
                        verified_score: chosen_score,
                    },
                );
                // Freeze the black box *before* the revert actuation floods
                // the ring with its own frames: the post-mortem should show
                // what led to the rejection, not the recovery.
                if tracer.flight().capacity() > 0 {
                    post_mortem = Some(PostMortem {
                        events: tracer.flight().snapshot(),
                        attempted: result.best.clone(),
                        realized: realized.clone(),
                    });
                }
                tracer.emit(
                    elapsed.get(),
                    EventKind::PhaseStart {
                        phase: Phase::Revert,
                    },
                );
                let back = self.actuate_config(
                    &realized,
                    &baseline_config,
                    &mut faults,
                    metrics,
                    tracer,
                    elapsed.get(),
                    &mut act_rng,
                );
                elapsed.set(elapsed.get() + back.completion_s);
                actuation_frames += back.frames;
                actuation_retries += back.retries;
                tracer.emit(
                    elapsed.get(),
                    EventKind::PhaseEnd {
                        phase: Phase::Revert,
                        measurements: 0,
                    },
                );
                let after = realize(&realized, &baseline_config, &back.applied, &faults, &space);
                (baseline_config.clone(), baseline_score, true, after)
            } else {
                (result.best, chosen_score, false, realized)
            };

        tracer.emit(
            elapsed.get(),
            EventKind::EpisodeEnd {
                score: chosen_score,
                measurements: measurements.get() as u32,
                reverted,
            },
        );

        let stale_elements = realized_config.hamming(&chosen_config);
        ControlReport {
            baseline_config,
            baseline_score,
            chosen_config,
            chosen_score,
            measurements: measurements.get(),
            elapsed_s: elapsed.get(),
            coherence_budget_s: self.coherence_budget_s,
            within_coherence: elapsed.get() <= self.coherence_budget_s,
            reverted,
            realized_config,
            stale_elements,
            actuation_frames,
            actuation_retries,
            post_mortem,
        }
    }

    /// Runs one control episode over a whole [`SmartSpace`]: measure every
    /// registered link at the baseline, search for one shared configuration
    /// maximizing the *weighted* space objective (each candidate evaluated
    /// by measurement on every link), actuate that single configuration
    /// through the configured [`ActuationMode`], and verify each link
    /// against the array the control plane actually produced.
    ///
    /// The registry's objectives and weights drive the episode — the
    /// controller's own [`objective`](Self::objective) field is the
    /// single-link API and is not consulted here.
    ///
    /// Seed-stream discipline is the single-link episode's, unchanged:
    /// measurement noise on `seed` (links drawing in registry order),
    /// search on `seed + 1`, actuation on `seed + 2`. A one-link space is
    /// therefore RNG-stream-identical to
    /// [`run_episode`](Self::run_episode).
    pub fn run_space_episode(&self, space: &SmartSpace) -> SpaceReport {
        self.run_space_episode_instrumented(space, None)
    }

    /// [`run_space_episode`](Self::run_space_episode) with an optional
    /// per-[`LinkId`]-labeled metrics registry. The shared actuation is
    /// recorded once into the wire-truth row and attributed to every link
    /// row ([`SpaceMetrics::record_shared`]); instrumentation never
    /// perturbs the episode.
    pub fn run_space_episode_instrumented(
        &self,
        space: &SmartSpace,
        metrics: Option<&mut SpaceMetrics>,
    ) -> SpaceReport {
        self.run_space_episode_traced(space, metrics, &mut Tracer::null())
    }

    /// [`run_space_episode`](Self::run_space_episode) with full structured
    /// tracing, mirroring [`run_episode_traced`](Self::run_episode_traced):
    /// per-link basis and measurement events, per-candidate search steps,
    /// transport frames, actuation summaries and phase spans all flow into
    /// the given [`Tracer`]. The silent entry points delegate here with a
    /// [`Tracer::null`]; tracing never perturbs the episode.
    pub fn run_space_episode_traced<S: TraceSink>(
        &self,
        space: &SmartSpace,
        metrics: Option<&mut SpaceMetrics>,
        tracer: &mut Tracer<S>,
    ) -> SpaceReport {
        assert!(
            space.n_links() > 0,
            "a space episode needs at least one registered link"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let config_space = space.config_space();

        let measurements = Cell::new(0usize);
        let elapsed = Cell::new(0.0f64);

        tracer.flight_mut().clear();
        tracer.emit(
            0.0,
            EventKind::EpisodeStart {
                seed: self.seed,
                links: space.n_links() as u32,
                strategy: self.strategy.label(),
            },
        );
        for sl in space.links() {
            tracer.emit(
                0.0,
                EventKind::BasisBuild {
                    link: sl.id.0,
                    elements: config_space.n_elements() as u32,
                    subcarriers: sl.basis.n_subcarriers() as u32,
                    revision: sl.basis.revision(),
                },
            );
        }

        let mut h: Vec<Complex64> = Vec::new();
        // Measures one configuration on every link (registry order, one
        // shared noise stream) and returns the weighted space score plus
        // each link's own score and mean SNR.
        let mut measure_space =
            |config: &Configuration, rng: &mut StdRng| -> (f64, Vec<f64>, Vec<f64>) {
                let mut weighted = 0.0f64;
                let mut scores = Vec::with_capacity(space.n_links());
                let mut means = Vec::with_capacity(space.n_links());
                for sl in space.links() {
                    sl.basis.synthesize_into(config, elapsed.get(), &mut h);
                    let profile = sl
                        .sounder
                        .sound_averaged_channel(&h, self.frames_per_measurement, rng)
                        .expect("sounder has >=2 training symbols"); // press-lint: allow(panic-freedom) — infallible with >=2 training symbols
                    measurements.set(measurements.get() + 1);
                    elapsed.set(
                        elapsed.get() + self.timing.measurement_s + self.timing.compute_per_eval_s,
                    );
                    let score = sl.objective.score(&profile);
                    weighted += sl.weight * score;
                    scores.push(score);
                    means.push(profile.mean_db());
                }
                (weighted, scores, means)
            };

        tracer.emit(
            0.0,
            EventKind::PhaseStart {
                phase: Phase::Measure,
            },
        );
        let baseline_config = Configuration::zeros(config_space.n_elements());
        let (baseline_score, baseline_scores, baseline_means) =
            measure_space(&baseline_config, &mut rng);
        for (sl, &score) in space.links().iter().zip(&baseline_scores) {
            tracer.emit(
                elapsed.get(),
                EventKind::Measurement {
                    link: sl.id.0,
                    score,
                },
            );
        }
        tracer.emit(
            elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Measure,
                measurements: measurements.get() as u32,
            },
        );

        tracer.emit(
            elapsed.get(),
            EventKind::PhaseStart {
                phase: Phase::Search,
            },
        );
        let search_start = measurements.get();
        let result = {
            let label = self.strategy.label();
            let mut on_step = |s: &search::SearchStep| {
                tracer.emit(
                    elapsed.get(),
                    EventKind::SearchStep {
                        strategy: label,
                        iteration: s.iteration as u32,
                        score: s.score,
                        best: s.best,
                        accepted: s.accepted,
                    },
                );
            };
            match self.strategy {
                Strategy::Exhaustive => search::exhaustive_observed(
                    &config_space,
                    |c| measure_space(c, &mut rng).0,
                    &mut on_step,
                ),
                Strategy::Greedy { max_sweeps } => search::greedy_coordinate_observed(
                    &config_space,
                    baseline_config.clone(),
                    max_sweeps,
                    |c| measure_space(c, &mut rng).0,
                    &mut on_step,
                ),
                Strategy::Random { budget } => {
                    let mut search_rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
                    search::random_search_observed(
                        &config_space,
                        budget,
                        &mut search_rng,
                        |c| measure_space(c, &mut rng).0,
                        &mut on_step,
                    )
                }
                Strategy::Annealing { budget } => {
                    let mut search_rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
                    search::simulated_annealing_observed(
                        &config_space,
                        budget,
                        3.0,
                        0.05,
                        &mut search_rng,
                        |c| measure_space(c, &mut rng).0,
                        &mut on_step,
                    )
                }
            }
        };
        tracer.emit(
            elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Search,
                measurements: (measurements.get() - search_start) as u32,
            },
        );

        // One shared actuation serves every link; the RNG stream and the
        // revert logic are the single-link episode's, with the weighted
        // space score standing in for the link score.
        let mut act_rng = StdRng::seed_from_u64(self.seed.wrapping_add(2));
        let mut faults = match &self.actuation {
            ActuationMode::Oracle => FaultPlan::none(),
            ActuationMode::Transport(t) => t.faults.clone(),
            ActuationMode::Des(d) => d.faults.clone(),
        };

        tracer.emit(
            elapsed.get(),
            EventKind::PhaseStart {
                phase: Phase::Actuate,
            },
        );
        let mut act_metrics = ControlMetrics::new();
        let outcome = self.actuate_config(
            &baseline_config,
            &result.best,
            &mut faults,
            Some(&mut act_metrics),
            tracer,
            elapsed.get(),
            &mut act_rng,
        );
        elapsed.set(elapsed.get() + outcome.completion_s);
        tracer.emit(
            elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Actuate,
                measurements: 0,
            },
        );
        let mut actuation_frames = outcome.frames;
        let mut actuation_retries = outcome.retries;
        let realized = realize(
            &baseline_config,
            &result.best,
            &outcome.applied,
            &faults,
            &config_space,
        );
        tracer.emit(
            elapsed.get(),
            EventKind::PhaseStart {
                phase: Phase::Verify,
            },
        );
        let (verified_score, verified_scores, verified_means) = measure_space(&realized, &mut rng);
        for (sl, &score) in space.links().iter().zip(&verified_scores) {
            tracer.emit(
                elapsed.get(),
                EventKind::Measurement {
                    link: sl.id.0,
                    score,
                },
            );
        }
        tracer.emit(
            elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Verify,
                measurements: space.n_links() as u32,
            },
        );

        let mut post_mortem = None;
        let (chosen_config, chosen_score, chosen_scores, chosen_means, reverted, realized_config) =
            if verified_score < baseline_score {
                tracer.emit(
                    elapsed.get(),
                    EventKind::Reverted {
                        baseline_score,
                        verified_score,
                    },
                );
                // Freeze the black box before the revert actuation floods
                // the ring with its own frames.
                if tracer.flight().capacity() > 0 {
                    post_mortem = Some(PostMortem {
                        events: tracer.flight().snapshot(),
                        attempted: result.best.clone(),
                        realized: realized.clone(),
                    });
                }
                tracer.emit(
                    elapsed.get(),
                    EventKind::PhaseStart {
                        phase: Phase::Revert,
                    },
                );
                let mut back_metrics = ControlMetrics::new();
                let back = self.actuate_config(
                    &realized,
                    &baseline_config,
                    &mut faults,
                    Some(&mut back_metrics),
                    tracer,
                    elapsed.get(),
                    &mut act_rng,
                );
                act_metrics.merge(&back_metrics);
                elapsed.set(elapsed.get() + back.completion_s);
                actuation_frames += back.frames;
                actuation_retries += back.retries;
                tracer.emit(
                    elapsed.get(),
                    EventKind::PhaseEnd {
                        phase: Phase::Revert,
                        measurements: 0,
                    },
                );
                let after = realize(
                    &realized,
                    &baseline_config,
                    &back.applied,
                    &faults,
                    &config_space,
                );
                (
                    baseline_config.clone(),
                    baseline_score,
                    baseline_scores.clone(),
                    baseline_means.clone(),
                    true,
                    after,
                )
            } else {
                (
                    result.best,
                    verified_score,
                    verified_scores,
                    verified_means,
                    false,
                    realized,
                )
            };

        tracer.emit(
            elapsed.get(),
            EventKind::EpisodeEnd {
                score: chosen_score,
                measurements: measurements.get() as u32,
                reverted,
            },
        );

        if let Some(m) = metrics {
            m.record_shared(&act_metrics);
        }

        let links = space
            .links()
            .iter()
            .enumerate()
            .map(|(i, sl)| LinkReport {
                id: sl.id,
                label: sl.label.clone(),
                weight: sl.weight,
                baseline_score: baseline_scores[i],
                chosen_score: chosen_scores[i],
                baseline_mean_snr_db: baseline_means[i],
                chosen_mean_snr_db: chosen_means[i],
            })
            .collect();

        let stale_elements = realized_config.hamming(&chosen_config);
        SpaceReport {
            baseline_config,
            baseline_score,
            chosen_config,
            chosen_score,
            links,
            measurements: measurements.get(),
            elapsed_s: elapsed.get(),
            coherence_budget_s: self.coherence_budget_s,
            within_coherence: elapsed.get() <= self.coherence_budget_s,
            reverted,
            realized_config,
            stale_elements,
            actuation_frames,
            actuation_retries,
            post_mortem,
        }
    }

    /// Replays a churn episode: applies each
    /// [`ChurnEvent`](crate::space::ChurnEvent) to the mutable
    /// registry in order, then runs one space episode after every event,
    /// returning the per-round reports in event order.
    ///
    /// Each round runs under its own controller seed,
    /// `derive_stream_seed(self.seed, round, 3)` — stream index 3 extends
    /// the single-episode discipline (measurement `seed`, search `seed+1`,
    /// actuation `seed+2`) without colliding with it, and keys the round's
    /// streams to its position in the event sequence alone. The whole
    /// replay is therefore a pure function of `(self, initial space,
    /// events)`: running the same episode twice from identically-built
    /// spaces yields bit-identical report vectors, regardless of what
    /// traces or bases the registry re-used across the churn.
    pub fn run_churn_episode(
        &self,
        space: &mut SmartSpace,
        events: &[crate::space::ChurnEvent],
    ) -> Vec<SpaceReport> {
        let mut reports = Vec::with_capacity(events.len());
        for (round, event) in events.iter().enumerate() {
            space.apply_churn(event);
            let mut round_controller = self.clone();
            round_controller.seed = search::derive_stream_seed(self.seed, round as u64, 3);
            reports.push(round_controller.run_space_episode(space));
        }
        reports
    }

    /// Drives one `prev → target` transition over the configured actuation
    /// mode. Only elements whose state actually changes are commanded.
    /// Transport-level events (frames, losses, acks, backoffs) flow into
    /// `tracer` timestamped relative to `t0_s`, followed by one
    /// [`EventKind::ActuationDone`] summary.
    #[allow(clippy::too_many_arguments)]
    fn actuate_config<S: TraceSink>(
        &self,
        prev: &Configuration,
        target: &Configuration,
        faults: &mut FaultPlan,
        metrics: Option<&mut ControlMetrics>,
        tracer: &mut Tracer<S>,
        t0_s: f64,
        rng: &mut StdRng,
    ) -> ActuationOutcome {
        let n = prev.len();
        // Unchanged elements are trivially in place.
        let mut applied = vec![true; n];
        let delta: Vec<(u16, u8)> = prev
            .states
            .iter()
            .zip(&target.states)
            .enumerate()
            .filter(|(_, (p, t))| p != t)
            .map(|(i, (_, &t))| (i as u16, t as u8))
            .collect();
        let outcome = match &self.actuation {
            ActuationMode::Oracle => ActuationOutcome {
                applied,
                completion_s: self.timing.actuation_s,
                frames: 0,
                retries: 0,
            },
            ActuationMode::Transport(t) => {
                let report = actuate_traced(
                    &t.transport,
                    &delta,
                    t.distance_m,
                    t.policy,
                    faults,
                    metrics,
                    tracer,
                    t0_s,
                    rng,
                );
                for &(e, _) in &delta {
                    applied[e as usize] = report.element_applied(e);
                }
                ActuationOutcome {
                    applied,
                    completion_s: report.completion_s,
                    frames: report.frames_sent,
                    retries: report.retry_rounds,
                }
            }
            ActuationMode::Des(d) => {
                let report = simulate_actuation_traced(
                    &d.transport,
                    &delta,
                    &d.cfg,
                    faults,
                    metrics,
                    tracer,
                    t0_s,
                    rng,
                );
                for &(e, _) in &delta {
                    applied[e as usize] = !report.failed.contains(&e);
                }
                let retransmissions = report
                    .trace
                    .iter()
                    .filter(|ev| {
                        matches!(
                            ev,
                            press_control::TraceEvent::CommandSent { attempt, .. } if *attempt > 0
                        )
                    })
                    .count();
                ActuationOutcome {
                    applied,
                    completion_s: report.done_s,
                    frames: report.frames,
                    retries: retransmissions,
                }
            }
        };
        let failed = delta
            .iter()
            .filter(|&&(e, _)| !outcome.applied[e as usize])
            .count();
        tracer.emit(
            t0_s + outcome.completion_s,
            EventKind::ActuationDone {
                frames: outcome.frames as u32,
                retries: outcome.retries as u32,
                completion_s: outcome.completion_s,
                failed: failed as u32,
            },
        );
        outcome
    }
}

/// Merges what the control plane achieved into the physical configuration:
/// applied elements take the target state — unless stuck, in which case the
/// hardware holds its frozen state — and unreached elements keep `prev`.
fn realize(
    prev: &Configuration,
    target: &Configuration,
    applied: &[bool],
    faults: &FaultPlan,
    space: &crate::config::ConfigSpace,
) -> Configuration {
    let mut realized = prev.overlay(target, applied);
    if !faults.elements.is_empty() {
        for (i, state) in realized.states.iter_mut().enumerate() {
            if applied[i] && prev.states[i] != target.states[i] {
                if let Some(s) = faults
                    .elements
                    .realized_state(i as u16, target.states[i] as u8)
                {
                    // Clamp: a stuck state outside the element's space pins
                    // it to the highest valid switch position.
                    *state = (s as usize).min(space.states_per_element[i] - 1);
                }
            }
        }
    }
    realized
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_phy::Numerology;
    use press_propagation::{LabConfig, LabSetup};
    use press_sdr::SdrRadio;

    fn setup(n_elements: usize) -> (PressSystem, Sounder) {
        let lab = LabSetup::generate(&LabConfig::default(), 17);
        let lambda = lab.scene.wavelength();
        let mut rng = StdRng::seed_from_u64(4);
        let positions = lab.random_element_positions(n_elements, &mut rng);
        let array = PressArray::paper_passive(&positions, lambda);
        let system = PressSystem::new(lab.scene.clone(), array);
        let sounder = Sounder::new(
            Numerology::wifi20(WIFI_CHANNEL_11_HZ),
            SdrRadio::warp(lab.tx.clone()),
            SdrRadio::warp(lab.rx.clone()),
        );
        (system, sounder)
    }

    #[test]
    fn exhaustive_episode_improves_or_matches_baseline() {
        let (system, sounder) = setup(2);
        let c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let report = c.run_episode(&system, &sounder);
        // The exhaustive search must find something at least as good as the
        // baseline up to measurement noise.
        assert!(
            report.improvement() > -2.0,
            "improvement {}",
            report.improvement()
        );
        assert_eq!(report.measurements, 1 + 16 + 1);
    }

    #[test]
    fn paper_prototype_blows_coherence_budget() {
        let (system, sounder) = setup(2);
        let c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let report = c.run_episode(&system, &sounder);
        // 18 measurements x 78 ms >> 80 ms: the paper's own latency problem.
        assert!(!report.within_coherence);
    }

    #[test]
    fn fast_control_plane_fits_budget_with_greedy() {
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Greedy { max_sweeps: 1 }, LinkObjective::MaxMinSnr);
        c.timing = TimingModel::fast_control_plane();
        let report = c.run_episode(&system, &sounder);
        assert!(
            report.within_coherence,
            "elapsed {} vs budget {}",
            report.elapsed_s, report.coherence_budget_s
        );
    }

    #[test]
    fn episodes_are_deterministic() {
        let (system, sounder) = setup(2);
        let c = Controller::new(Strategy::Random { budget: 6 }, LinkObjective::MaxMeanSnr);
        let a = c.run_episode(&system, &sounder);
        let b = c.run_episode(&system, &sounder);
        assert_eq!(a.chosen_config, b.chosen_config);
        assert_eq!(a.measurements, b.measurements);
    }

    #[test]
    fn wired_transport_reproduces_oracle_decision_bit_for_bit() {
        let (system, sounder) = setup(2);
        let oracle = Controller::new(Strategy::Random { budget: 6 }, LinkObjective::MaxMeanSnr);
        let mut wired = oracle.clone();
        wired.actuation = ActuationMode::Transport(TransportActuation::wired());
        let a = oracle.run_episode(&system, &sounder);
        let b = wired.run_episode(&system, &sounder);
        // A clean wired control plane applies everything, so the realized
        // array equals the chosen one and the measurement stream (a
        // separate seed stream from the actuation RNG) is untouched.
        assert_eq!(a.chosen_config, b.chosen_config);
        assert_eq!(a.chosen_score, b.chosen_score);
        assert_eq!(a.baseline_score, b.baseline_score);
        assert_eq!(a.measurements, b.measurements);
        assert_eq!(b.stale_elements, 0);
        assert_eq!(b.realized_config, b.chosen_config);
        assert!(
            b.actuation_frames > 0,
            "wired transport still spends frames"
        );
    }

    #[test]
    fn lossy_fire_and_forget_leaves_stale_elements_and_changes_score() {
        use press_control::{AckPolicy, FaultPlan, Transport};
        let (system, sounder) = setup(3);
        let oracle = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let mut lossy = oracle.clone();
        // Heavy loss, no acks, no retries: most commanded elements never
        // hear their set-state.
        lossy.actuation = ActuationMode::Transport(TransportActuation {
            transport: Transport::IsmRadio {
                bitrate_bps: 250e3,
                loss_prob: 0.9,
                mac_latency_s: 1e-3,
            },
            policy: AckPolicy::None,
            distance_m: 15.0,
            faults: FaultPlan::none(),
        });
        // Whether a given seed strands some, all, or none of the commanded
        // elements is down to the loss draws, so scan a few seeds: at least
        // one must leave a partially-applied (stale) array, and whenever the
        // array is stale the verification score must diverge from the
        // oracle-actuated episode's.
        let mut saw_stale = false;
        for seed in 0..6 {
            let mut a = oracle.clone();
            a.seed = seed;
            let mut b = lossy.clone();
            b.seed = seed;
            let ra = a.run_episode(&system, &sounder);
            let rb = b.run_episode(&system, &sounder);
            // The search itself is actuation-independent; chosen_config only
            // diverges when the stale verification triggered a revert.
            if !rb.reverted && !ra.reverted {
                assert_eq!(ra.chosen_config, rb.chosen_config, "seed {seed}");
            }
            if rb.stale_elements > 0 {
                saw_stale = true;
                assert_ne!(rb.realized_config, rb.chosen_config);
                if !ra.reverted {
                    assert_ne!(
                        ra.chosen_score, rb.chosen_score,
                        "verification must measure the stale array, not the intent (seed {seed})"
                    );
                }
            }
        }
        assert!(
            saw_stale,
            "90% loss never stranded an element across 6 seeds"
        );
    }

    #[test]
    fn des_actuation_mode_closes_the_loop() {
        use press_control::{DesConfig, FaultPlan, Transport};
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Greedy { max_sweeps: 1 }, LinkObjective::MaxMinSnr);
        c.actuation = ActuationMode::Des(DesActuation {
            transport: Transport::wired(),
            cfg: DesConfig::default(),
            faults: FaultPlan::none(),
        });
        let r = c.run_episode(&system, &sounder);
        assert_eq!(r.stale_elements, 0, "clean wire applies everything");
        assert!(r.actuation_frames > 0);
        // The DES charges real completion time into the episode clock.
        assert!(r.elapsed_s > 0.0);
    }

    #[test]
    fn dead_element_faults_strand_the_commanded_state() {
        use press_control::{ElementFaults, FaultPlan};
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let mut t = TransportActuation::wired();
        // Every element is dead: nothing the search chooses can be applied,
        // so the realized array is the baseline and verification reverts.
        t.faults = FaultPlan::broken(ElementFaults::none().dead(0).dead(1));
        c.actuation = ActuationMode::Transport(t);
        let r = c.run_episode(&system, &sounder);
        assert_eq!(r.realized_config, r.baseline_config);
        if r.chosen_config != r.baseline_config {
            assert!(r.stale_elements > 0);
        }
    }

    #[test]
    fn instrumented_episode_is_bit_identical_and_records() {
        use press_control::ControlMetrics;
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Random { budget: 4 }, LinkObjective::MaxMeanSnr);
        c.actuation = ActuationMode::Transport(TransportActuation::ism());
        let bare = c.run_episode(&system, &sounder);
        let mut metrics = ControlMetrics::new();
        let inst = c.run_episode_instrumented(&system, &sounder, Some(&mut metrics));
        assert_eq!(bare.chosen_config, inst.chosen_config);
        assert_eq!(bare.chosen_score, inst.chosen_score);
        assert_eq!(bare.elapsed_s, inst.elapsed_s);
        assert_eq!(bare.actuation_frames, inst.actuation_frames);
        assert!(metrics.frames_tx > 0);
        assert!(metrics.actuations >= 1);
    }

    #[test]
    fn single_link_space_episode_matches_run_episode_bitwise() {
        let (system, sounder) = setup(2);
        for strategy in [
            Strategy::Exhaustive,
            Strategy::Random { budget: 6 },
            Strategy::Annealing { budget: 8 },
        ] {
            for seed in [0u64, 7, 23] {
                let mut c = Controller::new(strategy, LinkObjective::MaxMinSnr);
                c.seed = seed;
                c.actuation = ActuationMode::Transport(TransportActuation::ism());
                let single = c.run_episode(&system, &sounder);
                let space =
                    SmartSpace::single(system.clone(), sounder.clone(), LinkObjective::MaxMinSnr);
                let multi = c.run_space_episode(&space);
                assert_eq!(single.baseline_score, multi.baseline_score, "seed {seed}");
                assert_eq!(single.chosen_config, multi.chosen_config, "seed {seed}");
                assert_eq!(single.chosen_score, multi.chosen_score, "seed {seed}");
                assert_eq!(single.measurements, multi.measurements, "seed {seed}");
                assert_eq!(single.elapsed_s, multi.elapsed_s, "seed {seed}");
                assert_eq!(single.realized_config, multi.realized_config, "seed {seed}");
                assert_eq!(single.reverted, multi.reverted, "seed {seed}");
                assert_eq!(multi.links.len(), 1);
                assert_eq!(multi.links[0].chosen_score, multi.chosen_score);
            }
        }
    }

    #[test]
    fn space_episode_weights_drive_the_search() {
        use crate::space::LinkId;
        // Two links, the second negatively weighted: the weighted space
        // score must equal w0·s0 + w1·s1 on both the baseline and the
        // verification measurement.
        let (system, sounder) = setup(2);
        let mut space = SmartSpace::new(system);
        space.add_link("boost", sounder.clone(), LinkObjective::MaxMeanSnr, 1.0);
        let mut other = sounder.clone();
        other.rx.node.position.y += 1.1;
        space.add_link("suppress", other, LinkObjective::MaxMeanSnr, -0.5);
        let c = Controller::new(Strategy::Random { budget: 5 }, LinkObjective::MaxMeanSnr);
        let r = c.run_space_episode(&space);
        assert_eq!(r.links.len(), 2);
        assert_eq!(r.links[0].id, LinkId(0));
        assert_eq!(r.links[1].id, LinkId(1));
        let weighted = 1.0 * r.links[0].baseline_score - 0.5 * r.links[1].baseline_score;
        assert!((r.baseline_score - weighted).abs() < 1e-12);
        // 1 baseline + 5 search + 1 verification sweeps, 2 links each.
        assert_eq!(r.measurements, 7 * 2);
    }

    #[test]
    fn instrumented_space_episode_is_bit_identical_and_labels_links() {
        use press_control::SpaceMetrics;
        let (system, sounder) = setup(2);
        let mut space = SmartSpace::new(system);
        space.add_link("a", sounder.clone(), LinkObjective::MaxMinSnr, 1.0);
        let mut other = sounder.clone();
        other.rx.node.position.y += 0.9;
        space.add_link("b", other, LinkObjective::MaxMinSnr, 1.0);
        let mut c = Controller::new(Strategy::Random { budget: 4 }, LinkObjective::MaxMinSnr);
        c.actuation = ActuationMode::Transport(TransportActuation::ism());
        let bare = c.run_space_episode(&space);
        let ids: Vec<(u32, String)> = space
            .links()
            .iter()
            .map(|sl| (sl.id.0, sl.label.clone()))
            .collect();
        let mut metrics = SpaceMetrics::new(&ids);
        let inst = c.run_space_episode_instrumented(&space, Some(&mut metrics));
        assert_eq!(bare, inst);
        assert!(metrics.space.frames_tx > 0);
        assert_eq!(metrics.links.len(), 2);
        for (_, _, m) in &metrics.links {
            assert_eq!(m.frames_tx, metrics.space.frames_tx);
        }
    }

    #[test]
    fn traced_episode_is_bit_identical_and_emits_phases() {
        use press_trace::MemorySink;
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Annealing { budget: 6 }, LinkObjective::MaxMinSnr);
        c.actuation = ActuationMode::Transport(TransportActuation::ism());
        let bare = c.run_episode(&system, &sounder);
        let mut tracer = Tracer::new(MemorySink::new());
        let mut traced = c.run_episode_traced(&system, &sounder, None, &mut tracer);
        // post_mortem is the only field a live flight recorder may add.
        traced.post_mortem = None;
        assert_eq!(bare, traced);
        let events = &tracer.sink().events;
        assert!(matches!(
            events[0].kind,
            EventKind::EpisodeStart { links: 1, .. }
        ));
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::EpisodeEnd { .. }
        ));
        // Every phase opens before it closes.
        for phase in [Phase::Measure, Phase::Search, Phase::Actuate, Phase::Verify] {
            let start = events
                .iter()
                .position(|e| e.kind == EventKind::PhaseStart { phase })
                .unwrap_or_else(|| panic!("{phase:?} never started"));
            let end = events
                .iter()
                .position(|e| matches!(e.kind, EventKind::PhaseEnd { phase: p, .. } if p == phase))
                .unwrap_or_else(|| panic!("{phase:?} never ended"));
            assert!(start < end, "{phase:?}");
        }
        // One search step per annealer evaluation (initial + budget), each
        // labeled with the strategy.
        let steps = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::SearchStep {
                        strategy: "annealing",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(steps, 1 + 6);
        for w in events.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1, "seq must be gapless");
        }
    }

    #[test]
    fn traced_revert_attaches_a_post_mortem() {
        use press_control::{ElementFaults, FaultPlan};
        use press_trace::MemorySink;
        let (system, sounder) = setup(2);
        // Every element dead: the realized array is always the baseline, so
        // verification re-measures the baseline channel under fresh noise
        // and roughly half the seeds reject the (unapplied) search result.
        let mut saw_revert = false;
        for seed in 0..12u64 {
            let mut c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
            c.seed = seed;
            let mut t = TransportActuation::wired();
            t.faults = FaultPlan::broken(ElementFaults::none().dead(0).dead(1));
            c.actuation = ActuationMode::Transport(t);
            let mut tracer = Tracer::new(MemorySink::new());
            let r = c.run_episode_traced(&system, &sounder, None, &mut tracer);
            if !r.reverted {
                assert!(r.post_mortem.is_none(), "seed {seed}");
                continue;
            }
            saw_revert = true;
            let pm = r
                .post_mortem
                .as_ref()
                .expect("traced revert keeps a post-mortem");
            assert!(!pm.events.is_empty());
            assert!(pm.events.iter().all(|e| e.wall_s.is_none()));
            assert_eq!(pm.realized, r.baseline_config, "dead array never moves");
            let events = &tracer.sink().events;
            assert!(events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Reverted { .. })));
            assert!(events.iter().any(|e| matches!(
                e.kind,
                EventKind::PhaseStart {
                    phase: Phase::Revert
                }
            )));
            // The silent paths attach nothing, yet agree on every other field.
            let mut bare = c.run_episode(&system, &sounder);
            assert!(bare.post_mortem.is_none());
            bare.post_mortem = r.post_mortem.clone();
            assert_eq!(bare, r, "seed {seed}");
        }
        assert!(saw_revert, "no seed in 0..12 triggered a revert");
    }

    #[test]
    fn greedy_uses_fewer_measurements_than_exhaustive() {
        let (system, sounder) = setup(3);
        let ex = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr)
            .run_episode(&system, &sounder);
        let gr = Controller::new(Strategy::Greedy { max_sweeps: 2 }, LinkObjective::MaxMinSnr)
            .run_episode(&system, &sounder);
        assert!(gr.measurements < ex.measurements);
    }
}
