//! The closed-loop PRESS controller.
//!
//! §2 of the paper lists the three actuation tasks: (1) gather channel
//! information, (2) navigate the configuration space quickly, (3) apply the
//! chosen configuration — all "during the channel coherence time", and
//! ideally on packet-level timescales of one to two milliseconds. The
//! [`Controller`] here runs that loop against the simulated system, charging
//! wall-clock cost for every measurement, computation and actuation so the
//! coherence budget is a real constraint, not an aspiration.

use crate::basis::LinkBasis;
use crate::config::Configuration;
use crate::objective::LinkObjective;
use crate::search;
use crate::system::{CachedLink, PressSystem};
use press_math::Complex64;
use press_sdr::Sounder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Wall-clock cost model of the control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Cost of one channel measurement (frame airtime + CSI processing +
    /// feedback to the controller), seconds.
    pub measurement_s: f64,
    /// Cost of actuating one array configuration over the control plane,
    /// seconds.
    pub actuation_s: f64,
    /// Controller compute per candidate evaluated, seconds.
    pub compute_per_eval_s: f64,
}

impl TimingModel {
    /// The paper's prototype: ~78 ms per measured configuration (5 s / 64),
    /// with actuation folded into that figure.
    pub fn paper_prototype() -> TimingModel {
        TimingModel {
            measurement_s: 5.0 / 64.0,
            actuation_s: 0.0,
            compute_per_eval_s: 1e-5,
        }
    }

    /// A production-grade target: per-packet sounding (~100 µs), 1 ms-class
    /// control-plane actuation, microsecond compute.
    pub fn fast_control_plane() -> TimingModel {
        TimingModel {
            measurement_s: 100e-6,
            actuation_s: 1e-3,
            compute_per_eval_s: 1e-6,
        }
    }
}

/// Which search strategy the controller runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Measure every configuration (only feasible for small arrays).
    Exhaustive,
    /// Greedy coordinate descent with the given sweep limit.
    Greedy {
        /// Maximum sweeps.
        max_sweeps: usize,
    },
    /// Random sampling with a fixed measurement budget.
    Random {
        /// Number of configurations measured.
        budget: usize,
    },
    /// Simulated annealing with the given measurement budget.
    Annealing {
        /// Number of configurations measured.
        budget: usize,
    },
}

/// Outcome of one control episode.
#[derive(Debug, Clone)]
pub struct ControlReport {
    /// Configuration in force before the episode.
    pub baseline_config: Configuration,
    /// Objective score of the baseline.
    pub baseline_score: f64,
    /// Configuration chosen by the episode.
    pub chosen_config: Configuration,
    /// Objective score of the chosen configuration (verification measurement).
    pub chosen_score: f64,
    /// Number of channel measurements spent.
    pub measurements: usize,
    /// Total emulated wall-clock time of the episode, seconds.
    pub elapsed_s: f64,
    /// Coherence time the episode was budgeted against, seconds.
    pub coherence_budget_s: f64,
    /// Whether the episode finished within the coherence budget.
    pub within_coherence: bool,
    /// Whether the verification measurement rejected the search result and
    /// the controller fell back to the baseline configuration.
    pub reverted: bool,
}

impl ControlReport {
    /// Improvement of the chosen configuration over the baseline, in the
    /// objective's units (dB for the SNR objectives).
    pub fn improvement(&self) -> f64 {
        self.chosen_score - self.baseline_score
    }
}

/// The closed-loop controller.
#[derive(Debug, Clone)]
pub struct Controller {
    /// Search strategy.
    pub strategy: Strategy,
    /// Cost model.
    pub timing: TimingModel,
    /// Objective to maximize.
    pub objective: LinkObjective,
    /// Coherence budget to judge the episode against (seconds).
    pub coherence_budget_s: f64,
    /// Sounding frames averaged per measurement.
    pub frames_per_measurement: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Controller {
    /// A controller with the paper-prototype timing and a standing-user
    /// coherence budget (~80 ms).
    pub fn new(strategy: Strategy, objective: LinkObjective) -> Controller {
        Controller {
            strategy,
            timing: TimingModel::paper_prototype(),
            objective,
            coherence_budget_s: 0.08,
            frames_per_measurement: 2,
            seed: 0,
        }
    }

    /// Runs one control episode on a link: measure the baseline, search for
    /// a better configuration (each candidate evaluated by *measurement*,
    /// not oracle), actuate it, and verify.
    pub fn run_episode(&self, system: &PressSystem, sounder: &Sounder) -> ControlReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let link = CachedLink::trace(system, sounder.tx.node.clone(), sounder.rx.node.clone());
        let space = system.array.config_space();

        let mut measurements = 0usize;
        let mut elapsed = 0.0f64;
        // Candidate channels come from the basis fast path (O(N·K) per
        // configuration, no per-measurement path re-trace); the measurement
        // noise itself still goes through the full sounding pipeline.
        let basis = LinkBasis::for_numerology(system, &link, &sounder.num);
        let mut h: Vec<Complex64> = Vec::with_capacity(basis.n_subcarriers());
        let mut measure = |config: &Configuration,
                           measurements: &mut usize,
                           elapsed: &mut f64,
                           rng: &mut StdRng|
         -> f64 {
            basis.synthesize_into(config, *elapsed, &mut h);
            let profile = sounder
                .sound_averaged_channel(&h, self.frames_per_measurement, rng)
                .expect("sounder has >=2 training symbols");
            *measurements += 1;
            *elapsed += self.timing.measurement_s + self.timing.compute_per_eval_s;
            self.objective.score(&profile)
        };

        let baseline_config = Configuration::zeros(space.n_elements());
        let baseline_score = measure(&baseline_config, &mut measurements, &mut elapsed, &mut rng);

        let result = match self.strategy {
            Strategy::Exhaustive => search::exhaustive(&space, |c| {
                measure(c, &mut measurements, &mut elapsed, &mut rng)
            }),
            Strategy::Greedy { max_sweeps } => search::greedy_coordinate(
                &space,
                baseline_config.clone(),
                max_sweeps,
                |c| measure(c, &mut measurements, &mut elapsed, &mut rng),
            ),
            Strategy::Random { budget } => {
                let mut search_rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
                search::random_search(&space, budget, &mut search_rng, |c| {
                    measure(c, &mut measurements, &mut elapsed, &mut rng)
                })
            }
            Strategy::Annealing { budget } => {
                let mut search_rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
                search::simulated_annealing(&space, budget, 3.0, 0.05, &mut search_rng, |c| {
                    measure(c, &mut measurements, &mut elapsed, &mut rng)
                })
            }
        };

        // Actuate and verify; if the verification measurement contradicts
        // the search (it chased measurement noise), fall back to the
        // baseline — never leave the link worse than it was found.
        elapsed += self.timing.actuation_s;
        let chosen_score = measure(&result.best, &mut measurements, &mut elapsed, &mut rng);
        let (chosen_config, chosen_score, reverted) = if chosen_score < baseline_score {
            elapsed += self.timing.actuation_s;
            (baseline_config.clone(), baseline_score, true)
        } else {
            (result.best, chosen_score, false)
        };

        ControlReport {
            baseline_config,
            baseline_score,
            chosen_config,
            chosen_score,
            measurements,
            elapsed_s: elapsed,
            coherence_budget_s: self.coherence_budget_s,
            within_coherence: elapsed <= self.coherence_budget_s,
            reverted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_phy::Numerology;
    use press_propagation::{LabConfig, LabSetup};
    use press_sdr::SdrRadio;

    fn setup(n_elements: usize) -> (PressSystem, Sounder) {
        let lab = LabSetup::generate(&LabConfig::default(), 17);
        let lambda = lab.scene.wavelength();
        let mut rng = StdRng::seed_from_u64(4);
        let positions = lab.random_element_positions(n_elements, &mut rng);
        let array = PressArray::paper_passive(&positions, lambda);
        let system = PressSystem::new(lab.scene.clone(), array);
        let sounder = Sounder::new(
            Numerology::wifi20(WIFI_CHANNEL_11_HZ),
            SdrRadio::warp(lab.tx.clone()),
            SdrRadio::warp(lab.rx.clone()),
        );
        (system, sounder)
    }

    #[test]
    fn exhaustive_episode_improves_or_matches_baseline() {
        let (system, sounder) = setup(2);
        let c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let report = c.run_episode(&system, &sounder);
        // The exhaustive search must find something at least as good as the
        // baseline up to measurement noise.
        assert!(report.improvement() > -2.0, "improvement {}", report.improvement());
        assert_eq!(report.measurements, 1 + 16 + 1);
    }

    #[test]
    fn paper_prototype_blows_coherence_budget() {
        let (system, sounder) = setup(2);
        let c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let report = c.run_episode(&system, &sounder);
        // 18 measurements x 78 ms >> 80 ms: the paper's own latency problem.
        assert!(!report.within_coherence);
    }

    #[test]
    fn fast_control_plane_fits_budget_with_greedy() {
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Greedy { max_sweeps: 1 }, LinkObjective::MaxMinSnr);
        c.timing = TimingModel::fast_control_plane();
        let report = c.run_episode(&system, &sounder);
        assert!(
            report.within_coherence,
            "elapsed {} vs budget {}",
            report.elapsed_s,
            report.coherence_budget_s
        );
    }

    #[test]
    fn episodes_are_deterministic() {
        let (system, sounder) = setup(2);
        let c = Controller::new(Strategy::Random { budget: 6 }, LinkObjective::MaxMeanSnr);
        let a = c.run_episode(&system, &sounder);
        let b = c.run_episode(&system, &sounder);
        assert_eq!(a.chosen_config, b.chosen_config);
        assert_eq!(a.measurements, b.measurements);
    }

    #[test]
    fn greedy_uses_fewer_measurements_than_exhaustive() {
        let (system, sounder) = setup(3);
        let ex = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr)
            .run_episode(&system, &sounder);
        let gr = Controller::new(Strategy::Greedy { max_sweeps: 2 }, LinkObjective::MaxMinSnr)
            .run_episode(&system, &sounder);
        assert!(gr.measurements < ex.measurements);
    }
}
