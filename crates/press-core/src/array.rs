//! The PRESS array: placed elements that inject controllable paths.
//!
//! A [`PressArray`] is the deployed instrument: each element has a position,
//! an antenna, and switched hardware. Given a scene, two endpoints and a
//! [`Configuration`], it produces the TX → element → RX paths whose complex
//! coefficients the configuration controls — the handful of path-list
//! entries that make the environment programmable.

use crate::config::{ConfigSpace, Configuration};
use press_elements::Element;
use press_math::Complex64;
use press_propagation::antenna::Antenna;
use press_propagation::geometry::Vec3;
use press_propagation::path::{PathKind, SignalPath};
use press_propagation::scene::{RadioNode, Scene};

/// One deployed element: hardware + placement + its own antenna.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedElement {
    /// Electrical hardware (switch bank or active relay).
    pub element: Element,
    /// Position in the room, meters.
    pub position: Vec3,
    /// The element's antenna (the paper tries both 14 dBi parabolic and
    /// omnidirectional element antennas).
    pub antenna: Antenna,
}

/// A deployed PRESS array.
#[derive(Debug, Clone, PartialEq)]
pub struct PressArray {
    /// The deployed elements, in configuration order.
    pub elements: Vec<PlacedElement>,
}

impl PressArray {
    /// Builds an array from placed elements.
    pub fn new(elements: Vec<PlacedElement>) -> Self {
        PressArray { elements }
    }

    /// The paper's §3.2 deployment: three passive SP4T elements with
    /// omnidirectional antennas at the given positions.
    pub fn paper_passive(positions: &[Vec3], lambda_m: f64) -> Self {
        PressArray {
            elements: positions
                .iter()
                .map(|&p| PlacedElement {
                    element: Element::paper_passive(lambda_m),
                    position: p,
                    antenna: Antenna::endpoint_omni(),
                })
                .collect(),
        }
    }

    /// Like [`paper_passive`](Self::paper_passive) but with directional
    /// patch element antennas aimed at `aim` (normally the link midpoint) —
    /// the paper's directional-element variant (§3.1 tried a parabolic
    /// element antenna; §4.1 proposes PCB patches for wall embedding).
    pub fn paper_passive_aimed(positions: &[Vec3], lambda_m: f64, aim: Vec3) -> Self {
        use press_propagation::antenna::Pattern;
        PressArray {
            elements: positions
                .iter()
                .map(|&p| PlacedElement {
                    element: Element::paper_passive(lambda_m),
                    position: p,
                    antenna: Antenna::new(Pattern::press_patch(), aim - p),
                })
                .collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The configuration space treating active elements as single-state
    /// (their gain/phase is programmed continuously via
    /// [`Element::program_active`], not switched). Useful for hybrid arrays.
    pub fn config_space_passive_only(&self) -> ConfigSpace {
        ConfigSpace::new(
            self.elements
                .iter()
                .map(|pe| {
                    if pe.element.is_passive() {
                        pe.element.n_states()
                    } else {
                        1
                    }
                })
                .collect(),
        )
    }

    /// The discrete configuration space of this (all-passive) array.
    ///
    /// Panics when the array contains active elements.
    pub fn config_space(&self) -> ConfigSpace {
        ConfigSpace::of_elements(
            &self
                .elements
                .iter()
                .map(|pe| pe.element.clone())
                .collect::<Vec<_>>(),
        )
    }

    /// The controllable paths this array contributes between `tx` and `rx`
    /// under `config`, through `scene` (whose obstacles attenuate the
    /// element legs exactly as they do environment paths).
    ///
    /// Each element contributes one TX → element → RX bounce whose gain is
    /// `(element antenna gain toward TX) · (element antenna gain toward RX)
    /// · (switched response gain)` on top of the scene's two Friis legs,
    /// and whose delay includes the termination's extra waveguide delay.
    ///
    /// Panics when `config` does not match the array.
    pub fn paths(
        &self,
        scene: &Scene,
        tx: &RadioNode,
        rx: &RadioNode,
        config: &Configuration,
    ) -> Vec<SignalPath> {
        assert_eq!(
            config.len(),
            self.len(),
            "configuration/array size mismatch"
        );
        (0..self.len())
            .filter_map(|i| self.element_path(scene, tx, rx, i, config.states[i]))
            .collect()
    }

    /// The path one element would contribute in one state (`None` when the
    /// state reflects nothing, is invalid, or the path falls below the
    /// tracer's floor). The building block of [`paths`](Self::paths) and of
    /// the inverse-problem dictionary.
    pub fn element_path(
        &self,
        scene: &Scene,
        tx: &RadioNode,
        rx: &RadioNode,
        element_idx: usize,
        state: usize,
    ) -> Option<SignalPath> {
        let pe = &self.elements[element_idx];
        let response = pe.element.response_in_state(state).ok()?;
        if response.gain == Complex64::ZERO {
            return None;
        }
        let toward_tx = tx.position - pe.position;
        let toward_rx = rx.position - pe.position;
        let element_gain =
            pe.antenna.amplitude_gain(toward_tx) * pe.antenna.amplitude_gain(toward_rx);
        let reflect = response.gain * element_gain;
        let mut path = scene.bounce_path(
            tx,
            rx,
            pe.position,
            reflect,
            PathKind::PressElement {
                element: element_idx,
            },
        )?;
        path.delay_s += response.extra_delay_s;
        Some(path)
    }

    /// Applies a configuration to the array's own state (mutating the
    /// switches), so subsequent state queries reflect it. Path generation via
    /// [`paths`](Self::paths) is pure and does not require this.
    ///
    /// # Errors
    /// Returns the element index that rejected its state.
    pub fn apply(&mut self, config: &Configuration) -> Result<(), usize> {
        assert_eq!(
            config.len(),
            self.len(),
            "configuration/array size mismatch"
        );
        for (i, (pe, &state)) in self.elements.iter_mut().zip(&config.states).enumerate() {
            pe.element.set_state(state).map_err(|_| i)?;
        }
        Ok(())
    }

    /// The currently applied configuration.
    pub fn current_config(&self) -> Configuration {
        Configuration::new(self.elements.iter().map(|pe| pe.element.state()).collect())
    }

    /// Carrier wavelength helper for labelling.
    pub fn label_of(&self, config: &Configuration, lambda_m: f64) -> String {
        let elements: Vec<Element> = self.elements.iter().map(|pe| pe.element.clone()).collect();
        config.label(&elements, lambda_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_propagation::Material;

    fn lambda() -> f64 {
        press_math::consts::wavelength(WIFI_CHANNEL_11_HZ)
    }

    fn setup() -> (Scene, RadioNode, RadioNode, PressArray) {
        let scene = Scene::shoebox(WIFI_CHANNEL_11_HZ, 6.0, 5.0, 3.0, Material::DRYWALL);
        let tx = RadioNode::omni_at(Vec3::new(1.5, 2.0, 1.5));
        let rx = RadioNode::omni_at(Vec3::new(4.5, 3.0, 1.5));
        let array = PressArray::paper_passive(
            &[
                Vec3::new(2.5, 1.5, 1.5),
                Vec3::new(3.0, 3.5, 1.5),
                Vec3::new(3.5, 2.0, 1.5),
            ],
            lambda(),
        );
        (scene, tx, rx, array)
    }

    #[test]
    fn array_contributes_one_path_per_reflecting_element() {
        let (scene, tx, rx, array) = setup();
        let all_reflect = Configuration::new(vec![0, 1, 2]);
        let paths = array.paths(&scene, &tx, &rx, &all_reflect);
        assert_eq!(paths.len(), 3);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(p.kind, PathKind::PressElement { element: i });
        }
    }

    #[test]
    fn terminated_elements_contribute_weakly_or_not() {
        let (scene, tx, rx, array) = setup();
        let all_terminated = Configuration::new(vec![3, 3, 3]);
        let reflecting = Configuration::new(vec![0, 0, 0]);
        let p_term: f64 = array
            .paths(&scene, &tx, &rx, &all_terminated)
            .iter()
            .map(|p| p.gain.norm_sqr())
            .sum();
        let p_refl: f64 = array
            .paths(&scene, &tx, &rx, &reflecting)
            .iter()
            .map(|p| p.gain.norm_sqr())
            .sum();
        assert!(
            p_term < p_refl / 100.0,
            "terminated {p_term:.3e} vs reflecting {p_refl:.3e}"
        );
    }

    #[test]
    fn waveguide_states_differ_in_delay_not_magnitude() {
        let (scene, tx, rx, array) = setup();
        let p0 = &array.paths(&scene, &tx, &rx, &Configuration::new(vec![0, 3, 3]))[0];
        let p2 = &array.paths(&scene, &tx, &rx, &Configuration::new(vec![2, 3, 3]))[0];
        assert!((p0.gain.abs() - p2.gain.abs()).abs() < 1e-12);
        let d_delay = p2.delay_s - p0.delay_s;
        let expect = (lambda() / 2.0) / 299_792_458.0;
        assert!((d_delay - expect).abs() < 1e-15, "{d_delay} vs {expect}");
    }

    #[test]
    fn config_space_matches_paper() {
        let (_, _, _, array) = setup();
        assert_eq!(array.config_space().size(), 64);
    }

    #[test]
    fn apply_and_read_back() {
        let (_, _, _, mut array) = setup();
        let c = Configuration::new(vec![1, 3, 2]);
        array.apply(&c).unwrap();
        assert_eq!(array.current_config(), c);
    }

    #[test]
    fn apply_invalid_reports_element() {
        let (_, _, _, mut array) = setup();
        let bad = Configuration::new(vec![0, 9, 0]);
        assert_eq!(array.apply(&bad), Err(1));
    }

    #[test]
    fn element_paths_respect_obstacles() {
        let (mut scene, tx, rx, array) = setup();
        let cfg = Configuration::new(vec![0, 3, 3]); // only element 0 active
        let clear = array.paths(&scene, &tx, &rx, &cfg)[0].gain.abs();
        // Wall off element 0 from the TX side.
        scene.add_obstacle(
            press_propagation::Aabb::new(Vec3::new(1.9, 1.0, 0.0), Vec3::new(2.1, 2.5, 3.0)),
            Material::METAL,
        );
        let blocked = array.paths(&scene, &tx, &rx, &cfg)[0].gain.abs();
        assert!(blocked < clear / 10.0, "{blocked} vs {clear}");
    }

    #[test]
    fn paper_label_roundtrip() {
        let (_, _, _, array) = setup();
        let c = Configuration::new(vec![2, 0, 1]);
        assert_eq!(array.label_of(&c, lambda()), "(π, 0, 0.5π)");
    }

    #[test]
    #[should_panic(expected = "configuration/array size mismatch")]
    fn size_mismatch_panics() {
        let (scene, tx, rx, array) = setup();
        array.paths(&scene, &tx, &rx, &Configuration::zeros(2));
    }
}
