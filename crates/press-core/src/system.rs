//! A PRESS system: scene + array, with cached environment paths.
//!
//! Ties the static environment (traced once per endpoint pair) to the
//! controllable array paths (recomputed per configuration). Every harness,
//! objective evaluation and controller loop goes through
//! [`PressSystem::paths`].

use crate::array::PressArray;
use crate::config::Configuration;
use press_propagation::fading::ChannelDrift;
use press_propagation::path::SignalPath;
use press_propagation::scene::{RadioNode, Scene};
use rand::Rng;

/// Scene + deployed array.
#[derive(Debug, Clone)]
pub struct PressSystem {
    /// The physical environment.
    pub scene: Scene,
    /// The deployed PRESS array.
    pub array: PressArray,
}

impl PressSystem {
    /// Builds a system.
    pub fn new(scene: Scene, array: PressArray) -> Self {
        PressSystem { scene, array }
    }

    /// Environment-only paths between two endpoints (no PRESS contribution).
    pub fn environment_paths(&self, tx: &RadioNode, rx: &RadioNode) -> Vec<SignalPath> {
        self.scene.paths(tx, rx)
    }

    /// Full path set under a configuration: environment + array.
    pub fn paths(&self, tx: &RadioNode, rx: &RadioNode, config: &Configuration) -> Vec<SignalPath> {
        let mut paths = self.environment_paths(tx, rx);
        paths.extend(self.array.paths(&self.scene, tx, rx, config));
        paths
    }

    /// Carrier wavelength, meters.
    pub fn lambda(&self) -> f64 {
        self.scene.wavelength()
    }
}

/// A link with its environment paths traced once.
///
/// Re-tracing walls and scatterers for all 64 configurations × 10 trials
/// would dominate runtime; the environment is configuration-independent, so
/// campaigns cache it here and only the (cheap) element paths vary.
#[derive(Debug, Clone)]
pub struct CachedLink {
    /// Transmit endpoint.
    pub tx: RadioNode,
    /// Receive endpoint.
    pub rx: RadioNode,
    /// Cached environment paths (may be mutated by channel drift between
    /// trials, which is exactly why they are stored rather than re-traced).
    pub environment: Vec<SignalPath>,
    /// Monotonic environment revision. Bumped by
    /// [`mark_dirty`](Self::mark_dirty) and
    /// [`apply_drift`](Self::apply_drift) so derived caches (notably
    /// [`crate::basis::LinkBasis`]) can detect stale environment responses
    /// instead of silently serving them. Code that mutates `environment`
    /// directly must call [`mark_dirty`](Self::mark_dirty) afterwards.
    pub revision: u64,
}

impl CachedLink {
    /// Traces and caches the environment between two endpoints.
    pub fn trace(system: &PressSystem, tx: RadioNode, rx: RadioNode) -> Self {
        let environment = system.environment_paths(&tx, &rx);
        CachedLink {
            tx,
            rx,
            environment,
            revision: 0,
        }
    }

    /// Declares the cached environment changed, invalidating derived caches.
    pub fn mark_dirty(&mut self) {
        self.revision += 1;
    }

    /// Applies one [`ChannelDrift`] step to the cached environment paths and
    /// bumps the revision — the invalidation-safe way to emulate the slow
    /// environmental drift between campaign trials.
    pub fn apply_drift<R: Rng + ?Sized>(&mut self, drift: &ChannelDrift, rng: &mut R) {
        drift.step(&mut self.environment, rng);
        self.mark_dirty();
    }

    /// Full path set under a configuration, using the cached environment.
    pub fn paths(&self, system: &PressSystem, config: &Configuration) -> Vec<SignalPath> {
        let mut paths = self.environment.clone();
        paths.extend(
            system
                .array
                .paths(&system.scene, &self.tx, &self.rx, config),
        );
        paths
    }

    /// Like [`paths`](Self::paths) but reusing a caller-owned buffer, so
    /// per-measurement sweeps avoid cloning the environment path vector on
    /// every configuration. The buffer is cleared and refilled in the same
    /// order [`paths`](Self::paths) produces.
    pub fn paths_into(
        &self,
        system: &PressSystem,
        config: &Configuration,
        out: &mut Vec<SignalPath>,
    ) {
        out.clear();
        out.extend_from_slice(&self.environment);
        out.extend(
            system
                .array
                .paths(&system.scene, &self.tx, &self.rx, config),
        );
    }

    /// Path set of a partially-applied actuation: element `i` is traced in
    /// its `target` state where `applied[i]` and its `prev` state otherwise.
    /// This is the path-list counterpart of
    /// [`LinkBasis::synthesize_partial_into`](crate::basis::LinkBasis::synthesize_partial_into).
    pub fn paths_partial(
        &self,
        system: &PressSystem,
        prev: &Configuration,
        target: &Configuration,
        applied: &[bool],
    ) -> Vec<SignalPath> {
        self.paths(system, &prev.overlay(target, applied))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_propagation::path::PathKind;
    use press_propagation::{Material, Vec3};

    fn system() -> (PressSystem, RadioNode, RadioNode) {
        let scene = Scene::shoebox(WIFI_CHANNEL_11_HZ, 6.0, 5.0, 3.0, Material::DRYWALL);
        let lambda = scene.wavelength();
        let array = PressArray::paper_passive(
            &[
                Vec3::new(2.5, 1.5, 1.5),
                Vec3::new(3.0, 3.5, 1.5),
                Vec3::new(3.5, 2.0, 1.5),
            ],
            lambda,
        );
        let tx = RadioNode::omni_at(Vec3::new(1.5, 2.0, 1.5));
        let rx = RadioNode::omni_at(Vec3::new(4.5, 3.0, 1.5));
        (PressSystem::new(scene, array), tx, rx)
    }

    #[test]
    fn paths_superpose_environment_and_array() {
        let (sys, tx, rx) = system();
        let env = sys.environment_paths(&tx, &rx);
        let full = sys.paths(&tx, &rx, &Configuration::new(vec![0, 0, 0]));
        assert_eq!(full.len(), env.len() + 3);
        assert!(env
            .iter()
            .all(|p| !matches!(p.kind, PathKind::PressElement { .. })));
    }

    #[test]
    fn cached_link_matches_direct_tracing() {
        let (sys, tx, rx) = system();
        let link = CachedLink::trace(&sys, tx.clone(), rx.clone());
        let cfg = Configuration::new(vec![1, 2, 0]);
        let direct = sys.paths(&tx, &rx, &cfg);
        let cached = link.paths(&sys, &cfg);
        assert_eq!(direct.len(), cached.len());
        for (a, b) in direct.iter().zip(&cached) {
            assert_eq!(a.gain, b.gain);
            assert_eq!(a.delay_s, b.delay_s);
        }
    }

    #[test]
    fn different_configs_change_only_element_paths() {
        let (sys, tx, rx) = system();
        let link = CachedLink::trace(&sys, tx, rx);
        let a = link.paths(&sys, &Configuration::new(vec![0, 0, 0]));
        let b = link.paths(&sys, &Configuration::new(vec![2, 2, 2]));
        let n_env = link.environment.len();
        for k in 0..n_env {
            assert_eq!(a[k].gain, b[k].gain, "environment path {k} must not move");
        }
        assert_ne!(
            a[n_env].delay_s, b[n_env].delay_s,
            "element paths must move"
        );
    }
}
