//! Measurement campaigns: sweep every configuration, many trials.
//!
//! Reproduces the paper's §3.2 procedure: "Because of the latency in our
//! experimental setup, the channel for these 64 different combinations
//! cannot be measured within channel coherence time (it takes about
//! 5 seconds to measure all of the combinations). To compensate, we iterate
//! through the 64 combinations 10 times and calculate statistics on the SNR
//! for each PRESS antenna configuration." Between trials the environment
//! drifts slightly (equipment movement, people) — modelled by
//! [`ChannelDrift`].

use crate::basis::LinkBasis;
use crate::config::{ConfigSpace, Configuration};
use crate::search::derive_stream_seed;
use crate::system::{CachedLink, PressSystem};
use press_math::Complex64;
use press_phy::snr::SnrProfile;
use press_propagation::fading::ChannelDrift;
// crossbeam provides the scoped threads for the parallel campaign runner.
use press_sdr::Sounder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of full sweeps over the configuration space (the paper: 10).
    pub n_trials: usize,
    /// Sounding frames averaged per configuration per trial.
    pub frames_per_config: usize,
    /// Wall-clock latency charged per configuration measurement, seconds.
    /// The paper's prototype needed ~5 s / 64 ≈ 78 ms per configuration.
    pub per_config_latency_s: f64,
    /// Environment drift applied between trials.
    pub drift: ChannelDrift,
    /// RNG seed (campaigns are fully deterministic given this).
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            n_trials: 10,
            frames_per_config: 4,
            per_config_latency_s: 5.0 / 64.0,
            drift: ChannelDrift::quiet_lab(),
            seed: 0,
        }
    }
}

/// The output of a campaign: per-trial, per-configuration SNR profiles.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The configurations measured, in sweep order.
    pub configs: Vec<Configuration>,
    /// `profiles[trial][config_idx]`.
    pub profiles: Vec<Vec<SnrProfile>>,
    /// Total emulated wall-clock time, seconds.
    pub elapsed_s: f64,
}

impl CampaignResult {
    /// Number of trials.
    pub fn n_trials(&self) -> usize {
        self.profiles.len()
    }

    /// Number of configurations.
    pub fn n_configs(&self) -> usize {
        self.configs.len()
    }

    /// Mean SNR profile of one configuration across trials (per-subcarrier
    /// dB mean — the paper's "mean SNR on any given subcarrier").
    pub fn mean_profile(&self, config_idx: usize) -> SnrProfile {
        let n_sc = self.profiles[0][config_idx].len();
        let mut acc = vec![0.0; n_sc];
        for trial in &self.profiles {
            for (a, v) in acc.iter_mut().zip(&trial[config_idx].snr_db) {
                *a += v;
            }
        }
        for a in acc.iter_mut() {
            *a /= self.n_trials() as f64;
        }
        SnrProfile::new(acc)
    }

    /// Mean profiles for all configurations.
    pub fn mean_profiles(&self) -> Vec<SnrProfile> {
        (0..self.n_configs())
            .map(|i| self.mean_profile(i))
            .collect()
    }
}

/// Runs a full campaign: `n_trials` sweeps of every configuration in the
/// array's space over the given link, sounding each through `sounder`.
///
/// The environment paths drift between trials; element paths are recomputed
/// per configuration from the (drifted) scene geometry. Wall-clock time is
/// charged per measurement so coherence-time analyses can reason about it.
pub fn run_campaign(
    system: &PressSystem,
    sounder: &Sounder,
    campaign: &CampaignConfig,
) -> CampaignResult {
    let space = system.array.config_space();
    run_campaign_over(system, sounder, campaign, &space.iter().collect::<Vec<_>>())
}

/// Like [`run_campaign`] but over an explicit configuration list (subsets,
/// orderings, or spaces too big to enumerate).
pub fn run_campaign_over(
    system: &PressSystem,
    sounder: &Sounder,
    campaign: &CampaignConfig,
    configs: &[Configuration],
) -> CampaignResult {
    assert!(campaign.n_trials > 0, "need at least one trial");
    let mut rng = StdRng::seed_from_u64(campaign.seed);
    let mut link = CachedLink::trace(system, sounder.tx.node.clone(), sounder.rx.node.clone());
    // Element paths and the environment response are shared by every
    // measurement of a trial: precompute them once and synthesize each
    // configuration's channel by O(N·K) accumulation instead of re-tracing
    // and re-summing the whole path list per measurement.
    let mut basis = LinkBasis::for_numerology(system, &link, &sounder.num);
    let mut h: Vec<Complex64> = Vec::with_capacity(basis.n_subcarriers());
    let mut profiles = Vec::with_capacity(campaign.n_trials);
    let mut elapsed = 0.0;
    for trial in 0..campaign.n_trials {
        if trial > 0 {
            link.apply_drift(&campaign.drift, &mut rng);
            basis.ensure_fresh(&link);
        }
        let mut row = Vec::with_capacity(configs.len());
        for config in configs {
            basis.synthesize_into(config, elapsed, &mut h);
            let profile = sounder
                .sound_averaged_channel(&h, campaign.frames_per_config, &mut rng)
                .expect("sounder configured with >=2 training symbols"); // press-lint: allow(panic-freedom) — infallible with >=2 training symbols
            row.push(profile);
            elapsed += campaign.per_config_latency_s;
        }
        profiles.push(row);
    }
    CampaignResult {
        configs: configs.to_vec(),
        profiles,
        elapsed_s: elapsed,
    }
}

/// Like [`run_campaign_over`] but measuring configurations in parallel
/// across worker threads.
///
/// Determinism is preserved by construction: every (trial, configuration)
/// measurement draws from its own RNG seeded by `hash(seed, trial, config)`,
/// so results are bit-identical regardless of thread count or scheduling —
/// though *different* from the serial runner's stream, which threads one
/// RNG through the sweep the way the paper's sequential prototype did.
pub fn run_campaign_parallel(
    system: &PressSystem,
    sounder: &Sounder,
    campaign: &CampaignConfig,
    configs: &[Configuration],
    n_threads: usize,
) -> CampaignResult {
    assert!(campaign.n_trials > 0, "need at least one trial");
    assert!(n_threads > 0, "need at least one thread");
    let mut drift_rng = StdRng::seed_from_u64(campaign.seed);
    let base_link = CachedLink::trace(system, sounder.tx.node.clone(), sounder.rx.node.clone());

    // Evolve the environment serially (drift is a sequential random walk),
    // keeping one basis snapshot per trial: the element columns are built
    // once and shared, only the drifted environment response is re-derived.
    let mut bases = Vec::with_capacity(campaign.n_trials);
    let base_basis = LinkBasis::for_numerology(system, &base_link, &sounder.num);
    let mut link = base_link;
    for trial in 0..campaign.n_trials {
        if trial > 0 {
            link.apply_drift(&campaign.drift, &mut drift_rng);
        }
        let mut basis = base_basis.clone();
        basis.ensure_fresh(&link);
        bases.push(basis);
    }

    // SplitMix64-style per-measurement seed derivation (see
    // [`derive_stream_seed`]).
    let derive_seed = |trial: usize, cfg: usize| -> u64 {
        derive_stream_seed(campaign.seed, trial as u64, cfg as u64)
    };

    let mut profiles: Vec<Vec<Option<SnrProfile>>> =
        vec![vec![None; configs.len()]; campaign.n_trials];
    // Flatten (trial, config) jobs and deal them to scoped worker threads.
    let jobs: Vec<(usize, usize)> = (0..campaign.n_trials)
        .flat_map(|t| (0..configs.len()).map(move |c| (t, c)))
        .collect();
    crossbeam::thread::scope(|scope| {
        // Split the output grid into per-trial rows; each worker takes a
        // strided share of the flattened jobs and writes through a raw
        // partitioned view (disjoint by construction).
        let results: Vec<_> = (0..n_threads)
            .map(|w| {
                let bases = &bases;
                let jobs = &jobs;
                scope.spawn(move |_| {
                    let mut h: Vec<Complex64> = Vec::new();
                    let mut out = Vec::new();
                    let mut j = w;
                    while j < jobs.len() {
                        let (trial, cfg_idx) = jobs[j];
                        let mut rng = StdRng::seed_from_u64(derive_seed(trial, cfg_idx));
                        let t_s = campaign.per_config_latency_s
                            * (trial * configs.len() + cfg_idx) as f64;
                        bases[trial].synthesize_into(&configs[cfg_idx], t_s, &mut h);
                        let profile = sounder
                            .sound_averaged_channel(&h, campaign.frames_per_config, &mut rng)
                            .expect("sounder configured with >=2 training symbols"); // press-lint: allow(panic-freedom) — infallible with >=2 training symbols
                        out.push((trial, cfg_idx, profile));
                        j += n_threads;
                    }
                    out
                })
            })
            .collect();
        for handle in results {
            // press-lint: allow(panic-freedom) — join only re-raises a worker panic
            for (trial, cfg_idx, profile) in handle.join().expect("worker panicked") {
                profiles[trial][cfg_idx] = Some(profile);
            }
        }
    })
    .expect("campaign scope"); // press-lint: allow(panic-freedom) — Err only when a worker panicked, surfaced at join above

    CampaignResult {
        configs: configs.to_vec(),
        profiles: profiles
            .into_iter()
            .map(|row| row.into_iter().map(|p| p.expect("all jobs ran")).collect()) // press-lint: allow(panic-freedom) — every (trial, config) slot is written by exactly one worker
            .collect(),
        elapsed_s: campaign.per_config_latency_s * (campaign.n_trials * configs.len()) as f64,
    }
}

/// Convenience: how long a sweep takes vs. the coherence budget. Returns
/// `(sweep_time_s, coherence_time_s, fits)` for a given movement speed.
pub fn coherence_check(
    system: &PressSystem,
    campaign: &CampaignConfig,
    space: &ConfigSpace,
    speed_mps: f64,
) -> (f64, f64, bool) {
    let sweep = campaign.per_config_latency_s * space.size() as f64;
    let coherence = system.scene.coherence_time_s(speed_mps);
    (sweep, coherence, sweep <= coherence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_phy::Numerology;
    use press_propagation::{LabConfig, LabSetup, Material, Scene, Vec3};
    use press_sdr::SdrRadio;

    fn small_system() -> (PressSystem, Sounder) {
        let lab = LabSetup::generate(&LabConfig::default(), 42);
        let lambda = lab.scene.wavelength();
        let mut rng = StdRng::seed_from_u64(7);
        let positions = lab.random_element_positions(2, &mut rng);
        let array = PressArray::paper_passive(&positions, lambda);
        let system = PressSystem::new(lab.scene.clone(), array);
        let sounder = Sounder::new(
            Numerology::wifi20(WIFI_CHANNEL_11_HZ),
            SdrRadio::warp(lab.tx.clone()),
            SdrRadio::warp(lab.rx.clone()),
        );
        (system, sounder)
    }

    fn quick_campaign() -> CampaignConfig {
        CampaignConfig {
            n_trials: 3,
            frames_per_config: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_shape_and_determinism() {
        let (system, sounder) = small_system();
        let cfg = quick_campaign();
        let a = run_campaign(&system, &sounder, &cfg);
        let b = run_campaign(&system, &sounder, &cfg);
        assert_eq!(a.n_trials(), 3);
        assert_eq!(a.n_configs(), 16, "2 elements x 4 states");
        assert_eq!(a.profiles[0][0].snr_db, b.profiles[0][0].snr_db);
        assert_eq!(a.profiles[2][15].snr_db, b.profiles[2][15].snr_db);
    }

    #[test]
    fn elapsed_time_accounts_all_measurements() {
        let (system, sounder) = small_system();
        let cfg = quick_campaign();
        let r = run_campaign(&system, &sounder, &cfg);
        let expect = cfg.per_config_latency_s * 16.0 * 3.0;
        assert!((r.elapsed_s - expect).abs() < 1e-9);
    }

    #[test]
    fn configurations_change_the_measured_channel() {
        let (system, sounder) = small_system();
        let r = run_campaign(&system, &sounder, &quick_campaign());
        let means = r.mean_profiles();
        // At least one pair of configurations must differ noticeably on some
        // subcarrier — otherwise PRESS has no effect and the reproduction is
        // broken at the root.
        let mut max_delta = 0.0f64;
        for i in 0..means.len() {
            for j in 0..i {
                max_delta = max_delta.max(means[i].max_abs_delta_db(&means[j]));
            }
        }
        assert!(max_delta > 3.0, "max pairwise delta only {max_delta} dB");
    }

    #[test]
    fn mean_profile_is_trial_average() {
        let (system, sounder) = small_system();
        let r = run_campaign(&system, &sounder, &quick_campaign());
        let m = r.mean_profile(5);
        let manual: f64 = (0..3).map(|t| r.profiles[t][5].snr_db[10]).sum::<f64>() / 3.0;
        assert!((m.snr_db[10] - manual).abs() < 1e-12);
    }

    #[test]
    fn coherence_check_paper_numbers() {
        let scene = Scene::shoebox(WIFI_CHANNEL_11_HZ, 6.0, 5.0, 3.0, Material::DRYWALL);
        let array = PressArray::paper_passive(
            &[
                Vec3::new(2.0, 2.0, 1.5),
                Vec3::new(3.0, 3.0, 1.5),
                Vec3::new(2.5, 2.5, 1.5),
            ],
            scene.wavelength(),
        );
        let system = PressSystem::new(scene, array);
        let space = system.array.config_space();
        let campaign = CampaignConfig::default();
        let mph = 0.44704;
        let (sweep, coh, fits) = coherence_check(&system, &campaign, &space, 0.5 * mph);
        // The paper: 5 s sweep cannot fit in the ~80 ms coherence time.
        assert!((sweep - 5.0).abs() < 1e-9);
        assert!(coh < 0.1);
        assert!(!fits);
    }

    #[test]
    fn parallel_campaign_is_thread_count_invariant() {
        let (system, sounder) = small_system();
        let cfg = quick_campaign();
        let space = system.array.config_space();
        let configs: Vec<Configuration> = space.iter().collect();
        let a = run_campaign_parallel(&system, &sounder, &cfg, &configs, 1);
        let b = run_campaign_parallel(&system, &sounder, &cfg, &configs, 4);
        for (ta, tb) in a.profiles.iter().zip(&b.profiles) {
            for (pa, pb) in ta.iter().zip(tb) {
                assert_eq!(pa.snr_db, pb.snr_db);
            }
        }
    }

    #[test]
    fn parallel_campaign_matches_serial_statistics() {
        let (system, sounder) = small_system();
        let cfg = quick_campaign();
        let space = system.array.config_space();
        let configs: Vec<Configuration> = space.iter().collect();
        let serial = run_campaign_over(&system, &sounder, &cfg, &configs);
        let parallel = run_campaign_parallel(&system, &sounder, &cfg, &configs, 4);
        // Different RNG streams, same physics: per-config mean profiles
        // agree within measurement noise.
        let ms = serial.mean_profiles();
        let mp = parallel.mean_profiles();
        for (a, b) in ms.iter().zip(&mp) {
            assert!(
                (a.mean_db() - b.mean_db()).abs() < 3.0,
                "serial {} vs parallel {}",
                a.mean_db(),
                b.mean_db()
            );
        }
    }

    #[test]
    fn campaign_over_subset() {
        let (system, sounder) = small_system();
        let subset = vec![
            Configuration::new(vec![0, 0]),
            Configuration::new(vec![3, 3]),
        ];
        let r = run_campaign_over(&system, &sounder, &quick_campaign(), &subset);
        assert_eq!(r.n_configs(), 2);
    }
}
