//! The closed-loop PRESS controller.
//!
//! §2 of the paper lists the three actuation tasks: (1) gather channel
//! information, (2) navigate the configuration space quickly, (3) apply the
//! chosen configuration — all "during the channel coherence time", and
//! ideally on packet-level timescales of one to two milliseconds. The
//! [`Controller`] here runs that loop against the simulated system, charging
//! wall-clock cost for every measurement, computation and actuation so the
//! coherence budget is a real constraint, not an aspiration.
//!
//! The module is split along the phase machinery:
//!
//! * [`engine`] — the one generic Measure→Search→Actuate→Verify→Revert
//!   state machine every entry point runs through, plus the command/event
//!   API ([`EngineCommand`] / [`EngineEvent`] / [`EpisodeEngine`]) a
//!   long-running daemon drives;
//! * [`episode`] — the single-link model and the historical
//!   `run_episode{,_instrumented,_traced}` entry points;
//! * [`space`] — the multi-link [`SmartSpace`](crate::space::SmartSpace)
//!   model and `run_space_episode{,_instrumented,_traced}`;
//! * [`churn`] — `run_churn_episode`, the per-round seed-stream replay of
//!   an association/roam/leave schedule.
//!
//! Every pre-split entry point keeps its signature and produces
//! bit-identical reports and trace streams (pinned by
//! `tests/determinism.rs`' golden hashes): the engine changes where the
//! loop's code lives, never which values it computes or in what order.

pub mod churn;
pub mod engine;
pub mod episode;
pub mod space;

pub use engine::{EngineCommand, EngineEvent, EngineSnapshot, EpisodeEngine};

use crate::config::Configuration;
use crate::objective::LinkObjective;
use crate::space::LinkId;
use press_control::{AckPolicy, DesConfig, FaultPlan, Transport};
use press_trace::Event;

/// Wall-clock cost model of the control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Cost of one channel measurement (frame airtime + CSI processing +
    /// feedback to the controller), seconds.
    pub measurement_s: f64,
    /// Cost of actuating one array configuration over the control plane,
    /// seconds.
    pub actuation_s: f64,
    /// Controller compute per candidate evaluated, seconds.
    pub compute_per_eval_s: f64,
}

impl TimingModel {
    /// The paper's prototype: ~78 ms per measured configuration (5 s / 64),
    /// with actuation folded into that figure.
    pub fn paper_prototype() -> TimingModel {
        TimingModel {
            measurement_s: 5.0 / 64.0,
            actuation_s: 0.0,
            compute_per_eval_s: 1e-5,
        }
    }

    /// A production-grade target: per-packet sounding (~100 µs), 1 ms-class
    /// control-plane actuation, microsecond compute.
    pub fn fast_control_plane() -> TimingModel {
        TimingModel {
            measurement_s: 100e-6,
            actuation_s: 1e-3,
            compute_per_eval_s: 1e-6,
        }
    }
}

/// Which search strategy the controller runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Measure every configuration (only feasible for small arrays).
    Exhaustive,
    /// Greedy coordinate descent with the given sweep limit.
    Greedy {
        /// Maximum sweeps.
        max_sweeps: usize,
    },
    /// Random sampling with a fixed measurement budget.
    Random {
        /// Number of configurations measured.
        budget: usize,
    },
    /// Simulated annealing with the given measurement budget.
    Annealing {
        /// Number of configurations measured.
        budget: usize,
    },
}

impl Strategy {
    /// Stable lowercase label used in trace events and convergence CSVs.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::Greedy { .. } => "greedy",
            Strategy::Random { .. } => "random",
            Strategy::Annealing { .. } => "annealing",
        }
    }
}

/// Transport-backed actuation settings for [`ActuationMode::Transport`]:
/// the chosen configuration is driven over a real control-plane transport
/// with the round-based [`press_control::actuate_with`] model, and elements the protocol
/// could not reach stay at their previous switch state.
#[derive(Debug, Clone)]
pub struct TransportActuation {
    /// The control channel.
    pub transport: Transport,
    /// Acknowledgement / retransmission policy.
    pub policy: AckPolicy,
    /// Worst-case controller-element range, meters.
    pub distance_m: f64,
    /// Fault injection (burst loss, dead/stuck elements). Cloned per
    /// episode so burst-chain state does not leak between episodes.
    pub faults: FaultPlan,
}

impl TransportActuation {
    /// A clean wired control bus with per-element acks.
    pub fn wired() -> TransportActuation {
        TransportActuation {
            transport: Transport::wired(),
            policy: AckPolicy::PerElement { max_retries: 4 },
            distance_m: 15.0,
            faults: FaultPlan::none(),
        }
    }

    /// A low-rate ISM radio with adaptive retry.
    pub fn ism() -> TransportActuation {
        TransportActuation {
            transport: Transport::ism(),
            policy: AckPolicy::Adaptive {
                max_retries: 6,
                batch_cap: 16,
            },
            distance_m: 15.0,
            faults: FaultPlan::none(),
        }
    }
}

/// Discrete-event-simulated actuation settings for [`ActuationMode::Des`].
#[derive(Debug, Clone)]
pub struct DesActuation {
    /// The control channel.
    pub transport: Transport,
    /// Simulator parameters (timeouts, backoff, attempt budget).
    pub cfg: DesConfig,
    /// Fault injection, cloned per episode.
    pub faults: FaultPlan,
}

/// How [`Controller::run_episode`](crate::controller::Controller::run_episode)
/// applies configurations to the array.
#[derive(Debug, Clone)]
pub enum ActuationMode {
    /// Instant, perfect actuation charged at the flat
    /// [`TimingModel::actuation_s`] cost — the historical behavior, and
    /// bit-identical to it.
    Oracle,
    /// Drive the round-based [`press_control::actuate_with`] protocol over a transport;
    /// completion time is charged as measured and unreached elements stay
    /// at their previous state.
    Transport(TransportActuation),
    /// Drive the discrete-event simulator ([`press_control::simulate_actuation_with`])
    /// instead of the round model.
    Des(DesActuation),
}

/// Post-mortem captured when a *traced* episode reverts: the flight
/// recorder's last events (wall-clock stripped) plus the configuration the
/// search wanted and the one the control plane actually produced.
///
/// Only the traced entry points with a live flight recorder populate this —
/// the silent paths run a capacity-0 recorder and leave the field `None`,
/// so instrumented-vs-bare bitwise comparisons still hold.
#[derive(Debug, Clone, PartialEq)]
pub struct PostMortem {
    /// The flight recorder's snapshot at the moment of the revert,
    /// oldest event first.
    pub events: Vec<Event>,
    /// The configuration the search chose (what actuation attempted).
    pub attempted: Configuration,
    /// The configuration the array was actually in when verification
    /// rejected it.
    pub realized: Configuration,
}

/// Outcome of one control episode.
///
/// Derives `PartialEq` so determinism tests can assert two same-seed
/// episodes are bit-identical, scores included.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlReport {
    /// Configuration in force before the episode.
    pub baseline_config: Configuration,
    /// Objective score of the baseline.
    pub baseline_score: f64,
    /// Configuration chosen by the episode.
    pub chosen_config: Configuration,
    /// Objective score of the chosen configuration (verification measurement).
    pub chosen_score: f64,
    /// Number of channel measurements spent.
    pub measurements: usize,
    /// Total emulated wall-clock time of the episode, seconds.
    pub elapsed_s: f64,
    /// Coherence time the episode was budgeted against, seconds.
    pub coherence_budget_s: f64,
    /// Whether the episode finished within the coherence budget.
    pub within_coherence: bool,
    /// Whether the verification measurement rejected the search result and
    /// the controller fell back to the baseline configuration.
    pub reverted: bool,
    /// The configuration the array is physically in at episode end. Under
    /// [`ActuationMode::Oracle`] this equals [`chosen_config`](Self::chosen_config);
    /// under a lossy transport, unreached elements hold their previous
    /// state and stuck elements hold their stuck state.
    pub realized_config: Configuration,
    /// Elements whose realized state differs from the chosen configuration.
    pub stale_elements: usize,
    /// Control frames spent actuating (0 under the oracle).
    pub actuation_frames: usize,
    /// Retransmission effort spent actuating (retry rounds for the round
    /// model, retransmitted frames for the DES; 0 under the oracle).
    pub actuation_retries: usize,
    /// Flight-recorder post-mortem, populated only when a traced episode
    /// with a live flight recorder reverted.
    pub post_mortem: Option<PostMortem>,
}

impl ControlReport {
    /// Improvement of the chosen configuration over the baseline, in the
    /// objective's units (dB for the SNR objectives).
    pub fn improvement(&self) -> f64 {
        self.chosen_score - self.baseline_score
    }
}

/// One link's view of a multi-link episode (all scores are *measured*, on
/// the array the control plane actually produced).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkReport {
    /// Registry identity of the link.
    pub id: LinkId,
    /// The link's registry label.
    pub label: String,
    /// The link's weight in the space-wide objective.
    pub weight: f64,
    /// This link's objective score of the baseline measurement.
    pub baseline_score: f64,
    /// This link's objective score of the verification measurement (the
    /// baseline values when the episode reverted).
    pub chosen_score: f64,
    /// Mean measured SNR of the baseline, dB.
    pub baseline_mean_snr_db: f64,
    /// Mean measured SNR of the verification (baseline when reverted), dB.
    pub chosen_mean_snr_db: f64,
}

impl LinkReport {
    /// Improvement of this link's verified score over its baseline, in the
    /// link objective's units.
    pub fn improvement(&self) -> f64 {
        self.chosen_score - self.baseline_score
    }
}

/// Outcome of one multi-link ([`SmartSpace`](crate::space::SmartSpace))
/// control episode.
///
/// The scalar fields mirror [`ControlReport`] with scores replaced by the
/// space-wide weighted objective; [`links`](Self::links) carries each
/// link's verified view. Derives `PartialEq` so determinism tests can
/// assert two same-seed episodes are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceReport {
    /// Configuration in force before the episode.
    pub baseline_config: Configuration,
    /// Weighted space-wide score of the baseline.
    pub baseline_score: f64,
    /// Configuration chosen by the episode.
    pub chosen_config: Configuration,
    /// Weighted space-wide score of the verification measurement.
    pub chosen_score: f64,
    /// Per-link verified outcomes, in registry order.
    pub links: Vec<LinkReport>,
    /// Number of channel measurements spent (each link counts its own).
    pub measurements: usize,
    /// Total emulated wall-clock time of the episode, seconds.
    pub elapsed_s: f64,
    /// Coherence time the episode was budgeted against, seconds.
    pub coherence_budget_s: f64,
    /// Whether the episode finished within the coherence budget.
    pub within_coherence: bool,
    /// Whether verification rejected the search result and the controller
    /// fell back to the baseline configuration.
    pub reverted: bool,
    /// The configuration the array is physically in at episode end.
    pub realized_config: Configuration,
    /// Elements whose realized state differs from the chosen configuration.
    pub stale_elements: usize,
    /// Control frames spent actuating (0 under the oracle).
    pub actuation_frames: usize,
    /// Retransmission effort spent actuating.
    pub actuation_retries: usize,
    /// Flight-recorder post-mortem, populated only when a traced episode
    /// with a live flight recorder reverted.
    pub post_mortem: Option<PostMortem>,
}

impl SpaceReport {
    /// Improvement of the chosen configuration over the baseline in the
    /// weighted space objective's units.
    pub fn improvement(&self) -> f64 {
        self.chosen_score - self.baseline_score
    }
}

/// The closed-loop controller.
#[derive(Debug, Clone)]
pub struct Controller {
    /// Search strategy.
    pub strategy: Strategy,
    /// Cost model.
    pub timing: TimingModel,
    /// Objective to maximize.
    pub objective: LinkObjective,
    /// Coherence budget to judge the episode against (seconds).
    pub coherence_budget_s: f64,
    /// Sounding frames averaged per measurement.
    pub frames_per_measurement: usize,
    /// RNG seed.
    pub seed: u64,
    /// How configurations are applied to the array.
    pub actuation: ActuationMode,
}

impl Controller {
    /// A controller with the paper-prototype timing and a standing-user
    /// coherence budget (~80 ms).
    pub fn new(strategy: Strategy, objective: LinkObjective) -> Controller {
        Controller {
            strategy,
            timing: TimingModel::paper_prototype(),
            objective,
            coherence_budget_s: 0.08,
            frames_per_measurement: 2,
            seed: 0,
            actuation: ActuationMode::Oracle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use crate::objective::LinkObjective;
    use crate::space::SmartSpace;
    use crate::system::PressSystem;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_phy::Numerology;
    use press_propagation::{LabConfig, LabSetup};
    use press_sdr::{SdrRadio, Sounder};
    use press_trace::{EventKind, Phase, Tracer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n_elements: usize) -> (PressSystem, Sounder) {
        let lab = LabSetup::generate(&LabConfig::default(), 17);
        let lambda = lab.scene.wavelength();
        let mut rng = StdRng::seed_from_u64(4);
        let positions = lab.random_element_positions(n_elements, &mut rng);
        let array = PressArray::paper_passive(&positions, lambda);
        let system = PressSystem::new(lab.scene.clone(), array);
        let sounder = Sounder::new(
            Numerology::wifi20(WIFI_CHANNEL_11_HZ),
            SdrRadio::warp(lab.tx.clone()),
            SdrRadio::warp(lab.rx.clone()),
        );
        (system, sounder)
    }

    #[test]
    fn exhaustive_episode_improves_or_matches_baseline() {
        let (system, sounder) = setup(2);
        let c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let report = c.run_episode(&system, &sounder);
        // The exhaustive search must find something at least as good as the
        // baseline up to measurement noise.
        assert!(
            report.improvement() > -2.0,
            "improvement {}",
            report.improvement()
        );
        assert_eq!(report.measurements, 1 + 16 + 1);
    }

    #[test]
    fn paper_prototype_blows_coherence_budget() {
        let (system, sounder) = setup(2);
        let c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let report = c.run_episode(&system, &sounder);
        // 18 measurements x 78 ms >> 80 ms: the paper's own latency problem.
        assert!(!report.within_coherence);
    }

    #[test]
    fn fast_control_plane_fits_budget_with_greedy() {
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Greedy { max_sweeps: 1 }, LinkObjective::MaxMinSnr);
        c.timing = TimingModel::fast_control_plane();
        let report = c.run_episode(&system, &sounder);
        assert!(
            report.within_coherence,
            "elapsed {} vs budget {}",
            report.elapsed_s, report.coherence_budget_s
        );
    }

    #[test]
    fn episodes_are_deterministic() {
        let (system, sounder) = setup(2);
        let c = Controller::new(Strategy::Random { budget: 6 }, LinkObjective::MaxMeanSnr);
        let a = c.run_episode(&system, &sounder);
        let b = c.run_episode(&system, &sounder);
        assert_eq!(a.chosen_config, b.chosen_config);
        assert_eq!(a.measurements, b.measurements);
    }

    #[test]
    fn wired_transport_reproduces_oracle_decision_bit_for_bit() {
        let (system, sounder) = setup(2);
        let oracle = Controller::new(Strategy::Random { budget: 6 }, LinkObjective::MaxMeanSnr);
        let mut wired = oracle.clone();
        wired.actuation = ActuationMode::Transport(TransportActuation::wired());
        let a = oracle.run_episode(&system, &sounder);
        let b = wired.run_episode(&system, &sounder);
        // A clean wired control plane applies everything, so the realized
        // array equals the chosen one and the measurement stream (a
        // separate seed stream from the actuation RNG) is untouched.
        assert_eq!(a.chosen_config, b.chosen_config);
        assert_eq!(a.chosen_score, b.chosen_score);
        assert_eq!(a.baseline_score, b.baseline_score);
        assert_eq!(a.measurements, b.measurements);
        assert_eq!(b.stale_elements, 0);
        assert_eq!(b.realized_config, b.chosen_config);
        assert!(
            b.actuation_frames > 0,
            "wired transport still spends frames"
        );
    }

    #[test]
    fn lossy_fire_and_forget_leaves_stale_elements_and_changes_score() {
        use press_control::{AckPolicy, FaultPlan, Transport};
        let (system, sounder) = setup(3);
        let oracle = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let mut lossy = oracle.clone();
        // Heavy loss, no acks, no retries: most commanded elements never
        // hear their set-state.
        lossy.actuation = ActuationMode::Transport(TransportActuation {
            transport: Transport::IsmRadio {
                bitrate_bps: 250e3,
                loss_prob: 0.9,
                mac_latency_s: 1e-3,
            },
            policy: AckPolicy::None,
            distance_m: 15.0,
            faults: FaultPlan::none(),
        });
        // Whether a given seed strands some, all, or none of the commanded
        // elements is down to the loss draws, so scan a few seeds: at least
        // one must leave a partially-applied (stale) array, and whenever the
        // array is stale the verification score must diverge from the
        // oracle-actuated episode's.
        let mut saw_stale = false;
        for seed in 0..6 {
            let mut a = oracle.clone();
            a.seed = seed;
            let mut b = lossy.clone();
            b.seed = seed;
            let ra = a.run_episode(&system, &sounder);
            let rb = b.run_episode(&system, &sounder);
            // The search itself is actuation-independent; chosen_config only
            // diverges when the stale verification triggered a revert.
            if !rb.reverted && !ra.reverted {
                assert_eq!(ra.chosen_config, rb.chosen_config, "seed {seed}");
            }
            if rb.stale_elements > 0 {
                saw_stale = true;
                assert_ne!(rb.realized_config, rb.chosen_config);
                if !ra.reverted {
                    assert_ne!(
                        ra.chosen_score, rb.chosen_score,
                        "verification must measure the stale array, not the intent (seed {seed})"
                    );
                }
            }
        }
        assert!(
            saw_stale,
            "90% loss never stranded an element across 6 seeds"
        );
    }

    #[test]
    fn des_actuation_mode_closes_the_loop() {
        use press_control::{DesConfig, FaultPlan, Transport};
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Greedy { max_sweeps: 1 }, LinkObjective::MaxMinSnr);
        c.actuation = ActuationMode::Des(DesActuation {
            transport: Transport::wired(),
            cfg: DesConfig::default(),
            faults: FaultPlan::none(),
        });
        let r = c.run_episode(&system, &sounder);
        assert_eq!(r.stale_elements, 0, "clean wire applies everything");
        assert!(r.actuation_frames > 0);
        // The DES charges real completion time into the episode clock.
        assert!(r.elapsed_s > 0.0);
    }

    #[test]
    fn dead_element_faults_strand_the_commanded_state() {
        use press_control::{ElementFaults, FaultPlan};
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let mut t = TransportActuation::wired();
        // Every element is dead: nothing the search chooses can be applied,
        // so the realized array is the baseline and verification reverts.
        t.faults = FaultPlan::broken(ElementFaults::none().dead(0).dead(1));
        c.actuation = ActuationMode::Transport(t);
        let r = c.run_episode(&system, &sounder);
        assert_eq!(r.realized_config, r.baseline_config);
        if r.chosen_config != r.baseline_config {
            assert!(r.stale_elements > 0);
        }
    }

    #[test]
    fn instrumented_episode_is_bit_identical_and_records() {
        use press_control::ControlMetrics;
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Random { budget: 4 }, LinkObjective::MaxMeanSnr);
        c.actuation = ActuationMode::Transport(TransportActuation::ism());
        let bare = c.run_episode(&system, &sounder);
        let mut metrics = ControlMetrics::new();
        let inst = c.run_episode_instrumented(&system, &sounder, Some(&mut metrics));
        assert_eq!(bare.chosen_config, inst.chosen_config);
        assert_eq!(bare.chosen_score, inst.chosen_score);
        assert_eq!(bare.elapsed_s, inst.elapsed_s);
        assert_eq!(bare.actuation_frames, inst.actuation_frames);
        assert!(metrics.frames_tx > 0);
        assert!(metrics.actuations >= 1);
    }

    #[test]
    fn single_link_space_episode_matches_run_episode_bitwise() {
        let (system, sounder) = setup(2);
        for strategy in [
            Strategy::Exhaustive,
            Strategy::Random { budget: 6 },
            Strategy::Annealing { budget: 8 },
        ] {
            for seed in [0u64, 7, 23] {
                let mut c = Controller::new(strategy, LinkObjective::MaxMinSnr);
                c.seed = seed;
                c.actuation = ActuationMode::Transport(TransportActuation::ism());
                let single = c.run_episode(&system, &sounder);
                let space =
                    SmartSpace::single(system.clone(), sounder.clone(), LinkObjective::MaxMinSnr);
                let multi = c.run_space_episode(&space);
                assert_eq!(single.baseline_score, multi.baseline_score, "seed {seed}");
                assert_eq!(single.chosen_config, multi.chosen_config, "seed {seed}");
                assert_eq!(single.chosen_score, multi.chosen_score, "seed {seed}");
                assert_eq!(single.measurements, multi.measurements, "seed {seed}");
                assert_eq!(single.elapsed_s, multi.elapsed_s, "seed {seed}");
                assert_eq!(single.realized_config, multi.realized_config, "seed {seed}");
                assert_eq!(single.reverted, multi.reverted, "seed {seed}");
                assert_eq!(multi.links.len(), 1);
                assert_eq!(multi.links[0].chosen_score, multi.chosen_score);
            }
        }
    }

    #[test]
    fn space_episode_weights_drive_the_search() {
        use crate::space::LinkId;
        // Two links, the second negatively weighted: the weighted space
        // score must equal w0·s0 + w1·s1 on both the baseline and the
        // verification measurement.
        let (system, sounder) = setup(2);
        let mut space = SmartSpace::new(system);
        space.add_link("boost", sounder.clone(), LinkObjective::MaxMeanSnr, 1.0);
        let mut other = sounder.clone();
        other.rx.node.position.y += 1.1;
        space.add_link("suppress", other, LinkObjective::MaxMeanSnr, -0.5);
        let c = Controller::new(Strategy::Random { budget: 5 }, LinkObjective::MaxMeanSnr);
        let r = c.run_space_episode(&space);
        assert_eq!(r.links.len(), 2);
        assert_eq!(r.links[0].id, LinkId(0));
        assert_eq!(r.links[1].id, LinkId(1));
        let weighted = 1.0 * r.links[0].baseline_score - 0.5 * r.links[1].baseline_score;
        assert!((r.baseline_score - weighted).abs() < 1e-12);
        // 1 baseline + 5 search + 1 verification sweeps, 2 links each.
        assert_eq!(r.measurements, 7 * 2);
    }

    #[test]
    fn instrumented_space_episode_is_bit_identical_and_labels_links() {
        use press_control::SpaceMetrics;
        let (system, sounder) = setup(2);
        let mut space = SmartSpace::new(system);
        space.add_link("a", sounder.clone(), LinkObjective::MaxMinSnr, 1.0);
        let mut other = sounder.clone();
        other.rx.node.position.y += 0.9;
        space.add_link("b", other, LinkObjective::MaxMinSnr, 1.0);
        let mut c = Controller::new(Strategy::Random { budget: 4 }, LinkObjective::MaxMinSnr);
        c.actuation = ActuationMode::Transport(TransportActuation::ism());
        let bare = c.run_space_episode(&space);
        let ids: Vec<(u32, String)> = space
            .links()
            .iter()
            .map(|sl| (sl.id.0, sl.label.clone()))
            .collect();
        let mut metrics = SpaceMetrics::new(&ids);
        let inst = c.run_space_episode_instrumented(&space, Some(&mut metrics));
        assert_eq!(bare, inst);
        assert!(metrics.space.frames_tx > 0);
        assert_eq!(metrics.links.len(), 2);
        for (_, _, m) in &metrics.links {
            assert_eq!(m.frames_tx, metrics.space.frames_tx);
        }
    }

    #[test]
    fn traced_episode_is_bit_identical_and_emits_phases() {
        use press_trace::MemorySink;
        let (system, sounder) = setup(2);
        let mut c = Controller::new(Strategy::Annealing { budget: 6 }, LinkObjective::MaxMinSnr);
        c.actuation = ActuationMode::Transport(TransportActuation::ism());
        let bare = c.run_episode(&system, &sounder);
        let mut tracer = Tracer::new(MemorySink::new());
        let mut traced = c.run_episode_traced(&system, &sounder, None, &mut tracer);
        // post_mortem is the only field a live flight recorder may add.
        traced.post_mortem = None;
        assert_eq!(bare, traced);
        let events = &tracer.sink().events;
        assert!(matches!(
            events[0].kind,
            EventKind::EpisodeStart { links: 1, .. }
        ));
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::EpisodeEnd { .. }
        ));
        // Every phase opens before it closes.
        for phase in [Phase::Measure, Phase::Search, Phase::Actuate, Phase::Verify] {
            let start = events
                .iter()
                .position(|e| e.kind == EventKind::PhaseStart { phase })
                .unwrap_or_else(|| panic!("{phase:?} never started"));
            let end = events
                .iter()
                .position(|e| matches!(e.kind, EventKind::PhaseEnd { phase: p, .. } if p == phase))
                .unwrap_or_else(|| panic!("{phase:?} never ended"));
            assert!(start < end, "{phase:?}");
        }
        // One search step per annealer evaluation (initial + budget), each
        // labeled with the strategy.
        let steps = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::SearchStep {
                        strategy: "annealing",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(steps, 1 + 6);
        for w in events.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1, "seq must be gapless");
        }
    }

    #[test]
    fn traced_revert_attaches_a_post_mortem() {
        use press_control::{ElementFaults, FaultPlan};
        use press_trace::MemorySink;
        let (system, sounder) = setup(2);
        // Every element dead: the realized array is always the baseline, so
        // verification re-measures the baseline channel under fresh noise
        // and roughly half the seeds reject the (unapplied) search result.
        let mut saw_revert = false;
        for seed in 0..12u64 {
            let mut c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
            c.seed = seed;
            let mut t = TransportActuation::wired();
            t.faults = FaultPlan::broken(ElementFaults::none().dead(0).dead(1));
            c.actuation = ActuationMode::Transport(t);
            let mut tracer = Tracer::new(MemorySink::new());
            let r = c.run_episode_traced(&system, &sounder, None, &mut tracer);
            if !r.reverted {
                assert!(r.post_mortem.is_none(), "seed {seed}");
                continue;
            }
            saw_revert = true;
            let pm = r
                .post_mortem
                .as_ref()
                .expect("traced revert keeps a post-mortem");
            assert!(!pm.events.is_empty());
            assert!(pm.events.iter().all(|e| e.wall_s.is_none()));
            assert_eq!(pm.realized, r.baseline_config, "dead array never moves");
            let events = &tracer.sink().events;
            assert!(events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Reverted { .. })));
            assert!(events.iter().any(|e| matches!(
                e.kind,
                EventKind::PhaseStart {
                    phase: Phase::Revert
                }
            )));
            // The silent paths attach nothing, yet agree on every other field.
            let mut bare = c.run_episode(&system, &sounder);
            assert!(bare.post_mortem.is_none());
            bare.post_mortem = r.post_mortem.clone();
            assert_eq!(bare, r, "seed {seed}");
        }
        assert!(saw_revert, "no seed in 0..12 triggered a revert");
    }

    #[test]
    fn greedy_uses_fewer_measurements_than_exhaustive() {
        let (system, sounder) = setup(3);
        let ex = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr)
            .run_episode(&system, &sounder);
        let gr = Controller::new(Strategy::Greedy { max_sweeps: 2 }, LinkObjective::MaxMinSnr)
            .run_episode(&system, &sounder);
        assert!(gr.measurements < ex.measurements);
    }

    #[test]
    fn engine_runs_episodes_under_derived_round_seeds() {
        use crate::search::derive_stream_seed;
        let (system, sounder) = setup(2);
        let space = SmartSpace::single(system, sounder, LinkObjective::MaxMinSnr);
        let mut c = Controller::new(Strategy::Random { budget: 4 }, LinkObjective::MaxMinSnr);
        c.seed = 9;
        let mut engine = EpisodeEngine::new(c.clone(), space.clone());
        let ev0 = engine.handle(EngineCommand::RunEpisode, &mut Tracer::null());
        let ev1 = engine.handle(EngineCommand::RunEpisode, &mut Tracer::null());
        // Each engine episode is the plain space episode under the derived
        // per-round seed — bit-identical to running it by hand.
        for (i, ev) in [(0u64, ev0), (1u64, ev1)] {
            let mut round = c.clone();
            round.seed = derive_stream_seed(c.seed, i, 4);
            let expect = round.run_space_episode(&space);
            match ev {
                EngineEvent::EpisodeDone {
                    episode,
                    report,
                    metrics,
                } => {
                    assert_eq!(episode, i);
                    assert_eq!(report, expect, "round {i}");
                    assert_eq!(metrics.links.len(), 1);
                }
                other => panic!("expected EpisodeDone, got {other:?}"),
            }
        }
    }

    #[test]
    fn engine_rejects_instead_of_panicking() {
        let (system, sounder) = setup(2);
        let space = SmartSpace::new(system.clone());
        let c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let mut engine = EpisodeEngine::new(c, space);
        // Empty registry: an episode has nothing to run on.
        let ev = engine.handle(EngineCommand::RunEpisode, &mut Tracer::null());
        assert!(matches!(ev, EngineEvent::Rejected { .. }), "{ev:?}");
        // Unknown link ids in churn commands are rejected, not panicked on.
        let ev = engine.handle(
            EngineCommand::Churn(crate::space::ChurnEvent::Leave {
                id: crate::space::LinkId(7),
            }),
            &mut Tracer::null(),
        );
        assert!(matches!(ev, EngineEvent::Rejected { .. }), "{ev:?}");
        // A valid association is applied and reported.
        let ev = engine.handle(
            EngineCommand::Churn(crate::space::ChurnEvent::Associate {
                label: "guest".into(),
                sounder,
                objective: LinkObjective::MaxMinSnr,
                weight: 1.0,
            }),
            &mut Tracer::null(),
        );
        match ev {
            EngineEvent::ChurnApplied { link, live_links } => {
                assert_eq!(link, crate::space::LinkId(0));
                assert_eq!(live_links, 1);
            }
            other => panic!("expected ChurnApplied, got {other:?}"),
        }
    }

    #[test]
    fn engine_snapshot_and_measurement_reflect_state() {
        let (system, sounder) = setup(2);
        let space = SmartSpace::single(system, sounder, LinkObjective::MaxMinSnr);
        let c = Controller::new(Strategy::Random { budget: 3 }, LinkObjective::MaxMinSnr);
        let mut engine = EpisodeEngine::new(c, space);
        let snap = match engine.handle(EngineCommand::Snapshot, &mut Tracer::null()) {
            EngineEvent::Snapshot(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(snap.episodes, 0);
        assert_eq!(snap.live_links.len(), 1);
        let before = match engine.handle(EngineCommand::Measurement, &mut Tracer::null()) {
            EngineEvent::MeasurementReport { scores } => scores,
            other => panic!("{other:?}"),
        };
        assert_eq!(before.len(), 1);
        engine.handle(EngineCommand::RunEpisode, &mut Tracer::null());
        let snap = match engine.handle(EngineCommand::Snapshot, &mut Tracer::null()) {
            EngineEvent::Snapshot(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(snap.episodes, 1);
        assert!(snap.last_score.is_some());
        // Measurement now reads the realized post-episode configuration.
        let after = match engine.handle(EngineCommand::Measurement, &mut Tracer::null()) {
            EngineEvent::MeasurementReport { scores } => scores,
            other => panic!("{other:?}"),
        };
        assert_eq!(after.len(), 1);
    }

    #[test]
    fn engine_fault_injection_arms_transport_faults() {
        use press_control::FaultSpec;
        let (system, sounder) = setup(2);
        let space = SmartSpace::single(system, sounder, LinkObjective::MaxMinSnr);
        let mut c = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        c.actuation = ActuationMode::Transport(TransportActuation::wired());
        let mut engine = EpisodeEngine::new(c, space);
        let spec = FaultSpec {
            burst: None,
            dead: vec![0, 1],
            stuck: vec![],
        };
        let ev = engine.handle(EngineCommand::InjectFault(spec), &mut Tracer::null());
        assert!(matches!(ev, EngineEvent::FaultArmed { ideal: false }));
        match &engine.controller().actuation {
            ActuationMode::Transport(t) => {
                assert_eq!(t.faults.elements.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        // Oracle actuation has no fault path: the command is rejected.
        let (system2, sounder2) = setup(2);
        let space2 = SmartSpace::single(system2, sounder2, LinkObjective::MaxMinSnr);
        let oracle = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
        let mut engine2 = EpisodeEngine::new(oracle, space2);
        let ev = engine2.handle(
            EngineCommand::InjectFault(FaultSpec::none()),
            &mut Tracer::null(),
        );
        assert!(matches!(ev, EngineEvent::Rejected { .. }), "{ev:?}");
    }
}
