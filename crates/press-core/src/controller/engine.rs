//! The generic episode engine: one traced Measure→Search→Actuate→Verify→
//! Revert state machine that every controller entry point runs through,
//! plus the command/event API a long-running daemon drives it with.
//!
//! The single-link and space episodes differ only in *what a measurement
//! observes* (one score vs. a weighted score with per-link breakdowns) and
//! in the trace events bracketing those observations. `EpisodeModel`
//! captures exactly that difference; `Controller::run_engine` owns
//! everything else — the RNG stream discipline (measurement on `seed`,
//! search on `seed + 1`, actuation on `seed + 2`), the phase spans, the
//! verify-or-revert decision and the flight-recorder post-mortem. Both
//! historical flows are reproduced bit for bit: the engine changes where
//! the loop's code lives, never which values it computes or in what order.

use crate::config::{ConfigSpace, Configuration};
use crate::search;
use crate::space::{ChurnEvent, LinkId, SmartSpace};
use press_control::{
    actuate_traced, simulate_actuation_traced, ControlMetrics, FaultPlan, FaultSpec, SpaceMetrics,
};
use press_trace::{EventKind, Phase, TraceSink, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::Cell;

use super::{ActuationMode, Controller, PostMortem, SpaceReport, Strategy, TimingModel};

/// The interior-mutable episode clock the measure closures advance while
/// trace emission reads it between calls: a measurement counter and the
/// emulated wall-clock, exactly the two `Cell`s the monolith used.
pub(super) struct EpisodeClock {
    /// Channel measurements spent so far.
    pub measurements: Cell<usize>,
    /// Emulated wall-clock time elapsed so far, seconds.
    pub elapsed: Cell<f64>,
}

impl EpisodeClock {
    fn new() -> EpisodeClock {
        EpisodeClock {
            measurements: Cell::new(0),
            elapsed: Cell::new(0.0),
        }
    }

    /// Charges one measurement against the clock.
    pub fn charge(&self, timing: &TimingModel) {
        self.measurements.set(self.measurements.get() + 1);
        self.elapsed
            .set(self.elapsed.get() + timing.measurement_s + timing.compute_per_eval_s);
    }
}

/// What makes a single-link episode different from a space episode: the
/// shape of one observation and the trace events that surround it. The
/// engine drives a model through the phase sequence; the model never sees
/// the phases.
pub(super) trait EpisodeModel {
    /// One full observation of a configuration: the single-link model's
    /// score, or the space model's `(weighted, per-link scores, per-link
    /// mean SNRs)` triple.
    type Obs: Clone;

    /// How many links one observation measures (1 for the single-link
    /// model); used for the `EpisodeStart` and verify-phase accounting.
    fn n_links(&self) -> u32;

    /// Emits the pre-measure trace prelude (the `BasisBuild` events).
    fn emit_prelude<S: TraceSink>(&self, config_space: &ConfigSpace, tracer: &mut Tracer<S>);

    /// Measures one configuration, drawing noise from `rng` and charging
    /// the clock once per link measured.
    fn measure(
        &mut self,
        config: &Configuration,
        rng: &mut StdRng,
        clock: &EpisodeClock,
    ) -> Self::Obs;

    /// The scalar the search maximizes and the revert decision compares.
    fn score(obs: &Self::Obs) -> f64;

    /// Emits the per-link `Measurement` events for one observation (only
    /// the baseline and verification observations are emitted).
    fn emit_measurements<S: TraceSink>(&self, obs: &Self::Obs, t_s: f64, tracer: &mut Tracer<S>);
}

/// Where actuation metrics flow: the single-link entry points thread the
/// caller's optional registry straight through both actuations, while the
/// space entry points accumulate into a local row (always on, reverts
/// merged in) and attribute it to the caller's registry afterwards.
#[allow(clippy::large_enum_variant)] // short-lived, stack-only, one per episode
pub(super) enum MetricsPlan<'a> {
    /// Thread the caller's registry through directly.
    Direct(Option<&'a mut ControlMetrics>),
    /// Accumulate locally; the caller attributes the row afterwards.
    Shared(ControlMetrics),
}

/// What one control-plane actuation physically achieved.
pub(super) struct ActuationOutcome {
    /// Per-element (full array): did the protocol apply this element.
    pub applied: Vec<bool>,
    /// Wall-clock cost of the actuation, seconds.
    pub completion_s: f64,
    /// Control frames spent.
    pub frames: usize,
    /// Retransmission effort (retry rounds for the round model,
    /// retransmitted frames for the DES).
    pub retries: usize,
}

/// Everything one engine pass produced; the wrappers project this into
/// [`ControlReport`](super::ControlReport) / [`SpaceReport`].
pub(super) struct EngineRun<O> {
    /// Configuration in force before the episode.
    pub baseline_config: Configuration,
    /// The baseline observation.
    pub baseline: O,
    /// Scalar score of the baseline.
    pub baseline_score: f64,
    /// Configuration chosen by the episode (baseline when reverted).
    pub chosen_config: Configuration,
    /// The verified observation standing for the chosen configuration
    /// (the baseline observation when reverted).
    pub chosen: O,
    /// Scalar score of the chosen observation.
    pub chosen_score: f64,
    /// Channel measurements spent.
    pub measurements: usize,
    /// Emulated wall-clock time of the episode, seconds.
    pub elapsed_s: f64,
    /// Whether verification rejected the search result.
    pub reverted: bool,
    /// The configuration the array is physically in at episode end.
    pub realized_config: Configuration,
    /// Elements whose realized state differs from the chosen configuration.
    pub stale_elements: usize,
    /// Control frames spent actuating.
    pub actuation_frames: usize,
    /// Retransmission effort spent actuating.
    pub actuation_retries: usize,
    /// Flight-recorder post-mortem (live flight recorder + revert only).
    pub post_mortem: Option<PostMortem>,
}

impl Controller {
    /// Runs the generic episode state machine over a model. This *is* the
    /// episode implementation — every `run_*episode*` entry point builds a
    /// model, calls this, and projects the [`EngineRun`] into its report.
    pub(super) fn run_engine<M: EpisodeModel, S: TraceSink>(
        &self,
        model: &mut M,
        config_space: &ConfigSpace,
        metrics: &mut MetricsPlan<'_>,
        tracer: &mut Tracer<S>,
    ) -> EngineRun<M::Obs> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let clock = EpisodeClock::new();

        tracer.flight_mut().clear();
        tracer.emit(
            0.0,
            EventKind::EpisodeStart {
                seed: self.seed,
                links: model.n_links(),
                strategy: self.strategy.label(),
            },
        );
        model.emit_prelude(config_space, tracer);

        tracer.emit(
            0.0,
            EventKind::PhaseStart {
                phase: Phase::Measure,
            },
        );
        let baseline_config = Configuration::zeros(config_space.n_elements());
        let baseline = model.measure(&baseline_config, &mut rng, &clock);
        let baseline_score = M::score(&baseline);
        model.emit_measurements(&baseline, clock.elapsed.get(), tracer);
        tracer.emit(
            clock.elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Measure,
                measurements: clock.measurements.get() as u32,
            },
        );

        tracer.emit(
            clock.elapsed.get(),
            EventKind::PhaseStart {
                phase: Phase::Search,
            },
        );
        let search_start = clock.measurements.get();
        let result = {
            let label = self.strategy.label();
            let mut on_step = |s: &search::SearchStep| {
                tracer.emit(
                    clock.elapsed.get(),
                    EventKind::SearchStep {
                        strategy: label,
                        iteration: s.iteration as u32,
                        score: s.score,
                        best: s.best,
                        accepted: s.accepted,
                    },
                );
            };
            let mut measure =
                |c: &Configuration, rng: &mut StdRng| M::score(&model.measure(c, rng, &clock));
            match self.strategy {
                Strategy::Exhaustive => search::exhaustive_observed(
                    config_space,
                    |c| measure(c, &mut rng),
                    &mut on_step,
                ),
                Strategy::Greedy { max_sweeps } => search::greedy_coordinate_observed(
                    config_space,
                    baseline_config.clone(),
                    max_sweeps,
                    |c| measure(c, &mut rng),
                    &mut on_step,
                ),
                Strategy::Random { budget } => {
                    let mut search_rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
                    search::random_search_observed(
                        config_space,
                        budget,
                        &mut search_rng,
                        |c| measure(c, &mut rng),
                        &mut on_step,
                    )
                }
                Strategy::Annealing { budget } => {
                    let mut search_rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
                    search::simulated_annealing_observed(
                        config_space,
                        budget,
                        3.0,
                        0.05,
                        &mut search_rng,
                        |c| measure(c, &mut rng),
                        &mut on_step,
                    )
                }
            }
        };
        tracer.emit(
            clock.elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Search,
                measurements: (clock.measurements.get() - search_start) as u32,
            },
        );

        // Actuate over the control plane and verify against the array it
        // actually produced; if the verification measurement contradicts
        // the search (it chased measurement noise, or the actuation left
        // the array worse), fall back to the baseline — never leave the
        // space worse than it was found. The actuation RNG is a separate
        // seed stream so transport randomness never perturbs the
        // measurement stream (the oracle path stays bit-identical).
        let mut act_rng = StdRng::seed_from_u64(self.seed.wrapping_add(2));
        let mut faults = match &self.actuation {
            ActuationMode::Oracle => FaultPlan::none(),
            ActuationMode::Transport(t) => t.faults.clone(),
            ActuationMode::Des(d) => d.faults.clone(),
        };

        tracer.emit(
            clock.elapsed.get(),
            EventKind::PhaseStart {
                phase: Phase::Actuate,
            },
        );
        let forward_metrics = match metrics {
            MetricsPlan::Direct(m) => m.as_deref_mut(),
            MetricsPlan::Shared(act) => Some(act),
        };
        let outcome = self.actuate_config(
            &baseline_config,
            &result.best,
            &mut faults,
            forward_metrics,
            tracer,
            clock.elapsed.get(),
            &mut act_rng,
        );
        clock
            .elapsed
            .set(clock.elapsed.get() + outcome.completion_s);
        tracer.emit(
            clock.elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Actuate,
                measurements: 0,
            },
        );
        let mut actuation_frames = outcome.frames;
        let mut actuation_retries = outcome.retries;
        // The array the control plane produced: applied elements hold the
        // target (stuck ones their frozen state), unreached ones the
        // baseline. Verification measures *this* channel, not the intent.
        let realized = realize(
            &baseline_config,
            &result.best,
            &outcome.applied,
            &faults,
            config_space,
        );
        tracer.emit(
            clock.elapsed.get(),
            EventKind::PhaseStart {
                phase: Phase::Verify,
            },
        );
        let verified = model.measure(&realized, &mut rng, &clock);
        let verified_score = M::score(&verified);
        model.emit_measurements(&verified, clock.elapsed.get(), tracer);
        tracer.emit(
            clock.elapsed.get(),
            EventKind::PhaseEnd {
                phase: Phase::Verify,
                measurements: model.n_links(),
            },
        );

        let mut post_mortem = None;
        let (chosen_config, chosen, reverted, realized_config) = if verified_score < baseline_score
        {
            tracer.emit(
                clock.elapsed.get(),
                EventKind::Reverted {
                    baseline_score,
                    verified_score,
                },
            );
            // Freeze the black box *before* the revert actuation floods
            // the ring with its own frames: the post-mortem should show
            // what led to the rejection, not the recovery.
            if tracer.flight().capacity() > 0 {
                post_mortem = Some(PostMortem {
                    events: tracer.flight().snapshot(),
                    attempted: result.best.clone(),
                    realized: realized.clone(),
                });
            }
            tracer.emit(
                clock.elapsed.get(),
                EventKind::PhaseStart {
                    phase: Phase::Revert,
                },
            );
            let back = match metrics {
                MetricsPlan::Direct(m) => self.actuate_config(
                    &realized,
                    &baseline_config,
                    &mut faults,
                    m.as_deref_mut(),
                    tracer,
                    clock.elapsed.get(),
                    &mut act_rng,
                ),
                MetricsPlan::Shared(act) => {
                    let mut back_metrics = ControlMetrics::new();
                    let back = self.actuate_config(
                        &realized,
                        &baseline_config,
                        &mut faults,
                        Some(&mut back_metrics),
                        tracer,
                        clock.elapsed.get(),
                        &mut act_rng,
                    );
                    act.merge(&back_metrics);
                    back
                }
            };
            clock.elapsed.set(clock.elapsed.get() + back.completion_s);
            actuation_frames += back.frames;
            actuation_retries += back.retries;
            tracer.emit(
                clock.elapsed.get(),
                EventKind::PhaseEnd {
                    phase: Phase::Revert,
                    measurements: 0,
                },
            );
            let after = realize(
                &realized,
                &baseline_config,
                &back.applied,
                &faults,
                config_space,
            );
            (baseline_config.clone(), baseline.clone(), true, after)
        } else {
            (result.best, verified, false, realized)
        };
        let chosen_score = M::score(&chosen);

        tracer.emit(
            clock.elapsed.get(),
            EventKind::EpisodeEnd {
                score: chosen_score,
                measurements: clock.measurements.get() as u32,
                reverted,
            },
        );

        let stale_elements = realized_config.hamming(&chosen_config);
        EngineRun {
            baseline_config,
            baseline,
            baseline_score,
            chosen_config,
            chosen,
            chosen_score,
            measurements: clock.measurements.get(),
            elapsed_s: clock.elapsed.get(),
            reverted,
            realized_config,
            stale_elements,
            actuation_frames,
            actuation_retries,
            post_mortem,
        }
    }

    /// Drives one `prev → target` transition over the configured actuation
    /// mode. Only elements whose state actually changes are commanded.
    /// Transport-level events (frames, losses, acks, backoffs) flow into
    /// `tracer` timestamped relative to `t0_s`, followed by one
    /// [`EventKind::ActuationDone`] summary.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn actuate_config<S: TraceSink>(
        &self,
        prev: &Configuration,
        target: &Configuration,
        faults: &mut FaultPlan,
        metrics: Option<&mut ControlMetrics>,
        tracer: &mut Tracer<S>,
        t0_s: f64,
        rng: &mut StdRng,
    ) -> ActuationOutcome {
        let n = prev.len();
        // Unchanged elements are trivially in place.
        let mut applied = vec![true; n];
        let delta: Vec<(u16, u8)> = prev
            .states
            .iter()
            .zip(&target.states)
            .enumerate()
            .filter(|(_, (p, t))| p != t)
            .map(|(i, (_, &t))| (i as u16, t as u8))
            .collect();
        let outcome = match &self.actuation {
            ActuationMode::Oracle => ActuationOutcome {
                applied,
                completion_s: self.timing.actuation_s,
                frames: 0,
                retries: 0,
            },
            ActuationMode::Transport(t) => {
                let report = actuate_traced(
                    &t.transport,
                    &delta,
                    t.distance_m,
                    t.policy,
                    faults,
                    metrics,
                    tracer,
                    t0_s,
                    rng,
                );
                for &(e, _) in &delta {
                    applied[e as usize] = report.element_applied(e);
                }
                ActuationOutcome {
                    applied,
                    completion_s: report.completion_s,
                    frames: report.frames_sent,
                    retries: report.retry_rounds,
                }
            }
            ActuationMode::Des(d) => {
                let report = simulate_actuation_traced(
                    &d.transport,
                    &delta,
                    &d.cfg,
                    faults,
                    metrics,
                    tracer,
                    t0_s,
                    rng,
                );
                for &(e, _) in &delta {
                    applied[e as usize] = !report.failed.contains(&e);
                }
                let retransmissions = report
                    .trace
                    .iter()
                    .filter(|ev| {
                        matches!(
                            ev,
                            press_control::TraceEvent::CommandSent { attempt, .. } if *attempt > 0
                        )
                    })
                    .count();
                ActuationOutcome {
                    applied,
                    completion_s: report.done_s,
                    frames: report.frames,
                    retries: retransmissions,
                }
            }
        };
        let failed = delta
            .iter()
            .filter(|&&(e, _)| !outcome.applied[e as usize])
            .count();
        tracer.emit(
            t0_s + outcome.completion_s,
            EventKind::ActuationDone {
                frames: outcome.frames as u32,
                retries: outcome.retries as u32,
                completion_s: outcome.completion_s,
                failed: failed as u32,
            },
        );
        outcome
    }
}

/// Merges what the control plane achieved into the physical configuration:
/// applied elements take the target state — unless stuck, in which case the
/// hardware holds its frozen state — and unreached elements keep `prev`.
pub(super) fn realize(
    prev: &Configuration,
    target: &Configuration,
    applied: &[bool],
    faults: &FaultPlan,
    space: &ConfigSpace,
) -> Configuration {
    let mut realized = prev.overlay(target, applied);
    if !faults.elements.is_empty() {
        for (i, state) in realized.states.iter_mut().enumerate() {
            if applied[i] && prev.states[i] != target.states[i] {
                if let Some(s) = faults
                    .elements
                    .realized_state(i as u16, target.states[i] as u8)
                {
                    // Clamp: a stuck state outside the element's space pins
                    // it to the highest valid switch position.
                    *state = (s as usize).min(space.states_per_element[i] - 1);
                }
            }
        }
    }
    realized
}

/// One command a daemon (or test harness) feeds the engine. The variants
/// mirror the wire protocol `pressd` parses; the engine itself never does
/// I/O and never reads a clock, so a command stream replays bit-identically.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum EngineCommand {
    /// Take an oracle measurement of every registered link on the current
    /// realized configuration (no episode, no clock charge).
    Measurement,
    /// Apply one registry churn event (associate / roam / leave).
    Churn(ChurnEvent),
    /// Run one space episode under the next derived round seed.
    RunEpisode,
    /// Arm a fault plan on the controller's actuation mode.
    InjectFault(FaultSpec),
    /// Report the engine's state.
    Snapshot,
}

/// What the engine answered a command with. `EpisodeDone` carries the full
/// [`SpaceReport`] plus the episode's [`SpaceMetrics`] so a daemon can
/// stream both to its sinks without re-running anything.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one event per command; boxing would tax every consumer
pub enum EngineEvent {
    /// Per-link oracle scores on the current realized configuration.
    MeasurementReport {
        /// `(link, score)` in registry order.
        scores: Vec<(LinkId, f64)>,
    },
    /// A churn event was applied to the registry.
    ChurnApplied {
        /// The link the event created, moved or removed.
        link: LinkId,
        /// Links remaining after the event.
        live_links: usize,
    },
    /// An episode ran to completion.
    EpisodeDone {
        /// Zero-based engine episode index (also the seed-stream round).
        episode: u64,
        /// The full episode report.
        report: SpaceReport,
        /// Control-plane metrics of the episode's actuations.
        metrics: SpaceMetrics,
    },
    /// A fault plan was armed on the actuation mode.
    FaultArmed {
        /// Whether the armed plan injects nothing.
        ideal: bool,
    },
    /// The engine's state.
    Snapshot(EngineSnapshot),
    /// The command could not be applied; the engine state is unchanged
    /// (beyond the command counter). Invalid input is reported, never
    /// panicked on.
    Rejected {
        /// Human-readable diagnostic.
        reason: String,
    },
}

/// Point-in-time state of an [`EpisodeEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Commands handled so far (including rejected ones).
    pub commands: u64,
    /// Episodes completed so far.
    pub episodes: u64,
    /// `(id, label, weight)` of every registered link, registry order.
    pub live_links: Vec<(LinkId, String, f64)>,
    /// Verified score of the last episode, if any ran.
    pub last_score: Option<f64>,
    /// Whether the last episode fit its coherence budget.
    pub last_within_coherence: Option<bool>,
    /// Whether the armed fault plan injects nothing (true under the oracle).
    pub faults_ideal: bool,
    /// The controller's coherence budget, seconds.
    pub coherence_budget_s: f64,
    /// The controller's strategy label.
    pub strategy: &'static str,
}

/// A long-lived episode engine owning a [`SmartSpace`] across commands —
/// the deterministic core `pressd` wraps an event loop around.
///
/// Each `RunEpisode` command runs under its own derived controller seed,
/// `derive_stream_seed(seed, episode_index, 4)` — stream index 4 extends
/// the episode discipline (measurement `seed`, search `seed + 1`, actuation
/// `seed + 2`, churn rounds stream 3) without colliding with it — so a
/// replayed command stream is a pure function of `(controller, initial
/// space, commands)` and reproduces every report and trace event
/// bit-identically.
#[derive(Debug, Clone)]
pub struct EpisodeEngine {
    controller: Controller,
    space: SmartSpace,
    current: Configuration,
    commands: u64,
    episodes: u64,
    last: Option<(f64, bool)>,
}

impl EpisodeEngine {
    /// Builds an engine owning `space`, starting from the all-zeros
    /// configuration (the episode baseline).
    pub fn new(controller: Controller, space: SmartSpace) -> EpisodeEngine {
        let current = Configuration::zeros(space.config_space().n_elements());
        EpisodeEngine {
            controller,
            space,
            current,
            commands: 0,
            episodes: 0,
            last: None,
        }
    }

    /// The engine's controller (the base seed and actuation mode live here).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// The registry the engine owns.
    pub fn space(&self) -> &SmartSpace {
        &self.space
    }

    /// The realized configuration the array is currently in.
    pub fn current_config(&self) -> &Configuration {
        &self.current
    }

    /// Episodes completed so far.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Handles one command, emitting any episode trace into `tracer` and
    /// returning the engine's answer. Invalid commands (unknown link ids,
    /// episodes on an empty registry, faults on an oracle actuation) are
    /// answered with [`EngineEvent::Rejected`] — the engine never panics on
    /// input.
    pub fn handle<S: TraceSink>(
        &mut self,
        cmd: EngineCommand,
        tracer: &mut Tracer<S>,
    ) -> EngineEvent {
        self.commands += 1;
        match cmd {
            EngineCommand::Measurement => {
                let scores = self
                    .space
                    .links()
                    .iter()
                    .map(|sl| (sl.id, self.space.link_oracle_score(sl.id, &self.current)))
                    .collect();
                EngineEvent::MeasurementReport { scores }
            }
            EngineCommand::Churn(event) => {
                match &event {
                    ChurnEvent::Roam { id, .. } | ChurnEvent::Leave { id }
                        if self.space.try_link(*id).is_none() =>
                    {
                        return EngineEvent::Rejected {
                            reason: format!("churn references unknown link {id}"),
                        };
                    }
                    _ => {}
                }
                let link = self.space.apply_churn(&event);
                EngineEvent::ChurnApplied {
                    link,
                    live_links: self.space.n_links(),
                }
            }
            EngineCommand::RunEpisode => {
                if self.space.n_links() == 0 {
                    return EngineEvent::Rejected {
                        reason: "episode on an empty registry (associate a link first)".to_string(),
                    };
                }
                let mut round = self.controller.clone();
                round.seed = search::derive_stream_seed(self.controller.seed, self.episodes, 4);
                let ids: Vec<(u32, String)> = self
                    .space
                    .links()
                    .iter()
                    .map(|sl| (sl.id.0, sl.label.clone()))
                    .collect();
                let mut metrics = SpaceMetrics::new(&ids);
                let report =
                    round.run_space_episode_traced(&self.space, Some(&mut metrics), tracer);
                let episode = self.episodes;
                self.episodes += 1;
                self.current = report.realized_config.clone();
                self.last = Some((report.chosen_score, report.within_coherence));
                EngineEvent::EpisodeDone {
                    episode,
                    report,
                    metrics,
                }
            }
            EngineCommand::InjectFault(spec) => match &mut self.controller.actuation {
                ActuationMode::Oracle => EngineEvent::Rejected {
                    reason: "oracle actuation has no fault path (use a transport or DES mode)"
                        .to_string(),
                },
                ActuationMode::Transport(t) => {
                    t.faults = spec.to_plan();
                    EngineEvent::FaultArmed {
                        ideal: t.faults.is_ideal(),
                    }
                }
                ActuationMode::Des(d) => {
                    d.faults = spec.to_plan();
                    EngineEvent::FaultArmed {
                        ideal: d.faults.is_ideal(),
                    }
                }
            },
            EngineCommand::Snapshot => EngineEvent::Snapshot(EngineSnapshot {
                commands: self.commands,
                episodes: self.episodes,
                live_links: self
                    .space
                    .links()
                    .iter()
                    .map(|sl| (sl.id, sl.label.clone(), sl.weight))
                    .collect(),
                last_score: self.last.map(|(s, _)| s),
                last_within_coherence: self.last.map(|(_, w)| w),
                faults_ideal: match &self.controller.actuation {
                    ActuationMode::Oracle => true,
                    ActuationMode::Transport(t) => t.faults.is_ideal(),
                    ActuationMode::Des(d) => d.faults.is_ideal(),
                },
                coherence_budget_s: self.controller.coherence_budget_s,
                strategy: self.controller.strategy.label(),
            }),
        }
    }
}
