//! Churn replay: one space episode per association/roam/leave event,
//! each round under its own derived seed stream.

use crate::search;
use crate::space::{ChurnEvent, SmartSpace};

use super::{Controller, SpaceReport};

impl Controller {
    /// Replays a churn episode: applies each [`ChurnEvent`] to the mutable
    /// registry in order, then runs one space episode after every event,
    /// returning the per-round reports in event order.
    ///
    /// Each round runs under its own controller seed,
    /// `derive_stream_seed(self.seed, round, 3)` — stream index 3 extends
    /// the single-episode discipline (measurement `seed`, search `seed+1`,
    /// actuation `seed+2`) without colliding with it, and keys the round's
    /// streams to its position in the event sequence alone. The whole
    /// replay is therefore a pure function of `(self, initial space,
    /// events)`: running the same episode twice from identically-built
    /// spaces yields bit-identical report vectors, regardless of what
    /// traces or bases the registry re-used across the churn.
    pub fn run_churn_episode(
        &self,
        space: &mut SmartSpace,
        events: &[ChurnEvent],
    ) -> Vec<SpaceReport> {
        let mut reports = Vec::with_capacity(events.len());
        for (round, event) in events.iter().enumerate() {
            space.apply_churn(event);
            let mut round_controller = self.clone();
            round_controller.seed = search::derive_stream_seed(self.seed, round as u64, 3);
            reports.push(round_controller.run_space_episode(space));
        }
        reports
    }
}
