//! The single-link episode: the historical `run_episode` entry family,
//! expressed as a thin `EpisodeModel` over the generic engine.

use crate::basis::LinkBasis;
use crate::config::{ConfigSpace, Configuration};
use crate::system::{CachedLink, PressSystem};
use press_control::ControlMetrics;
use press_math::Complex64;
use press_sdr::Sounder;
use press_trace::{EventKind, TraceSink, Tracer};
use rand::rngs::StdRng;

use super::engine::{EpisodeClock, EpisodeModel, MetricsPlan};
use super::{ControlReport, Controller};

/// One sounded link: candidate channels come from the basis fast path
/// (O(N·K) per configuration, no per-measurement path re-trace); the
/// measurement noise itself still goes through the full sounding pipeline.
struct SingleLinkModel<'a> {
    ctl: &'a Controller,
    sounder: &'a Sounder,
    basis: LinkBasis,
    h: Vec<Complex64>,
}

impl EpisodeModel for SingleLinkModel<'_> {
    type Obs = f64;

    fn n_links(&self) -> u32 {
        1
    }

    fn emit_prelude<S: TraceSink>(&self, config_space: &ConfigSpace, tracer: &mut Tracer<S>) {
        tracer.emit(
            0.0,
            EventKind::BasisBuild {
                link: 0,
                elements: config_space.n_elements() as u32,
                subcarriers: self.basis.n_subcarriers() as u32,
                revision: self.basis.revision(),
            },
        );
    }

    fn measure(&mut self, config: &Configuration, rng: &mut StdRng, clock: &EpisodeClock) -> f64 {
        self.basis
            .synthesize_into(config, clock.elapsed.get(), &mut self.h);
        let profile = self
            .sounder
            .sound_averaged_channel(&self.h, self.ctl.frames_per_measurement, rng)
            .expect("sounder has >=2 training symbols"); // press-lint: allow(panic-freedom) — infallible with >=2 training symbols
        clock.charge(&self.ctl.timing);
        self.ctl.objective.score(&profile)
    }

    fn score(obs: &f64) -> f64 {
        *obs
    }

    fn emit_measurements<S: TraceSink>(&self, obs: &f64, t_s: f64, tracer: &mut Tracer<S>) {
        tracer.emit(
            t_s,
            EventKind::Measurement {
                link: 0,
                score: *obs,
            },
        );
    }
}

impl Controller {
    /// Runs one control episode on a link: measure the baseline, search for
    /// a better configuration (each candidate evaluated by *measurement*,
    /// not oracle), actuate it over the configured
    /// [`ActuationMode`](super::ActuationMode), and verify against the
    /// array the control plane actually produced.
    pub fn run_episode(&self, system: &PressSystem, sounder: &Sounder) -> ControlReport {
        self.run_episode_instrumented(system, sounder, None)
    }

    /// [`run_episode`](Self::run_episode) with an optional control-plane
    /// metrics registry the actuations record into. Instrumentation never
    /// perturbs the episode: the report is bit-identical with or without it.
    pub fn run_episode_instrumented(
        &self,
        system: &PressSystem,
        sounder: &Sounder,
        metrics: Option<&mut ControlMetrics>,
    ) -> ControlReport {
        self.run_episode_traced(system, sounder, metrics, &mut Tracer::null())
    }

    /// [`run_episode`](Self::run_episode) with full structured tracing: the
    /// episode emits [`press_trace`] events (phase spans, per-candidate
    /// search steps, transport frames, actuation summaries) into the given
    /// [`Tracer`]. This *is* the episode implementation — the silent entry
    /// points delegate here with a [`Tracer::null`], whose disabled cost is
    /// a sequence-counter increment per event.
    ///
    /// Tracing never perturbs the episode: events are emitted outside the
    /// RNG streams, so the report is bit-identical across sinks (the
    /// [`post_mortem`](ControlReport::post_mortem) field aside, which only a
    /// live flight recorder populates).
    pub fn run_episode_traced<S: TraceSink>(
        &self,
        system: &PressSystem,
        sounder: &Sounder,
        metrics: Option<&mut ControlMetrics>,
        tracer: &mut Tracer<S>,
    ) -> ControlReport {
        let link = CachedLink::trace(system, sounder.tx.node.clone(), sounder.rx.node.clone());
        let config_space = system.array.config_space();
        let basis = LinkBasis::for_numerology(system, &link, &sounder.num);
        let mut model = SingleLinkModel {
            ctl: self,
            sounder,
            h: Vec::with_capacity(basis.n_subcarriers()),
            basis,
        };
        let mut plan = MetricsPlan::Direct(metrics);
        let run = self.run_engine(&mut model, &config_space, &mut plan, tracer);
        ControlReport {
            baseline_config: run.baseline_config,
            baseline_score: run.baseline_score,
            chosen_config: run.chosen_config,
            chosen_score: run.chosen_score,
            measurements: run.measurements,
            elapsed_s: run.elapsed_s,
            coherence_budget_s: self.coherence_budget_s,
            within_coherence: run.elapsed_s <= self.coherence_budget_s,
            reverted: run.reverted,
            realized_config: run.realized_config,
            stale_elements: run.stale_elements,
            actuation_frames: run.actuation_frames,
            actuation_retries: run.actuation_retries,
            post_mortem: run.post_mortem,
        }
    }
}
