//! The multi-link episode: the historical `run_space_episode` entry
//! family, expressed as a thin `EpisodeModel` over the generic engine.

use crate::config::{ConfigSpace, Configuration};
use crate::space::SmartSpace;
use press_control::{ControlMetrics, SpaceMetrics};
use press_math::Complex64;
use press_trace::{EventKind, TraceSink, Tracer};
use rand::rngs::StdRng;

use super::engine::{EpisodeClock, EpisodeModel, MetricsPlan};
use super::{Controller, LinkReport, SpaceReport};

/// Every registered link of a [`SmartSpace`], measured in registry order on
/// one shared noise stream. An observation is the weighted space score plus
/// each link's own score and mean SNR.
struct SpaceEpisodeModel<'a> {
    ctl: &'a Controller,
    space: &'a SmartSpace,
    h: Vec<Complex64>,
}

impl EpisodeModel for SpaceEpisodeModel<'_> {
    type Obs = (f64, Vec<f64>, Vec<f64>);

    fn n_links(&self) -> u32 {
        self.space.n_links() as u32
    }

    fn emit_prelude<S: TraceSink>(&self, config_space: &ConfigSpace, tracer: &mut Tracer<S>) {
        for sl in self.space.links() {
            tracer.emit(
                0.0,
                EventKind::BasisBuild {
                    link: sl.id.0,
                    elements: config_space.n_elements() as u32,
                    subcarriers: sl.basis.n_subcarriers() as u32,
                    revision: sl.basis.revision(),
                },
            );
        }
    }

    fn measure(
        &mut self,
        config: &Configuration,
        rng: &mut StdRng,
        clock: &EpisodeClock,
    ) -> Self::Obs {
        let mut weighted = 0.0f64;
        let mut scores = Vec::with_capacity(self.space.n_links());
        let mut means = Vec::with_capacity(self.space.n_links());
        for sl in self.space.links() {
            sl.basis
                .synthesize_into(config, clock.elapsed.get(), &mut self.h);
            let profile = sl
                .sounder
                .sound_averaged_channel(&self.h, self.ctl.frames_per_measurement, rng)
                .expect("sounder has >=2 training symbols"); // press-lint: allow(panic-freedom) — infallible with >=2 training symbols
            clock.charge(&self.ctl.timing);
            let score = sl.objective.score(&profile);
            weighted += sl.weight * score;
            scores.push(score);
            means.push(profile.mean_db());
        }
        (weighted, scores, means)
    }

    fn score(obs: &Self::Obs) -> f64 {
        obs.0
    }

    fn emit_measurements<S: TraceSink>(&self, obs: &Self::Obs, t_s: f64, tracer: &mut Tracer<S>) {
        for (sl, &score) in self.space.links().iter().zip(&obs.1) {
            tracer.emit(
                t_s,
                EventKind::Measurement {
                    link: sl.id.0,
                    score,
                },
            );
        }
    }
}

impl Controller {
    /// Runs one control episode over a whole [`SmartSpace`]: measure every
    /// registered link at the baseline, search for one shared configuration
    /// maximizing the *weighted* space objective (each candidate evaluated
    /// by measurement on every link), actuate that single configuration
    /// through the configured [`ActuationMode`](super::ActuationMode), and
    /// verify each link against the array the control plane actually
    /// produced.
    ///
    /// The registry's objectives and weights drive the episode — the
    /// controller's own [`objective`](Self::objective) field is the
    /// single-link API and is not consulted here.
    ///
    /// Seed-stream discipline is the single-link episode's, unchanged:
    /// measurement noise on `seed` (links drawing in registry order),
    /// search on `seed + 1`, actuation on `seed + 2`. A one-link space is
    /// therefore RNG-stream-identical to
    /// [`run_episode`](Self::run_episode).
    pub fn run_space_episode(&self, space: &SmartSpace) -> SpaceReport {
        self.run_space_episode_instrumented(space, None)
    }

    /// [`run_space_episode`](Self::run_space_episode) with an optional
    /// per-[`LinkId`](crate::space::LinkId)-labeled metrics registry. The
    /// shared actuation is recorded once into the wire-truth row and
    /// attributed to every link row ([`SpaceMetrics::record_shared`]);
    /// instrumentation never perturbs the episode.
    pub fn run_space_episode_instrumented(
        &self,
        space: &SmartSpace,
        metrics: Option<&mut SpaceMetrics>,
    ) -> SpaceReport {
        self.run_space_episode_traced(space, metrics, &mut Tracer::null())
    }

    /// [`run_space_episode`](Self::run_space_episode) with full structured
    /// tracing, mirroring [`run_episode_traced`](Self::run_episode_traced):
    /// per-link basis and measurement events, per-candidate search steps,
    /// transport frames, actuation summaries and phase spans all flow into
    /// the given [`Tracer`]. The silent entry points delegate here with a
    /// [`Tracer::null`]; tracing never perturbs the episode.
    pub fn run_space_episode_traced<S: TraceSink>(
        &self,
        space: &SmartSpace,
        metrics: Option<&mut SpaceMetrics>,
        tracer: &mut Tracer<S>,
    ) -> SpaceReport {
        assert!(
            space.n_links() > 0,
            "a space episode needs at least one registered link"
        );
        let config_space = space.config_space();
        let mut model = SpaceEpisodeModel {
            ctl: self,
            space,
            h: Vec::new(),
        };
        // One shared actuation serves every link; metrics accumulate into a
        // local wire-truth row (reverts merged in) and are attributed to
        // the caller's registry after the run.
        let mut plan = MetricsPlan::Shared(ControlMetrics::new());
        let run = self.run_engine(&mut model, &config_space, &mut plan, tracer);
        if let MetricsPlan::Shared(act) = plan {
            if let Some(m) = metrics {
                m.record_shared(&act);
            }
        }

        let links = space
            .links()
            .iter()
            .enumerate()
            .map(|(i, sl)| LinkReport {
                id: sl.id,
                label: sl.label.clone(),
                weight: sl.weight,
                baseline_score: run.baseline.1[i],
                chosen_score: run.chosen.1[i],
                baseline_mean_snr_db: run.baseline.2[i],
                chosen_mean_snr_db: run.chosen.2[i],
            })
            .collect();

        SpaceReport {
            baseline_config: run.baseline_config,
            baseline_score: run.baseline_score,
            chosen_config: run.chosen_config,
            chosen_score: run.chosen_score,
            links,
            measurements: run.measurements,
            elapsed_s: run.elapsed_s,
            coherence_budget_s: self.coherence_budget_s,
            within_coherence: run.elapsed_s <= self.coherence_budget_s,
            reverted: run.reverted,
            realized_config: run.realized_config,
            stale_elements: run.stale_elements,
            actuation_frames: run.actuation_frames,
            actuation_retries: run.actuation_retries,
            post_mortem: run.post_mortem,
        }
    }
}
