//! Configuration search: navigating the `M^N` space.
//!
//! §4.2 of the paper: "With N PRESS elements, each having M possible
//! reflection coefficients, enumerating the M^N possibilities in the search
//! space for the optimal configuration becomes impractical. We will focus
//! the search in the vicinity of intended receivers, and apply heuristics to
//! prune the space." This module provides the exhaustive baseline plus the
//! heuristic family the ablation benches compare: random sampling, greedy
//! coordinate descent, hill climbing with restarts, simulated annealing, and
//! a genetic search.
//!
//! Every algorithm maximizes a caller-supplied evaluator
//! `FnMut(&Configuration) -> f64` and reports how many evaluations it spent
//! — the currency that matters when each evaluation is a real channel
//! measurement inside a coherence-time budget.

use crate::config::{ConfigSpace, Configuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64-style derivation of an independent RNG seed for stream
/// `(a, b)` of a root `seed`. Shared by every deterministic parallel
/// runner (campaigns, sweeps): each unit of work draws from its own
/// derived stream, so results are bit-identical regardless of thread
/// count or scheduling.
pub fn derive_stream_seed(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(1 + a))
        .wrapping_add(0xBF58476D1CE4E5B9u64.wrapping_mul(1 + b));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Caller-owned scratch arena for the search inner loops.
///
/// The annealing, hierarchical and genetic strategies used to clone
/// configurations (and, for genetic, rebuild population vectors) inside
/// their hot loops. The `*_scratch` variants thread this arena through
/// instead: buffers grow on first use and are reused from then on, so a
/// warm loop performs no allocation per iteration. The plain entry points
/// construct a temporary arena and stay bit-identical per seed — the
/// scratch rework only changes *where* bytes live, never which values are
/// computed or in what order the RNG is consumed.
#[derive(Debug)]
pub struct SearchScratch {
    /// Proposal / child configuration buffer.
    candidate: Configuration,
    /// Current-point / sub-space configuration buffer.
    current: Configuration,
    /// Best-so-far configuration buffer.
    best: Configuration,
    /// Batch of configurations (genetic children, exhaustive chunks).
    batch: Vec<Configuration>,
    /// Batch scores, parallel to `batch`.
    scores: Vec<f64>,
}

impl SearchScratch {
    /// An empty arena; buffers grow to the search's working-set size on
    /// first use.
    pub fn new() -> Self {
        SearchScratch {
            candidate: Configuration::zeros(0),
            current: Configuration::zeros(0),
            best: Configuration::zeros(0),
            batch: Vec::new(),
            scores: Vec::new(),
        }
    }
}

impl Default for SearchScratch {
    fn default() -> Self {
        SearchScratch::new()
    }
}

/// Result of a configuration search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best configuration found.
    pub best: Configuration,
    /// Its score.
    pub score: f64,
    /// Number of evaluator calls spent.
    pub evaluations: usize,
}

/// One observed search evaluation — the convergence-telemetry unit emitted
/// by the `*_observed` search variants. Observation is purely passive: the
/// observed variants consume the RNG and the evaluator in exactly the order
/// of their silent counterparts, so results stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchStep {
    /// Zero-based index of the evaluation within this search.
    pub iteration: usize,
    /// Score of the configuration evaluated at this step.
    pub score: f64,
    /// Best score seen so far, including this step.
    pub best: f64,
    /// Whether this step's configuration was adopted (new best for the
    /// improvement-driven searches, annealing acceptance for annealing).
    pub accepted: bool,
}

/// Exhaustively evaluates the whole space. Exact but `O(M^N)` — the paper's
/// 64-configuration prototype is the only regime where this is routine.
pub fn exhaustive<F>(space: &ConfigSpace, eval: F) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
{
    exhaustive_observed(space, eval, |_| {})
}

/// [`exhaustive`] with a per-evaluation [`SearchStep`] observer.
pub fn exhaustive_observed<F, O>(space: &ConfigSpace, mut eval: F, mut on_step: O) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    O: FnMut(&SearchStep),
{
    let mut best: Option<(Configuration, f64)> = None;
    let mut evaluations = 0;
    for config in space.iter() {
        let score = eval(&config);
        evaluations += 1;
        let accepted = best.as_ref().is_none_or(|(_, b)| score > *b);
        if accepted {
            best = Some((config, score));
        }
        on_step(&SearchStep {
            iteration: evaluations - 1,
            score,
            best: best.as_ref().map(|(_, b)| *b).expect("just set"), // press-lint: allow(panic-freedom) — set on the accepting branch just above
            accepted,
        });
    }
    let (best, score) = best.expect("configuration space is never empty"); // press-lint: allow(panic-freedom) — the configuration space is never empty
    SearchResult {
        best,
        score,
        evaluations,
    }
}

/// Parallel exhaustive sweep over scoped worker threads.
///
/// Each worker builds its own evaluator via `make_eval` (e.g. a
/// [`crate::basis::BasisEvaluator`] over a shared [`crate::basis::LinkBasis`])
/// and takes a strided share of the dense indices. Ties break toward the
/// lowest dense index — exactly the configuration serial [`exhaustive`]
/// keeps — so given a history-independent evaluator the result is
/// bit-identical to the serial sweep and invariant to `n_threads`.
pub fn exhaustive_parallel<E, F>(
    space: &ConfigSpace,
    n_threads: usize,
    make_eval: F,
) -> SearchResult
where
    E: FnMut(&Configuration) -> f64,
    F: Fn() -> E + Sync,
{
    assert!(n_threads > 0, "need at least one thread");
    let size = space.size();
    let best = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                let make_eval = &make_eval;
                scope.spawn(move |_| {
                    let mut eval = make_eval();
                    let mut local: Option<(usize, f64)> = None;
                    let mut j = w;
                    while j < size {
                        let c = space.config_at(j);
                        let s = eval(&c);
                        if local.is_none_or(|(_, b)| s > b) {
                            local = Some((j, s));
                        }
                        j += n_threads;
                    }
                    local
                })
            })
            .collect();
        let mut best: Option<(usize, f64)> = None;
        for h in handles {
            // press-lint: allow(panic-freedom) — join only re-raises a worker panic
            if let Some((idx, s)) = h.join().expect("search worker panicked") {
                let better = match best {
                    None => true,
                    Some((bi, bs)) => s > bs || (s == bs && idx < bi),
                };
                if better {
                    best = Some((idx, s));
                }
            }
        }
        best
    })
    .expect("search scope"); // press-lint: allow(panic-freedom) — Err only when a worker panicked, surfaced at join above
    let (idx, score) = best.expect("configuration space is never empty"); // press-lint: allow(panic-freedom) — the configuration space is never empty
    SearchResult {
        best: space.config_at(idx),
        score,
        evaluations: size,
    }
}

/// Exhaustive sweep scored in contiguous batches of `batch` dense indices
/// — the shape [`crate::basis::BatchEvaluator`] exploits through its
/// shared-prefix stack (bigger batches mean longer shared prefixes, and
/// evaluator scratch is independent of batch size, so prefer sweep-sized
/// batches). Ties break toward the lowest dense index, exactly like
/// [`exhaustive`], so with a batch scorer whose scores equal the scalar
/// evaluator's bitwise (the `BatchEvaluator` contract) the result is
/// bit-identical to the serial sweep.
///
/// The batch scorer receives a slice of configurations and must leave one
/// score per configuration in its output vector (clearing it first), in
/// input order.
pub fn exhaustive_batched<B>(
    space: &ConfigSpace,
    batch: usize,
    scratch: &mut SearchScratch,
    score_batch: &mut B,
) -> SearchResult
where
    B: FnMut(&[Configuration], &mut Vec<f64>),
{
    assert!(batch > 0, "batch must be positive");
    let size = space.size();
    let mut best: Option<(usize, f64)> = None;
    let mut start = 0usize;
    while start < size {
        let end = (start + batch).min(size);
        let n = end - start;
        while scratch.batch.len() < n {
            scratch.batch.push(Configuration::zeros(0));
        }
        for (slot, idx) in (start..end).enumerate() {
            space.config_at_into(idx, &mut scratch.batch[slot]);
        }
        score_batch(&scratch.batch[..n], &mut scratch.scores);
        for (slot, &s) in scratch.scores[..n].iter().enumerate() {
            let idx = start + slot;
            if best.is_none_or(|(_, b)| s > b) {
                best = Some((idx, s));
            }
        }
        start = end;
    }
    let (idx, score) = best.expect("configuration space is never empty"); // press-lint: allow(panic-freedom) — the configuration space is never empty
    SearchResult {
        // Result materialization, once per sweep — the hot loop above is
        // allocation-free. press-lint: allow(kernel-allocation)
        best: space.config_at(idx),
        score,
        evaluations: size,
    }
}

/// Parallel batched exhaustive sweep: workers take strided *chunks* of
/// `batch` contiguous dense indices and score each chunk through their own
/// batch scorer (e.g. one [`crate::basis::BatchEvaluator`] per worker over
/// a shared basis). Ties break toward the lowest dense index, so with a
/// history-independent batch scorer the result is bit-identical to serial
/// [`exhaustive`] — and to [`exhaustive_batched`] — at any thread count.
pub fn exhaustive_parallel_batched<B, F>(
    space: &ConfigSpace,
    n_threads: usize,
    batch: usize,
    make_scorer: F,
) -> SearchResult
where
    B: FnMut(&[Configuration], &mut Vec<f64>),
    F: Fn() -> B + Sync,
{
    assert!(n_threads > 0, "need at least one thread");
    assert!(batch > 0, "batch must be positive");
    let size = space.size();
    let n_chunks = size.div_ceil(batch);
    let best = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                let make_scorer = &make_scorer;
                scope.spawn(move |_| {
                    let mut score_batch = make_scorer();
                    // Per-worker scratch, allocated once per sweep before
                    // the chunk loop. press-lint: allow(kernel-allocation)
                    let mut configs: Vec<Configuration> = Vec::new();
                    // press-lint: allow(kernel-allocation) -- same: one-time worker scratch
                    let mut scores: Vec<f64> = Vec::new();
                    let mut local: Option<(usize, f64)> = None;
                    let mut chunk = w;
                    while chunk < n_chunks {
                        let start = chunk * batch;
                        let end = (start + batch).min(size);
                        let n = end - start;
                        while configs.len() < n {
                            configs.push(Configuration::zeros(0));
                        }
                        for (slot, idx) in (start..end).enumerate() {
                            space.config_at_into(idx, &mut configs[slot]);
                        }
                        score_batch(&configs[..n], &mut scores);
                        for (slot, &s) in scores[..n].iter().enumerate() {
                            let idx = start + slot;
                            let better = match local {
                                None => true,
                                Some((bi, bs)) => s > bs || (s == bs && idx < bi),
                            };
                            if better {
                                local = Some((idx, s));
                            }
                        }
                        chunk += n_threads;
                    }
                    local
                })
            })
            // One JoinHandle per worker, at spawn time — not in the
            // scoring loop. press-lint: allow(kernel-allocation)
            .collect();
        let mut best: Option<(usize, f64)> = None;
        for h in handles {
            // press-lint: allow(panic-freedom) — join only re-raises a worker panic
            if let Some((idx, s)) = h.join().expect("search worker panicked") {
                let better = match best {
                    None => true,
                    Some((bi, bs)) => s > bs || (s == bs && idx < bi),
                };
                if better {
                    best = Some((idx, s));
                }
            }
        }
        best
    })
    .expect("search scope"); // press-lint: allow(panic-freedom) — Err only when a worker panicked, surfaced at join above
    let (idx, score) = best.expect("configuration space is never empty"); // press-lint: allow(panic-freedom) — the configuration space is never empty
    SearchResult {
        // Result materialization, once per sweep — the workers' chunk
        // loops are allocation-free. press-lint: allow(kernel-allocation)
        best: space.config_at(idx),
        score,
        evaluations: size,
    }
}

/// Uniform random sampling with a fixed evaluation budget.
pub fn random_search<F, R>(space: &ConfigSpace, budget: usize, rng: &mut R, eval: F) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    random_search_observed(space, budget, rng, eval, |_| {})
}

/// [`random_search`] with a per-evaluation [`SearchStep`] observer.
pub fn random_search_observed<F, R, O>(
    space: &ConfigSpace,
    budget: usize,
    rng: &mut R,
    mut eval: F,
    mut on_step: O,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
    O: FnMut(&SearchStep),
{
    assert!(budget > 0, "budget must be positive");
    let mut best: Option<(Configuration, f64)> = None;
    for iteration in 0..budget {
        let c = space.random(rng);
        let s = eval(&c);
        let accepted = best.as_ref().is_none_or(|(_, b)| s > *b);
        if accepted {
            best = Some((c, s));
        }
        on_step(&SearchStep {
            iteration,
            score: s,
            best: best.as_ref().map(|(_, b)| *b).expect("just set"), // press-lint: allow(panic-freedom) — set on the accepting branch just above
            accepted,
        });
    }
    let (best, score) = best.expect("budget > 0"); // press-lint: allow(panic-freedom) — budget > 0, so the loop always sets best
    SearchResult {
        best,
        score,
        evaluations: budget,
    }
}

/// Parallel random sampling: candidate `i` draws its configuration from an
/// RNG seeded [`derive_stream_seed`]`(seed, i, 0)`, so the sampled set —
/// and, with a history-independent evaluator, every score — is
/// bit-identical regardless of thread count. The stream differs from
/// [`random_search`]'s (which threads one RNG through the draws the way
/// the serial prototype did); ties break toward the lowest candidate
/// index.
pub fn random_search_parallel<E, F>(
    space: &ConfigSpace,
    budget: usize,
    seed: u64,
    n_threads: usize,
    make_eval: F,
) -> SearchResult
where
    E: FnMut(&Configuration) -> f64,
    F: Fn() -> E + Sync,
{
    assert!(budget > 0, "budget must be positive");
    assert!(n_threads > 0, "need at least one thread");
    let best = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                let make_eval = &make_eval;
                scope.spawn(move |_| {
                    let mut eval = make_eval();
                    let mut local: Option<(usize, Configuration, f64)> = None;
                    let mut j = w;
                    while j < budget {
                        let mut rng = StdRng::seed_from_u64(derive_stream_seed(seed, j as u64, 0));
                        let c = space.random(&mut rng);
                        let s = eval(&c);
                        if local.as_ref().is_none_or(|(_, _, b)| s > *b) {
                            local = Some((j, c, s));
                        }
                        j += n_threads;
                    }
                    local
                })
            })
            .collect();
        let mut best: Option<(usize, Configuration, f64)> = None;
        for h in handles {
            // press-lint: allow(panic-freedom) — join only re-raises a worker panic
            if let Some((idx, c, s)) = h.join().expect("search worker panicked") {
                let better = match &best {
                    None => true,
                    Some((bi, _, bs)) => s > *bs || (s == *bs && idx < *bi),
                };
                if better {
                    best = Some((idx, c, s));
                }
            }
        }
        best
    })
    .expect("search scope"); // press-lint: allow(panic-freedom) — Err only when a worker panicked, surfaced at join above
    let (_, best, score) = best.expect("budget > 0"); // press-lint: allow(panic-freedom) — budget > 0, so some worker proposes
    SearchResult {
        best,
        score,
        evaluations: budget,
    }
}

/// Greedy coordinate descent: sweep the elements in order, setting each to
/// its best state with the others held fixed; repeat until a sweep makes no
/// change or `max_sweeps` is hit. Cost per sweep: `Σ(Mᵢ−1) + 1` evaluations.
///
/// This is the natural "per-element" heuristic for PRESS because each
/// element contributes one additive path — coordinates couple only through
/// the shared objective, not through constraints.
pub fn greedy_coordinate<F>(
    space: &ConfigSpace,
    start: Configuration,
    max_sweeps: usize,
    eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
{
    greedy_coordinate_observed(space, start, max_sweeps, eval, |_| {})
}

/// [`greedy_coordinate`] with a per-evaluation [`SearchStep`] observer.
pub fn greedy_coordinate_observed<F, O>(
    space: &ConfigSpace,
    start: Configuration,
    max_sweeps: usize,
    mut eval: F,
    mut on_step: O,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    O: FnMut(&SearchStep),
{
    assert!(space.contains(&start), "start configuration invalid");
    let mut current = start;
    let mut current_score = eval(&current);
    let mut evaluations = 1;
    on_step(&SearchStep {
        iteration: 0,
        score: current_score,
        best: current_score,
        accepted: true,
    });
    for _ in 0..max_sweeps {
        let mut improved = false;
        for i in 0..space.n_elements() {
            let original = current.states[i];
            let mut best_state = original;
            let mut best_score = current_score;
            for s in 0..space.states_per_element[i] {
                if s == original {
                    continue;
                }
                current.states[i] = s;
                let score = eval(&current);
                evaluations += 1;
                let accepted = score > best_score;
                if accepted {
                    best_score = score;
                    best_state = s;
                }
                on_step(&SearchStep {
                    iteration: evaluations - 1,
                    score,
                    best: best_score,
                    accepted,
                });
            }
            current.states[i] = best_state;
            if best_state != original {
                current_score = best_score;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    SearchResult {
        best: current,
        score: current_score,
        evaluations,
    }
}

/// Hill climbing over Hamming-1 neighborhoods with random restarts.
pub fn hill_climb<F, R>(
    space: &ConfigSpace,
    restarts: usize,
    max_steps: usize,
    rng: &mut R,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    assert!(restarts > 0, "need at least one restart");
    let mut evaluations = 0;
    let mut global: Option<(Configuration, f64)> = None;
    for _ in 0..restarts {
        let mut current = space.random(rng);
        let mut score = eval(&current);
        evaluations += 1;
        for _ in 0..max_steps {
            let mut best_neighbor: Option<(Configuration, f64)> = None;
            for n in space.neighbors(&current) {
                let s = eval(&n);
                evaluations += 1;
                if best_neighbor.as_ref().is_none_or(|(_, b)| s > *b) {
                    best_neighbor = Some((n, s));
                }
            }
            match best_neighbor {
                Some((n, s)) if s > score => {
                    current = n;
                    score = s;
                }
                _ => break, // local optimum
            }
        }
        if global.as_ref().is_none_or(|(_, b)| score > *b) {
            global = Some((current, score));
        }
    }
    let (best, score) = global.expect("restarts > 0"); // press-lint: allow(panic-freedom) — restarts > 0, so the loop always sets global
    SearchResult {
        best,
        score,
        evaluations,
    }
}

/// Simulated annealing with geometric cooling over single-element moves.
pub fn simulated_annealing<F, R>(
    space: &ConfigSpace,
    iterations: usize,
    t_start: f64,
    t_end: f64,
    rng: &mut R,
    eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    simulated_annealing_observed(space, iterations, t_start, t_end, rng, eval, |_| {})
}

/// [`simulated_annealing`] with a per-evaluation [`SearchStep`] observer.
/// Iterations whose element has a single state evaluate nothing and emit
/// nothing, matching the silent variant's evaluation count.
#[allow(clippy::too_many_arguments)]
pub fn simulated_annealing_observed<F, R, O>(
    space: &ConfigSpace,
    iterations: usize,
    t_start: f64,
    t_end: f64,
    rng: &mut R,
    eval: F,
    on_step: O,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
    O: FnMut(&SearchStep),
{
    let mut scratch = SearchScratch::new();
    simulated_annealing_scratch(
        space,
        iterations,
        t_start,
        t_end,
        rng,
        &mut scratch,
        eval,
        on_step,
    )
}

/// [`simulated_annealing_observed`] over a caller-owned [`SearchScratch`]:
/// the proposal / current / best buffers live in the arena, so a warm
/// annealing loop allocates nothing per iteration (the accepted-move
/// commit is a buffer swap, not a clone). Bit-identical per seed to the
/// plain variants.
#[allow(clippy::too_many_arguments)]
pub fn simulated_annealing_scratch<F, R, O>(
    space: &ConfigSpace,
    iterations: usize,
    t_start: f64,
    t_end: f64,
    rng: &mut R,
    scratch: &mut SearchScratch,
    mut eval: F,
    mut on_step: O,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
    O: FnMut(&SearchStep),
{
    assert!(iterations > 0 && t_start > 0.0 && t_end > 0.0 && t_end <= t_start);
    space.random_into(rng, &mut scratch.current);
    let mut current_score = eval(&scratch.current);
    let mut evaluations = 1;
    scratch.best.states.clone_from(&scratch.current.states);
    let mut best_score = current_score;
    on_step(&SearchStep {
        iteration: 0,
        score: current_score,
        best: best_score,
        accepted: true,
    });
    let cooling = (t_end / t_start).powf(1.0 / iterations as f64);
    let mut temp = t_start;
    for _ in 0..iterations {
        // Single-element random move.
        let i = rng.gen_range(0..space.n_elements());
        let m = space.states_per_element[i];
        if m > 1 {
            scratch.candidate.states.clone_from(&scratch.current.states);
            let mut s = rng.gen_range(0..m);
            if s == scratch.candidate.states[i] {
                s = (s + 1) % m;
            }
            scratch.candidate.states[i] = s;
            let score = eval(&scratch.candidate);
            evaluations += 1;
            let accept =
                score >= current_score || rng.gen::<f64>() < ((score - current_score) / temp).exp();
            if accept {
                std::mem::swap(&mut scratch.current, &mut scratch.candidate);
                current_score = score;
                if score > best_score {
                    scratch.best.states.clone_from(&scratch.current.states);
                    best_score = score;
                }
            }
            on_step(&SearchStep {
                iteration: evaluations - 1,
                score,
                best: best_score,
                accepted: accept,
            });
        }
        temp *= cooling;
    }
    SearchResult {
        // Result materialization, once per run — the annealing loop swaps
        // and clone_froms scratch only. press-lint: allow(kernel-allocation)
        best: scratch.best.clone(),
        score: best_score,
        evaluations,
    }
}

/// [`simulated_annealing_scratch`] restricted to the sub-space spanned by
/// `dims` of `space`: moves mutate only the listed elements, every other
/// element stays pinned at `base`'s state, and the evaluator always sees
/// a full-width configuration (as does the returned best).
///
/// With `dims` covering every element in ascending order this is
/// bit-identical to the unrestricted annealer — the degenerate case the
/// sharded scheduler pins in its tests: the sub-space has the same
/// radices, so the RNG is consumed identically, and the embedding is the
/// identity. With a strict subset it is the shard-local search: the whole
/// budget explores only the dimensions the shard owns.
///
/// `dims` must be non-empty and free of duplicates; indices must be in
/// range for `space`.
#[allow(clippy::too_many_arguments)]
pub fn simulated_annealing_embedded<F, R, O>(
    space: &ConfigSpace,
    dims: &[usize],
    base: &Configuration,
    iterations: usize,
    t_start: f64,
    t_end: f64,
    rng: &mut R,
    scratch: &mut SearchScratch,
    mut eval: F,
    on_step: O,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
    O: FnMut(&SearchStep),
{
    assert!(!dims.is_empty(), "embedded search needs at least one dim");
    assert_eq!(base.len(), space.n_elements(), "base/space size mismatch");
    let sub = ConfigSpace::new(dims.iter().map(|&d| space.states_per_element[d]).collect());
    let mut full = base.clone();
    let result = simulated_annealing_scratch(
        &sub,
        iterations,
        t_start,
        t_end,
        rng,
        scratch,
        |c| {
            for (k, &d) in dims.iter().enumerate() {
                full.states[d] = c.states[k];
            }
            eval(&full)
        },
        on_step,
    );
    for (k, &d) in dims.iter().enumerate() {
        full.states[d] = result.best.states[k];
    }
    SearchResult {
        best: full,
        score: result.score,
        evaluations: result.evaluations,
    }
}

/// Hekaton-style hierarchical group search (§4.1: "we might divide the
/// elements into groups, to harness diversity or power gains within each
/// group and multiplex across groups").
///
/// Phase 1 tunes each group of `group_size` elements *independently* with
/// every other element parked in `park_state` (normally the absorber), by
/// exhaustive search over the group's sub-space. Phase 2 stitches the group
/// optima together and runs one greedy refinement sweep over the whole
/// array. Cost: `Σ M^g + Σ(M−1) + 1` evaluations instead of `M^N`.
pub fn hierarchical_groups<F>(
    space: &ConfigSpace,
    group_size: usize,
    park_state: usize,
    eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
{
    let mut scratch = SearchScratch::new();
    hierarchical_groups_scratch(space, group_size, park_state, &mut scratch, eval)
}

/// [`hierarchical_groups`] over a caller-owned [`SearchScratch`]: the
/// per-candidate park-and-overlay buffer and the sub-space enumeration
/// both reuse arena buffers, so phase 1's inner loop allocates nothing.
/// Bit-identical to the plain variant (same evaluation order, same
/// earliest-wins tie-break on the group optimum).
pub fn hierarchical_groups_scratch<F>(
    space: &ConfigSpace,
    group_size: usize,
    park_state: usize,
    scratch: &mut SearchScratch,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
{
    assert!(group_size >= 1, "groups need at least one element");
    let n = space.n_elements();
    assert!(
        space.states_per_element.iter().all(|&m| park_state < m),
        "park_state must be valid for every element"
    );
    let mut evaluations = 0usize;
    // One stitched configuration per call, before any search loop runs.
    // press-lint: allow(kernel-allocation)
    let mut stitched = Configuration::new(vec![park_state; n]);

    // Phase 1: per-group exhaustive search, others parked.
    let mut start = 0;
    while start < n {
        let end = (start + group_size).min(n);
        // Enumerate the group's sub-space by dense index, tracking the
        // best index instead of cloning the best state vector. The sub-space
        // itself is built once per *group*, not per evaluation.
        // press-lint: allow(kernel-allocation)
        let sub = ConfigSpace::new(space.states_per_element[start..end].to_vec());
        let mut best_sub: Option<(usize, f64)> = None;
        for idx in 0..sub.size() {
            sub.config_at_into(idx, &mut scratch.current);
            scratch.candidate.states.clear();
            scratch.candidate.states.resize(n, park_state);
            for (slot, i) in (start..end).enumerate() {
                scratch.candidate.states[i] = scratch.current.states[slot];
            }
            let score = eval(&scratch.candidate);
            evaluations += 1;
            if best_sub.is_none_or(|(_, b)| score > b) {
                best_sub = Some((idx, score));
            }
        }
        let (best_idx, _) = best_sub.expect("group sub-space non-empty"); // press-lint: allow(panic-freedom) — group sub-spaces are non-empty
        sub.config_at_into(best_idx, &mut scratch.current);
        for (slot, i) in (start..end).enumerate() {
            stitched.states[i] = scratch.current.states[slot];
        }
        start = end;
    }

    // Phase 2: one greedy refinement sweep over the stitched whole.
    let refined = greedy_coordinate(space, stitched, 1, &mut eval);
    SearchResult {
        best: refined.best,
        score: refined.score,
        evaluations: evaluations + refined.evaluations,
    }
}

/// Parameters for the genetic search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticParams {
    /// Population size.
    pub population: usize,
    /// Generations.
    pub generations: usize,
    /// Per-element mutation probability.
    pub mutation_rate: f64,
    /// Fraction of the population carried over as elites.
    pub elite_fraction: f64,
}

impl Default for GeneticParams {
    fn default() -> Self {
        GeneticParams {
            population: 24,
            generations: 12,
            mutation_rate: 0.15,
            elite_fraction: 0.25,
        }
    }
}

/// Genetic search: tournament selection, uniform crossover, per-element
/// mutation, elitism.
pub fn genetic<F, R>(
    space: &ConfigSpace,
    params: &GeneticParams,
    rng: &mut R,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    let mut scratch = SearchScratch::new();
    genetic_core(
        space,
        params,
        rng,
        &mut scratch,
        &mut |configs: &[Configuration], out: &mut Vec<f64>| {
            out.clear();
            out.extend(configs.iter().map(&mut eval));
        },
    )
}

/// Genetic search over a caller-supplied *batch* scorer and scratch arena
/// — the natural fit for [`crate::basis::BatchEvaluator`], which scores
/// each generation through its shared-prefix stack. With a batch scorer
/// whose scores equal the scalar evaluator's bitwise, the result is
/// bit-identical to [`genetic`] with the same seed.
pub fn genetic_batched<B, R>(
    space: &ConfigSpace,
    params: &GeneticParams,
    rng: &mut R,
    scratch: &mut SearchScratch,
    score_batch: &mut B,
) -> SearchResult
where
    B: FnMut(&[Configuration], &mut Vec<f64>),
    R: Rng + ?Sized,
{
    // genetic_core allocates its initial population once; every later
    // generation breeds into the caller's scratch pool.
    // press-lint: allow(kernel-allocation)
    genetic_core(space, params, rng, scratch, score_batch)
}

/// Parallel genetic search. Breeding (all the RNG draws) stays serial on
/// the caller's RNG; each generation's children are then *scored* as one
/// batch dealt across scoped worker threads. Because evaluation draws
/// nothing from the breeding RNG, this produces exactly the stream — and
/// with a history-independent evaluator, exactly the result — of serial
/// [`genetic`] with the same seed, at any thread count.
pub fn genetic_parallel<E, F, R>(
    space: &ConfigSpace,
    params: &GeneticParams,
    rng: &mut R,
    n_threads: usize,
    make_eval: F,
) -> SearchResult
where
    E: FnMut(&Configuration) -> f64,
    F: Fn() -> E + Sync,
    R: Rng + ?Sized,
{
    assert!(n_threads > 0, "need at least one thread");
    let mut scratch = SearchScratch::new();
    genetic_core(
        space,
        params,
        rng,
        &mut scratch,
        &mut |configs: &[Configuration], out: &mut Vec<f64>| {
            score_batch_parallel(configs, n_threads, &make_eval, out);
        },
    )
}

/// Scores a batch of configurations across scoped worker threads (strided
/// dealing; output order matches input order, so results are independent
/// of scheduling). Scores land in `out` (cleared first).
fn score_batch_parallel<E, F>(
    configs: &[Configuration],
    n_threads: usize,
    make_eval: &F,
    out: &mut Vec<f64>,
) where
    E: FnMut(&Configuration) -> f64,
    F: Fn() -> E + Sync,
{
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                scope.spawn(move |_| {
                    let mut local = Vec::with_capacity(configs.len().div_ceil(n_threads));
                    let mut eval = make_eval();
                    let mut j = w;
                    while j < configs.len() {
                        local.push((j, eval(&configs[j])));
                        j += n_threads;
                    }
                    local
                })
            })
            .collect();
        out.clear();
        out.resize(configs.len(), 0.0);
        for h in handles {
            // press-lint: allow(panic-freedom) — join only re-raises a worker panic
            for (j, s) in h.join().expect("search worker panicked") {
                out[j] = s;
            }
        }
    })
    .expect("search scope") // press-lint: allow(panic-freedom) — Err only when a worker panicked, surfaced at join above
}

/// The genetic algorithm over a batch scorer. Children of one generation
/// are bred first (consuming the RNG in the same order the serial
/// implementation always did — scoring draws nothing), then scored as one
/// batch, which is what lets [`genetic_parallel`] fan the scoring out
/// without perturbing determinism.
fn genetic_core<B, R>(
    space: &ConfigSpace,
    params: &GeneticParams,
    rng: &mut R,
    scratch: &mut SearchScratch,
    score_batch: &mut B,
) -> SearchResult
where
    B: FnMut(&[Configuration], &mut Vec<f64>),
    R: Rng + ?Sized,
{
    assert!(params.population >= 2, "population must be at least 2");
    let mut evaluations = 0;
    let initial: Vec<Configuration> = (0..params.population).map(|_| space.random(rng)).collect();
    score_batch(&initial, &mut scratch.scores);
    evaluations += initial.len();
    let mut scored: Vec<(Configuration, f64)> = initial
        .into_iter()
        .zip(scratch.scores.iter().copied())
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let elites = ((params.population as f64 * params.elite_fraction) as usize).max(1);
    let n_children = params.population - elites;
    // Children are bred into the scratch pool, so generations after the
    // first allocate nothing.
    while scratch.batch.len() < n_children {
        scratch.batch.push(Configuration::zeros(0));
    }

    for _ in 0..params.generations {
        for c in 0..n_children {
            // Binary tournaments, by index (same draws as cloning the
            // winners, without the clones).
            let pick = |rng: &mut R| {
                let a = rng.gen_range(0..scored.len());
                let b = rng.gen_range(0..scored.len());
                if scored[a].1 >= scored[b].1 {
                    a
                } else {
                    b
                }
            };
            let p1 = pick(rng);
            let p2 = pick(rng);
            // Uniform crossover + mutation, written straight into the pool.
            scratch.batch[c].states.clear();
            for i in 0..space.n_elements() {
                let mut s = if rng.gen::<bool>() {
                    scored[p1].0.states[i]
                } else {
                    scored[p2].0.states[i]
                };
                if rng.gen::<f64>() < params.mutation_rate {
                    s = rng.gen_range(0..space.states_per_element[i]);
                }
                scratch.batch[c].states.push(s);
            }
        }
        score_batch(&scratch.batch[..n_children], &mut scratch.scores);
        evaluations += n_children;
        // Overwrite the non-elite tail in place; the stable sort of
        // (elites in order) ++ (children in breeding order) matches the
        // old collect-and-sort rebuild exactly.
        for (slot, c) in (elites..params.population).zip(0..n_children) {
            scored[slot].0.states.clone_from(&scratch.batch[c].states);
            scored[slot].1 = scratch.scores[c];
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    }
    let (best, score) = scored.into_iter().next().expect("population non-empty"); // press-lint: allow(panic-freedom) — the population is sized >= 1 at construction
    SearchResult {
        best,
        score,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![4, 4, 4])
    }

    /// A deterministic synthetic objective with a unique global optimum at
    /// (3, 1, 2) and mild coupling between elements.
    fn objective(c: &Configuration) -> f64 {
        let target = [3usize, 1, 2];
        let mut score = 0.0;
        for (i, (&s, &t)) in c.states.iter().zip(&target).enumerate() {
            score -= ((s as f64 - t as f64) * (i as f64 + 1.0)).powi(2);
        }
        // Coupling term.
        score - ((c.states[0] + c.states[1]) % 3) as f64 * 0.1
    }

    #[test]
    fn exhaustive_finds_global_optimum() {
        let r = exhaustive(&space(), objective);
        assert_eq!(r.best.states, vec![3, 1, 2]);
        assert_eq!(r.evaluations, 64);
    }

    #[test]
    fn greedy_reaches_optimum_on_separable_objective() {
        let r = greedy_coordinate(&space(), Configuration::zeros(3), 10, objective);
        assert_eq!(r.best.states, vec![3, 1, 2]);
        assert!(
            r.evaluations < 64,
            "greedy must beat exhaustive: {}",
            r.evaluations
        );
    }

    #[test]
    fn hill_climb_matches_exhaustive_on_small_space() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = hill_climb(&space(), 4, 20, &mut rng, objective);
        assert_eq!(r.best.states, vec![3, 1, 2]);
    }

    #[test]
    fn annealing_finds_good_solutions() {
        let mut rng = StdRng::seed_from_u64(8);
        let r = simulated_annealing(&space(), 400, 5.0, 0.01, &mut rng, objective);
        let optimum = objective(&Configuration::new(vec![3, 1, 2]));
        assert!(r.score >= optimum - 1.0, "{} vs {optimum}", r.score);
    }

    #[test]
    fn genetic_finds_good_solutions() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = genetic(&space(), &GeneticParams::default(), &mut rng, objective);
        let optimum = objective(&Configuration::new(vec![3, 1, 2]));
        assert!(r.score >= optimum - 1.0, "{} vs {optimum}", r.score);
    }

    #[test]
    fn random_search_respects_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = random_search(&space(), 10, &mut rng, objective);
        assert_eq!(r.evaluations, 10);
    }

    #[test]
    fn searches_are_deterministic_per_seed() {
        let r1 = hill_climb(&space(), 3, 10, &mut StdRng::seed_from_u64(7), objective);
        let r2 = hill_climb(&space(), 3, 10, &mut StdRng::seed_from_u64(7), objective);
        assert_eq!(r1, r2);
    }

    #[test]
    fn larger_space_heuristics_beat_random_at_equal_budget() {
        // 8 elements x 8 states = 16.7M configs; heuristics must do better
        // than random at a comparable evaluation budget.
        let big = ConfigSpace::new(vec![8; 8]);
        let target: Vec<usize> = vec![7, 0, 3, 5, 1, 6, 2, 4];
        let obj = |c: &Configuration| -> f64 {
            -c.states
                .iter()
                .zip(&target)
                .map(|(&s, &t)| (s as f64 - t as f64).abs())
                .sum::<f64>()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let greedy = greedy_coordinate(&big, big.random(&mut rng), 5, obj);
        let rand_budget = greedy.evaluations;
        let random = random_search(&big, rand_budget, &mut rng, obj);
        assert!(
            greedy.score > random.score,
            "greedy {} vs random {}",
            greedy.score,
            random.score
        );
        assert_eq!(
            greedy.best.states, target,
            "separable objective is exactly solvable"
        );
    }

    #[test]
    fn hierarchical_groups_match_exhaustive_on_separable_objective() {
        let space = ConfigSpace::new(vec![4, 4, 4, 4]);
        let target = [3usize, 1, 2, 0];
        let obj = |c: &Configuration| -> f64 {
            -c.states
                .iter()
                .zip(&target)
                .map(|(&s, &t)| (s as f64 - t as f64).powi(2))
                .sum::<f64>()
        };
        let hier = hierarchical_groups(&space, 2, 0, obj);
        assert_eq!(hier.best.states, target.to_vec());
        // 2 groups of 4^2 + refinement sweep << 4^4 = 256 exhaustive.
        assert!(hier.evaluations < 100, "{}", hier.evaluations);
    }

    #[test]
    fn hierarchical_groups_near_exhaustive_on_coupled_objective() {
        let space = ConfigSpace::new(vec![4, 4, 4]);
        let exhaustive = super::exhaustive(&space, objective);
        let hier = hierarchical_groups(&space, 2, 3, objective);
        assert!(
            hier.score >= exhaustive.score - 1.0,
            "hier {} vs exhaustive {}",
            hier.score,
            exhaustive.score
        );
        assert!(hier.evaluations < exhaustive.evaluations);
    }

    #[test]
    fn exhaustive_parallel_matches_serial_at_any_thread_count() {
        let serial = exhaustive(&space(), objective);
        for n_threads in [1, 2, 3, 8] {
            let par = exhaustive_parallel(&space(), n_threads, || objective);
            assert_eq!(par, serial, "n_threads = {n_threads}");
        }
    }

    #[test]
    fn random_search_parallel_is_thread_count_invariant() {
        let a = random_search_parallel(&space(), 17, 42, 1, || objective);
        let b = random_search_parallel(&space(), 17, 42, 5, || objective);
        assert_eq!(a, b);
        assert_eq!(a.evaluations, 17);
    }

    #[test]
    fn genetic_parallel_matches_serial_stream() {
        let params = GeneticParams::default();
        let serial = genetic(&space(), &params, &mut StdRng::seed_from_u64(3), objective);
        for n_threads in [1, 4] {
            let par = genetic_parallel(
                &space(),
                &params,
                &mut StdRng::seed_from_u64(3),
                n_threads,
                || objective,
            );
            assert_eq!(par, serial, "n_threads = {n_threads}");
        }
    }

    #[test]
    fn derived_stream_seeds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..50u64 {
            for b in 0..50u64 {
                assert!(seen.insert(derive_stream_seed(7, a, b)));
            }
        }
    }

    #[test]
    fn observed_variants_match_silent_bitwise() {
        let sp = space();
        let mut steps = Vec::new();
        let silent = exhaustive(&sp, objective);
        let observed = exhaustive_observed(&sp, objective, |s| steps.push(*s));
        assert_eq!(silent, observed);
        assert_eq!(steps.len(), silent.evaluations);

        steps.clear();
        let silent = greedy_coordinate(&sp, Configuration::zeros(3), 4, objective);
        let observed =
            greedy_coordinate_observed(&sp, Configuration::zeros(3), 4, objective, |s| {
                steps.push(*s)
            });
        assert_eq!(silent, observed);
        assert_eq!(steps.len(), silent.evaluations);

        steps.clear();
        let silent = random_search(&sp, 13, &mut StdRng::seed_from_u64(9), objective);
        let observed =
            random_search_observed(&sp, 13, &mut StdRng::seed_from_u64(9), objective, |s| {
                steps.push(*s)
            });
        assert_eq!(silent, observed);
        assert_eq!(steps.len(), 13);

        steps.clear();
        let silent = simulated_annealing(
            &sp,
            50,
            3.0,
            0.05,
            &mut StdRng::seed_from_u64(11),
            objective,
        );
        let observed = simulated_annealing_observed(
            &sp,
            50,
            3.0,
            0.05,
            &mut StdRng::seed_from_u64(11),
            objective,
            |s| steps.push(*s),
        );
        assert_eq!(silent, observed);
        assert_eq!(steps.len(), silent.evaluations);
    }

    #[test]
    fn observed_steps_have_monotone_best_and_sequential_iterations() {
        let sp = space();
        let mut steps = Vec::new();
        simulated_annealing_observed(
            &sp,
            80,
            3.0,
            0.05,
            &mut StdRng::seed_from_u64(4),
            objective,
            |s| steps.push(*s),
        );
        for (i, w) in steps.windows(2).enumerate() {
            assert_eq!(w[1].iteration, w[0].iteration + 1, "step {i}");
            assert!(w[1].best >= w[0].best, "best must be a running max");
        }
        assert_eq!(steps[0].iteration, 0);
        assert!(steps[0].accepted, "initial point is always adopted");
        // The final reported score is the last step's best.
        let last = steps.last().unwrap();
        let again =
            simulated_annealing(&sp, 80, 3.0, 0.05, &mut StdRng::seed_from_u64(4), objective);
        assert_eq!(last.best, again.score);
    }

    #[test]
    fn single_state_elements_handled() {
        let tiny = ConfigSpace::new(vec![1, 1]);
        let r = exhaustive(&tiny, |_| 42.0);
        assert_eq!(r.best.states, vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        let r2 = simulated_annealing(&tiny, 10, 1.0, 0.1, &mut rng, |_| 1.0);
        assert_eq!(r2.best.states, vec![0, 0]);
    }

    /// Wraps the scalar objective as a write-into batch scorer.
    fn batch_objective(configs: &[Configuration], out: &mut Vec<f64>) {
        out.clear();
        out.extend(configs.iter().map(objective));
    }

    #[test]
    fn exhaustive_batched_matches_serial_at_any_batch_size() {
        let sp = space();
        let serial = exhaustive(&sp, objective);
        let mut scratch = SearchScratch::new();
        for batch in [1, 3, 7, 64, 100] {
            let batched = exhaustive_batched(&sp, batch, &mut scratch, &mut batch_objective);
            assert_eq!(batched, serial, "batch = {batch}");
        }
    }

    #[test]
    fn exhaustive_parallel_batched_matches_serial_bitwise() {
        let sp = space();
        let serial = exhaustive(&sp, objective);
        for n_threads in [1, 2, 3, 8] {
            for batch in [1, 5, 16, 64] {
                let par = exhaustive_parallel_batched(&sp, n_threads, batch, || batch_objective);
                assert_eq!(par, serial, "n_threads = {n_threads}, batch = {batch}");
            }
        }
    }

    #[test]
    fn genetic_batched_matches_genetic_same_seed() {
        let params = GeneticParams::default();
        let scalar = genetic(&space(), &params, &mut StdRng::seed_from_u64(3), objective);
        let mut scratch = SearchScratch::new();
        let batched = genetic_batched(
            &space(),
            &params,
            &mut StdRng::seed_from_u64(3),
            &mut scratch,
            &mut batch_objective,
        );
        assert_eq!(batched, scalar);
    }

    #[test]
    fn annealing_scratch_reuse_is_bit_identical() {
        // One warm arena reused across runs must reproduce each fresh-arena
        // run exactly — leftover buffer contents never leak into results.
        let sp = space();
        let mut scratch = SearchScratch::new();
        for seed in [2u64, 11, 29] {
            let fresh = simulated_annealing(
                &sp,
                120,
                4.0,
                0.02,
                &mut StdRng::seed_from_u64(seed),
                objective,
            );
            let reused = simulated_annealing_scratch(
                &sp,
                120,
                4.0,
                0.02,
                &mut StdRng::seed_from_u64(seed),
                &mut scratch,
                objective,
                |_| {},
            );
            assert_eq!(reused, fresh, "seed = {seed}");
        }
    }

    #[test]
    fn embedded_annealing_with_all_dims_matches_plain_bitwise() {
        // Identity embedding: `dims` covering every element in order gives
        // the same sub-space radices, so the RNG stream and every accept
        // decision replay exactly.
        let sp = space();
        let mut scratch = SearchScratch::new();
        for seed in [2u64, 11, 29] {
            let plain = simulated_annealing(
                &sp,
                120,
                4.0,
                0.02,
                &mut StdRng::seed_from_u64(seed),
                objective,
            );
            let embedded = simulated_annealing_embedded(
                &sp,
                &[0, 1, 2],
                &Configuration::zeros(3),
                120,
                4.0,
                0.02,
                &mut StdRng::seed_from_u64(seed),
                &mut scratch,
                objective,
                |_| {},
            );
            assert_eq!(embedded, plain, "seed = {seed}");
        }
    }

    #[test]
    fn embedded_annealing_pins_excluded_dims_to_base() {
        let sp = ConfigSpace::new(vec![4, 4, 4, 4]);
        let base = Configuration::new(vec![1, 0, 3, 0]);
        let mut scratch = SearchScratch::new();
        let r = simulated_annealing_embedded(
            &sp,
            &[1, 3],
            &base,
            80,
            4.0,
            0.02,
            &mut StdRng::seed_from_u64(9),
            &mut scratch,
            |c| {
                assert_eq!(c.states[0], 1, "pinned dim 0 moved");
                assert_eq!(c.states[2], 3, "pinned dim 2 moved");
                objective4(c)
            },
            |_| {},
        );
        assert_eq!(r.best.states[0], 1);
        assert_eq!(r.best.states[2], 3);
        assert_eq!(r.best.len(), 4);
    }

    #[test]
    fn hierarchical_scratch_reuse_is_bit_identical() {
        let sp = ConfigSpace::new(vec![4, 4, 4, 4]);
        let mut scratch = SearchScratch::new();
        for (group, park) in [(2, 0), (3, 3), (1, 1)] {
            let fresh = hierarchical_groups(&sp, group, park, objective4);
            let reused = hierarchical_groups_scratch(&sp, group, park, &mut scratch, objective4);
            assert_eq!(reused, fresh, "group = {group}, park = {park}");
        }
    }

    /// 4-element variant of [`objective`] for the hierarchical tests.
    fn objective4(c: &Configuration) -> f64 {
        let target = [3usize, 1, 2, 0];
        let mut score = 0.0;
        for (i, (&s, &t)) in c.states.iter().zip(&target).enumerate() {
            score -= ((s as f64 - t as f64) * (i as f64 + 1.0)).powi(2);
        }
        score - ((c.states[0] + c.states[3]) % 3) as f64 * 0.1
    }
}
