//! Configuration search: navigating the `M^N` space.
//!
//! §4.2 of the paper: "With N PRESS elements, each having M possible
//! reflection coefficients, enumerating the M^N possibilities in the search
//! space for the optimal configuration becomes impractical. We will focus
//! the search in the vicinity of intended receivers, and apply heuristics to
//! prune the space." This module provides the exhaustive baseline plus the
//! heuristic family the ablation benches compare: random sampling, greedy
//! coordinate descent, hill climbing with restarts, simulated annealing, and
//! a genetic search.
//!
//! Every algorithm maximizes a caller-supplied evaluator
//! `FnMut(&Configuration) -> f64` and reports how many evaluations it spent
//! — the currency that matters when each evaluation is a real channel
//! measurement inside a coherence-time budget.

use crate::config::{ConfigSpace, Configuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64-style derivation of an independent RNG seed for stream
/// `(a, b)` of a root `seed`. Shared by every deterministic parallel
/// runner (campaigns, sweeps): each unit of work draws from its own
/// derived stream, so results are bit-identical regardless of thread
/// count or scheduling.
pub fn derive_stream_seed(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(1 + a))
        .wrapping_add(0xBF58476D1CE4E5B9u64.wrapping_mul(1 + b));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Result of a configuration search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best configuration found.
    pub best: Configuration,
    /// Its score.
    pub score: f64,
    /// Number of evaluator calls spent.
    pub evaluations: usize,
}

/// One observed search evaluation — the convergence-telemetry unit emitted
/// by the `*_observed` search variants. Observation is purely passive: the
/// observed variants consume the RNG and the evaluator in exactly the order
/// of their silent counterparts, so results stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchStep {
    /// Zero-based index of the evaluation within this search.
    pub iteration: usize,
    /// Score of the configuration evaluated at this step.
    pub score: f64,
    /// Best score seen so far, including this step.
    pub best: f64,
    /// Whether this step's configuration was adopted (new best for the
    /// improvement-driven searches, annealing acceptance for annealing).
    pub accepted: bool,
}

/// Exhaustively evaluates the whole space. Exact but `O(M^N)` — the paper's
/// 64-configuration prototype is the only regime where this is routine.
pub fn exhaustive<F>(space: &ConfigSpace, eval: F) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
{
    exhaustive_observed(space, eval, |_| {})
}

/// [`exhaustive`] with a per-evaluation [`SearchStep`] observer.
pub fn exhaustive_observed<F, O>(space: &ConfigSpace, mut eval: F, mut on_step: O) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    O: FnMut(&SearchStep),
{
    let mut best: Option<(Configuration, f64)> = None;
    let mut evaluations = 0;
    for config in space.iter() {
        let score = eval(&config);
        evaluations += 1;
        let accepted = best.as_ref().is_none_or(|(_, b)| score > *b);
        if accepted {
            best = Some((config, score));
        }
        on_step(&SearchStep {
            iteration: evaluations - 1,
            score,
            best: best.as_ref().map(|(_, b)| *b).expect("just set"),
            accepted,
        });
    }
    let (best, score) = best.expect("configuration space is never empty");
    SearchResult {
        best,
        score,
        evaluations,
    }
}

/// Parallel exhaustive sweep over scoped worker threads.
///
/// Each worker builds its own evaluator via `make_eval` (e.g. a
/// [`crate::basis::BasisEvaluator`] over a shared [`crate::basis::LinkBasis`])
/// and takes a strided share of the dense indices. Ties break toward the
/// lowest dense index — exactly the configuration serial [`exhaustive`]
/// keeps — so given a history-independent evaluator the result is
/// bit-identical to the serial sweep and invariant to `n_threads`.
pub fn exhaustive_parallel<E, F>(
    space: &ConfigSpace,
    n_threads: usize,
    make_eval: F,
) -> SearchResult
where
    E: FnMut(&Configuration) -> f64,
    F: Fn() -> E + Sync,
{
    assert!(n_threads > 0, "need at least one thread");
    let size = space.size();
    let best = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                let make_eval = &make_eval;
                scope.spawn(move |_| {
                    let mut eval = make_eval();
                    let mut local: Option<(usize, f64)> = None;
                    let mut j = w;
                    while j < size {
                        let c = space.config_at(j);
                        let s = eval(&c);
                        if local.is_none_or(|(_, b)| s > b) {
                            local = Some((j, s));
                        }
                        j += n_threads;
                    }
                    local
                })
            })
            .collect();
        let mut best: Option<(usize, f64)> = None;
        for h in handles {
            if let Some((idx, s)) = h.join().expect("search worker panicked") {
                let better = match best {
                    None => true,
                    Some((bi, bs)) => s > bs || (s == bs && idx < bi),
                };
                if better {
                    best = Some((idx, s));
                }
            }
        }
        best
    })
    .expect("search scope");
    let (idx, score) = best.expect("configuration space is never empty");
    SearchResult {
        best: space.config_at(idx),
        score,
        evaluations: size,
    }
}

/// Uniform random sampling with a fixed evaluation budget.
pub fn random_search<F, R>(space: &ConfigSpace, budget: usize, rng: &mut R, eval: F) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    random_search_observed(space, budget, rng, eval, |_| {})
}

/// [`random_search`] with a per-evaluation [`SearchStep`] observer.
pub fn random_search_observed<F, R, O>(
    space: &ConfigSpace,
    budget: usize,
    rng: &mut R,
    mut eval: F,
    mut on_step: O,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
    O: FnMut(&SearchStep),
{
    assert!(budget > 0, "budget must be positive");
    let mut best: Option<(Configuration, f64)> = None;
    for iteration in 0..budget {
        let c = space.random(rng);
        let s = eval(&c);
        let accepted = best.as_ref().is_none_or(|(_, b)| s > *b);
        if accepted {
            best = Some((c, s));
        }
        on_step(&SearchStep {
            iteration,
            score: s,
            best: best.as_ref().map(|(_, b)| *b).expect("just set"),
            accepted,
        });
    }
    let (best, score) = best.expect("budget > 0");
    SearchResult {
        best,
        score,
        evaluations: budget,
    }
}

/// Parallel random sampling: candidate `i` draws its configuration from an
/// RNG seeded [`derive_stream_seed`]`(seed, i, 0)`, so the sampled set —
/// and, with a history-independent evaluator, every score — is
/// bit-identical regardless of thread count. The stream differs from
/// [`random_search`]'s (which threads one RNG through the draws the way
/// the serial prototype did); ties break toward the lowest candidate
/// index.
pub fn random_search_parallel<E, F>(
    space: &ConfigSpace,
    budget: usize,
    seed: u64,
    n_threads: usize,
    make_eval: F,
) -> SearchResult
where
    E: FnMut(&Configuration) -> f64,
    F: Fn() -> E + Sync,
{
    assert!(budget > 0, "budget must be positive");
    assert!(n_threads > 0, "need at least one thread");
    let best = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                let make_eval = &make_eval;
                scope.spawn(move |_| {
                    let mut eval = make_eval();
                    let mut local: Option<(usize, Configuration, f64)> = None;
                    let mut j = w;
                    while j < budget {
                        let mut rng = StdRng::seed_from_u64(derive_stream_seed(seed, j as u64, 0));
                        let c = space.random(&mut rng);
                        let s = eval(&c);
                        if local.as_ref().is_none_or(|(_, _, b)| s > *b) {
                            local = Some((j, c, s));
                        }
                        j += n_threads;
                    }
                    local
                })
            })
            .collect();
        let mut best: Option<(usize, Configuration, f64)> = None;
        for h in handles {
            if let Some((idx, c, s)) = h.join().expect("search worker panicked") {
                let better = match &best {
                    None => true,
                    Some((bi, _, bs)) => s > *bs || (s == *bs && idx < *bi),
                };
                if better {
                    best = Some((idx, c, s));
                }
            }
        }
        best
    })
    .expect("search scope");
    let (_, best, score) = best.expect("budget > 0");
    SearchResult {
        best,
        score,
        evaluations: budget,
    }
}

/// Greedy coordinate descent: sweep the elements in order, setting each to
/// its best state with the others held fixed; repeat until a sweep makes no
/// change or `max_sweeps` is hit. Cost per sweep: `Σ(Mᵢ−1) + 1` evaluations.
///
/// This is the natural "per-element" heuristic for PRESS because each
/// element contributes one additive path — coordinates couple only through
/// the shared objective, not through constraints.
pub fn greedy_coordinate<F>(
    space: &ConfigSpace,
    start: Configuration,
    max_sweeps: usize,
    eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
{
    greedy_coordinate_observed(space, start, max_sweeps, eval, |_| {})
}

/// [`greedy_coordinate`] with a per-evaluation [`SearchStep`] observer.
pub fn greedy_coordinate_observed<F, O>(
    space: &ConfigSpace,
    start: Configuration,
    max_sweeps: usize,
    mut eval: F,
    mut on_step: O,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    O: FnMut(&SearchStep),
{
    assert!(space.contains(&start), "start configuration invalid");
    let mut current = start;
    let mut current_score = eval(&current);
    let mut evaluations = 1;
    on_step(&SearchStep {
        iteration: 0,
        score: current_score,
        best: current_score,
        accepted: true,
    });
    for _ in 0..max_sweeps {
        let mut improved = false;
        for i in 0..space.n_elements() {
            let original = current.states[i];
            let mut best_state = original;
            let mut best_score = current_score;
            for s in 0..space.states_per_element[i] {
                if s == original {
                    continue;
                }
                current.states[i] = s;
                let score = eval(&current);
                evaluations += 1;
                let accepted = score > best_score;
                if accepted {
                    best_score = score;
                    best_state = s;
                }
                on_step(&SearchStep {
                    iteration: evaluations - 1,
                    score,
                    best: best_score,
                    accepted,
                });
            }
            current.states[i] = best_state;
            if best_state != original {
                current_score = best_score;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    SearchResult {
        best: current,
        score: current_score,
        evaluations,
    }
}

/// Hill climbing over Hamming-1 neighborhoods with random restarts.
pub fn hill_climb<F, R>(
    space: &ConfigSpace,
    restarts: usize,
    max_steps: usize,
    rng: &mut R,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    assert!(restarts > 0, "need at least one restart");
    let mut evaluations = 0;
    let mut global: Option<(Configuration, f64)> = None;
    for _ in 0..restarts {
        let mut current = space.random(rng);
        let mut score = eval(&current);
        evaluations += 1;
        for _ in 0..max_steps {
            let mut best_neighbor: Option<(Configuration, f64)> = None;
            for n in space.neighbors(&current) {
                let s = eval(&n);
                evaluations += 1;
                if best_neighbor.as_ref().is_none_or(|(_, b)| s > *b) {
                    best_neighbor = Some((n, s));
                }
            }
            match best_neighbor {
                Some((n, s)) if s > score => {
                    current = n;
                    score = s;
                }
                _ => break, // local optimum
            }
        }
        if global.as_ref().is_none_or(|(_, b)| score > *b) {
            global = Some((current, score));
        }
    }
    let (best, score) = global.expect("restarts > 0");
    SearchResult {
        best,
        score,
        evaluations,
    }
}

/// Simulated annealing with geometric cooling over single-element moves.
pub fn simulated_annealing<F, R>(
    space: &ConfigSpace,
    iterations: usize,
    t_start: f64,
    t_end: f64,
    rng: &mut R,
    eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    simulated_annealing_observed(space, iterations, t_start, t_end, rng, eval, |_| {})
}

/// [`simulated_annealing`] with a per-evaluation [`SearchStep`] observer.
/// Iterations whose element has a single state evaluate nothing and emit
/// nothing, matching the silent variant's evaluation count.
#[allow(clippy::too_many_arguments)]
pub fn simulated_annealing_observed<F, R, O>(
    space: &ConfigSpace,
    iterations: usize,
    t_start: f64,
    t_end: f64,
    rng: &mut R,
    mut eval: F,
    mut on_step: O,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
    O: FnMut(&SearchStep),
{
    assert!(iterations > 0 && t_start > 0.0 && t_end > 0.0 && t_end <= t_start);
    let mut current = space.random(rng);
    let mut current_score = eval(&current);
    let mut evaluations = 1;
    let mut best = current.clone();
    let mut best_score = current_score;
    on_step(&SearchStep {
        iteration: 0,
        score: current_score,
        best: best_score,
        accepted: true,
    });
    let cooling = (t_end / t_start).powf(1.0 / iterations as f64);
    let mut temp = t_start;
    for _ in 0..iterations {
        // Single-element random move.
        let i = rng.gen_range(0..space.n_elements());
        let m = space.states_per_element[i];
        if m > 1 {
            let mut proposal = current.clone();
            let mut s = rng.gen_range(0..m);
            if s == proposal.states[i] {
                s = (s + 1) % m;
            }
            proposal.states[i] = s;
            let score = eval(&proposal);
            evaluations += 1;
            let accept =
                score >= current_score || rng.gen::<f64>() < ((score - current_score) / temp).exp();
            if accept {
                current = proposal;
                current_score = score;
                if score > best_score {
                    best = current.clone();
                    best_score = score;
                }
            }
            on_step(&SearchStep {
                iteration: evaluations - 1,
                score,
                best: best_score,
                accepted: accept,
            });
        }
        temp *= cooling;
    }
    SearchResult {
        best,
        score: best_score,
        evaluations,
    }
}

/// Hekaton-style hierarchical group search (§4.1: "we might divide the
/// elements into groups, to harness diversity or power gains within each
/// group and multiplex across groups").
///
/// Phase 1 tunes each group of `group_size` elements *independently* with
/// every other element parked in `park_state` (normally the absorber), by
/// exhaustive search over the group's sub-space. Phase 2 stitches the group
/// optima together and runs one greedy refinement sweep over the whole
/// array. Cost: `Σ M^g + Σ(M−1) + 1` evaluations instead of `M^N`.
pub fn hierarchical_groups<F>(
    space: &ConfigSpace,
    group_size: usize,
    park_state: usize,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
{
    assert!(group_size >= 1, "groups need at least one element");
    let n = space.n_elements();
    assert!(
        space.states_per_element.iter().all(|&m| park_state < m),
        "park_state must be valid for every element"
    );
    let mut evaluations = 0usize;
    let mut stitched = Configuration::new(vec![park_state; n]);

    // Phase 1: per-group exhaustive search, others parked.
    let mut start = 0;
    while start < n {
        let end = (start + group_size).min(n);
        let group: Vec<usize> = (start..end).collect();
        // Enumerate the group's sub-space.
        let radices: Vec<usize> = group.iter().map(|&i| space.states_per_element[i]).collect();
        let sub = ConfigSpace::new(radices);
        let mut best_states: Option<(Vec<usize>, f64)> = None;
        for sub_cfg in sub.iter() {
            let mut candidate = Configuration::new(vec![park_state; n]);
            for (slot, &i) in group.iter().enumerate() {
                candidate.states[i] = sub_cfg.states[slot];
            }
            let score = eval(&candidate);
            evaluations += 1;
            if best_states.as_ref().is_none_or(|(_, b)| score > *b) {
                best_states = Some((sub_cfg.states.clone(), score));
            }
        }
        let (states, _) = best_states.expect("group sub-space non-empty");
        for (slot, &i) in group.iter().enumerate() {
            stitched.states[i] = states[slot];
        }
        start = end;
    }

    // Phase 2: one greedy refinement sweep over the stitched whole.
    let refined = greedy_coordinate(space, stitched, 1, &mut eval);
    SearchResult {
        best: refined.best,
        score: refined.score,
        evaluations: evaluations + refined.evaluations,
    }
}

/// Parameters for the genetic search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticParams {
    /// Population size.
    pub population: usize,
    /// Generations.
    pub generations: usize,
    /// Per-element mutation probability.
    pub mutation_rate: f64,
    /// Fraction of the population carried over as elites.
    pub elite_fraction: f64,
}

impl Default for GeneticParams {
    fn default() -> Self {
        GeneticParams {
            population: 24,
            generations: 12,
            mutation_rate: 0.15,
            elite_fraction: 0.25,
        }
    }
}

/// Genetic search: tournament selection, uniform crossover, per-element
/// mutation, elitism.
pub fn genetic<F, R>(
    space: &ConfigSpace,
    params: &GeneticParams,
    rng: &mut R,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    genetic_core(space, params, rng, &mut |configs: &[Configuration]| {
        configs.iter().map(&mut eval).collect()
    })
}

/// Parallel genetic search. Breeding (all the RNG draws) stays serial on
/// the caller's RNG; each generation's children are then *scored* as one
/// batch dealt across scoped worker threads. Because evaluation draws
/// nothing from the breeding RNG, this produces exactly the stream — and
/// with a history-independent evaluator, exactly the result — of serial
/// [`genetic`] with the same seed, at any thread count.
pub fn genetic_parallel<E, F, R>(
    space: &ConfigSpace,
    params: &GeneticParams,
    rng: &mut R,
    n_threads: usize,
    make_eval: F,
) -> SearchResult
where
    E: FnMut(&Configuration) -> f64,
    F: Fn() -> E + Sync,
    R: Rng + ?Sized,
{
    assert!(n_threads > 0, "need at least one thread");
    genetic_core(space, params, rng, &mut |configs: &[Configuration]| {
        score_batch_parallel(configs, n_threads, &make_eval)
    })
}

/// Scores a batch of configurations across scoped worker threads (strided
/// dealing; output order matches input order, so results are independent
/// of scheduling).
fn score_batch_parallel<E, F>(
    configs: &[Configuration],
    n_threads: usize,
    make_eval: &F,
) -> Vec<f64>
where
    E: FnMut(&Configuration) -> f64,
    F: Fn() -> E + Sync,
{
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                scope.spawn(move |_| {
                    let mut eval = make_eval();
                    let mut out = Vec::new();
                    let mut j = w;
                    while j < configs.len() {
                        out.push((j, eval(&configs[j])));
                        j += n_threads;
                    }
                    out
                })
            })
            .collect();
        let mut scores = vec![0.0; configs.len()];
        for h in handles {
            for (j, s) in h.join().expect("search worker panicked") {
                scores[j] = s;
            }
        }
        scores
    })
    .expect("search scope")
}

/// The genetic algorithm over a batch scorer. Children of one generation
/// are bred first (consuming the RNG in the same order the serial
/// implementation always did — scoring draws nothing), then scored as one
/// batch, which is what lets [`genetic_parallel`] fan the scoring out
/// without perturbing determinism.
fn genetic_core<B, R>(
    space: &ConfigSpace,
    params: &GeneticParams,
    rng: &mut R,
    score_batch: &mut B,
) -> SearchResult
where
    B: FnMut(&[Configuration]) -> Vec<f64>,
    R: Rng + ?Sized,
{
    assert!(params.population >= 2, "population must be at least 2");
    let mut evaluations = 0;
    let initial: Vec<Configuration> = (0..params.population).map(|_| space.random(rng)).collect();
    let scores = score_batch(&initial);
    evaluations += initial.len();
    let mut scored: Vec<(Configuration, f64)> = initial.into_iter().zip(scores).collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let elites = ((params.population as f64 * params.elite_fraction) as usize).max(1);

    for _ in 0..params.generations {
        let mut children: Vec<Configuration> = Vec::with_capacity(params.population - elites);
        while elites + children.len() < params.population {
            // Binary tournaments.
            let pick = |rng: &mut R| {
                let a = rng.gen_range(0..scored.len());
                let b = rng.gen_range(0..scored.len());
                if scored[a].1 >= scored[b].1 {
                    &scored[a].0
                } else {
                    &scored[b].0
                }
            };
            let p1 = pick(rng).clone();
            let p2 = pick(rng).clone();
            // Uniform crossover + mutation.
            let mut child = Configuration::zeros(space.n_elements());
            for i in 0..space.n_elements() {
                child.states[i] = if rng.gen::<bool>() {
                    p1.states[i]
                } else {
                    p2.states[i]
                };
                if rng.gen::<f64>() < params.mutation_rate {
                    child.states[i] = rng.gen_range(0..space.states_per_element[i]);
                }
            }
            children.push(child);
        }
        let child_scores = score_batch(&children);
        evaluations += children.len();
        let mut next: Vec<(Configuration, f64)> = scored[..elites].to_vec();
        next.extend(children.into_iter().zip(child_scores));
        next.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored = next;
    }
    let (best, score) = scored.into_iter().next().expect("population non-empty");
    SearchResult {
        best,
        score,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![4, 4, 4])
    }

    /// A deterministic synthetic objective with a unique global optimum at
    /// (3, 1, 2) and mild coupling between elements.
    fn objective(c: &Configuration) -> f64 {
        let target = [3usize, 1, 2];
        let mut score = 0.0;
        for (i, (&s, &t)) in c.states.iter().zip(&target).enumerate() {
            score -= ((s as f64 - t as f64) * (i as f64 + 1.0)).powi(2);
        }
        // Coupling term.
        score - ((c.states[0] + c.states[1]) % 3) as f64 * 0.1
    }

    #[test]
    fn exhaustive_finds_global_optimum() {
        let r = exhaustive(&space(), objective);
        assert_eq!(r.best.states, vec![3, 1, 2]);
        assert_eq!(r.evaluations, 64);
    }

    #[test]
    fn greedy_reaches_optimum_on_separable_objective() {
        let r = greedy_coordinate(&space(), Configuration::zeros(3), 10, objective);
        assert_eq!(r.best.states, vec![3, 1, 2]);
        assert!(
            r.evaluations < 64,
            "greedy must beat exhaustive: {}",
            r.evaluations
        );
    }

    #[test]
    fn hill_climb_matches_exhaustive_on_small_space() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = hill_climb(&space(), 4, 20, &mut rng, objective);
        assert_eq!(r.best.states, vec![3, 1, 2]);
    }

    #[test]
    fn annealing_finds_good_solutions() {
        let mut rng = StdRng::seed_from_u64(8);
        let r = simulated_annealing(&space(), 400, 5.0, 0.01, &mut rng, objective);
        let optimum = objective(&Configuration::new(vec![3, 1, 2]));
        assert!(r.score >= optimum - 1.0, "{} vs {optimum}", r.score);
    }

    #[test]
    fn genetic_finds_good_solutions() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = genetic(&space(), &GeneticParams::default(), &mut rng, objective);
        let optimum = objective(&Configuration::new(vec![3, 1, 2]));
        assert!(r.score >= optimum - 1.0, "{} vs {optimum}", r.score);
    }

    #[test]
    fn random_search_respects_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = random_search(&space(), 10, &mut rng, objective);
        assert_eq!(r.evaluations, 10);
    }

    #[test]
    fn searches_are_deterministic_per_seed() {
        let r1 = hill_climb(&space(), 3, 10, &mut StdRng::seed_from_u64(7), objective);
        let r2 = hill_climb(&space(), 3, 10, &mut StdRng::seed_from_u64(7), objective);
        assert_eq!(r1, r2);
    }

    #[test]
    fn larger_space_heuristics_beat_random_at_equal_budget() {
        // 8 elements x 8 states = 16.7M configs; heuristics must do better
        // than random at a comparable evaluation budget.
        let big = ConfigSpace::new(vec![8; 8]);
        let target: Vec<usize> = vec![7, 0, 3, 5, 1, 6, 2, 4];
        let obj = |c: &Configuration| -> f64 {
            -c.states
                .iter()
                .zip(&target)
                .map(|(&s, &t)| (s as f64 - t as f64).abs())
                .sum::<f64>()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let greedy = greedy_coordinate(&big, big.random(&mut rng), 5, obj);
        let rand_budget = greedy.evaluations;
        let random = random_search(&big, rand_budget, &mut rng, obj);
        assert!(
            greedy.score > random.score,
            "greedy {} vs random {}",
            greedy.score,
            random.score
        );
        assert_eq!(
            greedy.best.states, target,
            "separable objective is exactly solvable"
        );
    }

    #[test]
    fn hierarchical_groups_match_exhaustive_on_separable_objective() {
        let space = ConfigSpace::new(vec![4, 4, 4, 4]);
        let target = [3usize, 1, 2, 0];
        let obj = |c: &Configuration| -> f64 {
            -c.states
                .iter()
                .zip(&target)
                .map(|(&s, &t)| (s as f64 - t as f64).powi(2))
                .sum::<f64>()
        };
        let hier = hierarchical_groups(&space, 2, 0, obj);
        assert_eq!(hier.best.states, target.to_vec());
        // 2 groups of 4^2 + refinement sweep << 4^4 = 256 exhaustive.
        assert!(hier.evaluations < 100, "{}", hier.evaluations);
    }

    #[test]
    fn hierarchical_groups_near_exhaustive_on_coupled_objective() {
        let space = ConfigSpace::new(vec![4, 4, 4]);
        let exhaustive = super::exhaustive(&space, objective);
        let hier = hierarchical_groups(&space, 2, 3, objective);
        assert!(
            hier.score >= exhaustive.score - 1.0,
            "hier {} vs exhaustive {}",
            hier.score,
            exhaustive.score
        );
        assert!(hier.evaluations < exhaustive.evaluations);
    }

    #[test]
    fn exhaustive_parallel_matches_serial_at_any_thread_count() {
        let serial = exhaustive(&space(), objective);
        for n_threads in [1, 2, 3, 8] {
            let par = exhaustive_parallel(&space(), n_threads, || objective);
            assert_eq!(par, serial, "n_threads = {n_threads}");
        }
    }

    #[test]
    fn random_search_parallel_is_thread_count_invariant() {
        let a = random_search_parallel(&space(), 17, 42, 1, || objective);
        let b = random_search_parallel(&space(), 17, 42, 5, || objective);
        assert_eq!(a, b);
        assert_eq!(a.evaluations, 17);
    }

    #[test]
    fn genetic_parallel_matches_serial_stream() {
        let params = GeneticParams::default();
        let serial = genetic(&space(), &params, &mut StdRng::seed_from_u64(3), objective);
        for n_threads in [1, 4] {
            let par = genetic_parallel(
                &space(),
                &params,
                &mut StdRng::seed_from_u64(3),
                n_threads,
                || objective,
            );
            assert_eq!(par, serial, "n_threads = {n_threads}");
        }
    }

    #[test]
    fn derived_stream_seeds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..50u64 {
            for b in 0..50u64 {
                assert!(seen.insert(derive_stream_seed(7, a, b)));
            }
        }
    }

    #[test]
    fn observed_variants_match_silent_bitwise() {
        let sp = space();
        let mut steps = Vec::new();
        let silent = exhaustive(&sp, objective);
        let observed = exhaustive_observed(&sp, objective, |s| steps.push(*s));
        assert_eq!(silent, observed);
        assert_eq!(steps.len(), silent.evaluations);

        steps.clear();
        let silent = greedy_coordinate(&sp, Configuration::zeros(3), 4, objective);
        let observed =
            greedy_coordinate_observed(&sp, Configuration::zeros(3), 4, objective, |s| {
                steps.push(*s)
            });
        assert_eq!(silent, observed);
        assert_eq!(steps.len(), silent.evaluations);

        steps.clear();
        let silent = random_search(&sp, 13, &mut StdRng::seed_from_u64(9), objective);
        let observed =
            random_search_observed(&sp, 13, &mut StdRng::seed_from_u64(9), objective, |s| {
                steps.push(*s)
            });
        assert_eq!(silent, observed);
        assert_eq!(steps.len(), 13);

        steps.clear();
        let silent = simulated_annealing(
            &sp,
            50,
            3.0,
            0.05,
            &mut StdRng::seed_from_u64(11),
            objective,
        );
        let observed = simulated_annealing_observed(
            &sp,
            50,
            3.0,
            0.05,
            &mut StdRng::seed_from_u64(11),
            objective,
            |s| steps.push(*s),
        );
        assert_eq!(silent, observed);
        assert_eq!(steps.len(), silent.evaluations);
    }

    #[test]
    fn observed_steps_have_monotone_best_and_sequential_iterations() {
        let sp = space();
        let mut steps = Vec::new();
        simulated_annealing_observed(
            &sp,
            80,
            3.0,
            0.05,
            &mut StdRng::seed_from_u64(4),
            objective,
            |s| steps.push(*s),
        );
        for (i, w) in steps.windows(2).enumerate() {
            assert_eq!(w[1].iteration, w[0].iteration + 1, "step {i}");
            assert!(w[1].best >= w[0].best, "best must be a running max");
        }
        assert_eq!(steps[0].iteration, 0);
        assert!(steps[0].accepted, "initial point is always adopted");
        // The final reported score is the last step's best.
        let last = steps.last().unwrap();
        let again =
            simulated_annealing(&sp, 80, 3.0, 0.05, &mut StdRng::seed_from_u64(4), objective);
        assert_eq!(last.best, again.score);
    }

    #[test]
    fn single_state_elements_handled() {
        let tiny = ConfigSpace::new(vec![1, 1]);
        let r = exhaustive(&tiny, |_| 42.0);
        assert_eq!(r.best.states, vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        let r2 = simulated_annealing(&tiny, 10, 1.0, 0.1, &mut rng, |_| 1.0);
        assert_eq!(r2.best.states, vec![0, 0]);
    }
}
