//! Configuration search: navigating the `M^N` space.
//!
//! §4.2 of the paper: "With N PRESS elements, each having M possible
//! reflection coefficients, enumerating the M^N possibilities in the search
//! space for the optimal configuration becomes impractical. We will focus
//! the search in the vicinity of intended receivers, and apply heuristics to
//! prune the space." This module provides the exhaustive baseline plus the
//! heuristic family the ablation benches compare: random sampling, greedy
//! coordinate descent, hill climbing with restarts, simulated annealing, and
//! a genetic search.
//!
//! Every algorithm maximizes a caller-supplied evaluator
//! `FnMut(&Configuration) -> f64` and reports how many evaluations it spent
//! — the currency that matters when each evaluation is a real channel
//! measurement inside a coherence-time budget.

use crate::config::{ConfigSpace, Configuration};
use rand::Rng;

/// Result of a configuration search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best configuration found.
    pub best: Configuration,
    /// Its score.
    pub score: f64,
    /// Number of evaluator calls spent.
    pub evaluations: usize,
}

/// Exhaustively evaluates the whole space. Exact but `O(M^N)` — the paper's
/// 64-configuration prototype is the only regime where this is routine.
pub fn exhaustive<F>(space: &ConfigSpace, mut eval: F) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
{
    let mut best: Option<(Configuration, f64)> = None;
    let mut evaluations = 0;
    for config in space.iter() {
        let score = eval(&config);
        evaluations += 1;
        if best.as_ref().map_or(true, |(_, b)| score > *b) {
            best = Some((config, score));
        }
    }
    let (best, score) = best.expect("configuration space is never empty");
    SearchResult {
        best,
        score,
        evaluations,
    }
}

/// Uniform random sampling with a fixed evaluation budget.
pub fn random_search<F, R>(
    space: &ConfigSpace,
    budget: usize,
    rng: &mut R,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    assert!(budget > 0, "budget must be positive");
    let mut best: Option<(Configuration, f64)> = None;
    for _ in 0..budget {
        let c = space.random(rng);
        let s = eval(&c);
        if best.as_ref().map_or(true, |(_, b)| s > *b) {
            best = Some((c, s));
        }
    }
    let (best, score) = best.expect("budget > 0");
    SearchResult {
        best,
        score,
        evaluations: budget,
    }
}

/// Greedy coordinate descent: sweep the elements in order, setting each to
/// its best state with the others held fixed; repeat until a sweep makes no
/// change or `max_sweeps` is hit. Cost per sweep: `Σ(Mᵢ−1) + 1` evaluations.
///
/// This is the natural "per-element" heuristic for PRESS because each
/// element contributes one additive path — coordinates couple only through
/// the shared objective, not through constraints.
pub fn greedy_coordinate<F>(
    space: &ConfigSpace,
    start: Configuration,
    max_sweeps: usize,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
{
    assert!(space.contains(&start), "start configuration invalid");
    let mut current = start;
    let mut current_score = eval(&current);
    let mut evaluations = 1;
    for _ in 0..max_sweeps {
        let mut improved = false;
        for i in 0..space.n_elements() {
            let original = current.states[i];
            let mut best_state = original;
            let mut best_score = current_score;
            for s in 0..space.states_per_element[i] {
                if s == original {
                    continue;
                }
                current.states[i] = s;
                let score = eval(&current);
                evaluations += 1;
                if score > best_score {
                    best_score = score;
                    best_state = s;
                }
            }
            current.states[i] = best_state;
            if best_state != original {
                current_score = best_score;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    SearchResult {
        best: current,
        score: current_score,
        evaluations,
    }
}

/// Hill climbing over Hamming-1 neighborhoods with random restarts.
pub fn hill_climb<F, R>(
    space: &ConfigSpace,
    restarts: usize,
    max_steps: usize,
    rng: &mut R,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    assert!(restarts > 0, "need at least one restart");
    let mut evaluations = 0;
    let mut global: Option<(Configuration, f64)> = None;
    for _ in 0..restarts {
        let mut current = space.random(rng);
        let mut score = eval(&current);
        evaluations += 1;
        for _ in 0..max_steps {
            let mut best_neighbor: Option<(Configuration, f64)> = None;
            for n in space.neighbors(&current) {
                let s = eval(&n);
                evaluations += 1;
                if best_neighbor.as_ref().map_or(true, |(_, b)| s > *b) {
                    best_neighbor = Some((n, s));
                }
            }
            match best_neighbor {
                Some((n, s)) if s > score => {
                    current = n;
                    score = s;
                }
                _ => break, // local optimum
            }
        }
        if global.as_ref().map_or(true, |(_, b)| score > *b) {
            global = Some((current, score));
        }
    }
    let (best, score) = global.expect("restarts > 0");
    SearchResult {
        best,
        score,
        evaluations,
    }
}

/// Simulated annealing with geometric cooling over single-element moves.
pub fn simulated_annealing<F, R>(
    space: &ConfigSpace,
    iterations: usize,
    t_start: f64,
    t_end: f64,
    rng: &mut R,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    assert!(iterations > 0 && t_start > 0.0 && t_end > 0.0 && t_end <= t_start);
    let mut current = space.random(rng);
    let mut current_score = eval(&current);
    let mut evaluations = 1;
    let mut best = current.clone();
    let mut best_score = current_score;
    let cooling = (t_end / t_start).powf(1.0 / iterations as f64);
    let mut temp = t_start;
    for _ in 0..iterations {
        // Single-element random move.
        let i = rng.gen_range(0..space.n_elements());
        let m = space.states_per_element[i];
        if m > 1 {
            let mut proposal = current.clone();
            let mut s = rng.gen_range(0..m);
            if s == proposal.states[i] {
                s = (s + 1) % m;
            }
            proposal.states[i] = s;
            let score = eval(&proposal);
            evaluations += 1;
            let accept = score >= current_score
                || rng.gen::<f64>() < ((score - current_score) / temp).exp();
            if accept {
                current = proposal;
                current_score = score;
                if score > best_score {
                    best = current.clone();
                    best_score = score;
                }
            }
        }
        temp *= cooling;
    }
    SearchResult {
        best,
        score: best_score,
        evaluations,
    }
}

/// Hekaton-style hierarchical group search (§4.1: "we might divide the
/// elements into groups, to harness diversity or power gains within each
/// group and multiplex across groups").
///
/// Phase 1 tunes each group of `group_size` elements *independently* with
/// every other element parked in `park_state` (normally the absorber), by
/// exhaustive search over the group's sub-space. Phase 2 stitches the group
/// optima together and runs one greedy refinement sweep over the whole
/// array. Cost: `Σ M^g + Σ(M−1) + 1` evaluations instead of `M^N`.
pub fn hierarchical_groups<F>(
    space: &ConfigSpace,
    group_size: usize,
    park_state: usize,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
{
    assert!(group_size >= 1, "groups need at least one element");
    let n = space.n_elements();
    assert!(
        space.states_per_element.iter().all(|&m| park_state < m),
        "park_state must be valid for every element"
    );
    let mut evaluations = 0usize;
    let mut stitched = Configuration::new(vec![park_state; n]);

    // Phase 1: per-group exhaustive search, others parked.
    let mut start = 0;
    while start < n {
        let end = (start + group_size).min(n);
        let group: Vec<usize> = (start..end).collect();
        // Enumerate the group's sub-space.
        let radices: Vec<usize> = group.iter().map(|&i| space.states_per_element[i]).collect();
        let sub = ConfigSpace::new(radices);
        let mut best_states: Option<(Vec<usize>, f64)> = None;
        for sub_cfg in sub.iter() {
            let mut candidate = Configuration::new(vec![park_state; n]);
            for (slot, &i) in group.iter().enumerate() {
                candidate.states[i] = sub_cfg.states[slot];
            }
            let score = eval(&candidate);
            evaluations += 1;
            if best_states
                .as_ref()
                .map_or(true, |(_, b)| score > *b)
            {
                best_states = Some((sub_cfg.states.clone(), score));
            }
        }
        let (states, _) = best_states.expect("group sub-space non-empty");
        for (slot, &i) in group.iter().enumerate() {
            stitched.states[i] = states[slot];
        }
        start = end;
    }

    // Phase 2: one greedy refinement sweep over the stitched whole.
    let refined = greedy_coordinate(space, stitched, 1, &mut eval);
    SearchResult {
        best: refined.best,
        score: refined.score,
        evaluations: evaluations + refined.evaluations,
    }
}

/// Parameters for the genetic search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticParams {
    /// Population size.
    pub population: usize,
    /// Generations.
    pub generations: usize,
    /// Per-element mutation probability.
    pub mutation_rate: f64,
    /// Fraction of the population carried over as elites.
    pub elite_fraction: f64,
}

impl Default for GeneticParams {
    fn default() -> Self {
        GeneticParams {
            population: 24,
            generations: 12,
            mutation_rate: 0.15,
            elite_fraction: 0.25,
        }
    }
}

/// Genetic search: tournament selection, uniform crossover, per-element
/// mutation, elitism.
pub fn genetic<F, R>(
    space: &ConfigSpace,
    params: &GeneticParams,
    rng: &mut R,
    mut eval: F,
) -> SearchResult
where
    F: FnMut(&Configuration) -> f64,
    R: Rng + ?Sized,
{
    assert!(params.population >= 2, "population must be at least 2");
    let mut evaluations = 0;
    let mut scored: Vec<(Configuration, f64)> = (0..params.population)
        .map(|_| {
            let c = space.random(rng);
            let s = eval(&c);
            evaluations += 1;
            (c, s)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let elites = ((params.population as f64 * params.elite_fraction) as usize).max(1);

    for _ in 0..params.generations {
        let mut next: Vec<(Configuration, f64)> = scored[..elites].to_vec();
        while next.len() < params.population {
            // Binary tournaments.
            let pick = |rng: &mut R| {
                let a = rng.gen_range(0..scored.len());
                let b = rng.gen_range(0..scored.len());
                if scored[a].1 >= scored[b].1 {
                    &scored[a].0
                } else {
                    &scored[b].0
                }
            };
            let p1 = pick(rng).clone();
            let p2 = pick(rng).clone();
            // Uniform crossover + mutation.
            let mut child = Configuration::zeros(space.n_elements());
            for i in 0..space.n_elements() {
                child.states[i] = if rng.gen::<bool>() {
                    p1.states[i]
                } else {
                    p2.states[i]
                };
                if rng.gen::<f64>() < params.mutation_rate {
                    child.states[i] = rng.gen_range(0..space.states_per_element[i]);
                }
            }
            let s = eval(&child);
            evaluations += 1;
            next.push((child, s));
        }
        next.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored = next;
    }
    let (best, score) = scored.into_iter().next().expect("population non-empty");
    SearchResult {
        best,
        score,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![4, 4, 4])
    }

    /// A deterministic synthetic objective with a unique global optimum at
    /// (3, 1, 2) and mild coupling between elements.
    fn objective(c: &Configuration) -> f64 {
        let target = [3usize, 1, 2];
        let mut score = 0.0;
        for (i, (&s, &t)) in c.states.iter().zip(&target).enumerate() {
            score -= ((s as f64 - t as f64) * (i as f64 + 1.0)).powi(2);
        }
        // Coupling term.
        score - ((c.states[0] + c.states[1]) % 3) as f64 * 0.1
    }

    #[test]
    fn exhaustive_finds_global_optimum() {
        let r = exhaustive(&space(), objective);
        assert_eq!(r.best.states, vec![3, 1, 2]);
        assert_eq!(r.evaluations, 64);
    }

    #[test]
    fn greedy_reaches_optimum_on_separable_objective() {
        let r = greedy_coordinate(&space(), Configuration::zeros(3), 10, objective);
        assert_eq!(r.best.states, vec![3, 1, 2]);
        assert!(r.evaluations < 64, "greedy must beat exhaustive: {}", r.evaluations);
    }

    #[test]
    fn hill_climb_matches_exhaustive_on_small_space() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = hill_climb(&space(), 4, 20, &mut rng, objective);
        assert_eq!(r.best.states, vec![3, 1, 2]);
    }

    #[test]
    fn annealing_finds_good_solutions() {
        let mut rng = StdRng::seed_from_u64(8);
        let r = simulated_annealing(&space(), 400, 5.0, 0.01, &mut rng, objective);
        let optimum = objective(&Configuration::new(vec![3, 1, 2]));
        assert!(r.score >= optimum - 1.0, "{} vs {optimum}", r.score);
    }

    #[test]
    fn genetic_finds_good_solutions() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = genetic(&space(), &GeneticParams::default(), &mut rng, objective);
        let optimum = objective(&Configuration::new(vec![3, 1, 2]));
        assert!(r.score >= optimum - 1.0, "{} vs {optimum}", r.score);
    }

    #[test]
    fn random_search_respects_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = random_search(&space(), 10, &mut rng, objective);
        assert_eq!(r.evaluations, 10);
    }

    #[test]
    fn searches_are_deterministic_per_seed() {
        let r1 = hill_climb(&space(), 3, 10, &mut StdRng::seed_from_u64(7), objective);
        let r2 = hill_climb(&space(), 3, 10, &mut StdRng::seed_from_u64(7), objective);
        assert_eq!(r1, r2);
    }

    #[test]
    fn larger_space_heuristics_beat_random_at_equal_budget() {
        // 8 elements x 8 states = 16.7M configs; heuristics must do better
        // than random at a comparable evaluation budget.
        let big = ConfigSpace::new(vec![8; 8]);
        let target: Vec<usize> = vec![7, 0, 3, 5, 1, 6, 2, 4];
        let obj = |c: &Configuration| -> f64 {
            -c.states
                .iter()
                .zip(&target)
                .map(|(&s, &t)| (s as f64 - t as f64).abs())
                .sum::<f64>()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let greedy = greedy_coordinate(&big, big.random(&mut rng), 5, obj);
        let rand_budget = greedy.evaluations;
        let random = random_search(&big, rand_budget, &mut rng, obj);
        assert!(
            greedy.score > random.score,
            "greedy {} vs random {}",
            greedy.score,
            random.score
        );
        assert_eq!(greedy.best.states, target, "separable objective is exactly solvable");
    }

    #[test]
    fn hierarchical_groups_match_exhaustive_on_separable_objective() {
        let space = ConfigSpace::new(vec![4, 4, 4, 4]);
        let target = [3usize, 1, 2, 0];
        let obj = |c: &Configuration| -> f64 {
            -c.states
                .iter()
                .zip(&target)
                .map(|(&s, &t)| (s as f64 - t as f64).powi(2))
                .sum::<f64>()
        };
        let hier = hierarchical_groups(&space, 2, 0, obj);
        assert_eq!(hier.best.states, target.to_vec());
        // 2 groups of 4^2 + refinement sweep << 4^4 = 256 exhaustive.
        assert!(hier.evaluations < 100, "{}", hier.evaluations);
    }

    #[test]
    fn hierarchical_groups_near_exhaustive_on_coupled_objective() {
        let space = ConfigSpace::new(vec![4, 4, 4]);
        let exhaustive = super::exhaustive(&space, objective);
        let hier = hierarchical_groups(&space, 2, 3, objective);
        assert!(
            hier.score >= exhaustive.score - 1.0,
            "hier {} vs exhaustive {}",
            hier.score,
            exhaustive.score
        );
        assert!(hier.evaluations < exhaustive.evaluations);
    }

    #[test]
    fn single_state_elements_handled() {
        let tiny = ConfigSpace::new(vec![1, 1]);
        let r = exhaustive(&tiny, |_| 42.0);
        assert_eq!(r.best.states, vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        let r2 = simulated_annealing(&tiny, 10, 1.0, 0.1, &mut rng, |_| 1.0);
        assert_eq!(r2.best.states, vec![0, 0]);
    }
}
