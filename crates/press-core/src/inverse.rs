//! The inverse problem: from a desired channel to path parameters and
//! element states.
//!
//! §2 of the paper: the forward model predicts a channel from path
//! parameters `{φ_l, τ_l, γ_l, θ_l}`, "but PRESS demands the inverse
//! direction of this calculation: given the existing wireless channel …
//! we seek to compute the signal path parameters … for an existing or
//! additional path or paths such that the superposition of the existing,
//! modified, and additional paths yields the desired wireless channel."
//!
//! Two inverse tools live here:
//!
//! 1. [`extract_dominant_paths`] — decompose an observed frequency response
//!    into discrete paths (delay + complex gain) by matched filtering over a
//!    delay grid with successive cancellation. This recovers the `{τ, g}`
//!    part of the paper's parameter set from exactly the CSI a sounder
//!    produces.
//! 2. [`InverseSolver`] — given the PRESS dictionary (each element/state's
//!    additive channel contribution), find the configuration whose
//!    superposition best matches a target channel: a continuous
//!    least-squares relaxation projected onto the achievable states, refined
//!    by coordinate descent on the true discrete objective.

use crate::config::{ConfigSpace, Configuration};
use press_math::mat::CMat;
use press_math::Complex64;

/// A path recovered from a frequency response: delay and complex gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveredPath {
    /// Delay, seconds.
    pub delay_s: f64,
    /// Complex gain.
    pub gain: Complex64,
}

/// Matched-filter decomposition of a frequency response into up to
/// `max_paths` discrete paths over a delay grid (successive interference
/// cancellation, CLEAN-style).
///
/// `freqs_hz` are the absolute subcarrier frequencies of `h`. The grid spans
/// `[0, max_delay_s]` in `grid_steps` steps. Recovery stops early when the
/// residual energy falls below `stop_fraction` of the original.
pub fn extract_dominant_paths(
    h: &[Complex64],
    freqs_hz: &[f64],
    max_paths: usize,
    max_delay_s: f64,
    grid_steps: usize,
    stop_fraction: f64,
) -> Vec<RecoveredPath> {
    assert_eq!(h.len(), freqs_hz.len(), "channel/frequency length mismatch");
    assert!(grid_steps >= 2, "grid needs at least two steps");
    let n = h.len() as f64;
    let mut residual: Vec<Complex64> = h.to_vec();
    let initial_energy: f64 = residual.iter().map(|x| x.norm_sqr()).sum();
    let mut out = Vec::new();
    for _ in 0..max_paths {
        let energy: f64 = residual.iter().map(|x| x.norm_sqr()).sum();
        // The `== 0.0` arm guards an all-zero channel (initial_energy zero
        // too, so the fractional stop test is vacuous).
        // press-lint: allow(float-ordering)
        if energy <= stop_fraction * initial_energy || energy == 0.0 {
            break;
        }
        // Matched filter: correlate the residual with e^{-j2πfτ} over the grid.
        let mut best: Option<(f64, Complex64, f64)> = None; // (delay, gain, |corr|²)
        for step in 0..grid_steps {
            let tau = max_delay_s * step as f64 / (grid_steps - 1) as f64;
            let corr: Complex64 = residual
                .iter()
                .zip(freqs_hz)
                .map(|(r, &f)| *r * Complex64::cis(2.0 * std::f64::consts::PI * f * tau))
                .sum();
            let gain = corr / n;
            let metric = gain.norm_sqr();
            if best.is_none_or(|(_, _, b)| metric > b) {
                best = Some((tau, gain, metric));
            }
        }
        let (tau, gain, _) = best.expect("grid_steps >= 2"); // press-lint: allow(panic-freedom) — grid_steps >= 2, so the loop always sets best
                                                             // Subtract the recovered path.
        for (r, &f) in residual.iter_mut().zip(freqs_hz) {
            *r -= gain * Complex64::cis(-2.0 * std::f64::consts::PI * f * tau);
        }
        out.push(RecoveredPath { delay_s: tau, gain });
    }
    out
}

/// Reconstructs a frequency response from recovered paths (the forward
/// model, for verifying a decomposition).
pub fn reconstruct(paths: &[RecoveredPath], freqs_hz: &[f64]) -> Vec<Complex64> {
    freqs_hz
        .iter()
        .map(|&f| {
            paths
                .iter()
                .map(|p| p.gain * Complex64::cis(-2.0 * std::f64::consts::PI * f * p.delay_s))
                .sum()
        })
        .collect()
}

/// The PRESS dictionary: the additive channel contribution of every element
/// in every state, over the active subcarriers.
#[derive(Debug, Clone)]
pub struct PressDictionary {
    /// Base (environment-only) channel, length `n_subcarriers`.
    pub base: Vec<Complex64>,
    /// `contributions[element][state][subcarrier]`.
    pub contributions: Vec<Vec<Vec<Complex64>>>,
}

impl PressDictionary {
    /// Builds the dictionary for a system/link at the given subcarrier
    /// frequencies: the base channel is the environment-only response; each
    /// element/state contribution is that element's single path evaluated
    /// over the subcarriers (zero when the state reflects nothing).
    pub fn from_system(
        system: &crate::system::PressSystem,
        tx: &press_propagation::RadioNode,
        rx: &press_propagation::RadioNode,
        freqs_hz: &[f64],
    ) -> PressDictionary {
        use press_propagation::path::frequency_response;
        let base = frequency_response(&system.environment_paths(tx, rx), freqs_hz, 0.0);
        let contributions = (0..system.array.len())
            .map(|i| {
                let n_states = system.array.elements[i].element.n_states();
                (0..n_states)
                    .map(
                        |s| match system.array.element_path(&system.scene, tx, rx, i, s) {
                            Some(p) => frequency_response(&[p], freqs_hz, 0.0),
                            None => vec![Complex64::ZERO; freqs_hz.len()],
                        },
                    )
                    .collect()
            })
            .collect();
        PressDictionary {
            base,
            contributions,
        }
    }

    /// Builds the dictionary from an already-constructed
    /// [`LinkBasis`](crate::basis::LinkBasis) —
    /// the columns are shared verbatim (the basis *is* the dictionary, with
    /// absent states materialized as zero contributions), so no path is
    /// re-traced.
    pub fn from_basis(basis: &crate::basis::LinkBasis) -> PressDictionary {
        let mut base = Vec::new();
        basis.environment_into(0.0, &mut base);
        let space = basis.space();
        let contributions = (0..space.n_elements())
            .map(|i| {
                (0..space.states_per_element[i])
                    .map(|s| match basis.column(i, s) {
                        Some(col) => col,
                        None => vec![Complex64::ZERO; basis.n_subcarriers()],
                    })
                    .collect()
            })
            .collect();
        PressDictionary {
            base,
            contributions,
        }
    }

    /// The configuration space implied by the dictionary.
    pub fn space(&self) -> ConfigSpace {
        ConfigSpace::new(self.contributions.iter().map(|c| c.len()).collect())
    }

    /// Forward model: the channel a configuration produces.
    pub fn channel(&self, config: &Configuration) -> Vec<Complex64> {
        let mut h = Vec::new();
        self.channel_into(config, &mut h);
        h
    }

    /// Like [`channel`](Self::channel) but into a caller-owned buffer, so
    /// the solver's enumeration and refinement loops stay allocation-free.
    pub fn channel_into(&self, config: &Configuration, out: &mut Vec<Complex64>) {
        out.clear();
        out.extend_from_slice(&self.base);
        for (elem, &state) in self.contributions.iter().zip(&config.states) {
            for (hk, ck) in out.iter_mut().zip(&elem[state]) {
                *hk += *ck;
            }
        }
    }

    /// Weighted squared distance of a configuration's channel to a target.
    pub fn distance(&self, config: &Configuration, target: &[Complex64], weights: &[f64]) -> f64 {
        let mut scratch = Vec::new();
        self.distance_with(config, target, weights, &mut scratch)
    }

    /// [`distance`](Self::distance) with a reusable channel scratch buffer.
    pub fn distance_with(
        &self,
        config: &Configuration,
        target: &[Complex64],
        weights: &[f64],
        scratch: &mut Vec<Complex64>,
    ) -> f64 {
        self.channel_into(config, scratch);
        weighted_residual(scratch, target, weights)
    }
}

/// `Σ w_k |h_k − t_k|²`.
fn weighted_residual(h: &[Complex64], target: &[Complex64], weights: &[f64]) -> f64 {
    h.iter()
        .zip(target)
        .zip(weights)
        .map(|((h, t), &w)| w * (*h - *t).norm_sqr())
        .sum()
}

/// Solves for the configuration whose channel best matches a target.
#[derive(Debug, Clone)]
pub struct InverseSolver {
    /// Per-subcarrier weights (uniform = plain least squares).
    pub weights: Vec<f64>,
    /// Coordinate-descent refinement sweeps after projection.
    pub refine_sweeps: usize,
    /// Spaces no bigger than this are solved by exact enumeration instead of
    /// the relax-project-refine pipeline (the paper's 64-configuration
    /// prototype falls well under any sensible threshold).
    pub exhaustive_threshold: usize,
}

/// Result of an inverse solve.
#[derive(Debug, Clone, PartialEq)]
pub struct InverseSolution {
    /// Best configuration found.
    pub config: Configuration,
    /// Residual `Σ w_k |H_k − T_k|²`.
    pub residual: f64,
    /// Residual of the *continuous* relaxation (a lower bound within the
    /// span of the per-element mean contributions).
    pub relaxed_residual: f64,
}

impl InverseSolver {
    /// Uniform-weight solver with two refinement sweeps and a 4096-point
    /// exact-enumeration threshold.
    pub fn new(n_subcarriers: usize) -> Self {
        InverseSolver {
            weights: vec![1.0; n_subcarriers],
            refine_sweeps: 2,
            exhaustive_threshold: 4096,
        }
    }

    /// Finds the configuration minimizing the weighted distance to `target`.
    ///
    /// Stage 1 (relaxation): treat each element's contribution as its state-0
    /// *shape* scaled by a free complex coefficient; solve the linear least
    /// squares `min ‖base + Σ αᵢ·dᵢ − target‖` via the damped normal
    /// equations. Stage 2 (projection): per element, pick the discrete state
    /// whose contribution is closest (in the weighted norm) to `αᵢ·dᵢ`.
    /// Stage 3 (refinement): greedy coordinate descent on the true discrete
    /// objective.
    pub fn solve(&self, dict: &PressDictionary, target: &[Complex64]) -> InverseSolution {
        assert_eq!(target.len(), dict.base.len(), "target width mismatch");
        assert_eq!(
            self.weights.len(),
            dict.base.len(),
            "weights width mismatch"
        );
        let n_sc = dict.base.len();
        let n_elem = dict.contributions.len();
        let space = dict.space();

        // Small spaces: exact enumeration is cheaper than being clever.
        if space.size() <= self.exhaustive_threshold {
            let mut scratch = Vec::with_capacity(n_sc);
            let mut best: Option<(Configuration, f64)> = None;
            for c in space.iter() {
                let r = dict.distance_with(&c, target, &self.weights, &mut scratch);
                if best.as_ref().is_none_or(|(_, b)| r < *b) {
                    best = Some((c, r));
                }
            }
            let (config, residual) = best.expect("space non-empty"); // press-lint: allow(panic-freedom) — the configuration space is never empty
            return InverseSolution {
                config,
                residual,
                relaxed_residual: residual,
            };
        }

        // --- Stage 1: continuous relaxation. ---
        // Basis: element i's state-0 contribution shape.
        let w_sqrt: Vec<f64> = self.weights.iter().map(|w| w.sqrt()).collect();
        let a = CMat::from_fn(n_sc, n_elem, |k, i| dict.contributions[i][0][k] * w_sqrt[k]);
        let b: Vec<Complex64> = (0..n_sc)
            .map(|k| (target[k] - dict.base[k]) * w_sqrt[k])
            .collect();
        let alphas = a
            .least_squares(&b, 1e-9)
            .unwrap_or(vec![Complex64::ONE; n_elem]);

        // Relaxed residual for reporting.
        let relaxed_residual: f64 = (0..n_sc)
            .map(|k| {
                let mut h = dict.base[k];
                for (i, alpha) in alphas.iter().enumerate() {
                    h += *alpha * dict.contributions[i][0][k];
                }
                self.weights[k] * (h - target[k]).norm_sqr()
            })
            .sum();

        // --- Stage 2: project each continuous coefficient onto the states. ---
        let mut config = Configuration::zeros(n_elem);
        for (i, &alpha) in alphas.iter().enumerate() {
            let desired: Vec<Complex64> = dict.contributions[i][0]
                .iter()
                .map(|d| alpha * *d)
                .collect();
            let mut best_state = 0;
            let mut best_dist = f64::INFINITY;
            for (s, contrib) in dict.contributions[i].iter().enumerate() {
                let dist: f64 = contrib
                    .iter()
                    .zip(&desired)
                    .zip(&self.weights)
                    .map(|((c, d), &w)| w * (*c - *d).norm_sqr())
                    .sum();
                if dist < best_dist {
                    best_dist = dist;
                    best_state = s;
                }
            }
            config.states[i] = best_state;
        }

        // --- Stage 3: coordinate-descent refinement on the true objective. ---
        // The candidate channel is maintained incrementally: probing state
        // `s` for element `i` swaps one contribution column out and one in
        // (O(K)) rather than re-synthesizing the whole channel per candidate.
        let mut h = Vec::with_capacity(n_sc);
        dict.channel_into(&config, &mut h);
        let mut best_residual = weighted_residual(&h, target, &self.weights);
        for _ in 0..self.refine_sweeps {
            let mut improved = false;
            for i in 0..n_elem {
                let original = config.states[i];
                let mut best_state = original;
                for s in 0..space.states_per_element[i] {
                    if s == original {
                        continue;
                    }
                    let old_col = &dict.contributions[i][original];
                    let new_col = &dict.contributions[i][s];
                    let r: f64 = (0..n_sc)
                        .map(|k| {
                            let hk = h[k] - old_col[k] + new_col[k];
                            self.weights[k] * (hk - target[k]).norm_sqr()
                        })
                        .sum();
                    if r < best_residual {
                        best_residual = r;
                        best_state = s;
                    }
                }
                if best_state != original {
                    let old_col = &dict.contributions[i][original];
                    let new_col = &dict.contributions[i][best_state];
                    for k in 0..n_sc {
                        h[k] = h[k] - old_col[k] + new_col[k];
                    }
                    config.states[i] = best_state;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        InverseSolution {
            config,
            residual: best_residual,
            relaxed_residual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freqs() -> Vec<f64> {
        (0..52)
            .map(|k| 2.462e9 + (k as f64 - 26.0) * 312_500.0)
            .collect()
    }

    #[test]
    fn extract_single_path_exactly() {
        let f = freqs();
        let true_path = RecoveredPath {
            delay_s: 30e-9,
            gain: Complex64::from_polar(0.5, 1.2),
        };
        let h = reconstruct(&[true_path], &f);
        let got = extract_dominant_paths(&h, &f, 3, 100e-9, 2001, 1e-6);
        assert!(!got.is_empty());
        assert!((got[0].delay_s - 30e-9).abs() < 1e-10, "{}", got[0].delay_s);
        assert!((got[0].gain - true_path.gain).abs() < 0.02);
    }

    #[test]
    fn extract_two_paths_orders_by_power() {
        let f = freqs();
        let p1 = RecoveredPath {
            delay_s: 10e-9,
            gain: Complex64::real(1.0),
        };
        let p2 = RecoveredPath {
            delay_s: 80e-9,
            gain: Complex64::real(0.4),
        };
        let h = reconstruct(&[p1, p2], &f);
        let got = extract_dominant_paths(&h, &f, 2, 120e-9, 4001, 1e-9);
        assert_eq!(got.len(), 2);
        assert!(got[0].gain.abs() > got[1].gain.abs());
        // Delay resolution is limited by the 16.25 MHz sounded span (~60 ns);
        // with two mutually interfering paths the peak estimates land within
        // a fraction of that.
        assert!((got[0].delay_s - 10e-9).abs() < 15e-9, "{}", got[0].delay_s);
        assert!((got[1].delay_s - 80e-9).abs() < 15e-9, "{}", got[1].delay_s);
    }

    #[test]
    fn reconstruction_error_shrinks_with_paths() {
        let f = freqs();
        let truth = vec![
            RecoveredPath {
                delay_s: 5e-9,
                gain: Complex64::real(0.8),
            },
            RecoveredPath {
                delay_s: 42e-9,
                gain: Complex64::new(0.3, 0.3),
            },
            RecoveredPath {
                delay_s: 95e-9,
                gain: Complex64::new(-0.2, 0.25),
            },
        ];
        let h = reconstruct(&truth, &f);
        let err = |k: usize| -> f64 {
            let got = extract_dominant_paths(&h, &f, k, 150e-9, 3001, 0.0);
            let rec = reconstruct(&got, &f);
            h.iter().zip(&rec).map(|(a, b)| (*a - *b).norm_sqr()).sum()
        };
        assert!(err(3) < err(1));
    }

    /// A small synthetic dictionary: 3 elements x 4 states, each state a
    /// phase-rotated copy of a base shape (mimicking switched waveguides).
    fn synthetic_dict() -> PressDictionary {
        let f = freqs();
        let n = f.len();
        let base: Vec<Complex64> = (0..n)
            .map(|k| Complex64::from_polar(1.0, k as f64 * 0.05))
            .collect();
        let mut contributions = Vec::new();
        for e in 0..3 {
            let delay = 20e-9 + e as f64 * 15e-9;
            let shape: Vec<Complex64> = f
                .iter()
                .map(|&fr| {
                    Complex64::from_polar(0.3, 0.0)
                        * Complex64::cis(-2.0 * std::f64::consts::PI * fr * delay)
                })
                .collect();
            let states: Vec<Vec<Complex64>> = (0..4)
                .map(|s| {
                    let rot = Complex64::cis(s as f64 * std::f64::consts::FRAC_PI_2);
                    shape.iter().map(|x| *x * rot).collect()
                })
                .collect();
            contributions.push(states);
        }
        PressDictionary {
            base,
            contributions,
        }
    }

    #[test]
    fn inverse_recovers_planted_configuration() {
        let dict = synthetic_dict();
        let planted = Configuration::new(vec![2, 0, 3]);
        let target = dict.channel(&planted);
        let solver = InverseSolver::new(target.len());
        let sol = solver.solve(&dict, &target);
        assert_eq!(sol.config, planted, "residual {}", sol.residual);
        assert!(sol.residual < 1e-12);
    }

    #[test]
    fn inverse_matches_exhaustive_on_small_space() {
        let dict = synthetic_dict();
        // An arbitrary target no configuration achieves exactly.
        let target: Vec<Complex64> = dict
            .base
            .iter()
            .map(|b| *b * Complex64::from_polar(1.4, 0.4))
            .collect();
        let solver = InverseSolver::new(target.len());
        let sol = solver.solve(&dict, &target);
        // Exhaustive reference.
        let space = dict.space();
        let weights = vec![1.0; target.len()];
        let best_exhaustive = space
            .iter()
            .map(|c| dict.distance(&c, &target, &weights))
            .fold(f64::INFINITY, f64::min);
        assert!(
            sol.residual <= best_exhaustive * 1.001 + 1e-12,
            "solver {} vs exhaustive {}",
            sol.residual,
            best_exhaustive
        );
    }

    #[test]
    fn staged_pipeline_close_to_exhaustive() {
        // Force the relax-project-refine path by disabling exact enumeration
        // and check it lands within a factor of the exhaustive optimum.
        let dict = synthetic_dict();
        let target: Vec<Complex64> = dict
            .base
            .iter()
            .map(|b| *b * Complex64::from_polar(1.4, 0.4))
            .collect();
        let mut solver = InverseSolver::new(target.len());
        solver.exhaustive_threshold = 0;
        solver.refine_sweeps = 4;
        let sol = solver.solve(&dict, &target);
        let space = dict.space();
        let weights = vec![1.0; target.len()];
        let best_exhaustive = space
            .iter()
            .map(|c| dict.distance(&c, &target, &weights))
            .fold(f64::INFINITY, f64::min);
        assert!(
            sol.residual <= best_exhaustive * 2.0 + 1e-9,
            "staged {} vs exhaustive {}",
            sol.residual,
            best_exhaustive
        );
        assert!(sol.relaxed_residual <= sol.residual + 1e-9);
    }

    #[test]
    fn relaxed_residual_lower_bounds_projection() {
        let dict = synthetic_dict();
        let target: Vec<Complex64> = dict.base.iter().map(|b| *b * 1.3).collect();
        let solver = InverseSolver::new(target.len());
        let sol = solver.solve(&dict, &target);
        // The relaxation optimizes over a superset (continuous alphas), so it
        // cannot be worse than the discrete solution.
        assert!(sol.relaxed_residual <= sol.residual + 1e-9);
    }

    #[test]
    fn dictionary_from_basis_matches_from_system() {
        use crate::array::PressArray;
        use crate::basis::LinkBasis;
        use crate::system::{CachedLink, PressSystem};
        use press_propagation::{LabConfig, LabSetup};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let lab = LabSetup::generate(&LabConfig::default(), 23);
        let lambda = lab.scene.wavelength();
        let mut rng = StdRng::seed_from_u64(9);
        let positions = lab.random_element_positions(3, &mut rng);
        let array = PressArray::paper_passive(&positions, lambda);
        let system = PressSystem::new(lab.scene.clone(), array);
        let link = CachedLink::trace(&system, lab.tx.clone(), lab.rx.clone());
        let f = freqs();
        let basis = LinkBasis::build(&system, &link, &f);

        let direct = PressDictionary::from_system(&system, &lab.tx, &lab.rx, &f);
        let cached = PressDictionary::from_basis(&basis);
        // Static lab scenes: identical path ordering, so bit-equal.
        assert_eq!(direct.base, cached.base);
        assert_eq!(direct.contributions, cached.contributions);
    }

    #[test]
    fn dictionary_forward_model_superposes() {
        let dict = synthetic_dict();
        let c = Configuration::new(vec![1, 1, 1]);
        let h = dict.channel(&c);
        for (k, &hk) in h.iter().enumerate() {
            let manual = dict.base[k]
                + dict.contributions[0][1][k]
                + dict.contributions[1][1][k]
                + dict.contributions[2][1][k];
            assert!((hk - manual).abs() < 1e-12);
        }
    }
}
