//! # press-core
//!
//! The paper's primary contribution: the PRESS system itself — a
//! Programmable Radio Environment for Smart Spaces (HotNets'17).
//!
//! * [`config`] — array configurations and the `M^N` space (§4.2);
//! * [`mod@array`] — deployed elements injecting controllable paths (Figure 1);
//! * [`system`] — scene + array with cached environment tracing;
//! * [`measurement`] — the §3.2 campaign procedure (64 configurations × 10
//!   trials, latency-charged);
//! * [`analysis`] — the statistics behind Figures 4–6 and the headline
//!   numbers (null movement, min-SNR change, extreme pairs);
//! * [`objective`] — the §1 applications as scalar objectives (link
//!   enhancement, MIMO conditioning, harmonization, partitioning);
//! * [`search`] — exhaustive / greedy / hill-climb / annealing / genetic
//!   navigation of the configuration space (§4.2), serial, parallel and
//!   batched, with allocation-free scratch-arena inner loops;
//! * [`basis`] — the basis-cached O(N·K) configuration-evaluation fast
//!   path with incremental single-move updates and a structure-of-arrays
//!   batch kernel scoring whole candidate batches in one column pass;
//! * [`inverse`] — the §2 inverse problem: path extraction from CSI and
//!   dictionary-based configuration synthesis;
//! * [`controller`] — the closed measurement → search → actuate loop under
//!   a coherence-time budget (§2);
//! * [`space`] — the multi-link deployment layer: one scene + array serving
//!   a registry of weighted links with shared traces and bases (§2's
//!   network harmonization, §4.2's shared-array scheduling);
//! * [`joint`] — joint / per-link / hybrid scheduling over a [`space`]
//!   registry and the agility-vs-optimization comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod active;
pub mod alignment;
pub mod analysis;
pub mod array;
pub mod bandit;
pub mod basis;
pub mod config;
pub mod controller;
pub mod inverse;
pub mod joint;
pub mod measurement;
pub mod objective;
pub mod placement;
pub mod search;
pub mod space;
pub mod system;
pub mod tracking;

pub use active::{tune_active_phases, ActiveTuning};
pub use alignment::{mean_alignment, nulling_filter, post_nulling_sinr_db};
pub use analysis::{headline_stats, HeadlineStats, NULL_THRESHOLD_DB};
pub use array::{PlacedElement, PressArray};
pub use bandit::UcbController;
pub use basis::{min_magnitude_db_metric, snr_metric, BasisEvaluator, BatchEvaluator, LinkBasis};
pub use config::{ConfigSpace, Configuration};
pub use controller::{
    ActuationMode, ControlReport, Controller, DesActuation, EngineCommand, EngineEvent,
    EngineSnapshot, EpisodeEngine, LinkReport, PostMortem, SpaceReport, Strategy, TimingModel,
    TransportActuation,
};
pub use inverse::{InverseSolution, InverseSolver, PressDictionary, RecoveredPath};
pub use joint::{
    compare_agility, optimize_hybrid, optimize_hybrid_observed, optimize_joint,
    optimize_joint_observed, optimize_per_link, optimize_per_link_observed, optimize_sharded,
    optimize_sharded_parallel, shard_space, AgilityReport, Shard, ShardedResult,
};
pub use measurement::{
    run_campaign, run_campaign_over, run_campaign_parallel, CampaignConfig, CampaignResult,
};
pub use objective::{harmonization_score, mimo_conditioning_score, partition_score, LinkObjective};
pub use placement::{greedy_placement, random_placement_baseline, PlacementResult};
pub use search::{
    exhaustive_batched, exhaustive_parallel_batched, genetic_batched, hierarchical_groups,
    hierarchical_groups_scratch, simulated_annealing_embedded, simulated_annealing_scratch,
    GeneticParams, SearchResult, SearchScratch, SearchStep,
};
pub use space::{
    link_stream_seed, ChurnEvent, LinkId, SmartSpace, SpaceBatchScorer, SpaceLink, SpaceScratch,
};
pub use system::{CachedLink, PressSystem};
pub use tracking::{track_mobile_client, LinearPatrol, TrackingConfig, TrackingReport};
