//! Campaign analysis: the statistics behind Figures 4–6 and the paper's
//! headline numbers.
//!
//! Everything operates on per-configuration [`SnrProfile`]s so the same
//! functions serve measured campaigns and oracle sweeps.

use crate::measurement::CampaignResult;
use press_phy::snr::{null_movement, SnrProfile};

/// The paper's null-depth threshold: a subcarrier counts as "the most
/// significant null" only when it sits ≥ 5 dB below the profile median.
pub const NULL_THRESHOLD_DB: f64 = 5.0;

/// Figure 4 pair selection: the two configurations with the largest
/// single-subcarrier SNR difference. Returns `(i, j, delta_db)` with
/// `i < j`; `None` with fewer than two profiles.
pub fn extreme_pair(profiles: &[SnrProfile]) -> Option<(usize, usize, f64)> {
    let mut best: Option<(usize, usize, f64)> = None;
    for j in 1..profiles.len() {
        for i in 0..j {
            let d = profiles[i].max_abs_delta_db(&profiles[j]);
            if best.is_none_or(|(_, _, b)| d > b) {
                best = Some((i, j, d));
            }
        }
    }
    best
}

/// Figure 5 data: null movement (in subcarriers) for every ordered pair of
/// configurations in one trial, counting only pairs where *both*
/// configurations exhibit a null (the paper: "among configurations that
/// exhibit a null"). All `n²` ordered pairs are considered, matching the
/// paper's "all of the 64² pairs".
pub fn null_movements(profiles: &[SnrProfile]) -> Vec<usize> {
    let mut out = Vec::new();
    for a in profiles {
        for b in profiles {
            if let Some(m) = null_movement(a, b, NULL_THRESHOLD_DB) {
                out.push(m);
            }
        }
    }
    out
}

/// Figure 6 (left) data: |Δ minimum-SNR| in dB for every unordered pair of
/// configurations.
pub fn min_snr_changes(profiles: &[SnrProfile]) -> Vec<f64> {
    let mut out = Vec::new();
    for j in 1..profiles.len() {
        for i in 0..j {
            out.push((profiles[i].min_db() - profiles[j].min_db()).abs());
        }
    }
    out
}

/// Figure 6 (right) data: the minimum SNR across subcarriers of every
/// configuration.
pub fn min_snrs(profiles: &[SnrProfile]) -> Vec<f64> {
    profiles.iter().map(|p| p.min_db()).collect()
}

/// Headline §3.2.1: the fraction of configuration changes (unordered pairs)
/// that cause at least `threshold_db` of SNR change on at least one
/// subcarrier. The paper reports ≈38% at 10 dB.
pub fn fraction_pairs_with_subcarrier_delta(profiles: &[SnrProfile], threshold_db: f64) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for j in 1..profiles.len() {
        for i in 0..j {
            total += 1;
            if profiles[i].max_abs_delta_db(&profiles[j]) >= threshold_db {
                hits += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Headline §3.2.1: the fraction of configurations whose worst subcarrier
/// falls below `threshold_db`. The paper reports <9% below 20 dB.
pub fn fraction_configs_min_below(profiles: &[SnrProfile], threshold_db: f64) -> f64 {
    if profiles.is_empty() {
        return 0.0;
    }
    profiles
        .iter()
        .filter(|p| p.min_db() < threshold_db)
        .count() as f64
        / profiles.len() as f64
}

/// Summary of a whole campaign against the paper's headline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineStats {
    /// Largest change in *mean* (across trials) SNR on any subcarrier
    /// between any two configurations, dB. Paper: 18.6 dB.
    pub max_mean_snr_change_db: f64,
    /// Largest within-trial single-subcarrier change, dB. Paper: 26 dB.
    pub max_within_trial_change_db: f64,
    /// Largest null movement observed in any trial, subcarriers. Paper: 9.
    pub max_null_movement: usize,
    /// Fraction of pairs with ≥10 dB change on some subcarrier. Paper: ~0.38.
    pub frac_pairs_10db: f64,
    /// Fraction of configurations with worst subcarrier <20 dB. Paper: <0.09.
    pub frac_min_below_20db: f64,
}

/// Computes the headline statistics of a campaign.
pub fn headline_stats(result: &CampaignResult) -> HeadlineStats {
    let means = result.mean_profiles();
    let max_mean = extreme_pair(&means).map_or(0.0, |(_, _, d)| d);

    let mut max_within = 0.0f64;
    let mut max_null = 0usize;
    let mut frac_pairs = 0.0;
    let mut frac_below = 0.0;
    for trial in &result.profiles {
        if let Some((_, _, d)) = extreme_pair(trial) {
            max_within = max_within.max(d);
        }
        if let Some(&m) = null_movements(trial).iter().max() {
            max_null = max_null.max(m);
        }
        frac_pairs += fraction_pairs_with_subcarrier_delta(trial, 10.0);
        frac_below += fraction_configs_min_below(trial, 20.0);
    }
    let n = result.profiles.len().max(1) as f64;
    HeadlineStats {
        max_mean_snr_change_db: max_mean,
        max_within_trial_change_db: max_within,
        max_null_movement: max_null,
        frac_pairs_10db: frac_pairs / n,
        frac_min_below_20db: frac_below / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(v: Vec<f64>) -> SnrProfile {
        SnrProfile::new(v)
    }

    fn with_null(base: f64, at: usize, depth: f64) -> SnrProfile {
        let mut v = vec![base; 52];
        v[at] = base - depth;
        profile(v)
    }

    #[test]
    fn extreme_pair_finds_largest_gap() {
        let profiles = vec![
            profile(vec![30.0; 52]),
            with_null(30.0, 10, 12.0),
            with_null(30.0, 40, 25.0),
        ];
        let (i, j, d) = extreme_pair(&profiles).unwrap();
        assert_eq!((i, j), (0, 2));
        assert_eq!(d, 25.0);
    }

    #[test]
    fn extreme_pair_none_for_single() {
        assert!(extreme_pair(&[profile(vec![1.0; 4])]).is_none());
    }

    #[test]
    fn null_movements_counts_only_dual_null_pairs() {
        let profiles = vec![
            with_null(30.0, 5, 10.0),
            with_null(30.0, 14, 10.0),
            profile(vec![30.0; 52]), // no null
        ];
        let moves = null_movements(&profiles);
        // Ordered pairs among the two null-bearing profiles: (0,0),(0,1),(1,0),(1,1).
        assert_eq!(moves.len(), 4);
        assert_eq!(moves.iter().filter(|&&m| m == 9).count(), 2);
        assert_eq!(moves.iter().filter(|&&m| m == 0).count(), 2);
    }

    #[test]
    fn min_snr_changes_are_pairwise_abs() {
        let profiles = vec![
            profile(vec![20.0; 4]),
            profile(vec![28.0; 4]),
            profile(vec![15.0; 4]),
        ];
        let mut d = min_snr_changes(&profiles);
        d.sort_by(f64::total_cmp);
        assert_eq!(d, vec![5.0, 8.0, 13.0]);
    }

    #[test]
    fn fraction_pairs_thresholds() {
        let profiles = vec![
            profile(vec![30.0; 52]),
            with_null(30.0, 3, 11.0),
            profile(vec![30.0; 52]),
        ];
        // Pairs: (0,1) delta 11; (0,2) delta 0; (1,2) delta 11. => 2/3.
        let f = fraction_pairs_with_subcarrier_delta(&profiles, 10.0);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(fraction_pairs_with_subcarrier_delta(&[], 10.0), 0.0);
    }

    #[test]
    fn fraction_below_counts_configs() {
        let profiles = vec![
            with_null(30.0, 0, 15.0), // min 15 < 20
            profile(vec![25.0; 52]),
        ];
        assert!((fraction_configs_min_below(&profiles, 20.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn headline_stats_from_synthetic_campaign() {
        use crate::config::Configuration;
        let trial: Vec<SnrProfile> = vec![
            profile(vec![30.0; 52]),
            with_null(30.0, 8, 20.0),
            with_null(30.0, 17, 20.0),
        ];
        let result = CampaignResult {
            configs: vec![Configuration::zeros(3); 3],
            profiles: vec![trial.clone(), trial],
            elapsed_s: 1.0,
        };
        let h = headline_stats(&result);
        assert_eq!(h.max_mean_snr_change_db, 20.0);
        assert_eq!(h.max_within_trial_change_db, 20.0);
        assert_eq!(h.max_null_movement, 9);
        assert!(h.frac_pairs_10db > 0.5);
        assert!((h.frac_min_below_20db - 2.0 / 3.0).abs() < 1e-9);
    }
}
