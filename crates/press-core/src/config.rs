//! Configurations of a PRESS array and the space they live in.
//!
//! With `N` elements of `M` states each the paper's §4.2 notes the search
//! space has `M^N` points ("enumerating the M^N possibilities ... becomes
//! impractical"). This module is the bookkeeping for that space: dense
//! index ↔ configuration conversion, exhaustive iteration, random sampling,
//! Hamming-neighborhood enumeration, and the paper's Figure 4-style labels.

use press_elements::format_phase_label;
use press_elements::Element;
use rand::Rng;

/// One array configuration: the selected state of every element, in array
/// order.
///
/// Orders lexicographically by state vector, so configurations can live in
/// deterministic ordered collections (`BTreeSet`/`BTreeMap`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Configuration {
    /// Selected state per element.
    pub states: Vec<usize>,
}

impl Configuration {
    /// Builds from explicit states.
    pub fn new(states: Vec<usize>) -> Self {
        Configuration { states }
    }

    /// The all-zeros configuration for `n` elements.
    pub fn zeros(n: usize) -> Self {
        Configuration { states: vec![0; n] }
    }

    /// Number of elements configured.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the configuration covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The configuration a partially-applied actuation physically produces:
    /// element `i` holds `target` where `applied[i]`, and stays at `self`
    /// (the previous configuration in force) where the control plane failed
    /// to reach it.
    pub fn overlay(&self, target: &Configuration, applied: &[bool]) -> Configuration {
        assert_eq!(self.len(), target.len(), "configuration lengths differ");
        assert_eq!(self.len(), applied.len(), "applied mask length differs");
        Configuration {
            states: self
                .states
                .iter()
                .zip(&target.states)
                .zip(applied)
                .map(|((&prev, &tgt), &ok)| if ok { tgt } else { prev })
                .collect(),
        }
    }

    /// Hamming distance to another configuration of equal length.
    pub fn hamming(&self, other: &Configuration) -> usize {
        assert_eq!(self.len(), other.len(), "configuration lengths differ");
        self.states
            .iter()
            .zip(&other.states)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Paper-style label, e.g. "(π, 0, 0.5π)" or "(T, T, T)", given the
    /// elements the states refer to and the carrier wavelength.
    pub fn label(&self, elements: &[Element], lambda_m: f64) -> String {
        let parts: Vec<String> = self
            .states
            .iter()
            .zip(elements)
            .map(|(&s, e)| match &e.kind {
                press_elements::ElementKind::Passive { switch } => {
                    format_phase_label(switch.throws()[s].phase_label(lambda_m))
                }
                press_elements::ElementKind::Active { .. } => "A".to_string(),
            })
            .collect();
        format!("({})", parts.join(", "))
    }
}

/// The discrete configuration space of an array of switched elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSpace {
    /// Number of states of each element, in array order.
    pub states_per_element: Vec<usize>,
}

impl ConfigSpace {
    /// Builds the space from element state counts.
    ///
    /// Panics if any element has zero states.
    pub fn new(states_per_element: Vec<usize>) -> Self {
        assert!(
            states_per_element.iter().all(|&m| m >= 1),
            "every element needs at least one state"
        );
        ConfigSpace { states_per_element }
    }

    /// Builds the space for a slice of (passive) elements.
    ///
    /// Panics when an element is active (continuously tunable — not part of
    /// a discrete space).
    pub fn of_elements(elements: &[Element]) -> Self {
        ConfigSpace::new(
            elements
                .iter()
                .map(|e| {
                    assert!(e.is_passive(), "active elements have no discrete states");
                    e.n_states()
                })
                .collect(),
        )
    }

    /// Number of elements.
    pub fn n_elements(&self) -> usize {
        self.states_per_element.len()
    }

    /// Total size `M₁·M₂·…·M_N`, saturating at `usize::MAX`.
    pub fn size(&self) -> usize {
        self.states_per_element
            .iter()
            .fold(1usize, |acc, &m| acc.saturating_mul(m))
    }

    /// Converts a dense index (mixed-radix, element 0 least significant) to
    /// a configuration.
    ///
    /// Panics when out of range.
    pub fn config_at(&self, mut index: usize) -> Configuration {
        assert!(index < self.size(), "index {index} out of space");
        let states = self
            .states_per_element
            .iter()
            .map(|&m| {
                let s = index % m;
                index /= m;
                s
            })
            .collect();
        Configuration { states }
    }

    /// As [`config_at`](Self::config_at), writing into a caller-owned
    /// configuration instead of allocating — the enumeration step of the
    /// allocation-free search loops.
    ///
    /// Panics when out of range.
    pub fn config_at_into(&self, mut index: usize, out: &mut Configuration) {
        assert!(index < self.size(), "index {index} out of space");
        out.states.clear();
        out.states.extend(self.states_per_element.iter().map(|&m| {
            let s = index % m;
            index /= m;
            s
        }));
    }

    /// Converts a configuration back to its dense index.
    ///
    /// Panics on length mismatch or out-of-range state.
    pub fn index_of(&self, config: &Configuration) -> usize {
        assert_eq!(config.len(), self.n_elements(), "length mismatch");
        let mut index = 0usize;
        for (&s, &m) in config.states.iter().zip(&self.states_per_element).rev() {
            assert!(s < m, "state {s} out of range (element has {m})");
            index = index * m + s;
        }
        index
    }

    /// Iterates the whole space in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = Configuration> + '_ {
        (0..self.size()).map(move |i| self.config_at(i))
    }

    /// A uniformly random configuration.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Configuration {
        Configuration {
            states: self
                .states_per_element
                .iter()
                .map(|&m| rng.gen_range(0..m))
                .collect(),
        }
    }

    /// As [`random`](Self::random), writing into a caller-owned
    /// configuration. Draws from the RNG in exactly [`random`](Self::random)'s order, so
    /// the two are interchangeable without perturbing a seeded stream.
    pub fn random_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Configuration) {
        out.states.clear();
        out.states
            .extend(self.states_per_element.iter().map(|&m| rng.gen_range(0..m)));
    }

    /// All Hamming-distance-1 neighbors of a configuration.
    pub fn neighbors(&self, config: &Configuration) -> Vec<Configuration> {
        let mut out = Vec::new();
        for (i, &m) in self.states_per_element.iter().enumerate() {
            for s in 0..m {
                if s != config.states[i] {
                    let mut c = config.clone();
                    c.states[i] = s;
                    out.push(c);
                }
            }
        }
        out
    }

    /// True when the configuration is valid in this space.
    pub fn contains(&self, config: &Configuration) -> bool {
        config.len() == self.n_elements()
            && config
                .states
                .iter()
                .zip(&self.states_per_element)
                .all(|(&s, &m)| s < m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_space() -> ConfigSpace {
        ConfigSpace::new(vec![4, 4, 4])
    }

    #[test]
    fn paper_space_has_64_configs() {
        assert_eq!(paper_space().size(), 64);
    }

    #[test]
    fn index_roundtrip_all() {
        let space = paper_space();
        for i in 0..space.size() {
            let c = space.config_at(i);
            assert_eq!(space.index_of(&c), i);
            assert!(space.contains(&c));
        }
    }

    #[test]
    fn mixed_radix_roundtrip() {
        let space = ConfigSpace::new(vec![2, 3, 5]);
        assert_eq!(space.size(), 30);
        for i in 0..30 {
            assert_eq!(space.index_of(&space.config_at(i)), i);
        }
    }

    #[test]
    fn config_at_into_matches_config_at() {
        let space = ConfigSpace::new(vec![2, 3, 5]);
        let mut buf = Configuration::zeros(0);
        for i in 0..space.size() {
            space.config_at_into(i, &mut buf);
            assert_eq!(buf, space.config_at(i));
        }
    }

    #[test]
    fn iter_visits_every_config_once() {
        let space = paper_space();
        let all: Vec<Configuration> = space.iter().collect();
        assert_eq!(all.len(), 64);
        let mut seen = std::collections::BTreeSet::new();
        for c in &all {
            assert!(seen.insert(c.clone()), "duplicate {c:?}");
        }
    }

    #[test]
    fn neighbors_are_hamming_one() {
        let space = paper_space();
        let c = space.config_at(17);
        let ns = space.neighbors(&c);
        assert_eq!(ns.len(), 3 * 3, "3 elements x 3 alternative states");
        for n in &ns {
            assert_eq!(c.hamming(n), 1);
        }
    }

    #[test]
    fn random_configs_are_valid_and_deterministic() {
        let space = paper_space();
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let ca = space.random(&mut a);
            let cb = space.random(&mut b);
            assert_eq!(ca, cb);
            assert!(space.contains(&ca));
        }
    }

    #[test]
    fn random_into_matches_random_stream() {
        let space = paper_space();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let mut buf = Configuration::zeros(0);
        for _ in 0..10 {
            let ca = space.random(&mut a);
            space.random_into(&mut b, &mut buf);
            assert_eq!(ca, buf);
        }
    }

    #[test]
    fn contains_rejects_bad_configs() {
        let space = paper_space();
        assert!(!space.contains(&Configuration::new(vec![0, 0])));
        assert!(!space.contains(&Configuration::new(vec![0, 0, 4])));
    }

    #[test]
    fn labels_match_paper_style() {
        let lambda = 0.1218;
        let elements = vec![
            Element::paper_passive(lambda),
            Element::paper_passive(lambda),
            Element::paper_passive(lambda),
        ];
        let c = Configuration::new(vec![2, 0, 1]);
        assert_eq!(c.label(&elements, lambda), "(π, 0, 0.5π)");
        let t = Configuration::new(vec![3, 3, 3]);
        assert_eq!(t.label(&elements, lambda), "(T, T, T)");
    }

    #[test]
    fn hamming_distance() {
        let a = Configuration::new(vec![0, 1, 2]);
        let b = Configuration::new(vec![0, 3, 2]);
        assert_eq!(a.hamming(&b), 1);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    #[should_panic(expected = "index 64 out of space")]
    fn config_at_out_of_range_panics() {
        paper_space().config_at(64);
    }
}
