//! Joint multi-link scheduling and the agility-vs-optimization trade-off.
//!
//! §2 of the paper: "If the current communication patterns involve multiple
//! wireless links operating over different time or frequency slots, we
//! would like the system to attempt to optimize them jointly and
//! simultaneously, if possible. … a trade-off exists between agility and
//! optimization: one might jointly optimize over a large set of likely
//! communication links, obviating the need to change the PRESS array for
//! each link's communication, but possibly complicating the optimization
//! problem. On the other end of the design space, one might optimize
//! solely over a single communication link … One can imagine hybrid
//! tradeoffs and dynamic strategies."
//!
//! This module is a thin *scheduler* over [`SmartSpace`]: the registry
//! owns the traces, bases, objectives and weights; the scheduler only
//! decides which links share a configuration and drives the search. The
//! three strategies span the paper's design space:
//!
//! * [`optimize_joint`] — one static configuration scored across every
//!   registered link (weighted sum);
//! * [`optimize_per_link`] — each link gets its own configuration, actuated
//!   at slot boundaries;
//! * [`optimize_hybrid`] — links are partitioned into groups; each group
//!   shares one configuration. Singleton groups recover the per-link end,
//!   one all-links group recovers the joint end — bit-for-bit, because the
//!   group RNG stream is seeded by the group's lowest [`LinkId`] through
//!   [`link_stream_seed`].
//!
//! [`compare_agility`] runs the two ends on a TDMA schedule, charging the
//! control plane's actuation latency for every reconfiguration, so the
//! crossover the paper predicts is measurable.

use crate::config::Configuration;
use crate::search::{self, SearchResult, SearchStep};
use crate::space::{link_stream_seed, LinkId, SmartSpace, SpaceScratch};
use press_control::CouplingGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Annealing temperature schedule shared by every scheduler strategy.
const T0: f64 = 3.0;
const T1: f64 = 0.05;

/// Optimizes one shared configuration for the whole registry by simulated
/// annealing under the given evaluation budget (oracle evaluations through
/// the registry's bases). The search RNG is stream 0 of link 0 — the bare
/// seed — so the single-link degenerate case is RNG-stream-identical to
/// the historical single-link optimizer.
pub fn optimize_joint(space: &SmartSpace, budget: usize, seed: u64) -> SearchResult {
    let ids: Vec<LinkId> = space.links().iter().map(|sl| sl.id).collect();
    optimize_group(space, &ids, budget, seed, |_| {})
}

/// [`optimize_joint`] with a per-evaluation [`SearchStep`] observer — the
/// convergence-telemetry entry point. Results are bit-identical to the
/// silent variant.
pub fn optimize_joint_observed<O>(
    space: &SmartSpace,
    budget: usize,
    seed: u64,
    on_step: O,
) -> SearchResult
where
    O: FnMut(&SearchStep),
{
    let ids: Vec<LinkId> = space.links().iter().map(|sl| sl.id).collect();
    optimize_group(space, &ids, budget, seed, on_step)
}

/// Optimizes each link separately (same budget per link) and returns each
/// link's own best configuration, in registry order. Link `i` searches on
/// its own derived RNG stream (`link_stream_seed(seed, i, 0)`), so adding
/// or removing a link never perturbs the others' searches.
pub fn optimize_per_link(space: &SmartSpace, budget: usize, seed: u64) -> Vec<SearchResult> {
    space
        .links()
        .iter()
        .map(|sl| optimize_group(space, &[sl.id], budget, seed, |_| {}))
        .collect()
}

/// [`optimize_per_link`] with a per-evaluation observer; the observer also
/// receives the [`LinkId`] whose search emitted the step.
pub fn optimize_per_link_observed<O>(
    space: &SmartSpace,
    budget: usize,
    seed: u64,
    mut on_step: O,
) -> Vec<SearchResult>
where
    O: FnMut(LinkId, &SearchStep),
{
    space
        .links()
        .iter()
        .map(|sl| optimize_group(space, &[sl.id], budget, seed, |s| on_step(sl.id, s)))
        .collect()
}

/// Optimizes one configuration per group of links — the paper's "hybrid
/// tradeoffs". Each group's weighted sub-objective is scored through the
/// registry; the group's RNG stream is seeded by its lowest [`LinkId`],
/// which makes singleton groups coincide bit-for-bit with
/// [`optimize_per_link`] and the one-group-of-everything case with
/// [`optimize_joint`].
///
/// Panics when a group is empty.
pub fn optimize_hybrid(
    space: &SmartSpace,
    groups: &[Vec<LinkId>],
    budget: usize,
    seed: u64,
) -> Vec<SearchResult> {
    groups
        .iter()
        .map(|g| optimize_group(space, g, budget, seed, |_| {}))
        .collect()
}

/// [`optimize_hybrid`] with a per-evaluation observer; the observer also
/// receives the index of the group whose search emitted the step.
pub fn optimize_hybrid_observed<O>(
    space: &SmartSpace,
    groups: &[Vec<LinkId>],
    budget: usize,
    seed: u64,
    mut on_step: O,
) -> Vec<SearchResult>
where
    O: FnMut(usize, &SearchStep),
{
    groups
        .iter()
        .enumerate()
        .map(|(gi, g)| optimize_group(space, g, budget, seed, |s| on_step(gi, s)))
        .collect()
}

/// The shared kernel: anneal one configuration for a set of links, scored
/// as the registry's weighted sum over exactly those links.
fn optimize_group<O>(
    space: &SmartSpace,
    ids: &[LinkId],
    budget: usize,
    seed: u64,
    on_step: O,
) -> SearchResult
where
    O: FnMut(&SearchStep),
{
    let lead = *ids
        .iter()
        .min()
        .expect("scheduling group must be non-empty"); // press-lint: allow(panic-freedom) — scheduling groups are built non-empty
    let config_space = space.config_space();
    let stream = link_stream_seed(seed, lead, 0);
    let mut rng = StdRng::seed_from_u64(stream);
    let mut scratch = SpaceScratch::new();
    search::simulated_annealing_observed(
        &config_space,
        budget.max(1),
        T0,
        T1,
        &mut rng,
        |c| space.oracle_score_of_scratch(ids, c, &mut scratch),
        on_step,
    )
}

/// One RF-coupled cluster of a campus-scale space: the links it scores
/// and the array elements it owns. Produced by [`shard_space`], consumed
/// by [`optimize_sharded`] / [`optimize_sharded_parallel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// The shard's links, ascending by id. Never empty.
    pub links: Vec<LinkId>,
    /// Array element indices this shard owns (ascending). Disjoint across
    /// shards by construction; possibly empty when no element couples to
    /// the shard's links above the floor.
    pub elements: Vec<usize>,
}

/// Partitions the registry into RF-coupled shards over shared-array /
/// shared-band reachability, via the
/// [`CouplingGraph`] partitioner.
///
/// Two coupling relations feed the graph:
///
/// * **shared array** — element `e` couples to link `l` when the
///   element's strongest state column carries at least
///   `coupling_floor_db` (relative to the link's environment energy,
///   see [`LinkBasis::element_coupling_db`](crate::basis::LinkBasis::element_coupling_db)).
///   Links reaching a common element are transitively merged, and each
///   reachable element is owned by exactly one shard.
/// * **shared band** — two links on the *same frequency grid* whose
///   endpoints come within `co_channel_reach_m` meters are merged even
///   without a shared element (the conservative co-channel guard; pass
///   `0.0` to disable).
///
/// Shards come back ordered by their lowest link id, links and elements
/// ascending — a pure function of the registry, independent of any
/// insertion order. Elements below the floor for *every* link belong to
/// no shard and stay at the merge base state.
pub fn shard_space(
    space: &SmartSpace,
    coupling_floor_db: f64,
    co_channel_reach_m: f64,
) -> Vec<Shard> {
    let links = space.links();
    let n_links = links.len();
    let n_elements = space.config_space().n_elements();
    // Bipartite union-find: link nodes first, element nodes after.
    let mut graph = CouplingGraph::new(n_links + n_elements);
    for (li, sl) in links.iter().enumerate() {
        for e in 0..n_elements {
            if sl.basis.element_coupling_db(e) >= coupling_floor_db {
                graph.couple(li, n_links + e);
            }
        }
    }
    if co_channel_reach_m > 0.0 {
        for (a, sa) in links.iter().enumerate() {
            for (b, sb) in links.iter().enumerate().skip(a + 1) {
                if sa.basis.freqs_hz() != sb.basis.freqs_hz() {
                    continue;
                }
                let (atx, arx) = (sa.sounder.tx.node.position, sa.sounder.rx.node.position);
                let (btx, brx) = (sb.sounder.tx.node.position, sb.sounder.rx.node.position);
                let d = (atx - btx)
                    .norm()
                    .min((atx - brx).norm())
                    .min((arx - btx).norm())
                    .min((arx - brx).norm());
                if d <= co_channel_reach_m {
                    graph.couple(a, b);
                }
            }
        }
    }
    graph
        .components()
        .into_iter()
        .filter(|comp| comp[0] < n_links)
        .map(|comp| {
            let mut shard = Shard {
                links: Vec::new(),
                elements: Vec::new(),
            };
            for m in comp {
                if m < n_links {
                    shard.links.push(links[m].id);
                } else {
                    shard.elements.push(m - n_links);
                }
            }
            shard
        })
        .collect()
}

/// Outcome of a sharded optimization: the per-shard searches plus the
/// merged full-array configuration they stitch into.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedResult {
    /// Per-shard search results, in shard order. Each `best` is a
    /// full-width configuration with the shard's non-owned elements at
    /// the merge base (state 0).
    pub per_shard: Vec<SearchResult>,
    /// The merged configuration: each element takes its owning shard's
    /// state; unowned elements stay at state 0.
    pub merged: Configuration,
    /// Full-registry weighted oracle score of `merged` — directly
    /// comparable to [`optimize_joint`]'s score.
    pub merged_score: f64,
}

/// Optimizes each shard independently — the campus-scale scheduler.
///
/// Each shard anneals over *its own elements only* (every other element
/// pinned at state 0), scoring its own links through the registry, on the
/// RNG stream `link_stream_seed(seed, lowest link id, 0)` — the same
/// stream discipline [`optimize_hybrid`] uses, so shard results do not
/// depend on how many other shards exist. The per-shard bests are then
/// stitched by element ownership into one full-array configuration.
///
/// The degenerate single-shard case (all links, all elements) is
/// bit-identical to [`optimize_joint`].
pub fn optimize_sharded(
    space: &SmartSpace,
    shards: &[Shard],
    budget: usize,
    seed: u64,
) -> ShardedResult {
    let per_shard: Vec<SearchResult> = shards
        .iter()
        .map(|sh| optimize_shard(space, sh, budget, seed))
        .collect();
    merge_sharded(space, shards, per_shard)
}

/// [`optimize_sharded`] over `n_threads` scoped worker threads, shards
/// dealt round-robin. Shard searches are already independent (own RNG
/// stream, own scratch), so the result is **bit-identical** to the serial
/// scheduler at any thread count.
pub fn optimize_sharded_parallel(
    space: &SmartSpace,
    shards: &[Shard],
    budget: usize,
    seed: u64,
    n_threads: usize,
) -> ShardedResult {
    assert!(n_threads > 0, "need at least one thread");
    let mut per_shard: Vec<Option<SearchResult>> = vec![None; shards.len()];
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads.min(shards.len().max(1)))
            .map(|w| {
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut si = w;
                    while si < shards.len() {
                        local.push((si, optimize_shard(space, &shards[si], budget, seed)));
                        si += n_threads;
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // press-lint: allow(panic-freedom) — join only re-raises a worker panic
            for (si, r) in h.join().expect("shard worker panicked") {
                per_shard[si] = Some(r);
            }
        }
    })
    .expect("shard scope"); // press-lint: allow(panic-freedom) — Err only when a worker panicked, surfaced at join above
    let per_shard = per_shard
        .into_iter()
        .map(|r| r.expect("every shard optimized")) // press-lint: allow(panic-freedom) — every shard index is written exactly once by its worker
        .collect();
    merge_sharded(space, shards, per_shard)
}

/// Anneals one shard over its owned elements on its own RNG stream.
fn optimize_shard(space: &SmartSpace, shard: &Shard, budget: usize, seed: u64) -> SearchResult {
    let lead = *shard
        .links
        .iter()
        .min()
        .expect("shard must own at least one link"); // press-lint: allow(panic-freedom) — shards own >=1 link by construction
    let config_space = space.config_space();
    let base = Configuration::zeros(config_space.n_elements());
    let mut space_scratch = SpaceScratch::new();
    if shard.elements.is_empty() {
        // Nothing to tune: the shard rides the base configuration.
        let score = space.oracle_score_of_scratch(&shard.links, &base, &mut space_scratch);
        return SearchResult {
            best: base,
            score,
            evaluations: 1,
        };
    }
    let stream = link_stream_seed(seed, lead, 0);
    let mut rng = StdRng::seed_from_u64(stream);
    let mut scratch = search::SearchScratch::new();
    search::simulated_annealing_embedded(
        &config_space,
        &shard.elements,
        &base,
        budget.max(1),
        T0,
        T1,
        &mut rng,
        &mut scratch,
        |c| space.oracle_score_of_scratch(&shard.links, c, &mut space_scratch),
        |_| {},
    )
}

/// Stitches per-shard bests into the merged configuration by element
/// ownership and scores it over the full registry.
fn merge_sharded(
    space: &SmartSpace,
    shards: &[Shard],
    per_shard: Vec<SearchResult>,
) -> ShardedResult {
    let mut merged = Configuration::zeros(space.config_space().n_elements());
    for (shard, result) in shards.iter().zip(&per_shard) {
        for &e in &shard.elements {
            merged.states[e] = result.best.states[e];
        }
    }
    let merged_score = space.oracle_score(&merged);
    ShardedResult {
        per_shard,
        merged,
        merged_score,
    }
}

/// Outcome of the agility-vs-optimization comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AgilityReport {
    /// TDMA slot length, seconds.
    pub slot_s: f64,
    /// Control-plane actuation latency charged per reconfiguration, seconds.
    pub switch_s: f64,
    /// Aggregate throughput with one joint configuration (no switching).
    pub joint_mbps: f64,
    /// Aggregate throughput switching to each link's own configuration
    /// (airtime lost to actuation each slot).
    pub per_link_mbps: f64,
}

impl AgilityReport {
    /// True when per-link switching wins despite its actuation cost.
    pub fn agility_wins(&self) -> bool {
        self.per_link_mbps > self.joint_mbps
    }
}

/// Oracle Shannon throughput of one link under a configuration, Mb/s.
fn link_throughput_mbps(space: &SmartSpace, id: LinkId, config: &Configuration) -> f64 {
    let sl = space.link(id);
    let h = sl.basis.synthesize(config, 0.0);
    let profile = sl.sounder.snr_from_channel(&h);
    profile.shannon_capacity_bps(sl.sounder.num.subcarrier_spacing_hz()) / 1e6
}

/// Compares the two ends of the paper's agility spectrum on a TDMA
/// schedule: every link gets an equal slot; the per-link strategy actuates
/// the array at each slot boundary (losing `switch_s` of airtime), while
/// the joint strategy never reconfigures. Throughputs are Shannon
/// capacities of the oracle profiles (smooth, so small per-link advantages
/// are visible; the MCS ladder would quantize them away).
pub fn compare_agility(
    space: &SmartSpace,
    budget: usize,
    slot_s: f64,
    switch_s: f64,
    seed: u64,
) -> AgilityReport {
    assert!(slot_s > 0.0 && switch_s >= 0.0);
    let joint = optimize_joint(space, budget, seed);
    let per_link = optimize_per_link(space, budget, seed);

    let n = space.n_links() as f64;
    let joint_mbps: f64 = space
        .links()
        .iter()
        .map(|sl| link_throughput_mbps(space, sl.id, &joint.best) / n)
        .sum();
    let duty = ((slot_s - switch_s) / slot_s).max(0.0);
    let per_link_mbps: f64 = space
        .links()
        .iter()
        .zip(&per_link)
        .map(|(sl, r)| duty * link_throughput_mbps(space, sl.id, &r.best) / n)
        .sum();

    AgilityReport {
        slot_s,
        switch_s,
        joint_mbps,
        per_link_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use crate::objective::LinkObjective;
    use crate::system::PressSystem;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_phy::Numerology;
    use press_propagation::{LabConfig, LabSetup, RadioNode, Vec3};
    use press_sdr::{SdrRadio, Sounder};

    fn two_link_space() -> SmartSpace {
        let lab = LabSetup::generate(&LabConfig::default(), 6);
        let lambda = lab.scene.wavelength();
        let mut rng = StdRng::seed_from_u64(2);
        let positions = lab.random_element_positions(3, &mut rng);
        let aim = (lab.tx.position + lab.rx.position) * 0.5;
        let array = PressArray::paper_passive_aimed(&positions, lambda, aim);
        let system = PressSystem::new(lab.scene.clone(), array);
        let num = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        // Link 1: the lab's own endpoints. Link 2: a second client offset in y.
        let s1 = Sounder::new(
            num.clone(),
            SdrRadio::warp(lab.tx.clone()),
            SdrRadio::warp(lab.rx.clone()),
        );
        let rx2 = RadioNode::omni_at(lab.rx.position + Vec3::new(0.3, 1.2, 0.0));
        let s2 = Sounder::new(num, SdrRadio::warp(lab.tx.clone()), SdrRadio::warp(rx2));
        let mut space = SmartSpace::new(system);
        space.add_link("lab link", s1, LinkObjective::MaxMinSnr, 1.0);
        space.add_link("client 2", s2, LinkObjective::MaxMinSnr, 1.0);
        space
    }

    #[test]
    fn per_link_optima_dominate_joint_per_link() {
        // Each link's own optimum is at least as good (for that link) as
        // the joint compromise.
        let space = two_link_space();
        let joint = optimize_joint(&space, 80, 1);
        let own = optimize_per_link(&space, 80, 1);
        for (sl, r) in space.links().iter().zip(&own) {
            let joint_score = space.link_oracle_score(sl.id, &joint.best);
            assert!(
                r.score >= joint_score - 0.5,
                "link {}: own {} vs joint {joint_score}",
                sl.id,
                r.score
            );
        }
    }

    #[test]
    fn hybrid_singletons_match_per_link_bitwise() {
        let space = two_link_space();
        let groups: Vec<Vec<LinkId>> = space.links().iter().map(|sl| vec![sl.id]).collect();
        let hybrid = optimize_hybrid(&space, &groups, 60, 7);
        let per_link = optimize_per_link(&space, 60, 7);
        assert_eq!(hybrid, per_link);
    }

    #[test]
    fn hybrid_single_group_matches_joint_bitwise() {
        let space = two_link_space();
        let all: Vec<LinkId> = space.links().iter().map(|sl| sl.id).collect();
        let hybrid = optimize_hybrid(&space, &[all], 60, 7);
        let joint = optimize_joint(&space, 60, 7);
        assert_eq!(hybrid, vec![joint]);
    }

    #[test]
    fn observed_scheduler_matches_silent_bitwise() {
        let space = two_link_space();
        let mut steps = Vec::new();
        let silent = optimize_joint(&space, 60, 7);
        let observed = optimize_joint_observed(&space, 60, 7, |s| steps.push(*s));
        assert_eq!(silent, observed);
        assert!(!steps.is_empty());

        let mut link_steps = Vec::new();
        let silent = optimize_per_link(&space, 40, 3);
        let observed = optimize_per_link_observed(&space, 40, 3, |id, s| link_steps.push((id, *s)));
        assert_eq!(silent, observed);
        // Both links reported convergence under their own ids.
        for sl in space.links() {
            assert!(link_steps.iter().any(|(id, _)| *id == sl.id));
        }
    }

    #[test]
    fn zero_switch_cost_favors_agility() {
        let space = two_link_space();
        let report = compare_agility(&space, 60, 2e-3, 0.0, 1);
        // Up to search (annealing) suboptimality, free switching can only
        // help: allow a small relative slack.
        assert!(
            report.per_link_mbps >= report.joint_mbps * 0.97,
            "free switching can only help: {report:?}"
        );
    }

    #[test]
    fn huge_switch_cost_favors_joint() {
        let space = two_link_space();
        // Switching eats 90% of the slot: joint must win (its throughput is
        // nonzero on this calibrated bench).
        let report = compare_agility(&space, 60, 2e-3, 1.8e-3, 1);
        assert!(report.joint_mbps > 0.0);
        assert!(!report.agility_wins(), "{report:?}");
    }

    /// The default 2-floor campus, one space. The −75 dB coupling floor
    /// sits between the same-floor couplings (−34…−76 dB on this seed)
    /// and the concrete-slab-attenuated cross-floor ones (−80 dB and
    /// below), so the graph decomposes exactly per floor.
    fn campus_space() -> SmartSpace {
        use press_propagation::{Campus, CampusConfig};
        let campus = Campus::generate(&CampusConfig::default(), 1);
        SmartSpace::campus(&campus, LinkObjective::MaxMeanSnr)
    }
    const CAMPUS_FLOOR_DB: f64 = -75.0;

    #[test]
    fn campus_shards_decompose_per_floor() {
        let space = campus_space();
        let shards = shard_space(&space, CAMPUS_FLOOR_DB, 0.0);
        assert_eq!(shards.len(), 2, "{shards:?}");
        for (shard, floor) in shards.iter().zip(["f0", "f1"]) {
            assert_eq!(shard.links.len(), 6);
            for &id in &shard.links {
                assert!(
                    space.link(id).label.starts_with(floor),
                    "link {id} ({}) landed in the {floor} shard",
                    space.link(id).label
                );
            }
        }
        // Element ownership is disjoint and covers the array.
        assert_eq!(shards[0].elements, (0..8).collect::<Vec<_>>());
        assert_eq!(shards[1].elements, (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn co_channel_reach_merges_same_band_shards() {
        let space = campus_space();
        assert_eq!(shard_space(&space, CAMPUS_FLOOR_DB, 0.0).len(), 2);
        // Every campus link shares the Wi-Fi 20 MHz grid, so an
        // unbounded co-channel reach collapses the partition.
        let merged = shard_space(&space, CAMPUS_FLOOR_DB, 1e6);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].links.len(), space.n_links());
    }

    #[test]
    fn sharded_single_shard_matches_joint_bitwise() {
        let space = two_link_space();
        let shard = Shard {
            links: space.link_ids(),
            elements: (0..space.config_space().n_elements()).collect(),
        };
        let sharded = optimize_sharded(&space, &[shard], 60, 7);
        let joint = optimize_joint(&space, 60, 7);
        assert_eq!(sharded.per_shard, vec![joint.clone()]);
        assert_eq!(sharded.merged, joint.best);
        assert_eq!(sharded.merged_score, joint.score);
    }

    #[test]
    fn sharded_parallel_matches_serial_at_any_thread_count() {
        let space = campus_space();
        let shards = shard_space(&space, CAMPUS_FLOOR_DB, 0.0);
        let serial = optimize_sharded(&space, &shards, 40, 3);
        for threads in [1, 2, 5] {
            assert_eq!(
                optimize_sharded_parallel(&space, &shards, 40, 3, threads),
                serial,
                "thread count {threads} perturbed the sharded result"
            );
        }
    }

    #[test]
    fn sharded_harmonization_within_5pct_of_unsharded_oracle() {
        // The ISSUE's acceptance bar: per-shard local search (equal total
        // budget) harmonizes within 5% of the joint full-array anneal.
        let space = campus_space();
        let shards = shard_space(&space, CAMPUS_FLOOR_DB, 0.0);
        let budget = 150;
        let sharded = optimize_sharded_parallel(&space, &shards, budget, 5, 4);
        let joint = optimize_joint(&space, budget * shards.len(), 5);
        assert!(
            sharded.merged_score >= joint.score - 0.05 * joint.score.abs(),
            "sharded {} vs joint {}",
            sharded.merged_score,
            joint.score
        );
    }

    #[test]
    fn elementless_shard_rides_the_base_configuration() {
        let space = two_link_space();
        let shard = Shard {
            links: space.link_ids(),
            elements: Vec::new(),
        };
        let r = optimize_sharded(&space, std::slice::from_ref(&shard), 50, 1);
        let base = Configuration::zeros(space.config_space().n_elements());
        assert_eq!(r.merged, base);
        assert_eq!(
            r.per_shard[0].score,
            space.oracle_score_of(&shard.links, &base)
        );
    }

    #[test]
    fn agility_report_duty_cycle_math() {
        let space = two_link_space();
        let free = compare_agility(&space, 40, 2e-3, 0.0, 2);
        let half = compare_agility(&space, 40, 2e-3, 1e-3, 2);
        assert!((half.per_link_mbps - free.per_link_mbps * 0.5).abs() < 1e-9);
        assert_eq!(half.joint_mbps, free.joint_mbps);
    }
}
