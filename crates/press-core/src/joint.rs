//! Joint multi-link optimization and the agility-vs-optimization trade-off.
//!
//! §2 of the paper: "If the current communication patterns involve multiple
//! wireless links operating over different time or frequency slots, we
//! would like the system to attempt to optimize them jointly and
//! simultaneously, if possible. … a trade-off exists between agility and
//! optimization: one might jointly optimize over a large set of likely
//! communication links, obviating the need to change the PRESS array for
//! each link's communication, but possibly complicating the optimization
//! problem. On the other end of the design space, one might optimize
//! solely over a single communication link … One can imagine hybrid
//! tradeoffs and dynamic strategies."
//!
//! This module implements both ends and the comparison:
//!
//! * [`JointProblem`] — one configuration scored across many links
//!   (weighted sum of per-link objectives);
//! * [`compare_agility`] — joint-static vs per-link-switched operation of a
//!   TDMA schedule, charging the control plane's actuation latency for
//!   every reconfiguration, so the crossover the paper predicts is
//!   measurable.

use crate::config::Configuration;
use crate::objective::LinkObjective;
use crate::search::{self, SearchResult};
use crate::system::{CachedLink, PressSystem};
use press_sdr::Sounder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One link participating in a joint optimization.
#[derive(Debug, Clone)]
pub struct JointLink {
    /// The traced link.
    pub link: CachedLink,
    /// The sounder (radios + numerology) used to evaluate it.
    pub sounder: Sounder,
    /// Relative weight in the joint objective.
    pub weight: f64,
    /// Per-link objective.
    pub objective: LinkObjective,
}

/// A set of links optimized under one shared array configuration.
#[derive(Debug, Clone)]
pub struct JointProblem {
    /// The participating links.
    pub links: Vec<JointLink>,
}

impl JointProblem {
    /// Builds a joint problem with uniform weights and a common objective.
    pub fn uniform(
        system: &PressSystem,
        sounders: Vec<Sounder>,
        objective: LinkObjective,
    ) -> JointProblem {
        let links = sounders
            .into_iter()
            .map(|sounder| {
                let link =
                    CachedLink::trace(system, sounder.tx.node.clone(), sounder.rx.node.clone());
                JointLink {
                    link,
                    sounder,
                    weight: 1.0,
                    objective,
                }
            })
            .collect();
        JointProblem { links }
    }

    /// Weighted joint score of a configuration on oracle channels.
    pub fn oracle_score(&self, system: &PressSystem, config: &Configuration) -> f64 {
        self.links
            .iter()
            .map(|jl| {
                let profile = jl.sounder.oracle_snr(&jl.link.paths(system, config), 0.0);
                jl.weight * jl.objective.score(&profile)
            })
            .sum()
    }

    /// Per-link oracle scores of a configuration.
    pub fn per_link_scores(&self, system: &PressSystem, config: &Configuration) -> Vec<f64> {
        self.links
            .iter()
            .map(|jl| {
                let profile = jl.sounder.oracle_snr(&jl.link.paths(system, config), 0.0);
                jl.objective.score(&profile)
            })
            .collect()
    }

    /// Optimizes the shared configuration by simulated annealing with the
    /// given evaluation budget (oracle evaluations).
    pub fn optimize(&self, system: &PressSystem, budget: usize, seed: u64) -> SearchResult {
        let space = system.array.config_space();
        let mut rng = StdRng::seed_from_u64(seed);
        search::simulated_annealing(&space, budget.max(1), 3.0, 0.05, &mut rng, |c| {
            self.oracle_score(system, c)
        })
    }

    /// Optimizes each link separately (same budget per link) and returns
    /// each link's own best configuration.
    pub fn optimize_per_link(
        &self,
        system: &PressSystem,
        budget: usize,
        seed: u64,
    ) -> Vec<SearchResult> {
        let space = system.array.config_space();
        self.links
            .iter()
            .enumerate()
            .map(|(i, jl)| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
                search::simulated_annealing(&space, budget.max(1), 3.0, 0.05, &mut rng, |c| {
                    let profile = jl.sounder.oracle_snr(&jl.link.paths(system, c), 0.0);
                    jl.objective.score(&profile)
                })
            })
            .collect()
    }
}

/// Outcome of the agility-vs-optimization comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AgilityReport {
    /// TDMA slot length, seconds.
    pub slot_s: f64,
    /// Control-plane actuation latency charged per reconfiguration, seconds.
    pub switch_s: f64,
    /// Aggregate throughput with one joint configuration (no switching).
    pub joint_mbps: f64,
    /// Aggregate throughput switching to each link's own configuration
    /// (airtime lost to actuation each slot).
    pub per_link_mbps: f64,
}

impl AgilityReport {
    /// True when per-link switching wins despite its actuation cost.
    pub fn agility_wins(&self) -> bool {
        self.per_link_mbps > self.joint_mbps
    }
}

/// Compares the two ends of the paper's agility spectrum on a TDMA
/// schedule: every link gets an equal slot; the per-link strategy actuates
/// the array at each slot boundary (losing `switch_s` of airtime), while
/// the joint strategy never reconfigures. Throughputs are Shannon
/// capacities of the oracle profiles (smooth, so small per-link advantages
/// are visible; the MCS ladder would quantize them away).
pub fn compare_agility(
    problem: &JointProblem,
    system: &PressSystem,
    budget: usize,
    slot_s: f64,
    switch_s: f64,
    seed: u64,
) -> AgilityReport {
    assert!(slot_s > 0.0 && switch_s >= 0.0);
    let joint = problem.optimize(system, budget, seed);
    let per_link = problem.optimize_per_link(system, budget, seed);

    let throughput = |jl: &JointLink, config: &Configuration| -> f64 {
        let profile = jl.sounder.oracle_snr(&jl.link.paths(system, config), 0.0);
        profile.shannon_capacity_bps(jl.sounder.num.subcarrier_spacing_hz()) / 1e6
    };

    let n = problem.links.len() as f64;
    let joint_mbps: f64 = problem
        .links
        .iter()
        .map(|jl| throughput(jl, &joint.best) / n)
        .sum();
    let duty = ((slot_s - switch_s) / slot_s).max(0.0);
    let per_link_mbps: f64 = problem
        .links
        .iter()
        .zip(&per_link)
        .map(|(jl, r)| duty * throughput(jl, &r.best) / n)
        .sum();

    AgilityReport {
        slot_s,
        switch_s,
        joint_mbps,
        per_link_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_phy::Numerology;
    use press_propagation::{LabConfig, LabSetup, RadioNode, Vec3};
    use press_sdr::SdrRadio;

    fn two_link_problem() -> (PressSystem, JointProblem) {
        let lab = LabSetup::generate(&LabConfig::default(), 6);
        let lambda = lab.scene.wavelength();
        let mut rng = StdRng::seed_from_u64(2);
        let positions = lab.random_element_positions(3, &mut rng);
        let aim = (lab.tx.position + lab.rx.position) * 0.5;
        let array = PressArray::paper_passive_aimed(&positions, lambda, aim);
        let system = PressSystem::new(lab.scene.clone(), array);
        let num = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        // Link 1: the lab's own endpoints. Link 2: a second client offset in y.
        let s1 = Sounder::new(
            num.clone(),
            SdrRadio::warp(lab.tx.clone()),
            SdrRadio::warp(lab.rx.clone()),
        );
        let rx2 = RadioNode::omni_at(lab.rx.position + Vec3::new(0.3, 1.2, 0.0));
        let s2 = Sounder::new(num, SdrRadio::warp(lab.tx.clone()), SdrRadio::warp(rx2));
        let problem = JointProblem::uniform(&system, vec![s1, s2], LinkObjective::MaxMinSnr);
        (system, problem)
    }

    #[test]
    fn joint_score_is_weighted_sum() {
        let (system, problem) = two_link_problem();
        let config = Configuration::zeros(3);
        let per = problem.per_link_scores(&system, &config);
        let joint = problem.oracle_score(&system, &config);
        assert!((joint - per.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn per_link_optima_dominate_joint_per_link() {
        // Each link's own optimum is at least as good (for that link) as
        // the joint compromise.
        let (system, problem) = two_link_problem();
        let joint = problem.optimize(&system, 80, 1);
        let own = problem.optimize_per_link(&system, 80, 1);
        for (i, (jl, r)) in problem.links.iter().zip(&own).enumerate() {
            let joint_score = jl.objective.score(
                &jl.sounder
                    .oracle_snr(&jl.link.paths(&system, &joint.best), 0.0),
            );
            assert!(
                r.score >= joint_score - 0.5,
                "link {i}: own {} vs joint {joint_score}",
                r.score
            );
        }
    }

    #[test]
    fn zero_switch_cost_favors_agility() {
        let (system, problem) = two_link_problem();
        let report = compare_agility(&problem, &system, 60, 2e-3, 0.0, 1);
        // Up to search (annealing) suboptimality, free switching can only
        // help: allow a small relative slack.
        assert!(
            report.per_link_mbps >= report.joint_mbps * 0.97,
            "free switching can only help: {report:?}"
        );
    }

    #[test]
    fn huge_switch_cost_favors_joint() {
        let (system, problem) = two_link_problem();
        // Switching eats 90% of the slot: joint must win (its throughput is
        // nonzero on this calibrated bench).
        let report = compare_agility(&problem, &system, 60, 2e-3, 1.8e-3, 1);
        assert!(report.joint_mbps > 0.0);
        assert!(!report.agility_wins(), "{report:?}");
    }

    #[test]
    fn agility_report_duty_cycle_math() {
        let (system, problem) = two_link_problem();
        let free = compare_agility(&problem, &system, 40, 2e-3, 0.0, 2);
        let half = compare_agility(&problem, &system, 40, 2e-3, 1e-3, 2);
        assert!((half.per_link_mbps - free.per_link_mbps * 0.5).abs() < 1e-9);
        assert_eq!(half.joint_mbps, free.joint_mbps);
    }
}
