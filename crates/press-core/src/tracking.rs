//! Channel tracking for mobile endpoints.
//!
//! §2 of the paper: everything PRESS does must land inside the channel
//! coherence time, and "depending on traffic patterns, PRESS will very
//! likely reap additional performance benefits from switching strategies on
//! packet-level timescales". This module simulates a client in motion while
//! the controller re-optimizes the array on a fixed cadence, charging
//! control-plane overhead as lost airtime — the machinery behind the
//! `walking_user` example and the coherence-budget experiments.

use crate::config::Configuration;
use crate::search;
use crate::system::{CachedLink, PressSystem};
use press_phy::mcs::expected_throughput_mbps;
use press_phy::numerology::Numerology;
use press_propagation::geometry::Vec3;
use press_propagation::scene::RadioNode;
use press_sdr::{SdrRadio, Sounder};

/// A back-and-forth linear walk: triangle-wave motion along a direction.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearPatrol {
    /// Center of the patrol segment.
    pub base: Vec3,
    /// Direction of motion (normalized internally).
    pub direction: Vec3,
    /// Total peak-to-peak span, meters.
    pub span_m: f64,
    /// Walking speed, m/s.
    pub speed_mps: f64,
}

impl LinearPatrol {
    /// The position at elapsed time `t` seconds.
    pub fn position_at(&self, t: f64) -> Vec3 {
        let dir = self.direction.normalized().unwrap_or(Vec3::Y);
        if self.speed_mps <= 0.0 || self.span_m <= 0.0 {
            return self.base;
        }
        let progress = self.speed_mps * t;
        // Triangle wave in [-span/2, +span/2].
        let cycle = progress % (2.0 * self.span_m);
        let offset = (cycle - self.span_m).abs() - self.span_m / 2.0;
        self.base + dir * offset
    }
}

/// Tracking-loop parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingConfig {
    /// Reconfiguration period, seconds (`f64::INFINITY` = configure once).
    pub period_s: f64,
    /// Simulation step, seconds.
    pub dt_s: f64,
    /// Total simulated time, seconds.
    pub duration_s: f64,
    /// Control-plane cost per candidate evaluated during a reconfiguration,
    /// seconds (sounding + compute).
    pub overhead_per_eval_s: f64,
    /// Control-plane cost to actuate a chosen configuration, seconds.
    pub actuation_s: f64,
}

impl Default for TrackingConfig {
    fn default() -> Self {
        TrackingConfig {
            period_s: 0.5,
            dt_s: 0.02,
            duration_s: 6.0,
            overhead_per_eval_s: 100e-6,
            actuation_s: 1e-3,
        }
    }
}

/// Outcome of a tracking run.
#[derive(Debug, Clone)]
pub struct TrackingReport {
    /// Mean MAC throughput net of control overhead, Mb/s.
    pub mean_throughput_mbps: f64,
    /// Reconfigurations performed.
    pub reconfigurations: usize,
    /// Total control-plane overhead charged, seconds.
    pub overhead_s: f64,
    /// Per-step gross throughput series, Mb/s.
    pub series: Vec<f64>,
}

/// Tracks a mobile client: at every step the client moves along `patrol`;
/// every `period_s` the controller re-runs one greedy coordinate-descent
/// sweep on oracle channels from the current configuration and actuates the
/// result. Returns net throughput after overhead.
pub fn track_mobile_client(
    system: &PressSystem,
    tx: &SdrRadio,
    num: &Numerology,
    patrol: &LinearPatrol,
    cfg: &TrackingConfig,
) -> TrackingReport {
    assert!(cfg.dt_s > 0.0 && cfg.duration_s > 0.0);
    let space = system.array.config_space();
    let mut config = Configuration::zeros(space.n_elements());
    let mut series = Vec::new();
    let mut since_reconf = f64::INFINITY;
    let mut reconfigurations = 0usize;
    let mut overhead_s = 0.0;

    let steps = (cfg.duration_s / cfg.dt_s) as usize;
    for step in 0..steps {
        let t = step as f64 * cfg.dt_s;
        let rx_pos = patrol.position_at(t);
        let rx = SdrRadio::warp(RadioNode::omni_at(rx_pos));
        let sounder = Sounder::new(num.clone(), tx.clone(), rx);
        let link = CachedLink::trace(system, sounder.tx.node.clone(), sounder.rx.node.clone());

        if since_reconf >= cfg.period_s {
            let result = search::greedy_coordinate(&space, config.clone(), 1, |c| {
                sounder.oracle_snr(&link.paths(system, c), 0.0).min_db()
            });
            overhead_s += result.evaluations as f64 * cfg.overhead_per_eval_s + cfg.actuation_s;
            config = result.best;
            since_reconf = 0.0;
            reconfigurations += 1;
        }
        since_reconf += cfg.dt_s;

        let profile = sounder.oracle_snr(&link.paths(system, &config), 0.0);
        series.push(expected_throughput_mbps(&profile));
    }
    let gross = series.iter().sum::<f64>() / series.len().max(1) as f64;
    let duty = (cfg.duration_s - overhead_s).max(0.0) / cfg.duration_s;
    TrackingReport {
        mean_throughput_mbps: gross * duty,
        reconfigurations,
        overhead_s,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_propagation::{LabConfig, LabSetup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PressSystem, SdrRadio, LinearPatrol) {
        let lab = LabSetup::generate(&LabConfig::default(), 2);
        let lambda = lab.scene.wavelength();
        let mut rng = StdRng::seed_from_u64(0x51);
        let positions = lab.random_element_positions(3, &mut rng);
        let aim = (lab.tx.position + lab.rx.position) * 0.5;
        let array = PressArray::paper_passive_aimed(&positions, lambda, aim);
        let system = PressSystem::new(lab.scene.clone(), array);
        let mut tx = SdrRadio::warp(lab.tx.clone());
        tx.tx_power_dbm = -8.0;
        let patrol = LinearPatrol {
            base: lab.rx.position,
            direction: press_propagation::Vec3::Y,
            span_m: 1.6,
            speed_mps: 1.34, // ~3 mph
        };
        (system, tx, patrol)
    }

    fn quick(period: f64) -> TrackingConfig {
        TrackingConfig {
            period_s: period,
            dt_s: 0.05,
            duration_s: 2.0,
            ..TrackingConfig::default()
        }
    }

    #[test]
    fn patrol_is_bounded_and_periodic() {
        let p = LinearPatrol {
            base: Vec3::new(1.0, 2.0, 1.5),
            direction: Vec3::Y,
            span_m: 2.0,
            speed_mps: 1.0,
        };
        for k in 0..100 {
            let t = k as f64 * 0.13;
            let pos = p.position_at(t);
            assert!((pos.y - 2.0).abs() <= 1.0 + 1e-12);
            assert_eq!(pos.x, 1.0);
        }
        // One full cycle is 2*span/speed = 4 s.
        let a = p.position_at(0.7);
        let b = p.position_at(0.7 + 4.0);
        assert!(a.distance(b) < 1e-9);
    }

    #[test]
    fn zero_speed_patrol_stays_home() {
        let p = LinearPatrol {
            base: Vec3::new(5.0, 5.0, 1.5),
            direction: Vec3::X,
            span_m: 2.0,
            speed_mps: 0.0,
        };
        assert_eq!(p.position_at(3.0), p.base);
    }

    #[test]
    fn configure_once_means_one_reconfiguration() {
        let (system, tx, patrol) = setup();
        let num = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        let r = track_mobile_client(&system, &tx, &num, &patrol, &quick(f64::INFINITY));
        assert_eq!(r.reconfigurations, 1, "t=0 configuration only");
        assert!(r.mean_throughput_mbps > 0.0);
    }

    #[test]
    fn shorter_period_means_more_reconfigurations() {
        let (system, tx, patrol) = setup();
        let num = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        let slow = track_mobile_client(&system, &tx, &num, &patrol, &quick(1.0));
        let fast = track_mobile_client(&system, &tx, &num, &patrol, &quick(0.1));
        assert!(fast.reconfigurations > slow.reconfigurations);
        assert!(fast.overhead_s > slow.overhead_s);
    }

    #[test]
    fn tracking_is_deterministic() {
        let (system, tx, patrol) = setup();
        let num = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        let a = track_mobile_client(&system, &tx, &num, &patrol, &quick(0.5));
        let b = track_mobile_client(&system, &tx, &num, &patrol, &quick(0.5));
        assert_eq!(a.series, b.series);
        assert_eq!(a.reconfigurations, b.reconfigurations);
    }
}
