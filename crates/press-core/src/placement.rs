//! Element placement: where to put the array, not just how to switch it.
//!
//! §4.1 of the paper: "PRESS could use either few well-placed directional
//! antennas or many randomly placed but less directional antennas, or
//! anything in-between." Switching states is a per-packet decision;
//! *placement* is a deployment-time decision over the same objective. This
//! module provides a greedy placement optimizer over a candidate grid —
//! each added element is chosen to maximize the objective after re-tuning
//! the whole array's configuration — plus the random-placement baseline it
//! must beat.

use crate::array::{PlacedElement, PressArray};
use crate::config::Configuration;
use crate::search;
use crate::system::{CachedLink, PressSystem};
use press_phy::snr::SnrProfile;
use press_propagation::geometry::Vec3;
use press_propagation::scene::Scene;
use press_sdr::Sounder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A factory producing the element hardware + antenna for a position
/// (placement decides *where*; this decides *what* goes there).
pub type ElementFactory<'a> = dyn Fn(Vec3) -> PlacedElement + 'a;

/// Result of a placement run.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// The deployed array.
    pub array: PressArray,
    /// Objective after each element was added (length = budget).
    pub score_trace: Vec<f64>,
    /// Oracle evaluations spent.
    pub evaluations: usize,
}

/// Greedy placement: starting from an empty array, repeatedly add the
/// candidate position that maximizes `objective(best-configuration profile)`
/// — the inner configuration search is greedy coordinate descent on oracle
/// channels. `objective` maps a profile to a score (higher better).
pub fn greedy_placement(
    scene: &Scene,
    sounder: &Sounder,
    candidates: &[Vec3],
    budget: usize,
    factory: &ElementFactory<'_>,
    objective: &dyn Fn(&SnrProfile) -> f64,
) -> PlacementResult {
    assert!(budget > 0, "placement budget must be positive");
    assert!(
        candidates.len() >= budget,
        "need at least as many candidates as budget"
    );
    let mut chosen: Vec<usize> = Vec::new();
    let mut score_trace = Vec::new();
    let mut evaluations = 0usize;

    for _ in 0..budget {
        let mut best: Option<(usize, f64)> = None;
        for (i, &pos) in candidates.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let mut positions: Vec<Vec3> = chosen.iter().map(|&j| candidates[j]).collect();
            positions.push(pos);
            let (score, evals) =
                evaluate_deployment(scene, sounder, &positions, factory, objective);
            evaluations += evals;
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((i, score));
            }
        }
        let (idx, score) = best.expect("candidates remain"); // press-lint: allow(panic-freedom) — the candidate list shrinks by one per round and starts non-empty
        chosen.push(idx);
        score_trace.push(score);
    }

    let elements: Vec<PlacedElement> = chosen.iter().map(|&j| factory(candidates[j])).collect();
    PlacementResult {
        array: PressArray::new(elements),
        score_trace,
        evaluations,
    }
}

/// Random placement baseline: `n_draws` random subsets, each tuned the same
/// way as the greedy deployment; returns the mean and best final scores.
#[allow(clippy::too_many_arguments)]
pub fn random_placement_baseline(
    scene: &Scene,
    sounder: &Sounder,
    candidates: &[Vec3],
    budget: usize,
    factory: &ElementFactory<'_>,
    objective: &dyn Fn(&SnrProfile) -> f64,
    n_draws: usize,
    seed: u64,
) -> (f64, f64) {
    assert!(n_draws > 0 && candidates.len() >= budget);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = Vec::with_capacity(n_draws);
    for _ in 0..n_draws {
        // Partial Fisher-Yates draw of `budget` distinct candidates.
        let mut idx: Vec<usize> = (0..candidates.len()).collect();
        for i in 0..budget {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        let positions: Vec<Vec3> = idx[..budget].iter().map(|&j| candidates[j]).collect();
        let (score, _) = evaluate_deployment(scene, sounder, &positions, factory, objective);
        scores.push(score);
    }
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (mean, best)
}

/// Deploys elements at `positions`, tunes the configuration by greedy
/// coordinate descent on oracle channels, returns the tuned score.
fn evaluate_deployment(
    scene: &Scene,
    sounder: &Sounder,
    positions: &[Vec3],
    factory: &ElementFactory<'_>,
    objective: &dyn Fn(&SnrProfile) -> f64,
) -> (f64, usize) {
    let elements: Vec<PlacedElement> = positions.iter().map(|&p| factory(p)).collect();
    let system = PressSystem::new(scene.clone(), PressArray::new(elements));
    let link = CachedLink::trace(&system, sounder.tx.node.clone(), sounder.rx.node.clone());
    let space = system.array.config_space();
    let result =
        search::greedy_coordinate(&space, Configuration::zeros(space.n_elements()), 4, |c| {
            objective(&sounder.oracle_snr(&link.paths(&system, c), 0.0))
        });
    (result.score, result.evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_elements::Element;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_phy::Numerology;
    use press_propagation::antenna::{Antenna, Pattern};
    use press_propagation::{LabConfig, LabSetup};
    use press_sdr::SdrRadio;

    fn setup() -> (LabSetup, Sounder, Vec<Vec3>) {
        let lab = LabSetup::generate(&LabConfig::default(), 4);
        let sounder = Sounder::new(
            Numerology::wifi20(WIFI_CHANNEL_11_HZ),
            SdrRadio::warp(lab.tx.clone()),
            SdrRadio::warp(lab.rx.clone()),
        );
        // A small candidate subset keeps the test fast.
        let candidates: Vec<Vec3> = lab
            .element_grid
            .iter()
            .copied()
            .step_by(7)
            .take(10)
            .collect();
        (lab, sounder, candidates)
    }

    fn factory_for(lab: &LabSetup) -> impl Fn(Vec3) -> PlacedElement + '_ {
        let lambda = lab.scene.wavelength();
        let aim = (lab.tx.position + lab.rx.position) * 0.5;
        move |p: Vec3| PlacedElement {
            element: Element::paper_passive(lambda),
            position: p,
            antenna: Antenna::new(Pattern::press_patch(), aim - p),
        }
    }

    #[test]
    fn score_trace_is_monotone() {
        let (lab, sounder, candidates) = setup();
        let factory = factory_for(&lab);
        let objective = |p: &SnrProfile| p.min_db();
        let result = greedy_placement(&lab.scene, &sounder, &candidates, 3, &factory, &objective);
        assert_eq!(result.array.len(), 3);
        assert_eq!(result.score_trace.len(), 3);
        for w in result.score_trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "adding a tunable element (with an off state) cannot hurt: {:?}",
                result.score_trace
            );
        }
    }

    #[test]
    fn greedy_beats_mean_random_placement() {
        let (lab, sounder, candidates) = setup();
        let factory = factory_for(&lab);
        let objective = |p: &SnrProfile| p.min_db();
        let greedy = greedy_placement(&lab.scene, &sounder, &candidates, 2, &factory, &objective);
        let (mean_random, _) = random_placement_baseline(
            &lab.scene,
            &sounder,
            &candidates,
            2,
            &factory,
            &objective,
            6,
            3,
        );
        let final_score = *greedy.score_trace.last().unwrap();
        assert!(
            final_score >= mean_random - 1e-9,
            "greedy {final_score} vs random mean {mean_random}"
        );
    }

    #[test]
    fn placement_is_deterministic() {
        let (lab, sounder, candidates) = setup();
        let factory = factory_for(&lab);
        let objective = |p: &SnrProfile| p.min_db();
        let a = greedy_placement(&lab.scene, &sounder, &candidates, 2, &factory, &objective);
        let b = greedy_placement(&lab.scene, &sounder, &candidates, 2, &factory, &objective);
        assert_eq!(a.array.elements[0].position, b.array.elements[0].position);
        assert_eq!(a.score_trace, b.score_trace);
    }

    #[test]
    #[should_panic(expected = "placement budget must be positive")]
    fn zero_budget_rejected() {
        let (lab, sounder, candidates) = setup();
        let factory = factory_for(&lab);
        let objective = |p: &SnrProfile| p.min_db();
        greedy_placement(&lab.scene, &sounder, &candidates, 0, &factory, &objective);
    }
}
