//! Continuous optimization for active (relay) elements.
//!
//! Passive switches give a discrete `M^N` space; active PhyCloak-class
//! elements are continuously tunable in phase and gain (§2: an active
//! obfuscator "can alter the wireless channel amplitudes, delays, and
//! Doppler shifts"). This module tunes a hybrid array's active elements by
//! cyclic coordinate descent with golden-section line search over each
//! phase (and optionally gain), on top of whatever discrete configuration
//! the passive elements hold.

use crate::config::Configuration;
use crate::system::{CachedLink, PressSystem};
use press_phy::snr::SnrProfile;
use press_sdr::Sounder;

const GOLDEN: f64 = 0.618_033_988_749_894_9;

/// Result of tuning the active elements.
#[derive(Debug, Clone)]
pub struct ActiveTuning {
    /// `(element index, phase_rad, gain_db)` for each active element.
    pub settings: Vec<(usize, f64, f64)>,
    /// Final objective value.
    pub score: f64,
    /// Oracle evaluations spent.
    pub evaluations: usize,
}

/// Golden-section maximization of a unimodal-ish 1-D function on `[lo, hi]`.
fn golden_max(mut lo: f64, mut hi: f64, iters: usize, mut f: impl FnMut(f64) -> f64) -> (f64, f64) {
    let mut x1 = hi - GOLDEN * (hi - lo);
    let mut x2 = lo + GOLDEN * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..iters {
        if f1 < f2 {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + GOLDEN * (hi - lo);
            f2 = f(x2);
        } else {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - GOLDEN * (hi - lo);
            f1 = f(x1);
        }
    }
    if f1 >= f2 {
        (x1, f1)
    } else {
        (x2, f2)
    }
}

/// Tunes every active element's phase (gain pinned at `gain_db`) to
/// maximize `objective` of the link's oracle SNR profile, holding the
/// passive elements at `passive_config`. Runs `sweeps` rounds of coordinate
/// descent; each coordinate gets a golden-section search over `[0, 2π)`
/// seeded by a coarse 8-point scan (the phase response is periodic, not
/// unimodal, so the scan picks the basin first).
pub fn tune_active_phases(
    system: &mut PressSystem,
    link: &CachedLink,
    sounder: &Sounder,
    passive_config: &Configuration,
    gain_db: f64,
    sweeps: usize,
    objective: &dyn Fn(&SnrProfile) -> f64,
) -> ActiveTuning {
    let active_idx: Vec<usize> = system
        .array
        .elements
        .iter()
        .enumerate()
        .filter(|(_, pe)| !pe.element.is_passive())
        .map(|(i, _)| i)
        .collect();
    let mut evaluations = 0usize;

    // Enable all actives at the requested gain, phase 0.
    for &i in &active_idx {
        system.array.elements[i]
            .element
            .program_active(gain_db, 0.0, true);
    }

    let mut score = {
        let profile = sounder.oracle_snr(&link.paths(system, passive_config), 0.0);
        evaluations += 1;
        objective(&profile)
    };

    for _ in 0..sweeps.max(1) {
        for &i in &active_idx {
            // Coarse scan to find the best basin.
            let mut best_phase = 0.0;
            let mut best_val = f64::NEG_INFINITY;
            for k in 0..8 {
                let phase = k as f64 * std::f64::consts::TAU / 8.0;
                system.array.elements[i]
                    .element
                    .program_active(gain_db, phase, true);
                let profile = sounder.oracle_snr(&link.paths(system, passive_config), 0.0);
                evaluations += 1;
                let v = objective(&profile);
                if v > best_val {
                    best_val = v;
                    best_phase = phase;
                }
            }
            // Refine within the basin.
            let width = std::f64::consts::TAU / 8.0;
            let (phase, val) = golden_max(best_phase - width, best_phase + width, 12, |p| {
                system.array.elements[i]
                    .element
                    .program_active(gain_db, p, true);
                let profile = sounder.oracle_snr(&link.paths(system, passive_config), 0.0);
                evaluations += 1;
                objective(&profile)
            });
            system.array.elements[i].element.program_active(
                gain_db,
                phase.rem_euclid(std::f64::consts::TAU),
                true,
            );
            score = val.max(best_val);
        }
    }

    let settings = active_idx
        .iter()
        .map(|&i| {
            let pe = &system.array.elements[i].element;
            match &pe.kind {
                press_elements::ElementKind::Active {
                    gain_db, phase_rad, ..
                } => (i, *phase_rad, *gain_db),
                _ => unreachable!("filtered to actives"), // press-lint: allow(panic-freedom) — filtered to Active variants above
            }
        })
        .collect();
    ActiveTuning {
        settings,
        score,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{PlacedElement, PressArray};
    use press_elements::Element;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_phy::Numerology;
    use press_propagation::antenna::Antenna;
    use press_propagation::{LabConfig, LabSetup};
    use press_sdr::SdrRadio;

    fn hybrid_setup() -> (PressSystem, Sounder) {
        let lab = LabSetup::generate(&LabConfig::default(), 7);
        let lambda = lab.scene.wavelength();
        // One passive, one active element flanking the link.
        let mid = (lab.tx.position + lab.rx.position) * 0.5;
        let elements = vec![
            PlacedElement {
                element: Element::paper_passive(lambda),
                position: mid + press_propagation::Vec3::new(0.0, 1.0, 0.0),
                antenna: Antenna::endpoint_omni(),
            },
            PlacedElement {
                element: Element::active(20.0),
                position: mid + press_propagation::Vec3::new(0.0, -1.1, 0.0),
                antenna: Antenna::endpoint_omni(),
            },
        ];
        let system = PressSystem::new(lab.scene.clone(), PressArray::new(elements));
        let sounder = Sounder::new(
            Numerology::wifi20(WIFI_CHANNEL_11_HZ),
            SdrRadio::warp(lab.tx.clone()),
            SdrRadio::warp(lab.rx.clone()),
        );
        (system, sounder)
    }

    #[test]
    fn golden_max_finds_parabola_peak() {
        let (x, v) = golden_max(-2.0, 3.0, 40, |x| -(x - 1.3) * (x - 1.3));
        assert!((x - 1.3).abs() < 1e-6);
        assert!(v.abs() < 1e-10);
    }

    #[test]
    fn tuning_improves_or_matches_phase_zero() {
        let (mut system, sounder) = hybrid_setup();
        let link = CachedLink::trace(&system, sounder.tx.node.clone(), sounder.rx.node.clone());
        let passive = Configuration::new(vec![0, 0]);
        let objective = |p: &SnrProfile| p.min_db();
        // Baseline: active on at phase 0.
        system.array.elements[1]
            .element
            .program_active(12.0, 0.0, true);
        let baseline = objective(&sounder.oracle_snr(&link.paths(&system, &passive), 0.0));
        let tuned = tune_active_phases(&mut system, &link, &sounder, &passive, 12.0, 2, &objective);
        assert!(
            tuned.score >= baseline - 1e-9,
            "tuned {} vs phase-zero {baseline}",
            tuned.score
        );
        assert_eq!(tuned.settings.len(), 1);
        assert!(tuned.evaluations > 8);
    }

    #[test]
    fn tuned_phase_is_applied_to_the_array() {
        let (mut system, sounder) = hybrid_setup();
        let link = CachedLink::trace(&system, sounder.tx.node.clone(), sounder.rx.node.clone());
        let passive = Configuration::new(vec![0, 0]);
        let objective = |p: &SnrProfile| p.mean_db();
        let tuned = tune_active_phases(&mut system, &link, &sounder, &passive, 10.0, 1, &objective);
        let (idx, phase, gain) = tuned.settings[0];
        match &system.array.elements[idx].element.kind {
            press_elements::ElementKind::Active {
                gain_db,
                phase_rad,
                enabled,
                ..
            } => {
                assert!(*enabled);
                assert_eq!(*phase_rad, phase);
                assert_eq!(*gain_db, gain);
            }
            _ => panic!("expected active element"),
        }
    }

    #[test]
    fn tuning_is_deterministic() {
        let run = || {
            let (mut system, sounder) = hybrid_setup();
            let link = CachedLink::trace(&system, sounder.tx.node.clone(), sounder.rx.node.clone());
            let passive = Configuration::new(vec![0, 0]);
            let objective = |p: &SnrProfile| p.min_db();
            tune_active_phases(&mut system, &link, &sounder, &passive, 12.0, 2, &objective)
        };
        let a = run();
        let b = run();
        assert_eq!(a.settings, b.settings);
        assert_eq!(a.score, b.score);
    }
}
