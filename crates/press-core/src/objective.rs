//! Objectives: what "a better radio environment" means, per application.
//!
//! §1 of the paper names three applications — enhancing individual links,
//! improving large-MIMO conditioning, and network harmonization / spatial
//! partitioning. Each becomes a scalar score here (higher is better) that
//! the search algorithms of [`crate::search`] maximize.

use press_math::mat::MatError;
use press_phy::mcs::expected_throughput_mbps;
use press_phy::mimo::MimoChannel;
use press_phy::snr::SnrProfile;

/// Single-link objectives over a per-subcarrier SNR profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkObjective {
    /// Maximize the worst subcarrier (lift the deepest null) — the paper's
    /// link-enhancement goal.
    MaxMinSnr,
    /// Maximize the mean subcarrier SNR.
    MaxMeanSnr,
    /// Minimize frequency selectivity (peak-to-trough span): give OFDM "a
    /// 'flatter' channel".
    Flatness,
    /// Maximize the MAC throughput after rate adaptation.
    MaxThroughput,
    /// Maximize SNR in the lower half-band while suppressing the upper —
    /// one side of the Figure 7 harmonization experiment.
    FavorLowBand,
    /// The mirror image: favor the upper half-band.
    FavorHighBand,
}

impl LinkObjective {
    /// Scores a profile; higher is better.
    pub fn score(&self, profile: &SnrProfile) -> f64 {
        match self {
            LinkObjective::MaxMinSnr => profile.min_db(),
            LinkObjective::MaxMeanSnr => profile.mean_db(),
            LinkObjective::Flatness => -profile.selectivity_db(),
            LinkObjective::MaxThroughput => expected_throughput_mbps(profile),
            LinkObjective::FavorLowBand => profile.half_band_contrast_db(),
            LinkObjective::FavorHighBand => -profile.half_band_contrast_db(),
        }
    }
}

/// MIMO conditioning objective: *minimize* the median condition number in
/// dB across subcarriers (returned negated so that higher is better).
///
/// # Errors
/// Propagates [`MatError`] from the singular-value computation.
pub fn mimo_conditioning_score(channel: &MimoChannel) -> Result<f64, MatError> {
    Ok(-channel.median_condition_db()?)
}

/// Network-harmonization objective over two co-channel links (Figure 2 of
/// the paper): link 1 should win the low half-band, link 2 the high
/// half-band, and the *interference* channels should be weak everywhere.
///
/// `comm1`/`comm2` are the communication channels (AP1→C1, AP2→C2);
/// `intf12`/`intf21` the cross channels (AP1→C2, AP2→C1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarmonizationWeights {
    /// Weight of the communication-band contrast terms.
    pub communication: f64,
    /// Weight of the interference suppression terms.
    pub interference: f64,
}

impl Default for HarmonizationWeights {
    fn default() -> Self {
        HarmonizationWeights {
            communication: 1.0,
            interference: 0.5,
        }
    }
}

/// Scores a harmonization layout; higher is better.
pub fn harmonization_score(
    comm1: &SnrProfile,
    comm2: &SnrProfile,
    intf12: &SnrProfile,
    intf21: &SnrProfile,
    w: &HarmonizationWeights,
) -> f64 {
    // Each link's contrast toward its own half of the band…
    let partition = comm1.half_band_contrast_db() + (-comm2.half_band_contrast_db());
    // …while interference stays low in absolute terms.
    let interference = intf12.mean_db() + intf21.mean_db();
    w.communication * partition - w.interference * interference
}

/// Spatial-partitioning objective: maximize the signal-to-interference gap
/// (mean dB) of two independent conversations sharing the space.
pub fn partition_score(
    comm1: &SnrProfile,
    comm2: &SnrProfile,
    intf12: &SnrProfile,
    intf21: &SnrProfile,
) -> f64 {
    (comm1.mean_db() - intf21.mean_db()) + (comm2.mean_db() - intf12.mean_db())
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_math::CMat;

    fn flat(db: f64) -> SnrProfile {
        SnrProfile::new(vec![db; 52])
    }

    fn sloped(lo: f64, hi: f64) -> SnrProfile {
        SnrProfile::new((0..52).map(|k| lo + (hi - lo) * k as f64 / 51.0).collect())
    }

    #[test]
    fn max_min_prefers_lifted_null() {
        let mut nulled = vec![30.0; 52];
        nulled[20] = 8.0;
        let a = SnrProfile::new(nulled);
        let b = flat(28.0);
        assert!(LinkObjective::MaxMinSnr.score(&b) > LinkObjective::MaxMinSnr.score(&a));
    }

    #[test]
    fn flatness_prefers_flat() {
        assert!(
            LinkObjective::Flatness.score(&flat(20.0))
                > LinkObjective::Flatness.score(&sloped(10.0, 30.0))
        );
    }

    #[test]
    fn throughput_monotone_in_snr() {
        assert!(
            LinkObjective::MaxThroughput.score(&flat(35.0))
                >= LinkObjective::MaxThroughput.score(&flat(12.0))
        );
    }

    #[test]
    fn band_objectives_are_mirrors() {
        let s = sloped(10.0, 30.0);
        assert!(LinkObjective::FavorHighBand.score(&s) > 0.0);
        assert!(LinkObjective::FavorLowBand.score(&s) < 0.0);
        assert_eq!(
            LinkObjective::FavorLowBand.score(&s),
            -LinkObjective::FavorHighBand.score(&s)
        );
    }

    #[test]
    fn conditioning_score_prefers_identity() {
        let good = MimoChannel::new(vec![CMat::identity(2)]);
        let skewed = MimoChannel::new(vec![CMat::from_fn(2, 2, |i, j| {
            press_math::Complex64::real(1.0 + (i + j) as f64)
        })]);
        assert!(
            mimo_conditioning_score(&good).unwrap() > mimo_conditioning_score(&skewed).unwrap()
        );
    }

    #[test]
    fn harmonization_rewards_opposite_selectivity() {
        let comm1 = sloped(30.0, 10.0); // favors low band
        let comm2 = sloped(10.0, 30.0); // favors high band
        let quiet = flat(0.0);
        let aligned = harmonization_score(&comm1, &comm2, &quiet, &quiet, &Default::default());
        let wrong = harmonization_score(&comm2, &comm1, &quiet, &quiet, &Default::default());
        assert!(aligned > 0.0);
        assert!(wrong < aligned);
    }

    #[test]
    fn harmonization_penalizes_interference() {
        let comm1 = sloped(30.0, 10.0);
        let comm2 = sloped(10.0, 30.0);
        let quiet = flat(-5.0);
        let loud = flat(20.0);
        let good = harmonization_score(&comm1, &comm2, &quiet, &quiet, &Default::default());
        let bad = harmonization_score(&comm1, &comm2, &loud, &loud, &Default::default());
        assert!(good > bad);
    }

    #[test]
    fn partition_score_gap() {
        let comm = flat(30.0);
        let weak_intf = flat(5.0);
        let strong_intf = flat(25.0);
        assert!(
            partition_score(&comm, &comm, &weak_intf, &weak_intf)
                > partition_score(&comm, &comm, &strong_intf, &strong_intf)
        );
    }
}
