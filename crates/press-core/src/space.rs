//! `SmartSpace`: the multi-link deployment layer.
//!
//! The paper's third application — network harmonization / spatial
//! partitioning (§2) — is inherently *multi-link*: one PRESS array
//! conditioning several co-channel links at once. This module makes "a
//! space full of links" the unit of operation: one [`Scene`] + one
//! [`PressArray`](crate::array::PressArray) + a registry mapping
//! [`LinkId`] to the link's endpoints, cached environment trace
//! ([`CachedLink`]), channel basis ([`LinkBasis`]), sounder, objective and
//! weight.
//!
//! What is **shared** across the registry:
//!
//! * the scene and the array (there is one physical room and one surface);
//! * the environment trace per *endpoint pair* — registering two links
//!   between the same endpoints (different objectives, say) re-uses the
//!   first trace instead of walking the scene again, and every scheduler /
//!   controller strategy operating on the space re-uses the registry's
//!   traces instead of re-tracing per strategy as `press_core::joint` used
//!   to;
//! * the per-(element, state) basis geometry per (endpoint pair,
//!   frequency grid) — the expensive `O((L + ΣMᵢ)·K)` basis build is done
//!   once per distinct pair/grid and cloned for duplicates.
//!
//! What is **per-link**: the sounder (radios + numerology), the scalar
//! [`LinkObjective`] and its weight in the space-wide score.
//!
//! [`Scene`]: press_propagation::Scene

use crate::basis::LinkBasis;
use crate::config::{ConfigSpace, Configuration};
use crate::objective::LinkObjective;
use crate::search::derive_stream_seed;
use crate::system::{CachedLink, PressSystem};
use press_math::Complex64;
use press_sdr::Sounder;

/// Identity of one link in a [`SmartSpace`] registry.
///
/// Ids are dense and assigned in registration order starting at 0; they
/// label per-link reports, metrics rows and CSV exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The per-link RNG stream convention of the multi-link layer.
///
/// Stream `stream` of link `id` under episode seed `seed` is
/// `derive_stream_seed(seed, id, stream + 1)` — **except** stream 0 of
/// link 0, which is `seed` itself. That carve-out makes the single-link
/// degenerate case bit-identical to the historical single-link code paths
/// (which seed their primary RNG with the bare episode seed), while every
/// other (link, stream) cell gets an independent SplitMix64-derived
/// stream. Ad-hoc mixing (`seed ^ link_id`, `seed + i`) is what the
/// `seed-stream-discipline` lint's link-stream rule rejects; this function
/// is the sanctioned spelling.
pub fn link_stream_seed(seed: u64, id: LinkId, stream: u64) -> u64 {
    if id.0 == 0 && stream == 0 {
        seed
    } else {
        derive_stream_seed(seed, id.0 as u64, stream + 1)
    }
}

/// One registered link: identity, shared caches, and its role in the
/// space-wide objective.
#[derive(Debug, Clone)]
pub struct SpaceLink {
    /// Registry identity (dense, registration order).
    pub id: LinkId,
    /// Human-readable label carried into reports and CSV exports.
    pub label: String,
    /// The cached environment trace between the link's endpoints.
    pub link: CachedLink,
    /// The per-(element, state) channel basis over the link's active
    /// subcarriers.
    pub basis: LinkBasis,
    /// The sounder (radios + numerology) used to evaluate the link.
    pub sounder: Sounder,
    /// Relative weight in the space-wide objective. Positive for links to
    /// strengthen, negative for links to suppress (interference).
    pub weight: f64,
    /// Per-link scalar objective.
    pub objective: LinkObjective,
}

/// One scene + one array + the registry of links they serve.
///
/// Environment traces and basis builds are de-duplicated per endpoint
/// pair (see the module docs); [`env_traces`](Self::env_traces) and
/// [`basis_builds`](Self::basis_builds) count the work actually done so
/// tests can assert the sharing.
#[derive(Debug, Clone)]
pub struct SmartSpace {
    system: PressSystem,
    links: Vec<SpaceLink>,
    env_traces: usize,
    basis_builds: usize,
}

/// Exact-position key of an endpoint pair (f64 bit patterns, so "same
/// place" means bitwise-identical coordinates — the only equality that is
/// safe to dedupe on).
fn pair_key(s: &Sounder) -> [u64; 6] {
    let t = s.tx.node.position;
    let r = s.rx.node.position;
    [
        t.x.to_bits(),
        t.y.to_bits(),
        t.z.to_bits(),
        r.x.to_bits(),
        r.y.to_bits(),
        r.z.to_bits(),
    ]
}

impl SmartSpace {
    /// An empty registry over a scene + array.
    pub fn new(system: PressSystem) -> SmartSpace {
        SmartSpace {
            system,
            links: Vec::new(),
            env_traces: 0,
            basis_builds: 0,
        }
    }

    /// Convenience: a space with exactly one link of weight 1.0 — the
    /// degenerate case every single-link harness reduces to.
    pub fn single(system: PressSystem, sounder: Sounder, objective: LinkObjective) -> SmartSpace {
        let mut space = SmartSpace::new(system);
        space.add_link("link", sounder, objective, 1.0);
        space
    }

    /// Registers a link and returns its [`LinkId`].
    ///
    /// The environment trace and basis build are skipped when an
    /// already-registered link shares this one's endpoint pair (and, for
    /// the basis, its frequency grid): the caches are cloned instead, so
    /// N-link setup walks the scene once per *pair*, not once per link or
    /// per (pair × strategy).
    pub fn add_link(
        &mut self,
        label: &str,
        sounder: Sounder,
        objective: LinkObjective,
        weight: f64,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        let key = pair_key(&sounder);
        let reused = self.links.iter().find(|sl| pair_key(&sl.sounder) == key);
        let link = match reused {
            Some(sl) => sl.link.clone(),
            None => {
                self.env_traces += 1;
                CachedLink::trace(
                    &self.system,
                    sounder.tx.node.clone(),
                    sounder.rx.node.clone(),
                )
            }
        };
        let basis = match reused
            .filter(|sl| sl.basis.freqs_hz() == sounder.num.active_freqs_hz().as_slice())
        {
            Some(sl) => sl.basis.clone(),
            None => {
                self.basis_builds += 1;
                LinkBasis::for_numerology(&self.system, &link, &sounder.num)
            }
        };
        self.links.push(SpaceLink {
            id,
            label: label.to_string(),
            link,
            basis,
            sounder,
            weight,
            objective,
        });
        id
    }

    /// The shared scene + array.
    pub fn system(&self) -> &PressSystem {
        &self.system
    }

    /// The registered links, in [`LinkId`] order.
    pub fn links(&self) -> &[SpaceLink] {
        &self.links
    }

    /// One link by id (panics on an unknown id — registry ids are dense).
    pub fn link(&self, id: LinkId) -> &SpaceLink {
        &self.links[id.0 as usize]
    }

    /// Number of registered links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// The shared array's configuration space.
    pub fn config_space(&self) -> ConfigSpace {
        self.system.array.config_space()
    }

    /// How many scene walks registration actually performed (one per
    /// distinct endpoint pair).
    pub fn env_traces(&self) -> usize {
        self.env_traces
    }

    /// How many basis builds registration actually performed (one per
    /// distinct endpoint pair × frequency grid).
    pub fn basis_builds(&self) -> usize {
        self.basis_builds
    }

    /// Re-derives any basis whose underlying [`CachedLink`] environment
    /// drifted since the build. Returns how many bases were refreshed.
    pub fn ensure_fresh(&mut self) -> usize {
        let mut refreshed = 0;
        for sl in &mut self.links {
            if sl.basis.ensure_fresh(&sl.link) {
                refreshed += 1;
            }
        }
        refreshed
    }

    /// Oracle (noise-free, t = 0) score of one link under a configuration,
    /// synthesized through the registry's basis.
    ///
    /// For static scenes the basis synthesis is bit-identical to summing
    /// the traced path list, so these scores match the historical
    /// path-based `JointProblem` scoring exactly.
    pub fn link_oracle_score(&self, id: LinkId, config: &Configuration) -> f64 {
        let sl = self.link(id);
        let mut h: Vec<Complex64> = Vec::with_capacity(sl.basis.n_subcarriers());
        sl.basis.synthesize_into(config, 0.0, &mut h);
        sl.objective.score(&sl.sounder.snr_from_channel(&h))
    }

    /// Per-link oracle scores of a configuration, in registry order
    /// (unweighted).
    pub fn per_link_oracle_scores(&self, config: &Configuration) -> Vec<f64> {
        self.links
            .iter()
            .map(|sl| self.link_oracle_score(sl.id, config))
            .collect()
    }

    /// Weighted space-wide oracle score: `Σ weightᵢ · objectiveᵢ(SNRᵢ)`,
    /// accumulated in registry order.
    pub fn oracle_score(&self, config: &Configuration) -> f64 {
        self.links
            .iter()
            .map(|sl| sl.weight * self.link_oracle_score(sl.id, config))
            .sum()
    }

    /// Weighted score over a subset of the registry (the grouped / hybrid
    /// scheduling building block). Links are scored in registry order
    /// regardless of the order ids appear in `ids`.
    pub fn oracle_score_of(&self, ids: &[LinkId], config: &Configuration) -> f64 {
        self.links
            .iter()
            .filter(|sl| ids.contains(&sl.id))
            .map(|sl| sl.weight * self.link_oracle_score(sl.id, config))
            .sum()
    }

    /// A reusable batch scorer over the registry — the multi-link face of
    /// [`BatchEvaluator`](crate::basis::BatchEvaluator).
    pub fn batch_scorer(&self) -> SpaceBatchScorer<'_> {
        SpaceBatchScorer::new(self)
    }
}

/// Scores batches of candidate configurations against the weighted
/// space-wide oracle objective: one [`BatchEvaluator`](crate::basis::BatchEvaluator)
/// plus one allocation-free [`snr_metric`](crate::basis::snr_metric) per
/// registered link, each batch scored
/// in a single pass over that link's basis columns.
///
/// Scores are **bitwise identical** to calling
/// [`SmartSpace::oracle_score`] (or [`SmartSpace::oracle_score_of`]) per
/// candidate: every link's batch scores equal its scalar scores bitwise
/// (the `BatchEvaluator` contract, plus [`snr_metric`](crate::basis::snr_metric) computing exactly
/// the SNR values `Sounder::snr_from_channel` produces), and the weighted
/// accumulation visits links in registry order starting from `0.0` — the
/// same fold the scalar path's iterator sum performs.
///
/// All buffers are owned by the scorer and reused across calls, so a warm
/// scorer allocates nothing per batch — ready to slot into
/// [`exhaustive_batched`](crate::search::exhaustive_batched) or
/// [`genetic_batched`](crate::search::genetic_batched) as the space-wide
/// batch objective.
pub struct SpaceBatchScorer<'a> {
    links: Vec<LinkBatchScorer<'a>>,
    /// Per-link batch scores scratch, reused across links and calls.
    link_scores: Vec<f64>,
}

/// One link's slice of a [`SpaceBatchScorer`].
struct LinkBatchScorer<'a> {
    id: LinkId,
    weight: f64,
    eval: crate::basis::BatchEvaluator<'a>,
    metric: Box<dyn FnMut(&[Complex64]) -> f64 + 'a>,
}

impl<'a> SpaceBatchScorer<'a> {
    /// A batch scorer over every link currently registered in `space`.
    pub fn new(space: &'a SmartSpace) -> Self {
        SpaceBatchScorer {
            links: space
                .links()
                .iter()
                .map(|sl| LinkBatchScorer {
                    id: sl.id,
                    weight: sl.weight,
                    eval: crate::basis::BatchEvaluator::new(&sl.basis),
                    metric: Box::new(crate::basis::snr_metric(
                        sl.sounder.snr_params(),
                        sl.objective,
                    )),
                })
                .collect(),
            link_scores: Vec::new(),
        }
    }

    /// Weighted space-wide oracle scores of a batch of candidates, one per
    /// configuration in input order (`out` is cleared first). Bitwise equal
    /// to [`SmartSpace::oracle_score`] per candidate.
    pub fn oracle_scores_into(&mut self, configs: &[Configuration], out: &mut Vec<f64>) {
        out.clear();
        out.resize(configs.len(), 0.0);
        for lb in &mut self.links {
            lb.eval
                .scores_into(configs, 0.0, &mut lb.metric, &mut self.link_scores);
            for (acc, &s) in out.iter_mut().zip(&self.link_scores) {
                *acc += lb.weight * s;
            }
        }
    }

    /// As [`oracle_scores_into`](Self::oracle_scores_into) over a subset of
    /// the registry, visiting links in registry order regardless of the
    /// order ids appear in `ids` — bitwise equal to
    /// [`SmartSpace::oracle_score_of`] per candidate.
    pub fn oracle_scores_of_into(
        &mut self,
        ids: &[LinkId],
        configs: &[Configuration],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(configs.len(), 0.0);
        for lb in &mut self.links {
            if !ids.contains(&lb.id) {
                continue;
            }
            lb.eval
                .scores_into(configs, 0.0, &mut lb.metric, &mut self.link_scores);
            for (acc, &s) in out.iter_mut().zip(&self.link_scores) {
                *acc += lb.weight * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_phy::Numerology;
    use press_propagation::{LabConfig, LabSetup, RadioNode, Vec3};
    use press_sdr::SdrRadio;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bench_space(n_clients: usize) -> SmartSpace {
        let lab = LabSetup::generate(&LabConfig::default(), 6);
        let lambda = lab.scene.wavelength();
        let mut rng = StdRng::seed_from_u64(2);
        let positions = lab.random_element_positions(3, &mut rng);
        let aim = (lab.tx.position + lab.rx.position) * 0.5;
        let array = PressArray::paper_passive_aimed(&positions, lambda, aim);
        let system = PressSystem::new(lab.scene.clone(), array);
        let num = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        let mut space = SmartSpace::new(system);
        for i in 0..n_clients {
            let rx = RadioNode::omni_at(lab.rx.position + Vec3::new(0.3 * i as f64, 1.2, 0.0));
            let s = Sounder::new(
                num.clone(),
                SdrRadio::warp(lab.tx.clone()),
                SdrRadio::warp(rx),
            );
            space.add_link(&format!("client {i}"), s, LinkObjective::MaxMinSnr, 1.0);
        }
        space
    }

    #[test]
    fn registration_assigns_dense_ids() {
        let space = bench_space(3);
        assert_eq!(space.n_links(), 3);
        for (i, sl) in space.links().iter().enumerate() {
            assert_eq!(sl.id, LinkId(i as u32));
        }
    }

    #[test]
    fn n_link_setup_traces_once_per_endpoint_pair() {
        // Three distinct pairs: three traces, three basis builds.
        let space = bench_space(3);
        assert_eq!(space.env_traces(), 3);
        assert_eq!(space.basis_builds(), 3);

        // Re-registering an existing pair (a second objective on the same
        // endpoints) must not walk the scene or rebuild the basis.
        let mut space = bench_space(3);
        let dup = space.links()[1].sounder.clone();
        space.add_link("dup objective", dup, LinkObjective::Flatness, -1.0);
        assert_eq!(space.n_links(), 4);
        assert_eq!(space.env_traces(), 3, "duplicate pair must not re-trace");
        assert_eq!(space.basis_builds(), 3, "duplicate pair must not rebuild");
        // The clone really is the same trace.
        assert_eq!(
            space.links()[3].link.environment.len(),
            space.links()[1].link.environment.len()
        );
    }

    #[test]
    fn weighted_score_is_weighted_sum_of_per_link_scores() {
        let mut space = bench_space(2);
        space.links[1].weight = -0.5;
        let config = Configuration::zeros(3);
        let per = space.per_link_oracle_scores(&config);
        let total = space.oracle_score(&config);
        assert!((total - (per[0] - 0.5 * per[1])).abs() < 1e-12);
    }

    #[test]
    fn subset_score_covers_exactly_the_subset() {
        let space = bench_space(3);
        let config = Configuration::zeros(3);
        let per = space.per_link_oracle_scores(&config);
        let sub = space.oracle_score_of(&[LinkId(0), LinkId(2)], &config);
        assert!((sub - (per[0] + per[2])).abs() < 1e-12);
        let all: Vec<LinkId> = space.links().iter().map(|sl| sl.id).collect();
        assert_eq!(
            space.oracle_score_of(&all, &config),
            space.oracle_score(&config)
        );
    }

    #[test]
    fn basis_scoring_matches_path_scoring_bitwise() {
        // The registry scores through the basis; the historical joint
        // layer scored through the traced path list. Static scenes make
        // the two bit-identical.
        let space = bench_space(2);
        let config = Configuration::new(vec![1, 2, 0]);
        for sl in space.links() {
            let via_basis = space.link_oracle_score(sl.id, &config);
            let via_paths = sl.objective.score(
                &sl.sounder
                    .oracle_snr(&sl.link.paths(space.system(), &config), 0.0),
            );
            assert_eq!(via_basis, via_paths, "link {}", sl.id);
        }
    }

    #[test]
    fn link_stream_seed_degenerate_case_is_the_bare_seed() {
        assert_eq!(link_stream_seed(42, LinkId(0), 0), 42);
        // Every other cell is an independent derived stream.
        let cells = [
            link_stream_seed(42, LinkId(0), 1),
            link_stream_seed(42, LinkId(1), 0),
            link_stream_seed(42, LinkId(1), 1),
            link_stream_seed(42, LinkId(2), 0),
        ];
        for (i, a) in cells.iter().enumerate() {
            assert_ne!(*a, 42u64, "cell {i} collided with the bare seed");
            for b in &cells[i + 1..] {
                assert_ne!(a, b, "derived streams collided");
            }
        }
    }

    #[test]
    fn batch_scorer_matches_oracle_score_bitwise() {
        let mut space = bench_space(3);
        space.links[1].weight = -0.5;
        space.links[2].weight = 2.0;
        let sp = space.config_space();
        let configs: Vec<Configuration> = (0..sp.size()).map(|i| sp.config_at(i)).collect();
        let mut scorer = space.batch_scorer();
        let mut out = Vec::new();
        // Odd batch sizes exercise ragged final chunks.
        for chunk in configs.chunks(7) {
            scorer.oracle_scores_into(chunk, &mut out);
            assert_eq!(out.len(), chunk.len());
            for (c, &s) in chunk.iter().zip(&out) {
                assert_eq!(s, space.oracle_score(c), "config {:?}", c.states);
            }
        }
    }

    #[test]
    fn batch_scorer_subset_matches_oracle_score_of_bitwise() {
        let space = bench_space(3);
        let sp = space.config_space();
        let configs: Vec<Configuration> = (0..16).map(|i| sp.config_at(i * 3)).collect();
        let mut scorer = space.batch_scorer();
        let mut out = Vec::new();
        // Ids deliberately out of registry order: scoring must still visit
        // links in registry order.
        let ids = [LinkId(2), LinkId(0)];
        scorer.oracle_scores_of_into(&ids, &configs, &mut out);
        for (c, &s) in configs.iter().zip(&out) {
            assert_eq!(s, space.oracle_score_of(&ids, c), "config {:?}", c.states);
        }
    }

    #[test]
    fn ensure_fresh_refreshes_drifted_bases() {
        use press_propagation::fading::ChannelDrift;
        let mut space = bench_space(2);
        assert_eq!(space.ensure_fresh(), 0, "fresh registry needs no work");
        let mut rng = StdRng::seed_from_u64(9);
        let drift = ChannelDrift::quiet_lab();
        space.links[0].link.apply_drift(&drift, &mut rng);
        assert_eq!(
            space.ensure_fresh(),
            1,
            "exactly the drifted link refreshes"
        );
        assert_eq!(space.ensure_fresh(), 0);
    }
}
