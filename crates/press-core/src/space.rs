//! `SmartSpace`: the multi-link deployment layer.
//!
//! The paper's third application — network harmonization / spatial
//! partitioning (§2) — is inherently *multi-link*: one PRESS array
//! conditioning several co-channel links at once. This module makes "a
//! space full of links" the unit of operation: one [`Scene`] + one
//! [`PressArray`](crate::array::PressArray) + a registry mapping
//! [`LinkId`] to the link's endpoints, cached environment trace
//! ([`CachedLink`]), channel basis ([`LinkBasis`]), sounder, objective and
//! weight.
//!
//! What is **shared** across the registry:
//!
//! * the scene and the array (there is one physical room and one surface);
//! * the environment trace per *endpoint pair* — registering two links
//!   between the same endpoints (different objectives, say) re-uses the
//!   first trace instead of walking the scene again, and every scheduler /
//!   controller strategy operating on the space re-uses the registry's
//!   traces instead of re-tracing per strategy as `press_core::joint` used
//!   to;
//! * the per-(element, state) basis geometry per (endpoint pair,
//!   frequency grid) — the expensive `O((L + ΣMᵢ)·K)` basis build is done
//!   once per distinct pair/grid and cloned for duplicates.
//!
//! What is **per-link**: the sounder (radios + numerology), the scalar
//! [`LinkObjective`] and its weight in the space-wide score.
//!
//! [`Scene`]: press_propagation::Scene

use crate::basis::LinkBasis;
use crate::config::{ConfigSpace, Configuration};
use crate::objective::LinkObjective;
use crate::search::derive_stream_seed;
use crate::system::{CachedLink, PressSystem};
use press_math::Complex64;
use press_phy::snr::SnrProfile;
use press_propagation::RadioNode;
use press_sdr::Sounder;

/// Identity of one link in a [`SmartSpace`] registry.
///
/// Ids are assigned in registration order starting at 0 and are **stable
/// across churn**: removing a link never renumbers the others, and a
/// departed id is never reissued. They label per-link reports, metrics
/// rows and CSV exports. Resolution from id to registry slot goes through
/// the space's id→index map — never index `links()[id.0]` directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The per-link RNG stream convention of the multi-link layer.
///
/// Stream `stream` of link `id` under episode seed `seed` is
/// `derive_stream_seed(seed, id, stream + 1)` — **except** stream 0 of
/// link 0, which is `seed` itself. That carve-out makes the single-link
/// degenerate case bit-identical to the historical single-link code paths
/// (which seed their primary RNG with the bare episode seed), while every
/// other (link, stream) cell gets an independent SplitMix64-derived
/// stream. Ad-hoc mixing (`seed ^ link_id`, `seed + i`) is what the
/// `seed-stream-discipline` lint's link-stream rule rejects; this function
/// is the sanctioned spelling.
pub fn link_stream_seed(seed: u64, id: LinkId, stream: u64) -> u64 {
    if id.0 == 0 && stream == 0 {
        seed
    } else {
        derive_stream_seed(seed, id.0 as u64, stream + 1)
    }
}

/// One registered link: identity, shared caches, and its role in the
/// space-wide objective.
#[derive(Debug, Clone)]
pub struct SpaceLink {
    /// Registry identity: issued in registration order, stable across
    /// churn, never reissued (ids of removed links stay retired).
    pub id: LinkId,
    /// Human-readable label carried into reports and CSV exports.
    pub label: String,
    /// The cached environment trace between the link's endpoints.
    pub link: CachedLink,
    /// The per-(element, state) channel basis over the link's active
    /// subcarriers.
    pub basis: LinkBasis,
    /// The sounder (radios + numerology) used to evaluate the link.
    pub sounder: Sounder,
    /// Relative weight in the space-wide objective. Positive for links to
    /// strengthen, negative for links to suppress (interference).
    pub weight: f64,
    /// Per-link scalar objective.
    pub objective: LinkObjective,
}

/// One scene + one array + the registry of links they serve.
///
/// Environment traces and basis builds are de-duplicated per endpoint
/// pair (see the module docs); [`env_traces`](Self::env_traces) and
/// [`basis_builds`](Self::basis_builds) count the work actually done so
/// tests can assert the sharing.
///
/// The registry survives **churn**: [`remove_link`](Self::remove_link)
/// keeps every other id stable (the id→index map absorbs the shift), and
/// the departed link's environment trace + basis are stashed in a pair
/// cache so re-association to a known endpoint pair clones them back
/// instead of re-walking the scene. Invalidation stays *incremental*: a
/// cached basis carries the [`CachedLink::revision`] it was built from,
/// so only entries whose environment actually drifted are re-derived
/// (by [`ensure_fresh`](Self::ensure_fresh)) — never the whole space.
#[derive(Debug, Clone)]
pub struct SmartSpace {
    system: PressSystem,
    /// Live links, ascending by id (removal preserves order, ids are
    /// issued monotonically).
    links: Vec<SpaceLink>,
    /// id.0 → dense index into `links`; `None` once the id departed.
    /// `index.len()` is the next id to issue.
    index: Vec<Option<usize>>,
    /// Traces + bases of departed endpoint pairs, for re-association.
    pair_cache: Vec<PairEntry>,
    env_traces: usize,
    basis_builds: usize,
}

/// One departed endpoint pair's reusable caches.
#[derive(Debug, Clone)]
struct PairEntry {
    key: [u64; 6],
    link: CachedLink,
    /// One basis per frequency grid this pair was ever sounded on.
    bases: Vec<(Vec<f64>, LinkBasis)>,
}

/// Exact-position key of an endpoint pair (f64 bit patterns, so "same
/// place" means bitwise-identical coordinates — the only equality that is
/// safe to dedupe on).
fn pair_key(s: &Sounder) -> [u64; 6] {
    let t = s.tx.node.position;
    let r = s.rx.node.position;
    [
        t.x.to_bits(),
        t.y.to_bits(),
        t.z.to_bits(),
        r.x.to_bits(),
        r.y.to_bits(),
        r.z.to_bits(),
    ]
}

impl SmartSpace {
    /// An empty registry over a scene + array.
    pub fn new(system: PressSystem) -> SmartSpace {
        SmartSpace {
            system,
            links: Vec::new(),
            index: Vec::new(),
            pair_cache: Vec::new(),
            env_traces: 0,
            basis_builds: 0,
        }
    }

    /// Convenience: a space with exactly one link of weight 1.0 — the
    /// degenerate case every single-link harness reduces to.
    pub fn single(system: PressSystem, sounder: Sounder, objective: LinkObjective) -> SmartSpace {
        let mut space = SmartSpace::new(system);
        space.add_link("link", sounder, objective, 1.0);
        space
    }

    /// Assembles the campus deployment: one PRESS array spanning every
    /// doorway candidate (paper passive elements aimed at the candidates'
    /// centroid), one WARP AP→client link per campus client on the
    /// campus carrier's Wi-Fi 20 MHz grid, weight 1.0, labelled
    /// `f<floor> r<room> c<client>`. Registration runs in (floor, room,
    /// client) order, so ids follow
    /// [`Campus::links`](press_propagation::Campus::links) order.
    pub fn campus(campus: &press_propagation::Campus, objective: LinkObjective) -> SmartSpace {
        use crate::array::PressArray;
        use press_propagation::Vec3;
        use press_sdr::SdrRadio;

        let lambda = campus.scene.wavelength();
        let n = campus.doorway_candidates.len().max(1) as f64;
        let mut centroid = Vec3::new(0.0, 0.0, 0.0);
        for p in &campus.doorway_candidates {
            centroid = centroid + *p;
        }
        let aim = centroid * (1.0 / n);
        let array = PressArray::paper_passive_aimed(&campus.doorway_candidates, lambda, aim);
        let system = PressSystem::new(campus.scene.clone(), array);
        let num = press_phy::Numerology::wifi20(campus.scene.carrier_hz);
        let mut space = SmartSpace::new(system);
        for room in &campus.rooms {
            for (ci, client) in room.clients.iter().enumerate() {
                let s = Sounder::new(
                    num.clone(),
                    SdrRadio::warp(room.ap.clone()),
                    SdrRadio::warp(client.clone()),
                );
                space.add_link(
                    &format!("f{} r{} c{}", room.floor, room.room, ci),
                    s,
                    objective,
                    1.0,
                );
            }
        }
        space
    }

    /// Registers a link and returns its [`LinkId`].
    ///
    /// The environment trace and basis build are skipped when an
    /// already-registered link shares this one's endpoint pair (and, for
    /// the basis, its frequency grid): the caches are cloned instead, so
    /// N-link setup walks the scene once per *pair*, not once per link or
    /// per (pair × strategy). A departed pair's caches survive in the
    /// pair cache, so re-association to a known pair is just as cheap —
    /// `env_traces`/`basis_builds` do not grow.
    ///
    /// A live link takes precedence over the pair cache (it carries any
    /// drift applied since the cached copy was stashed).
    pub fn add_link(
        &mut self,
        label: &str,
        sounder: Sounder,
        objective: LinkObjective,
        weight: f64,
    ) -> LinkId {
        let id = LinkId(self.index.len() as u32);
        let key = pair_key(&sounder);
        let reused = self.links.iter().find(|sl| pair_key(&sl.sounder) == key);
        let cached = match reused {
            Some(_) => None,
            None => self.pair_cache.iter().find(|e| e.key == key),
        };
        let link = match (reused, cached) {
            (Some(sl), _) => sl.link.clone(),
            (None, Some(e)) => e.link.clone(),
            (None, None) => {
                self.env_traces += 1;
                CachedLink::trace(
                    &self.system,
                    sounder.tx.node.clone(),
                    sounder.rx.node.clone(),
                )
            }
        };
        let freqs = sounder.num.active_freqs_hz();
        let live_basis = reused.filter(|sl| sl.basis.freqs_hz() == freqs.as_slice());
        let cached_basis = cached.and_then(|e| {
            e.bases
                .iter()
                .find(|(f, _)| f.as_slice() == freqs.as_slice())
        });
        let basis = match (live_basis, cached_basis) {
            (Some(sl), _) => sl.basis.clone(),
            (None, Some((_, b))) => b.clone(),
            (None, None) => {
                self.basis_builds += 1;
                LinkBasis::for_numerology(&self.system, &link, &sounder.num)
            }
        };
        self.index.push(Some(self.links.len()));
        self.links.push(SpaceLink {
            id,
            label: label.to_string(),
            link,
            basis,
            sounder,
            weight,
            objective,
        });
        id
    }

    /// Deregisters a link, returning it. Every other id stays valid and
    /// keeps its registry order; the departed id is never reissued.
    ///
    /// The link's environment trace and basis move into the pair cache,
    /// so a later re-association to the same endpoint pair (a client
    /// roaming back, say) clones them instead of re-walking the scene. A
    /// cached basis keeps the `CachedLink` revision it was built from, so
    /// staleness is detected per entry (`ensure_fresh`), not by flushing
    /// the space. Panics on an unknown or already-removed id.
    pub fn remove_link(&mut self, id: LinkId) -> SpaceLink {
        let idx = self
            .index
            .get(id.0 as usize)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("link {id} is not registered (unknown or removed)")); // press-lint: allow(panic-freedom) — documented contract; try_link is the non-panicking form
        let sl = self.links.remove(idx);
        self.index[id.0 as usize] = None;
        for (i, live) in self.links.iter().enumerate().skip(idx) {
            self.index[live.id.0 as usize] = Some(i);
        }
        let key = pair_key(&sl.sounder);
        let freqs = sl.basis.freqs_hz().to_vec();
        match self.pair_cache.iter_mut().find(|e| e.key == key) {
            Some(e) => {
                e.link = sl.link.clone();
                match e.bases.iter_mut().find(|(f, _)| f == &freqs) {
                    Some((_, b)) => b.clone_from(&sl.basis),
                    None => e.bases.push((freqs, sl.basis.clone())),
                }
            }
            None => self.pair_cache.push(PairEntry {
                key,
                link: sl.link.clone(),
                bases: vec![(freqs, sl.basis.clone())],
            }),
        }
        sl
    }

    /// Re-associates a link at a new client endpoint: deregisters `id`
    /// and registers the same label / radios / numerology / objective /
    /// weight against `to`, returning the fresh id. The node's velocity
    /// carries into the new sounder, so a roaming client keeps its
    /// Doppler signature.
    pub fn roam_link(&mut self, id: LinkId, to: RadioNode) -> LinkId {
        let old = self.remove_link(id);
        let mut sounder = old.sounder;
        sounder.rx.node = to;
        self.add_link(&old.label, sounder, old.objective, old.weight)
    }

    /// The shared scene + array.
    pub fn system(&self) -> &PressSystem {
        &self.system
    }

    /// The registered links, in [`LinkId`] order. Under churn the ids are
    /// ascending but not necessarily dense — resolve ids through
    /// [`link`](Self::link) / [`try_link`](Self::try_link), not by
    /// indexing this slice with `id.0`.
    pub fn links(&self) -> &[SpaceLink] {
        &self.links
    }

    /// The live link ids, ascending.
    pub fn link_ids(&self) -> Vec<LinkId> {
        self.links.iter().map(|sl| sl.id).collect()
    }

    /// One link by id, resolved through the id→index map. Ids stay valid
    /// across removal of *other* links; panics on an id that was never
    /// issued or has been removed (see [`try_link`](Self::try_link) for
    /// the non-panicking form).
    pub fn link(&self, id: LinkId) -> &SpaceLink {
        self.try_link(id)
            // press-lint: allow(panic-freedom) — documented contract; try_link is the non-panicking form
            .unwrap_or_else(|| panic!("link {id} is not registered (unknown or removed)"))
    }

    /// One link by id, or `None` for an unknown / removed id.
    pub fn try_link(&self, id: LinkId) -> Option<&SpaceLink> {
        let idx = self.index.get(id.0 as usize).copied().flatten()?;
        Some(&self.links[idx])
    }

    /// Number of registered links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// The shared array's configuration space.
    pub fn config_space(&self) -> ConfigSpace {
        self.system.array.config_space()
    }

    /// How many scene walks registration actually performed (one per
    /// distinct endpoint pair).
    pub fn env_traces(&self) -> usize {
        self.env_traces
    }

    /// How many basis builds registration actually performed (one per
    /// distinct endpoint pair × frequency grid).
    pub fn basis_builds(&self) -> usize {
        self.basis_builds
    }

    /// Re-derives any basis whose underlying [`CachedLink`] environment
    /// drifted since the build. Returns how many bases were refreshed.
    pub fn ensure_fresh(&mut self) -> usize {
        let mut refreshed = 0;
        for sl in &mut self.links {
            if sl.basis.ensure_fresh(&sl.link) {
                refreshed += 1;
            }
        }
        refreshed
    }

    /// Oracle (noise-free, t = 0) score of one link under a configuration,
    /// synthesized through the registry's basis.
    ///
    /// For static scenes the basis synthesis is bit-identical to summing
    /// the traced path list, so these scores match the historical
    /// path-based `JointProblem` scoring exactly.
    pub fn link_oracle_score(&self, id: LinkId, config: &Configuration) -> f64 {
        self.link_oracle_score_scratch(id, config, &mut SpaceScratch::new())
    }

    /// [`link_oracle_score`](Self::link_oracle_score) over a caller-owned
    /// [`SpaceScratch`]: the synthesis buffer lives in the arena, so a
    /// warm scoring loop allocates nothing per call. Bit-identical to the
    /// plain entry point.
    pub fn link_oracle_score_scratch(
        &self,
        id: LinkId,
        config: &Configuration,
        scratch: &mut SpaceScratch,
    ) -> f64 {
        let sl = self.link(id);
        score_space_link(sl, config, scratch)
    }

    /// Per-link oracle scores of a configuration, in registry order
    /// (unweighted).
    pub fn per_link_oracle_scores(&self, config: &Configuration) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.links.len());
        self.per_link_oracle_scores_into(config, &mut SpaceScratch::new(), &mut out);
        out
    }

    /// [`per_link_oracle_scores`](Self::per_link_oracle_scores) into
    /// caller-owned buffers (`out` is cleared first). Allocation-free
    /// when warm, bit-identical to the plain entry point.
    pub fn per_link_oracle_scores_into(
        &self,
        config: &Configuration,
        scratch: &mut SpaceScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        for sl in &self.links {
            out.push(score_space_link(sl, config, scratch));
        }
    }

    /// Weighted space-wide oracle score: `Σ weightᵢ · objectiveᵢ(SNRᵢ)`,
    /// accumulated in registry order.
    pub fn oracle_score(&self, config: &Configuration) -> f64 {
        self.oracle_score_scratch(config, &mut SpaceScratch::new())
    }

    /// [`oracle_score`](Self::oracle_score) over a caller-owned
    /// [`SpaceScratch`] — the inner-loop spelling every scalar searcher
    /// threads its arena through. Bit-identical to the plain entry point.
    pub fn oracle_score_scratch(&self, config: &Configuration, scratch: &mut SpaceScratch) -> f64 {
        let mut acc = 0.0;
        for sl in &self.links {
            acc += sl.weight * score_space_link(sl, config, scratch);
        }
        acc
    }

    /// Weighted score over a subset of the registry (the grouped / hybrid
    /// scheduling building block). Links are scored in registry order
    /// regardless of the order ids appear in `ids`; duplicate ids count
    /// once and unknown / removed ids are ignored.
    pub fn oracle_score_of(&self, ids: &[LinkId], config: &Configuration) -> f64 {
        self.oracle_score_of_scratch(ids, config, &mut SpaceScratch::new())
    }

    /// [`oracle_score_of`](Self::oracle_score_of) over a caller-owned
    /// [`SpaceScratch`]. Ids resolve through the id→index map into a
    /// sorted dense-index list (`O((L_sub) log L_sub)`) instead of the
    /// historical `O(links × ids)` membership scan; the visit order is
    /// still registry order, so scores are bit-identical.
    pub fn oracle_score_of_scratch(
        &self,
        ids: &[LinkId],
        config: &Configuration,
        scratch: &mut SpaceScratch,
    ) -> f64 {
        scratch.idx.clear();
        for id in ids {
            if let Some(i) = self.index.get(id.0 as usize).copied().flatten() {
                scratch.idx.push(i);
            }
        }
        scratch.idx.sort_unstable();
        scratch.idx.dedup();
        let mut acc = 0.0;
        for k in 0..scratch.idx.len() {
            let sl = &self.links[scratch.idx[k]];
            acc += sl.weight * score_space_link(sl, config, scratch);
        }
        acc
    }

    /// A reusable batch scorer over the registry — the multi-link face of
    /// [`BatchEvaluator`](crate::basis::BatchEvaluator).
    pub fn batch_scorer(&self) -> SpaceBatchScorer<'_> {
        SpaceBatchScorer::new(self)
    }

    /// Applies one churn event to the registry, returning the affected
    /// link's id: the freshly issued id for `Associate` / `Roam`, the
    /// departed id for `Leave`.
    pub fn apply_churn(&mut self, event: &ChurnEvent) -> LinkId {
        match event {
            ChurnEvent::Associate {
                label,
                sounder,
                objective,
                weight,
            } => self.add_link(label, sounder.clone(), *objective, *weight),
            ChurnEvent::Roam { id, to } => self.roam_link(*id, to.clone()),
            ChurnEvent::Leave { id } => self.remove_link(*id).id,
        }
    }
}

/// Caller-owned scratch arena for the scalar space-scoring loops — the
/// multi-link sibling of [`SearchScratch`](crate::search::SearchScratch).
///
/// `link_oracle_score` used to allocate a fresh synthesis buffer per
/// call, which meant N allocations per candidate inside every scalar
/// search loop. The `*_scratch` entry points thread this arena through
/// instead: buffers grow on first use and are reused from then on. The
/// plain entry points construct a temporary arena and stay bit-identical
/// — the arena changes where bytes live, never which values are computed
/// or in what order.
#[derive(Debug, Default)]
pub struct SpaceScratch {
    /// Channel synthesis buffer (one link's `H[k]` at a time).
    h: Vec<Complex64>,
    /// Resolved dense-index buffer for subset scoring.
    idx: Vec<usize>,
    /// Reusable SNR profile (one link's per-subcarrier SNR at a time).
    snr: SnrProfile,
}

impl SpaceScratch {
    /// An empty arena; buffers grow to the registry's working-set size on
    /// first use.
    pub fn new() -> Self {
        SpaceScratch::default()
    }
}

/// Scores one registered link under `config` through the arena's
/// synthesis buffer — the shared kernel of every scalar scoring entry
/// point.
fn score_space_link(sl: &SpaceLink, config: &Configuration, scratch: &mut SpaceScratch) -> f64 {
    sl.basis.synthesize_into(config, 0.0, &mut scratch.h);
    sl.sounder
        .snr_from_channel_into(&scratch.h, &mut scratch.snr);
    sl.objective.score(&scratch.snr)
}

/// One event in a churn schedule: the association dynamics of a campus —
/// clients arriving, roaming between rooms (carrying their Doppler
/// velocity), and leaving. Applied by [`SmartSpace::apply_churn`] and
/// replayed deterministically by the controller's churn episodes.
// Associate carries a whole Sounder; events are rare schedule data (a
// handful per episode), so the size skew never matters and boxing would
// only complicate construction.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ChurnEvent {
    /// A new client associates: register a link.
    Associate {
        /// Label for reports and CSV exports.
        label: String,
        /// The new link's sounder (radios + numerology).
        sounder: Sounder,
        /// Per-link scalar objective.
        objective: LinkObjective,
        /// Weight in the space-wide objective.
        weight: f64,
    },
    /// An existing client re-associates at a new endpoint (same radios,
    /// numerology, objective and weight; fresh id). The node's velocity
    /// is the Doppler mobility input.
    Roam {
        /// The link to re-associate.
        id: LinkId,
        /// The client's new endpoint node (position + velocity).
        to: RadioNode,
    },
    /// A client leaves: deregister its link.
    Leave {
        /// The link to deregister.
        id: LinkId,
    },
}

/// Scores batches of candidate configurations against the weighted
/// space-wide oracle objective: one [`BatchEvaluator`](crate::basis::BatchEvaluator)
/// plus one allocation-free [`snr_metric`](crate::basis::snr_metric) per
/// registered link, each batch scored
/// in a single pass over that link's basis columns.
///
/// Scores are **bitwise identical** to calling
/// [`SmartSpace::oracle_score`] (or [`SmartSpace::oracle_score_of`]) per
/// candidate: every link's batch scores equal its scalar scores bitwise
/// (the `BatchEvaluator` contract, plus [`snr_metric`](crate::basis::snr_metric) computing exactly
/// the SNR values `Sounder::snr_from_channel` produces), and the weighted
/// accumulation visits links in registry order starting from `0.0` — the
/// same fold the scalar path's iterator sum performs.
///
/// All buffers are owned by the scorer and reused across calls, so a warm
/// scorer allocates nothing per batch — ready to slot into
/// [`exhaustive_batched`](crate::search::exhaustive_batched) or
/// [`genetic_batched`](crate::search::genetic_batched) as the space-wide
/// batch objective.
pub struct SpaceBatchScorer<'a> {
    links: Vec<LinkBatchScorer<'a>>,
    /// Per-link batch scores scratch, reused across links and calls.
    link_scores: Vec<f64>,
    /// Sorted subset-id scratch, reused across calls.
    wanted: Vec<u32>,
}

/// Boxed per-link batch metric: channel samples in, objective score out.
type BatchMetric<'a> = Box<dyn FnMut(&[Complex64]) -> f64 + 'a>;

/// One link's slice of a [`SpaceBatchScorer`].
struct LinkBatchScorer<'a> {
    id: LinkId,
    weight: f64,
    eval: crate::basis::BatchEvaluator<'a>,
    metric: BatchMetric<'a>,
}

impl<'a> SpaceBatchScorer<'a> {
    /// A batch scorer over every link currently registered in `space`.
    pub fn new(space: &'a SmartSpace) -> Self {
        SpaceBatchScorer {
            links: space
                .links()
                .iter()
                .map(|sl| LinkBatchScorer {
                    id: sl.id,
                    weight: sl.weight,
                    eval: crate::basis::BatchEvaluator::new(&sl.basis),
                    metric: Box::new(crate::basis::snr_metric(
                        sl.sounder.snr_params(),
                        sl.objective,
                    )),
                })
                .collect(),
            link_scores: Vec::new(),
            wanted: Vec::new(),
        }
    }

    /// Weighted space-wide oracle scores of a batch of candidates, one per
    /// configuration in input order (`out` is cleared first). Bitwise equal
    /// to [`SmartSpace::oracle_score`] per candidate.
    pub fn oracle_scores_into(&mut self, configs: &[Configuration], out: &mut Vec<f64>) {
        out.clear();
        out.resize(configs.len(), 0.0);
        for lb in &mut self.links {
            lb.eval
                .scores_into(configs, 0.0, &mut lb.metric, &mut self.link_scores);
            for (acc, &s) in out.iter_mut().zip(&self.link_scores) {
                *acc += lb.weight * s;
            }
        }
    }

    /// As [`oracle_scores_into`](Self::oracle_scores_into) over a subset of
    /// the registry, visiting links in registry order regardless of the
    /// order ids appear in `ids` — bitwise equal to
    /// [`SmartSpace::oracle_score_of`] per candidate. Membership is a
    /// binary search over a sorted scratch copy of `ids`, not a linear
    /// scan per link.
    pub fn oracle_scores_of_into(
        &mut self,
        ids: &[LinkId],
        configs: &[Configuration],
        out: &mut Vec<f64>,
    ) {
        self.wanted.clear();
        self.wanted.extend(ids.iter().map(|id| id.0));
        self.wanted.sort_unstable();
        self.wanted.dedup();
        out.clear();
        out.resize(configs.len(), 0.0);
        for lb in &mut self.links {
            if self.wanted.binary_search(&lb.id.0).is_err() {
                continue;
            }
            lb.eval
                .scores_into(configs, 0.0, &mut lb.metric, &mut self.link_scores);
            for (acc, &s) in out.iter_mut().zip(&self.link_scores) {
                *acc += lb.weight * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PressArray;
    use press_math::consts::WIFI_CHANNEL_11_HZ;
    use press_phy::Numerology;
    use press_propagation::{LabConfig, LabSetup, RadioNode, Vec3};
    use press_sdr::SdrRadio;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bench_space(n_clients: usize) -> SmartSpace {
        let lab = LabSetup::generate(&LabConfig::default(), 6);
        let lambda = lab.scene.wavelength();
        let mut rng = StdRng::seed_from_u64(2);
        let positions = lab.random_element_positions(3, &mut rng);
        let aim = (lab.tx.position + lab.rx.position) * 0.5;
        let array = PressArray::paper_passive_aimed(&positions, lambda, aim);
        let system = PressSystem::new(lab.scene.clone(), array);
        let num = Numerology::wifi20(WIFI_CHANNEL_11_HZ);
        let mut space = SmartSpace::new(system);
        for i in 0..n_clients {
            let rx = RadioNode::omni_at(lab.rx.position + Vec3::new(0.3 * i as f64, 1.2, 0.0));
            let s = Sounder::new(
                num.clone(),
                SdrRadio::warp(lab.tx.clone()),
                SdrRadio::warp(rx),
            );
            space.add_link(&format!("client {i}"), s, LinkObjective::MaxMinSnr, 1.0);
        }
        space
    }

    #[test]
    fn registration_assigns_dense_ids() {
        let space = bench_space(3);
        assert_eq!(space.n_links(), 3);
        for (i, sl) in space.links().iter().enumerate() {
            assert_eq!(sl.id, LinkId(i as u32));
        }
    }

    #[test]
    fn n_link_setup_traces_once_per_endpoint_pair() {
        // Three distinct pairs: three traces, three basis builds.
        let space = bench_space(3);
        assert_eq!(space.env_traces(), 3);
        assert_eq!(space.basis_builds(), 3);

        // Re-registering an existing pair (a second objective on the same
        // endpoints) must not walk the scene or rebuild the basis.
        let mut space = bench_space(3);
        let dup = space.links()[1].sounder.clone();
        space.add_link("dup objective", dup, LinkObjective::Flatness, -1.0);
        assert_eq!(space.n_links(), 4);
        assert_eq!(space.env_traces(), 3, "duplicate pair must not re-trace");
        assert_eq!(space.basis_builds(), 3, "duplicate pair must not rebuild");
        // The clone really is the same trace.
        assert_eq!(
            space.links()[3].link.environment.len(),
            space.links()[1].link.environment.len()
        );
    }

    #[test]
    fn weighted_score_is_weighted_sum_of_per_link_scores() {
        let mut space = bench_space(2);
        space.links[1].weight = -0.5;
        let config = Configuration::zeros(3);
        let per = space.per_link_oracle_scores(&config);
        let total = space.oracle_score(&config);
        assert!((total - (per[0] - 0.5 * per[1])).abs() < 1e-12);
    }

    #[test]
    fn subset_score_covers_exactly_the_subset() {
        let space = bench_space(3);
        let config = Configuration::zeros(3);
        let per = space.per_link_oracle_scores(&config);
        let sub = space.oracle_score_of(&[LinkId(0), LinkId(2)], &config);
        assert!((sub - (per[0] + per[2])).abs() < 1e-12);
        let all: Vec<LinkId> = space.links().iter().map(|sl| sl.id).collect();
        assert_eq!(
            space.oracle_score_of(&all, &config),
            space.oracle_score(&config)
        );
    }

    #[test]
    fn basis_scoring_matches_path_scoring_bitwise() {
        // The registry scores through the basis; the historical joint
        // layer scored through the traced path list. Static scenes make
        // the two bit-identical.
        let space = bench_space(2);
        let config = Configuration::new(vec![1, 2, 0]);
        for sl in space.links() {
            let via_basis = space.link_oracle_score(sl.id, &config);
            let via_paths = sl.objective.score(
                &sl.sounder
                    .oracle_snr(&sl.link.paths(space.system(), &config), 0.0),
            );
            assert_eq!(via_basis, via_paths, "link {}", sl.id);
        }
    }

    #[test]
    fn link_stream_seed_degenerate_case_is_the_bare_seed() {
        assert_eq!(link_stream_seed(42, LinkId(0), 0), 42);
        // Every other cell is an independent derived stream.
        let cells = [
            link_stream_seed(42, LinkId(0), 1),
            link_stream_seed(42, LinkId(1), 0),
            link_stream_seed(42, LinkId(1), 1),
            link_stream_seed(42, LinkId(2), 0),
        ];
        for (i, a) in cells.iter().enumerate() {
            assert_ne!(*a, 42u64, "cell {i} collided with the bare seed");
            for b in &cells[i + 1..] {
                assert_ne!(a, b, "derived streams collided");
            }
        }
    }

    #[test]
    fn batch_scorer_matches_oracle_score_bitwise() {
        let mut space = bench_space(3);
        space.links[1].weight = -0.5;
        space.links[2].weight = 2.0;
        let sp = space.config_space();
        let configs: Vec<Configuration> = (0..sp.size()).map(|i| sp.config_at(i)).collect();
        let mut scorer = space.batch_scorer();
        let mut out = Vec::new();
        // Odd batch sizes exercise ragged final chunks.
        for chunk in configs.chunks(7) {
            scorer.oracle_scores_into(chunk, &mut out);
            assert_eq!(out.len(), chunk.len());
            for (c, &s) in chunk.iter().zip(&out) {
                assert_eq!(s, space.oracle_score(c), "config {:?}", c.states);
            }
        }
    }

    #[test]
    fn batch_scorer_subset_matches_oracle_score_of_bitwise() {
        let space = bench_space(3);
        let sp = space.config_space();
        let configs: Vec<Configuration> = (0..16).map(|i| sp.config_at(i * 3)).collect();
        let mut scorer = space.batch_scorer();
        let mut out = Vec::new();
        // Ids deliberately out of registry order: scoring must still visit
        // links in registry order.
        let ids = [LinkId(2), LinkId(0)];
        scorer.oracle_scores_of_into(&ids, &configs, &mut out);
        for (c, &s) in configs.iter().zip(&out) {
            assert_eq!(s, space.oracle_score_of(&ids, c), "config {:?}", c.states);
        }
    }

    #[test]
    fn ensure_fresh_refreshes_drifted_bases() {
        use press_propagation::fading::ChannelDrift;
        let mut space = bench_space(2);
        assert_eq!(space.ensure_fresh(), 0, "fresh registry needs no work");
        let mut rng = StdRng::seed_from_u64(9);
        let drift = ChannelDrift::quiet_lab();
        space.links[0].link.apply_drift(&drift, &mut rng);
        assert_eq!(
            space.ensure_fresh(),
            1,
            "exactly the drifted link refreshes"
        );
        assert_eq!(space.ensure_fresh(), 0);
    }

    #[test]
    fn removal_keeps_ids_stable_and_never_reissues() {
        let mut space = bench_space(3);
        let gone = space.remove_link(LinkId(1));
        assert_eq!(gone.id, LinkId(1));
        assert_eq!(space.n_links(), 2);
        assert_eq!(space.link_ids(), vec![LinkId(0), LinkId(2)]);
        // Survivors resolve to themselves; the departed id is rejected.
        assert_eq!(space.link(LinkId(2)).id, LinkId(2));
        assert!(space.try_link(LinkId(1)).is_none());
        // A new registration gets a fresh id, not the departed one.
        let readd = space.add_link("back", gone.sounder, gone.objective, gone.weight);
        assert_eq!(readd, LinkId(3));
        assert_eq!(space.link(readd).id, LinkId(3));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn link_panics_on_removed_id() {
        let mut space = bench_space(2);
        space.remove_link(LinkId(0));
        let _ = space.link(LinkId(0));
    }

    #[test]
    fn reassociation_to_known_pair_does_not_regrow_caches() {
        let mut space = bench_space(3);
        assert_eq!((space.env_traces(), space.basis_builds()), (3, 3));
        // Leave and come back: the pair cache hands the trace + basis
        // back, so neither counter moves.
        let gone = space.remove_link(LinkId(1));
        let back = space.add_link("rejoined", gone.sounder.clone(), gone.objective, 1.0);
        assert_eq!(
            (space.env_traces(), space.basis_builds()),
            (3, 3),
            "re-association to a known endpoint pair must not re-trace or rebuild"
        );
        // And the clone really is the same trace.
        assert_eq!(
            space.link(back).link.environment.len(),
            gone.link.environment.len()
        );
        // Roaming to a *new* position is a genuinely new pair: one more
        // trace, one more basis.
        let roamed = space.roam_link(
            back,
            RadioNode::omni_at(
                space.link(back).sounder.rx.node.position + Vec3::new(0.9, 0.0, 0.0),
            ),
        );
        assert_eq!((space.env_traces(), space.basis_builds()), (4, 4));
        // Roaming straight back is a cache hit again.
        let home = gone.sounder.rx.node.clone();
        space.roam_link(roamed, home);
        assert_eq!((space.env_traces(), space.basis_builds()), (4, 4));
    }

    #[test]
    fn subset_scoring_is_bitwise_equal_to_a_membership_scan() {
        // The sorted-index subset path must reproduce the historical
        // `ids.contains` filter bit for bit — including out-of-order,
        // duplicate and unknown ids.
        let mut space = bench_space(4);
        space.links[2].weight = -0.75;
        let config = Configuration::new(vec![1, 0, 2]);
        let cases: Vec<Vec<LinkId>> = vec![
            vec![LinkId(2), LinkId(0)],
            vec![LinkId(3), LinkId(3), LinkId(1)],
            vec![LinkId(9), LinkId(1)],
            vec![],
        ];
        for ids in &cases {
            let reference: f64 = space
                .links()
                .iter()
                .filter(|sl| ids.contains(&sl.id))
                .map(|sl| sl.weight * space.link_oracle_score(sl.id, &config))
                .sum();
            assert_eq!(
                space.oracle_score_of(ids, &config),
                reference,
                "ids {ids:?}"
            );
        }
        // After churn the same contract holds over the survivors.
        space.remove_link(LinkId(1));
        let ids = vec![LinkId(3), LinkId(1), LinkId(0)];
        let reference: f64 = space
            .links()
            .iter()
            .filter(|sl| ids.contains(&sl.id))
            .map(|sl| sl.weight * space.link_oracle_score(sl.id, &config))
            .sum();
        assert_eq!(space.oracle_score_of(&ids, &config), reference);
    }

    #[test]
    fn warm_scratch_scoring_matches_plain_bitwise() {
        let mut space = bench_space(3);
        space.links[1].weight = -0.5;
        let sp = space.config_space();
        let mut scratch = SpaceScratch::new();
        let mut per = Vec::new();
        let ids = [LinkId(2), LinkId(0)];
        for i in 0..sp.size() {
            let c = sp.config_at(i);
            assert_eq!(
                space.oracle_score_scratch(&c, &mut scratch),
                space.oracle_score(&c)
            );
            assert_eq!(
                space.oracle_score_of_scratch(&ids, &c, &mut scratch),
                space.oracle_score_of(&ids, &c)
            );
            space.per_link_oracle_scores_into(&c, &mut scratch, &mut per);
            assert_eq!(per, space.per_link_oracle_scores(&c));
        }
    }

    #[test]
    fn churn_events_drive_the_registry() {
        let mut space = bench_space(2);
        let sounder = space.links()[0].sounder.clone();
        let joined = space.apply_churn(&ChurnEvent::Associate {
            label: "guest".into(),
            sounder,
            objective: LinkObjective::MaxMeanSnr,
            weight: 1.0,
        });
        assert_eq!(joined, LinkId(2));
        assert_eq!(space.env_traces(), 2, "guest shares link 0's pair");
        let roamed = space.apply_churn(&ChurnEvent::Roam {
            id: joined,
            to: RadioNode::omni_at(Vec3::new(3.0, 2.0, 1.4)),
        });
        assert_eq!(roamed, LinkId(3));
        assert_eq!(space.link(roamed).label, "guest");
        space.apply_churn(&ChurnEvent::Leave { id: roamed });
        assert_eq!(space.link_ids(), vec![LinkId(0), LinkId(1)]);
    }
}
