//! Online learning over configurations: a UCB1 bandit controller.
//!
//! §4.2 of the paper suggests navigating the configuration space with
//! "machine learning techniques, as Remy \[35\] has used in congestion
//! control". For a slowly drifting room, the cleanest learning formulation
//! is a stochastic multi-armed bandit: each configuration is an arm, each
//! measurement a noisy reward, and the controller must balance exploring
//! untried configurations against exploiting the best one seen — all while
//! paying for every measurement out of the coherence-time budget.
//!
//! [`UcbController`] implements UCB1 with optional discounting (older
//! observations fade, tracking slow drift). It is deliberately generic over
//! the reward source so it can run against measured SNR, throughput, or any
//! objective.

use crate::config::{ConfigSpace, Configuration};

/// UCB1 bandit over a (small) configuration space.
#[derive(Debug, Clone)]
pub struct UcbController {
    space: ConfigSpace,
    /// Exploration strength (UCB1 classic = sqrt(2)).
    pub exploration: f64,
    /// Per-step discount on accumulated statistics (1.0 = none). Values
    /// slightly below 1 track slow environmental drift.
    pub discount: f64,
    counts: Vec<f64>,
    sums: Vec<f64>,
    t: f64,
}

impl UcbController {
    /// Creates a controller over the whole space (one arm per
    /// configuration). Sized for prototype-scale spaces (≤ a few thousand).
    pub fn new(space: ConfigSpace) -> Self {
        let n = space.size();
        assert!(n <= 1 << 16, "bandit arms explode beyond prototype scale");
        UcbController {
            space,
            exploration: std::f64::consts::SQRT_2,
            counts: vec![0.0; n],
            sums: vec![0.0; n],
            discount: 1.0,
            t: 0.0,
        }
    }

    /// Number of arms.
    pub fn n_arms(&self) -> usize {
        self.counts.len()
    }

    /// The configuration the controller wants measured next: an untried arm
    /// if any remain, otherwise the arm maximizing `mean + c·sqrt(ln t / n)`.
    pub fn select(&self) -> Configuration {
        // Counts are integers stored as f64 and only ever incremented by 1.0,
        // so the exact comparison is the "never tried" test, not a tolerance.
        // press-lint: allow(float-ordering)
        if let Some(untried) = self.counts.iter().position(|&c| c == 0.0) {
            return self.space.config_at(untried);
        }
        let log_t = self.t.max(1.0).ln();
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..self.n_arms() {
            let mean = self.sums[i] / self.counts[i];
            let bonus = self.exploration * (log_t / self.counts[i]).sqrt();
            let score = mean + bonus;
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        self.space.config_at(best)
    }

    /// Feeds back the measured reward for a configuration.
    pub fn observe(&mut self, config: &Configuration, reward: f64) {
        let i = self.space.index_of(config);
        if self.discount < 1.0 {
            for c in self.counts.iter_mut() {
                *c *= self.discount;
            }
            for s in self.sums.iter_mut() {
                *s *= self.discount;
            }
            self.t *= self.discount;
        }
        self.counts[i] += 1.0;
        self.sums[i] += reward;
        self.t += 1.0;
    }

    /// The configuration with the best empirical mean (what the controller
    /// would actuate for exploitation), with its mean. `None` before any
    /// observation.
    pub fn best(&self) -> Option<(Configuration, f64)> {
        let (i, _) = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .max_by(|a, b| {
                let ma = self.sums[a.0] / a.1;
                let mb = self.sums[b.0] / b.1;
                ma.total_cmp(&mb)
            })?;
        Some((self.space.config_at(i), self.sums[i] / self.counts[i]))
    }

    /// Total observations recorded (discounted).
    pub fn observations(&self) -> f64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_propagation::fading::gaussian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![4, 4])
    }

    /// Noisy synthetic reward with a unique best arm at (3, 1).
    fn reward(config: &Configuration, rng: &mut StdRng) -> f64 {
        let target = [3usize, 1];
        let dist: f64 = config
            .states
            .iter()
            .zip(&target)
            .map(|(&s, &t)| (s as f64 - t as f64).abs())
            .sum();
        -dist + 0.3 * gaussian(rng)
    }

    #[test]
    fn explores_every_arm_first() {
        let mut ucb = UcbController::new(space());
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..16 {
            let c = ucb.select();
            seen.insert(ucb.space.index_of(&c));
            let r = reward(&c, &mut rng);
            ucb.observe(&c, r);
        }
        assert_eq!(seen.len(), 16, "all arms tried once before any repeats");
    }

    #[test]
    fn converges_to_the_best_arm() {
        let mut ucb = UcbController::new(space());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..600 {
            let c = ucb.select();
            let r = reward(&c, &mut rng);
            ucb.observe(&c, r);
        }
        let (best, mean) = ucb.best().unwrap();
        assert_eq!(best.states, vec![3, 1], "mean {mean}");
    }

    #[test]
    fn beats_uniform_random_on_cumulative_reward() {
        let mut ucb = UcbController::new(space());
        let mut rng = StdRng::seed_from_u64(3);
        let mut ucb_total = 0.0;
        for _ in 0..400 {
            let c = ucb.select();
            let r = reward(&c, &mut rng);
            ucb_total += r;
            ucb.observe(&c, r);
        }
        let mut rng2 = StdRng::seed_from_u64(3);
        let sp = space();
        let mut rand_total = 0.0;
        let mut pick_rng = StdRng::seed_from_u64(4);
        for _ in 0..400 {
            let c = sp.random(&mut pick_rng);
            rand_total += reward(&c, &mut rng2);
        }
        assert!(
            ucb_total > rand_total + 100.0,
            "UCB {ucb_total} vs random {rand_total}"
        );
    }

    #[test]
    fn discounting_tracks_a_shifted_optimum() {
        // Reward target moves mid-run; a discounted bandit must re-converge.
        let mut ucb = UcbController::new(space());
        ucb.discount = 0.97;
        let mut rng = StdRng::seed_from_u64(5);
        let moving_reward = |config: &Configuration, phase: usize, rng: &mut StdRng| -> f64 {
            let target: [usize; 2] = if phase == 0 { [3, 1] } else { [0, 2] };
            let dist: f64 = config
                .states
                .iter()
                .zip(&target)
                .map(|(&s, &t)| (s as f64 - t as f64).abs())
                .sum();
            -dist + 0.3 * gaussian(rng)
        };
        for _ in 0..500 {
            let c = ucb.select();
            let r = moving_reward(&c, 0, &mut rng);
            ucb.observe(&c, r);
        }
        assert_eq!(ucb.best().unwrap().0.states, vec![3, 1]);
        for _ in 0..900 {
            let c = ucb.select();
            let r = moving_reward(&c, 1, &mut rng);
            ucb.observe(&c, r);
        }
        assert_eq!(
            ucb.best().unwrap().0.states,
            vec![0, 2],
            "discounted bandit must follow the drifted optimum"
        );
    }

    #[test]
    fn best_is_none_before_observations() {
        let ucb = UcbController::new(space());
        assert!(ucb.best().is_none());
    }
}
