//! Property tests for the basis-cached configuration-evaluation fast path:
//! for random scenes, arrays and configurations, channel synthesis from a
//! [`LinkBasis`] must match the direct path-sum (`link.paths` +
//! `frequency_response`) to within 1e-9 relative error — including after a
//! drift step invalidates the basis, and for Doppler-bearing environments
//! evaluated at nonzero elapsed time.

use press_core::{CachedLink, Configuration, LinkBasis, PressArray, PressSystem};
use press_math::Complex64;
use press_propagation::fading::ChannelDrift;
use press_propagation::path::{frequency_response, PathKind, SignalPath};
use press_propagation::{LabConfig, LabSetup};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn freqs() -> Vec<f64> {
    (0..52)
        .map(|k| 2.462e9 + (k as f64 - 26.0) * 312_500.0)
        .collect()
}

fn build(seed: u64, n_elements: usize) -> (PressSystem, CachedLink) {
    let lab = LabSetup::generate(&LabConfig::default(), seed);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let positions = lab.random_element_positions(n_elements, &mut rng);
    let array = PressArray::paper_passive(&positions, lambda);
    let system = PressSystem::new(lab.scene.clone(), array);
    let link = CachedLink::trace(&system, lab.tx.clone(), lab.rx.clone());
    (system, link)
}

/// Max per-subcarrier relative error of `a` against reference `b`.
fn max_rel_err(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs() / y.abs().max(1e-18))
        .fold(0.0, f64::max)
}

fn pick_config(space: &press_core::ConfigSpace, raw: u64) -> Configuration {
    space.config_at((raw % space.size() as u64) as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn basis_matches_direct_synthesis(
        seed in 0u64..500,
        n_elements in 1usize..5,
        raw_cfg in 0u64..1_000_000,
    ) {
        let (system, link) = build(seed, n_elements);
        let f = freqs();
        let basis = LinkBasis::build(&system, &link, &f);
        let config = pick_config(basis.space(), raw_cfg);
        let direct = frequency_response(&link.paths(&system, &config), &f, 0.0);
        let cached = basis.synthesize(&config, 0.0);
        let err = max_rel_err(&cached, &direct);
        prop_assert!(err <= 1e-9, "relative error {err}");
    }

    #[test]
    fn basis_matches_direct_after_drift_invalidation(
        seed in 0u64..200,
        n_elements in 1usize..4,
        drift_seed in 0u64..200,
        raw_cfg in 0u64..1_000_000,
    ) {
        let (system, mut link) = build(seed, n_elements);
        let f = freqs();
        let mut basis = LinkBasis::build(&system, &link, &f);
        let drift = ChannelDrift { phase_sigma_rad: 0.3, amplitude_sigma: 0.05 };
        let mut rng = StdRng::seed_from_u64(drift_seed);
        link.apply_drift(&drift, &mut rng);
        // The drift bumped the link revision: the basis must know it is
        // stale, refresh, and then agree with the direct synthesis again.
        prop_assert!(!basis.is_fresh(&link));
        prop_assert!(basis.ensure_fresh(&link));
        prop_assert!(basis.is_fresh(&link));
        let config = pick_config(basis.space(), raw_cfg);
        let direct = frequency_response(&link.paths(&system, &config), &f, 0.0);
        let cached = basis.synthesize(&config, 0.0);
        let err = max_rel_err(&cached, &direct);
        prop_assert!(err <= 1e-9, "relative error {err}");
    }

    #[test]
    fn doppler_environments_match_at_nonzero_time(
        seed in 0u64..200,
        n_elements in 1usize..4,
        doppler_hz in 1.0..40.0f64,
        t_ms in 0.0..5.0f64,
        raw_cfg in 0u64..1_000_000,
    ) {
        let (system, mut link) = build(seed, n_elements);
        // A moving scatterer: the basis must rotate its cached column
        // analytically rather than serve the stale t=0 response.
        link.environment.push(SignalPath {
            gain: Complex64::from_polar(2e-4, 1.0),
            delay_s: 40e-9,
            doppler_hz,
            aod_rad: 0.0,
            aoa_rad: 0.0,
            kind: PathKind::LineOfSight,
        });
        link.mark_dirty();
        let f = freqs();
        let basis = LinkBasis::build(&system, &link, &f);
        let t_s = t_ms * 1e-3;
        let config = pick_config(basis.space(), raw_cfg);
        let direct = frequency_response(&link.paths(&system, &config), &f, t_s);
        let cached = basis.synthesize(&config, t_s);
        let err = max_rel_err(&cached, &direct);
        prop_assert!(err <= 1e-9, "relative error {err}");
    }

    #[test]
    fn incremental_moves_match_direct_synthesis(
        seed in 0u64..200,
        n_elements in 1usize..4,
        raw_a in 0u64..1_000_000,
        element_raw in 0u64..64,
        state_raw in 0u64..64,
    ) {
        // A single-coordinate move applied incrementally (subtract old
        // column, add new) must agree with the direct path-sum of the moved
        // configuration.
        let (system, link) = build(seed, n_elements);
        let f = freqs();
        let basis = LinkBasis::build(&system, &link, &f);
        let space = basis.space().clone();
        let config = pick_config(&space, raw_a);
        let element = (element_raw % space.n_elements() as u64) as usize;
        let new_state = (state_raw % space.states_per_element[element] as u64) as usize;
        let mut moved = config.clone();
        moved.states[element] = new_state;

        let mut h = basis.synthesize(&config, 0.0);
        basis.apply_move(&mut h, element, config.states[element], new_state, 0.0);
        let direct = frequency_response(&link.paths(&system, &moved), &f, 0.0);
        let err = max_rel_err(&h, &direct);
        prop_assert!(err <= 1e-9, "relative error {err}");
    }
}
