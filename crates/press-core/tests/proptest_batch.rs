//! Property tests for the structure-of-arrays batch kernel: for random
//! scenes, arrays, configurations and batch shapes, [`BatchEvaluator`]
//! scores must be **bitwise identical** to scoring each candidate alone
//! through [`LinkBasis::synthesize_into`] — the contract that lets every
//! batched search entry point claim bit-identity with its scalar
//! counterpart. The same holds for the batched exhaustive sweeps (serial
//! and parallel, at any thread count) and for same-seed batched genetic
//! runs.

use press_core::search::{
    exhaustive, exhaustive_batched, exhaustive_parallel_batched, genetic, genetic_batched,
    GeneticParams, SearchScratch,
};
use press_core::{
    min_magnitude_db_metric, BatchEvaluator, CachedLink, Configuration, LinkBasis, PressArray,
    PressSystem,
};
use press_math::Complex64;
use press_propagation::path::{PathKind, SignalPath};
use press_propagation::{LabConfig, LabSetup};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn freqs() -> Vec<f64> {
    (0..52)
        .map(|k| 2.462e9 + (k as f64 - 26.0) * 312_500.0)
        .collect()
}

fn build(seed: u64, n_elements: usize) -> (PressSystem, CachedLink) {
    let lab = LabSetup::generate(&LabConfig::default(), seed);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let positions = lab.random_element_positions(n_elements, &mut rng);
    let array = PressArray::paper_passive(&positions, lambda);
    let system = PressSystem::new(lab.scene.clone(), array);
    let link = CachedLink::trace(&system, lab.tx.clone(), lab.rx.clone());
    (system, link)
}

/// `count` configurations drawn (with wraparound) from the space's dense
/// enumeration, starting at a random offset — covers ragged batch tails
/// and repeated states without caring about the space's actual size.
fn pick_configs(space: &press_core::ConfigSpace, raw: u64, count: usize) -> Vec<Configuration> {
    (0..count)
        .map(|i| space.config_at((raw as usize + i * 7) % space.size()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_scores_are_bitwise_equal_to_scalar_scoring(
        seed in 0u64..400,
        n_elements in 1usize..5,
        raw_cfg in 0u64..1_000_000,
        batch in 1usize..40,
    ) {
        let (system, link) = build(seed, n_elements);
        let f = freqs();
        let basis = LinkBasis::build(&system, &link, &f);
        let configs = pick_configs(basis.space(), raw_cfg, batch);

        let mut metric = min_magnitude_db_metric();
        let mut h: Vec<Complex64> = Vec::new();
        let scalar: Vec<f64> = configs
            .iter()
            .map(|c| {
                basis.synthesize_into(c, 0.0, &mut h);
                metric(&h)
            })
            .collect();

        let mut evaluator = BatchEvaluator::new(&basis);
        let batched = evaluator.scores(&configs, 0.0, &mut metric);
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn batch_scores_are_bitwise_equal_under_doppler(
        seed in 0u64..200,
        n_elements in 1usize..4,
        doppler_hz in 1.0..40.0f64,
        t_ms in 0.0..5.0f64,
        raw_cfg in 0u64..1_000_000,
        batch in 1usize..24,
    ) {
        let (system, mut link) = build(seed, n_elements);
        link.environment.push(SignalPath {
            gain: Complex64::from_polar(2e-4, 1.0),
            delay_s: 40e-9,
            doppler_hz,
            aod_rad: 0.0,
            aoa_rad: 0.0,
            kind: PathKind::LineOfSight,
        });
        link.mark_dirty();
        let f = freqs();
        let basis = LinkBasis::build(&system, &link, &f);
        let t_s = t_ms * 1e-3;
        let configs = pick_configs(basis.space(), raw_cfg, batch);

        let mut metric = min_magnitude_db_metric();
        let mut h: Vec<Complex64> = Vec::new();
        let scalar: Vec<f64> = configs
            .iter()
            .map(|c| {
                basis.synthesize_into(c, t_s, &mut h);
                metric(&h)
            })
            .collect();

        let mut evaluator = BatchEvaluator::new(&basis);
        let batched = evaluator.scores(&configs, t_s, &mut metric);
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn batched_exhaustive_sweeps_match_scalar_bitwise(
        seed in 0u64..200,
        n_elements in 1usize..4,
        batch in 1usize..48,
        n_threads in 1usize..5,
    ) {
        let (system, link) = build(seed, n_elements);
        let f = freqs();
        let basis = LinkBasis::build(&system, &link, &f);
        let space = basis.space().clone();

        let mut metric = min_magnitude_db_metric();
        let mut h: Vec<Complex64> = Vec::new();
        let serial = exhaustive(&space, |c: &Configuration| {
            basis.synthesize_into(c, 0.0, &mut h);
            metric(&h)
        });

        let mut scratch = SearchScratch::new();
        let mut evaluator = BatchEvaluator::new(&basis);
        let mut m = min_magnitude_db_metric();
        let batched = exhaustive_batched(&space, batch, &mut scratch, &mut |configs, out| {
            evaluator.scores_into(configs, 0.0, &mut m, out)
        });
        prop_assert_eq!(&batched, &serial);

        let parallel = exhaustive_parallel_batched(&space, n_threads, batch, || {
            let mut evaluator = BatchEvaluator::new(&basis);
            let mut m = min_magnitude_db_metric();
            move |configs: &[Configuration], out: &mut Vec<f64>| {
                evaluator.scores_into(configs, 0.0, &mut m, out)
            }
        });
        prop_assert_eq!(&parallel, &serial);
    }

    #[test]
    fn batched_genetic_matches_scalar_same_seed(
        seed in 0u64..200,
        n_elements in 2usize..4,
        rng_seed in 0u64..1_000,
    ) {
        let (system, link) = build(seed, n_elements);
        let f = freqs();
        let basis = LinkBasis::build(&system, &link, &f);
        let space = basis.space().clone();
        let params = GeneticParams { population: 8, generations: 4, ..GeneticParams::default() };

        let mut metric = min_magnitude_db_metric();
        let mut h: Vec<Complex64> = Vec::new();
        let scalar = genetic(
            &space,
            &params,
            &mut StdRng::seed_from_u64(rng_seed),
            |c: &Configuration| {
                basis.synthesize_into(c, 0.0, &mut h);
                metric(&h)
            },
        );

        let mut scratch = SearchScratch::new();
        let mut evaluator = BatchEvaluator::new(&basis);
        let mut m = min_magnitude_db_metric();
        let batched = genetic_batched(
            &space,
            &params,
            &mut StdRng::seed_from_u64(rng_seed),
            &mut scratch,
            &mut |configs: &[Configuration], out: &mut Vec<f64>| {
                evaluator.scores_into(configs, 0.0, &mut m, out)
            },
        );
        prop_assert_eq!(batched, scalar);
    }
}
