//! Budget-aware scheduling: episodes live on a slot grid of width
//! `coherence_budget_s`. An episode that blows its budget is reported
//! `within_coherence = false` and the daemon *defers* the next episode
//! past the overrun — it never interleaves a new episode's phases into a
//! running one.

use pressd::EventLoop;

const ASSOC: &str =
    "churn assoc label=lab obj=max-min-snr w=1 tx=7,5,1.5 rx=6.8,4,1.5 carrier=2462000000";

fn session(controller: &str) -> EventLoop {
    let mut el = EventLoop::new();
    let mut out = Vec::new();
    el.handle_line(controller, &mut out);
    el.handle_line(ASSOC, &mut out);
    assert!(
        !out.iter().any(|l| l.contains("\"error\"")),
        "setup rejected: {out:?}"
    );
    el
}

fn episode_line(el: &mut EventLoop) -> String {
    let mut out = Vec::new();
    el.handle_line("episode", &mut out);
    out.iter()
        .rev()
        .find(|l| l.contains("\"ev\":\"episode\""))
        .expect("episode command must produce an episode line")
        .clone()
}

/// The paper-prototype timing model cannot finish a random-search episode
/// inside an 80 ms coherence budget: the report must say so, and the next
/// episode must be pushed past every slot the overrun swallowed.
#[test]
fn blown_budget_defers_the_next_slot_instead_of_interleaving() {
    let mut el = session(
        "controller strategy=random:6 objective=max-min-snr seed=1 budget-s=0.08 frames=2 actuation=oracle",
    );

    let ep1 = episode_line(&mut el);
    assert!(ep1.contains("\"slot\":0"), "{ep1}");
    assert!(ep1.contains("\"within_coherence\":false"), "{ep1}");
    let deferred = el.deferred();
    assert!(
        deferred > 0,
        "an episode that overran its slot must book deferrals"
    );

    let ep2 = episode_line(&mut el);
    // Queued behind the overrun: the next episode starts on the first slot
    // boundary after the previous one *finished*, skipping `deferred`
    // slots, rather than starting inside the still-running episode.
    assert!(
        ep2.contains(&format!("\"slot\":{}", deferred + 1)),
        "expected slot {} in {ep2}",
        deferred + 1
    );
    assert!(ep2.contains("\"episode\":1"), "{ep2}");
    assert_eq!(el.engine().episodes(), 2, "episodes ran strictly in order");
}

/// With a generous budget the same session fits: episodes are within
/// coherence and occupy adjacent slots with no deferrals.
#[test]
fn episodes_within_budget_occupy_adjacent_slots() {
    let mut el = session(
        "controller strategy=random:6 objective=max-min-snr seed=1 budget-s=10 frames=2 actuation=oracle",
    );

    let ep1 = episode_line(&mut el);
    assert!(ep1.contains("\"slot\":0"), "{ep1}");
    assert!(ep1.contains("\"within_coherence\":true"), "{ep1}");
    assert_eq!(el.deferred(), 0);

    let ep2 = episode_line(&mut el);
    assert!(ep2.contains("\"slot\":1"), "{ep2}");
    assert!(ep2.contains("\"within_coherence\":true"), "{ep2}");
    assert_eq!(el.deferred(), 0);
}

/// The emulated session clock is the sum of episode spans — directives
/// reset it together with the schedule.
#[test]
fn directives_reset_the_schedule() {
    let mut el = session(
        "controller strategy=random:6 objective=max-min-snr seed=1 budget-s=0.08 frames=2 actuation=oracle",
    );
    let _ = episode_line(&mut el);
    assert!(el.now_s() > 0.0);
    assert!(el.deferred() > 0);

    let mut out = Vec::new();
    el.handle_line("space lab-seed=17 elements=2 element-seed=4", &mut out);
    assert_eq!(el.now_s(), 0.0);
    assert_eq!(el.deferred(), 0);
    assert_eq!(el.engine().episodes(), 0, "directives reset the engine");
}
