//! The metrics surface: the `metrics` verb renders deterministic
//! Prometheus text, and a hub rebuilt from a recorded session's output
//! renders byte-identically to the live hub that produced it.

use pressd::{EventLoop, SessionMetrics};

const SETUP: &[&str] = &[
    "space lab-seed=17 elements=3 element-seed=4",
    "controller strategy=exhaustive objective=max-min-snr seed=3 budget-s=0.08 frames=2 actuation=ism",
    "churn assoc label=lab obj=max-min-snr w=1 tx=7,5,1.5 rx=6.8,4,1.5 carrier=2462000000",
];

fn run(lines: &[&str]) -> (EventLoop, Vec<String>) {
    let mut el = EventLoop::new();
    let mut out = Vec::new();
    for line in lines {
        el.handle_line(line, &mut out);
    }
    (el, out)
}

#[test]
fn metrics_verb_renders_deterministic_ordered_exposition() {
    let mut lines = SETUP.to_vec();
    lines.extend(["measure", "episode", "metrics"]);
    let (_, out_a) = run(&lines);
    let (_, out_b) = run(&lines);
    assert_eq!(out_a, out_b, "metrics output must be deterministic");
    // The exposition is the block after the episode summary line.
    let start = out_a
        .iter()
        .position(|l| l.starts_with("# HELP"))
        .expect("metrics verb must render HELP lines");
    let expo: Vec<&String> = out_a[start..].iter().collect();
    // Families arrive in BTreeMap name order.
    let family_lines: Vec<&str> = expo
        .iter()
        .filter(|l| l.starts_with("# TYPE "))
        .map(|l| l.as_str())
        .collect();
    let mut sorted = family_lines.clone();
    sorted.sort_unstable();
    assert_eq!(family_lines, sorted, "families must render in name order");
    // The episode actually registered.
    assert!(
        expo.iter().any(|l| l.as_str() == "press_episodes_total 1"),
        "{expo:?}"
    );
}

#[test]
fn live_exposition_matches_rebuild_from_recorded_output() {
    for seed_line in [
        "controller strategy=exhaustive objective=max-min-snr seed=0 budget-s=0.08 frames=2 actuation=ism",
        "controller strategy=random:6 objective=max-min-snr seed=3 budget-s=0.08 frames=2 actuation=wired",
        "controller strategy=annealing:8 objective=flatness seed=17 budget-s=10 frames=2 actuation=ism",
    ] {
        let lines = vec![
            SETUP[0],
            seed_line,
            SETUP[2],
            "measure",
            "episode",
            "episode",
            "status",
            "trace-tail 8", // replays already-observed events into the output
            "bogus-verb",   // error lines count in both paths
            "episode",
        ];
        let (el, out) = run(&lines);
        let rebuilt = SessionMetrics::from_session_output(out.iter().map(String::as_str));
        assert_eq!(
            el.metrics_exposition(),
            rebuilt.render(),
            "live and rebuilt exposition diverged for `{seed_line}`"
        );
    }
}

#[test]
fn trace_tail_replay_does_not_double_count() {
    let mut lines = SETUP.to_vec();
    lines.extend(["episode", "metrics"]);
    let (el_plain, _) = run(&lines);

    let mut with_tail = SETUP.to_vec();
    with_tail.extend(["episode", "trace-tail", "trace-tail", "metrics"]);
    let (el_tail, out) = run(&with_tail);

    // Tail queries change the output stream but not the metrics.
    assert_eq!(el_plain.metrics_exposition(), el_tail.metrics_exposition());
    // And the rebuild over the tail-bearing output still matches.
    let rebuilt = SessionMetrics::from_session_output(out.iter().map(String::as_str));
    assert_eq!(el_tail.metrics_exposition(), rebuilt.render());
}

#[test]
fn metrics_survive_setup_directives_like_the_tail() {
    let mut lines = SETUP.to_vec();
    lines.extend([
        "episode",
        "space lab-seed=17 elements=2 element-seed=4",
        "metrics",
    ]);
    let (el, out) = run(&lines);
    assert!(
        el.metrics_exposition().contains("press_episodes_total 1"),
        "a directive reset must not wipe the metrics hub"
    );
    let rebuilt = SessionMetrics::from_session_output(out.iter().map(String::as_str));
    assert_eq!(el.metrics_exposition(), rebuilt.render());
}

#[test]
fn status_line_carries_scheduler_health_fields() {
    let mut lines = SETUP.to_vec();
    lines.extend(["episode", "status"]);
    let (el, out) = run(&lines);
    let status = out
        .iter()
        .rev()
        .find(|l| l.starts_with("{\"ev\":\"snapshot\""))
        .expect("status must render a snapshot line");
    assert!(
        status.contains(&format!("\"deferred_total\":{}", el.deferred())),
        "{status}"
    );
    let trace_seq: u64 = status
        .split("\"trace_seq\":")
        .nth(1)
        .and_then(|s| s.trim_end_matches('}').parse().ok())
        .expect("snapshot must carry trace_seq");
    assert!(trace_seq > 0, "an episode must have emitted trace events");
}
