//! Wire-protocol properties: render→parse→render is a fixpoint for every
//! engine command (all three churn variants, float payloads included), and
//! the parser turns arbitrary garbage into diagnostics — never panics.

use press_control::FaultSpec;
use press_core::{ChurnEvent, EngineCommand, LinkId};
use press_phy::Numerology;
use press_propagation::{RadioNode, Vec3};
use press_sdr::{SdrRadio, Sounder};
use pressd::{parse_line, render_command, Line};
use proptest::prelude::*;

fn positions() -> impl Strategy<Value = Vec3> {
    (-50.0..50.0f64, -50.0..50.0f64, 0.0..10.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn velocities() -> impl Strategy<Value = Vec3> {
    (-5.0..5.0f64, -5.0..5.0f64, -1.0..1.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn nodes() -> impl Strategy<Value = RadioNode> {
    (positions(), velocities(), any::<bool>()).prop_map(|(p, v, moving)| {
        let mut node = RadioNode::omni_at(p);
        if moving {
            node.velocity = v;
        }
        node
    })
}

fn labels() -> impl Strategy<Value = String> {
    (0usize..5).prop_map(|i| ["lab", "guest", "ap1", "client-2", "x_9"][i].to_string())
}

fn objectives() -> impl Strategy<Value = press_core::LinkObjective> {
    use press_core::LinkObjective::*;
    (0usize..6).prop_map(|i| {
        [
            MaxMinSnr,
            MaxMeanSnr,
            Flatness,
            MaxThroughput,
            FavorLowBand,
            FavorHighBand,
        ][i]
    })
}

fn fault_specs() -> impl Strategy<Value = FaultSpec> {
    (
        (
            any::<bool>(),
            (0.0..1.0f64, 0.0..1.0f64),
            (0.0..1.0f64, 0.0..1.0f64),
        ),
        proptest::collection::vec(any::<u16>(), 0..4),
        proptest::collection::vec((any::<u16>(), any::<u8>()), 0..4),
    )
        .prop_map(|((bursty, (pe, px), (lg, lb)), dead, stuck)| {
            let mut spec = FaultSpec::none();
            if bursty {
                spec.burst = Some(press_control::BurstSpec {
                    p_enter_burst: pe,
                    p_exit_burst: px,
                    loss_good: lg,
                    loss_bad: lb,
                });
            }
            spec.dead = dead;
            spec.stuck = stuck;
            spec
        })
}

fn commands() -> impl Strategy<Value = EngineCommand> {
    prop_oneof![
        Just(EngineCommand::Measurement),
        Just(EngineCommand::RunEpisode),
        Just(EngineCommand::Snapshot),
        (
            (labels(), objectives(), 0.1..10.0f64),
            (nodes(), nodes(), 1.0e9..6.0e9f64)
        )
            .prop_map(|((label, objective, weight), (tx, rx, carrier))| {
                EngineCommand::Churn(ChurnEvent::Associate {
                    label,
                    sounder: Sounder::new(
                        Numerology::wifi20(carrier),
                        SdrRadio::warp(tx),
                        SdrRadio::warp(rx),
                    ),
                    objective,
                    weight,
                })
            }),
        (any::<u32>(), nodes())
            .prop_map(|(id, to)| { EngineCommand::Churn(ChurnEvent::Roam { id: LinkId(id), to }) }),
        any::<u32>().prop_map(|id| EngineCommand::Churn(ChurnEvent::Leave { id: LinkId(id) })),
        fault_specs().prop_map(EngineCommand::InjectFault),
    ]
}

proptest! {
    /// Serialize → parse → serialize is a fixpoint: floats (positions,
    /// velocities, weights, carriers, burst probabilities) survive via
    /// shortest round-trip notation, and every command variant maps back
    /// onto itself.
    #[test]
    fn render_parse_render_is_a_fixpoint(cmd in commands()) {
        let wire = render_command(&cmd);
        let parsed = parse_line(&wire);
        let reparsed = match parsed {
            Ok(Line::Command(c)) => c,
            other => panic!("`{wire}` did not parse back to a command: {other:?}"),
        };
        prop_assert_eq!(&wire, &render_command(&reparsed), "wire line not a fixpoint");
        // The reparsed command is semantically the command we rendered
        // (EngineCommand carries no PartialEq because sounders don't; the
        // full-precision Debug rendering is the equality we can check).
        prop_assert_eq!(format!("{cmd:?}"), format!("{reparsed:?}"));
    }

    /// The parser is total: arbitrary bytes (lossily decoded) never panic,
    /// they parse or produce a diagnostic.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_line(&line);
    }

    /// Same totality through the event loop: malformed lines become error
    /// JSONL, state survives, nothing panics.
    #[test]
    fn event_loop_survives_garbage_lines(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let mut el = pressd::EventLoop::new();
        let mut out = Vec::new();
        let line = String::from_utf8_lossy(&bytes);
        el.handle_line(&line, &mut out);
        el.handle_line("snapshot", &mut out);
        prop_assert!(out.iter().any(|l| l.contains("\"ev\":\"snapshot\"")));
    }
}

/// A gallery of malformed lines, each answered with a diagnostic naming
/// the problem — not a panic, not a silent accept.
#[test]
fn malformed_lines_produce_diagnostics() {
    let cases = [
        "bogus",
        "measure now",
        "episode 3",
        "churn",
        "churn warp id=1",
        "churn roam id=banana to=1,2,3",
        "churn roam id=1 to=1,2",
        "churn roam id=1 to=1,2,3,4",
        "churn roam id=1",
        "churn leave",
        "churn assoc label=x obj=nope w=1 tx=1,2,3 rx=4,5,6 carrier=2.4e9",
        "churn assoc label=x obj=flatness w=1 tx=1,2,3 rx=4,5,6 carrier=-5",
        "churn assoc label=x obj=flatness w=inf tx=1,2,3 rx=4,5,6 carrier=2.4e9",
        "fault burst=0.1,0.2,0.3",
        "fault burst=0.1,0.2,0.3,1.5",
        "fault stuck=3",
        "fault dead=x",
        "controller strategy=warp",
        "controller strategy=greedy",
        "controller strategy=exhaustive:4",
        "controller budget-s=0",
        "controller frames=1",
        "controller turbo=1",
        "space elements=0",
        "space lab-seed",
        "trace-tail 4 5",
    ];
    for case in cases {
        let res = parse_line(case);
        assert!(res.is_err(), "`{case}` should be rejected, got {res:?}");
    }
}

/// The documented happy-path lines all parse.
#[test]
fn canonical_lines_parse() {
    let cases = [
        "",
        "   ",
        "# comment",
        "measure",
        "episode",
        "snapshot",
        "status",
        "links",
        "trace-tail",
        "trace-tail 16",
        "space lab-seed=17 elements=2 element-seed=4",
        "controller strategy=annealing:40 objective=flatness seed=7 budget-s=0.25 frames=4 actuation=ism",
        "churn assoc label=lab obj=max-min-snr w=1 tx=7,5,1.5 rx=6.8,4,1.5@0.8,0,0 carrier=2462000000",
        "churn roam id=0 to=6.1,5.4,1.4",
        "churn leave id=0",
        "fault",
        "fault clear",
        "fault burst=0.004,0.2,0.005,0.6 dead=0,1 stuck=4:1,5:0",
    ];
    for case in cases {
        let res = parse_line(case);
        assert!(res.is_ok(), "`{case}` should parse, got {res:?}");
    }
}
