//! The deterministic event loop at the heart of `pressd`.
//!
//! [`EventLoop`] owns one [`EpisodeEngine`] session: protocol lines go in
//! (already split, one per call), JSONL lines come out. Everything in this
//! module is pure state-machine code — no I/O, no wall clock, no ambient
//! entropy — so feeding the same line sequence always produces the same
//! byte sequence. `pressd replay` is exactly that: the daemon shell feeds
//! a recorded log through a fresh `EventLoop` and prints what comes out.
//!
//! # Scheduling
//!
//! Episodes are scheduled on a slot grid of width `coherence_budget_s` in
//! emulated time. An episode always runs to completion — phases are never
//! interleaved with later commands. If it overruns its slot (the report
//! says `within_coherence = false`), the next episode's start is pushed
//! past the overrun and every skipped slot counts as a deferral; the
//! daemon queues behind the overrun rather than interleaving work into it.

use std::fmt::Write as _;

use press_control::SpaceMetrics;
use press_core::{
    EngineCommand, EngineEvent, EngineSnapshot, EpisodeEngine, PressArray, PressSystem, SmartSpace,
    SpaceReport,
};
use press_propagation::{LabConfig, LabSetup};
use press_trace::{MemorySink, TailSink, TraceSink, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::{EpisodeObs, SessionMetrics};
use crate::protocol::{
    objective_label, parse_line, ControllerSpec, Diagnostic, Line, Query, SpaceSpec,
};

/// Trace lines retained for `trace-tail` by default.
pub const DEFAULT_TAIL_CAPACITY: usize = 256;

/// Builds the session's smart space from its plain-data recipe: seeded lab
/// geometry, seeded element placement, the paper's passive elements. Links
/// arrive later, through `churn assoc` commands.
pub fn build_space(spec: &SpaceSpec) -> SmartSpace {
    let lab = LabSetup::generate(&LabConfig::default(), spec.lab_seed);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(spec.element_seed);
    let positions = lab.random_element_positions(spec.elements, &mut rng);
    let array = PressArray::paper_passive(&positions, lambda);
    SmartSpace::new(PressSystem::new(lab.scene.clone(), array))
}

/// One `pressd` session: an engine, a slot scheduler, and a trace tail.
///
/// Deterministic by construction — the only inputs are protocol lines.
#[derive(Debug)]
pub struct EventLoop {
    space_spec: SpaceSpec,
    controller_spec: ControllerSpec,
    engine: EpisodeEngine,
    tracer: Tracer<MemorySink>,
    tail: TailSink,
    /// Next free episode slot on the coherence grid.
    next_slot: u64,
    /// Emulated session clock, seconds.
    now_s: f64,
    /// Episode slots skipped because a previous episode overran its budget.
    deferred: u64,
    lines_in: u64,
    errors: u64,
    /// Live metrics: fed the same structured observations a log rebuild
    /// parses back out of the session output.
    metrics: SessionMetrics,
}

impl Default for EventLoop {
    fn default() -> Self {
        EventLoop::new()
    }
}

impl EventLoop {
    /// A fresh session over the default space and controller specs.
    pub fn new() -> EventLoop {
        EventLoop::with_tail_capacity(DEFAULT_TAIL_CAPACITY)
    }

    /// A fresh session retaining the last `capacity` trace lines.
    pub fn with_tail_capacity(capacity: usize) -> EventLoop {
        let space_spec = SpaceSpec::default();
        let controller_spec = ControllerSpec::default();
        let engine = EpisodeEngine::new(controller_spec.build(), build_space(&space_spec));
        EventLoop {
            space_spec,
            controller_spec,
            engine,
            tracer: Tracer::new(MemorySink::new()),
            tail: TailSink::new(capacity),
            next_slot: 0,
            now_s: 0.0,
            deferred: 0,
            lines_in: 0,
            errors: 0,
            metrics: SessionMetrics::new(),
        }
    }

    /// The engine (read side) — used by tests and the operator shell.
    pub fn engine(&self) -> &EpisodeEngine {
        &self.engine
    }

    /// Episode slots skipped so far because an episode blew its budget.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    /// Emulated session clock, seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Protocol lines seen (including blanks and malformed ones).
    pub fn lines_in(&self) -> u64 {
        self.lines_in
    }

    /// Malformed lines rejected with a diagnostic.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// The session's metrics state (read side).
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// The current Prometheus text exposition — what the `metrics` verb
    /// returns.
    pub fn metrics_exposition(&self) -> String {
        self.metrics.render()
    }

    /// Processes one raw protocol line, appending every output JSONL line
    /// to `out`. Never panics: malformed input becomes an error line.
    pub fn handle_line(&mut self, raw: &str, out: &mut Vec<String>) {
        self.lines_in += 1;
        match parse_line(raw) {
            Err(d) => self.push_error(&d, out),
            Ok(Line::Blank) => {}
            Ok(Line::Space(spec)) => {
                self.space_spec = spec;
                self.rebuild();
                out.push(format!(
                    "{{\"ok\":\"space\",\"lab_seed\":{},\"elements\":{},\"element_seed\":{}}}",
                    spec.lab_seed, spec.elements, spec.element_seed
                ));
            }
            Ok(Line::Controller(spec)) => {
                self.controller_spec = spec;
                self.rebuild();
                out.push(format!(
                    "{{\"ok\":\"controller\",\"strategy\":{},\"objective\":{},\"seed\":{},\
                     \"budget_s\":{},\"frames\":{},\"actuation\":{}}}",
                    json_string(self.engine.controller().strategy.label()),
                    json_string(objective_label(spec.objective)),
                    spec.seed,
                    spec.coherence_budget_s,
                    spec.frames_per_measurement,
                    json_string(match spec.actuation {
                        crate::protocol::ActuationKind::Oracle => "oracle",
                        crate::protocol::ActuationKind::Wired => "wired",
                        crate::protocol::ActuationKind::Ism => "ism",
                    })
                ));
            }
            Ok(Line::Query(q)) => self.handle_query(q, out),
            Ok(Line::Command(cmd)) => self.handle_command(cmd, out),
        }
    }

    /// A setup directive resets the session: fresh engine, fresh schedule.
    /// The trace tail, line counters, and metrics hub survive so an
    /// operator can still inspect what led up to the reset.
    fn rebuild(&mut self) {
        self.engine =
            EpisodeEngine::new(self.controller_spec.build(), build_space(&self.space_spec));
        self.next_slot = 0;
        self.now_s = 0.0;
        self.deferred = 0;
    }

    fn push_error(&mut self, d: &Diagnostic, out: &mut Vec<String>) {
        self.errors += 1;
        self.metrics.observe_error();
        out.push(format!("{{\"error\":{}}}", json_string(&d.message)));
    }

    fn handle_query(&mut self, q: Query, out: &mut Vec<String>) {
        match q {
            Query::Status => {
                // Status is the snapshot command by another name; it counts
                // as an engine command so live and replayed sessions agree.
                let ev = self.handle_engine(EngineCommand::Snapshot, out);
                out.push(self.render_event(&ev));
            }
            Query::Links => {
                let mut s = String::from("{\"ev\":\"links\",\"links\":[");
                let config = self.engine.current_config().clone();
                for (i, sl) in self.engine.space().links().iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let score = self.engine.space().link_oracle_score(sl.id, &config);
                    let _ = write!(
                        s,
                        "[{},{},{},{}]",
                        sl.id.0,
                        json_string(&sl.label),
                        sl.weight,
                        score
                    );
                }
                s.push_str("]}");
                out.push(s);
            }
            Query::TraceTail(n) => {
                let lines = self.tail.tail();
                let skip = lines.len().saturating_sub(n);
                out.extend(lines.into_iter().skip(skip));
            }
            Query::Metrics => {
                out.extend(self.metrics.render().lines().map(str::to_string));
            }
        }
    }

    fn handle_command(&mut self, cmd: EngineCommand, out: &mut Vec<String>) {
        // Episodes are slot-scheduled; everything else is instantaneous in
        // emulated time.
        let slot = match cmd {
            EngineCommand::RunEpisode => Some(self.next_slot),
            _ => None,
        };
        let ev = self.handle_engine(cmd, out);
        if let (
            Some(slot),
            EngineEvent::EpisodeDone {
                episode,
                report,
                metrics,
            },
        ) = (slot, &ev)
        {
            let start = slot as f64 * self.engine.controller().coherence_budget_s;
            self.advance_schedule(slot, report.elapsed_s);
            self.metrics.observe_episode(&EpisodeObs {
                within_coherence: report.within_coherence,
                reverted: report.reverted,
                stale_elements: report.stale_elements as u64,
                deferred_total: self.deferred,
            });
            out.push(self.render_episode(*episode, report, metrics, slot, start));
        } else {
            match &ev {
                EngineEvent::ChurnApplied { .. } => self.metrics.observe_churn(),
                EngineEvent::Rejected { .. } => self.metrics.observe_error(),
                _ => {}
            }
            out.push(self.render_event(&ev));
        }
    }

    /// Runs one engine command, streaming any trace it produced to `out`
    /// and into the tail ring.
    fn handle_engine(&mut self, cmd: EngineCommand, out: &mut Vec<String>) -> EngineEvent {
        let ev = self.engine.handle(cmd, &mut self.tracer);
        let events = std::mem::take(&mut self.tracer.sink_mut().events);
        for tev in &events {
            self.tail.record(tev);
            self.metrics.observe_event(tev);
            out.push(tev.to_jsonl());
        }
        ev
    }

    /// Moves the session clock past a completed episode and books any slots
    /// the overrun swallowed as deferrals.
    fn advance_schedule(&mut self, slot: u64, elapsed_s: f64) {
        let budget = self.engine.controller().coherence_budget_s;
        let start = slot as f64 * budget;
        let end = start + elapsed_s;
        let mut next = slot + 1;
        while (next as f64) * budget < end {
            next += 1;
        }
        self.deferred += next - (slot + 1);
        self.next_slot = next;
        self.now_s = end;
    }

    fn render_event(&self, ev: &EngineEvent) -> String {
        match ev {
            EngineEvent::MeasurementReport { scores } => {
                let mut s = String::from("{\"ev\":\"measure\",\"scores\":[");
                for (i, (id, score)) in scores.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "[{},{}]", id.0, score);
                }
                s.push_str("]}");
                s
            }
            EngineEvent::ChurnApplied { link, live_links } => format!(
                "{{\"ev\":\"churn\",\"link\":{},\"live_links\":{}}}",
                link.0, live_links
            ),
            EngineEvent::EpisodeDone {
                episode,
                report,
                metrics,
            } => {
                // Only `handle_command` produces episodes, and it renders
                // them with their true slot; this fallback reconstructs the
                // start from the recorded clock.
                self.render_episode(
                    *episode,
                    report,
                    metrics,
                    self.next_slot,
                    self.now_s - report.elapsed_s,
                )
            }
            EngineEvent::FaultArmed { ideal } => {
                format!("{{\"ev\":\"fault\",\"ideal\":{ideal}}}")
            }
            EngineEvent::Snapshot(snap) => self.render_snapshot(snap),
            EngineEvent::Rejected { reason } => {
                format!("{{\"error\":{}}}", json_string(reason))
            }
        }
    }

    fn render_episode(
        &self,
        episode: u64,
        report: &SpaceReport,
        metrics: &SpaceMetrics,
        slot: u64,
        start_s: f64,
    ) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"ev\":\"episode\",\"episode\":{},\"slot\":{},\"start_s\":{},\"elapsed_s\":{},\
             \"within_coherence\":{},\"deferred_total\":{}",
            episode, slot, start_s, report.elapsed_s, report.within_coherence, self.deferred,
        );
        let _ = write!(
            s,
            ",\"baseline_score\":{},\"chosen_score\":{},\"measurements\":{},\"reverted\":{},\
             \"stale_elements\":{},\"actuation_frames\":{},\"actuation_retries\":{}",
            report.baseline_score,
            report.chosen_score,
            report.measurements,
            report.reverted,
            report.stale_elements,
            report.actuation_frames,
            report.actuation_retries,
        );
        let m = &metrics.space;
        let _ = write!(
            s,
            ",\"frames_tx\":{},\"frames_lost\":{},\"acks_rx\":{},\"retries\":{},\
             \"failed_elements\":{}}}",
            m.frames_tx, m.frames_lost, m.acks_rx, m.retries, m.failed_elements,
        );
        s
    }

    /// Status/snapshot line. Engine state first, then scheduler health:
    /// `deferred_total` (slots lost to overruns) and `trace_seq` (events
    /// emitted so far — the dedup cursor a metrics rebuild gates on).
    fn render_snapshot(&self, snap: &EngineSnapshot) -> String {
        let mut s = String::with_capacity(192);
        let _ = write!(
            s,
            "{{\"ev\":\"snapshot\",\"commands\":{},\"episodes\":{},\"live_links\":[",
            snap.commands, snap.episodes
        );
        for (i, (id, label, score)) in snap.live_links.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{},{},{}]", id.0, json_string(label), score);
        }
        let _ = write!(
            s,
            "],\"last_score\":{},\"last_within_coherence\":{},\"faults_ideal\":{},\
             \"coherence_budget_s\":{},\"strategy\":{},\"deferred_total\":{},\"trace_seq\":{}}}",
            match snap.last_score {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            },
            match snap.last_within_coherence {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            },
            snap.faults_ideal,
            snap.coherence_budget_s,
            json_string(snap.strategy),
            self.deferred,
            self.tracer.seq(),
        );
        s
    }
}

/// JSON string literal with the usual escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Convenience shared by `replay` and the shell's stdin mode: feeds every
/// line through a session, returning all output lines in order.
pub fn run_session<'a>(lines: impl IntoIterator<Item = &'a str>) -> Vec<String> {
    let mut el = EventLoop::new();
    let mut out = Vec::new();
    for line in lines {
        el.handle_line(line, &mut out);
    }
    out
}
