//! # pressd
//!
//! The PRESS control daemon: a long-running, event-driven shell around the
//! pure [`press_core::EpisodeEngine`].
//!
//! * [`protocol`] — the line-delimited wire grammar (parse + render, no
//!   panics on malformed input);
//! * [`eventloop`] — the deterministic session core: commands in, JSONL
//!   out, episodes scheduled on the coherence-budget slot grid;
//! * [`metrics`] — the session [`press_metrics::MetricsHub`]: live
//!   observation and byte-identical rebuild from recorded output;
//! * [`replay`] — byte-identical reproduction of a recorded session;
//! * [`shell`] — the only impure layer: stdin/stdout, Unix socket, and
//!   stderr wall-clock diagnostics (the press-lint `daemon_shell`
//!   carve-out).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eventloop;
pub mod metrics;
pub mod protocol;
pub mod replay;
pub mod shell;

pub use eventloop::{build_space, run_session, EventLoop, DEFAULT_TAIL_CAPACITY};
pub use metrics::{EpisodeObs, SessionMetrics};
pub use protocol::{
    objective_label, parse_line, render_command, render_controller, render_space, ActuationKind,
    ControllerSpec, Diagnostic, Line, Query, SpaceSpec,
};
pub use replay::{replay_lines, replay_log};
