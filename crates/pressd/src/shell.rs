//! The daemon's I/O shell: the only impure layer of `pressd`.
//!
//! Everything below this module ([`eventloop`](crate::eventloop),
//! [`protocol`](crate::protocol), [`replay`](crate::replay)) is pure; the
//! shell owns stdin/stdout, the Unix socket, and the wall clock (used only
//! for stderr diagnostics — wall time never reaches the output stream, or
//! replay could not be byte-identical). This file and `main.rs` are the
//! press-lint `daemon_shell` carve-out: ambient time sources are allowed
//! here and nowhere else in the workspace's library code.
//!
//! Shell-level niceties that are deliberately *not* protocol: end-of-input
//! terminates a stdin session; the line `quit` over the socket shuts the
//! daemon down; each socket response batch is terminated by a lone `.` so
//! one-shot operator clients know when to stop reading.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Instant;

use crate::eventloop::EventLoop;

/// Runs a session over stdin/stdout until end of input. With `verbose`, a
/// wall-clock summary goes to stderr (never stdout).
pub fn run_stdin(verbose: bool) -> io::Result<()> {
    let started = Instant::now();
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut sink = stdout.lock();
    let mut el = EventLoop::new();
    let mut out = Vec::new();
    for line in stdin.lock().lines() {
        let line = line?;
        el.handle_line(&line, &mut out);
        for l in out.drain(..) {
            writeln!(sink, "{l}")?;
        }
        sink.flush()?;
    }
    if verbose {
        eprintln!(
            "pressd: {} lines in, {} errors, {:.3}s wall",
            el.lines_in(),
            el.errors(),
            started.elapsed().as_secs_f64()
        );
    }
    Ok(())
}

/// Binds `path` and serves connections sequentially until a client sends
/// `quit`. Session state persists across connections — that is the point
/// of the daemon: operators attach, issue a command or two, detach.
pub fn run_socket(path: &Path, verbose: bool) -> io::Result<()> {
    let started = Instant::now();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let mut el = EventLoop::new();
    for stream in listener.incoming() {
        let quit = serve_connection(stream?, &mut el)?;
        if verbose {
            eprintln!(
                "pressd: connection done ({} lines in, {} errors, {:.3}s wall)",
                el.lines_in(),
                el.errors(),
                started.elapsed().as_secs_f64()
            );
        }
        if quit {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Serves one connection. Returns `true` when the client asked the daemon
/// to shut down.
fn serve_connection(stream: UnixStream, el: &mut EventLoop) -> io::Result<bool> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    let mut out = Vec::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(false);
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed == "quit" {
            return Ok(true);
        }
        el.handle_line(trimmed, &mut out);
        for l in out.drain(..) {
            writeln!(writer, "{l}")?;
        }
        writeln!(writer, ".")?;
        writer.flush()?;
    }
}

/// One-shot operator client: sends a single protocol line to a running
/// daemon and returns its response batch (the lines before the `.`
/// terminator).
pub fn send(path: &Path, line: &str) -> io::Result<Vec<String>> {
    let stream = UnixStream::connect(path)?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let reader = BufReader::new(stream);
    let mut out = Vec::new();
    for l in reader.lines() {
        let l = l?;
        if l == "." {
            break;
        }
        out.push(l);
    }
    Ok(out)
}

/// Asks a running daemon to shut down.
pub fn send_quit(path: &Path) -> io::Result<()> {
    let mut stream = UnixStream::connect(path)?;
    writeln!(stream, "quit")?;
    stream.flush()
}
