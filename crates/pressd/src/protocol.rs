//! The `pressd` wire protocol: line-delimited commands in, JSONL out.
//!
//! One text line is one protocol unit. A line is either a *setup directive*
//! (`space …`, `controller …`) configuring the session, an *engine command*
//! (`measure`, `episode`, `snapshot`, `churn …`, `fault …`) mapped onto
//! [`EngineCommand`], or a *loop query* (`status`, `links`,
//! `trace-tail [n]`, `metrics`) answered by the event loop without
//! touching the engine. Blank lines and `#` comments are ignored.
//!
//! The grammar is `verb [key=value]…` with whitespace-separated tokens;
//! vectors are `x,y,z` or `x,y,z@vx,vy,vz`, floats use Rust's shortest
//! round-trip notation, so [`render_command`] followed by [`parse_line`]
//! is lossless (the round-trip property the protocol proptests pin).
//! Malformed input produces a [`Diagnostic`] — the parser never panics.
//!
//! This module is pure: no I/O, no clock, no ambient entropy. That is what
//! makes `pressd replay` byte-identical to the live session that recorded
//! the command log.

use press_control::{BurstSpec, FaultSpec};
use press_core::{
    ActuationMode, ChurnEvent, Controller, EngineCommand, LinkId, LinkObjective, Strategy,
    TransportActuation,
};
use press_phy::Numerology;
use press_propagation::{RadioNode, Vec3};
use press_sdr::{SdrRadio, Sounder};

/// A parse failure: what was wrong with the line. Diagnostics are data —
/// the event loop turns them into error JSONL, and nothing ever panics on
/// protocol input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Human-readable description of the problem.
    pub message: String,
}

impl Diagnostic {
    fn new(message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// How the daemon's lab space is generated: the same deterministic recipe
/// the controller test rigs use (seeded lab geometry, seeded element
/// placement, the paper's passive 2-state elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceSpec {
    /// Seed of the generated lab scene.
    pub lab_seed: u64,
    /// Number of array elements placed.
    pub elements: usize,
    /// Seed of the element-placement draw.
    pub element_seed: u64,
}

impl Default for SpaceSpec {
    fn default() -> SpaceSpec {
        SpaceSpec {
            lab_seed: 17,
            elements: 2,
            element_seed: 4,
        }
    }
}

/// Which actuation mode the session's controller drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationKind {
    /// Instant perfect actuation (no fault path).
    Oracle,
    /// Clean wired control bus with per-element acks.
    Wired,
    /// Low-rate ISM radio with adaptive retry.
    Ism,
}

/// The session controller in plain-data form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerSpec {
    /// Search strategy.
    pub strategy: Strategy,
    /// Single-link objective (space links carry their own).
    pub objective: LinkObjective,
    /// Base engine seed.
    pub seed: u64,
    /// Coherence budget per episode, seconds.
    pub coherence_budget_s: f64,
    /// Sounding frames averaged per measurement.
    pub frames_per_measurement: usize,
    /// Actuation mode.
    pub actuation: ActuationKind,
}

impl Default for ControllerSpec {
    fn default() -> ControllerSpec {
        ControllerSpec {
            strategy: Strategy::Random { budget: 6 },
            objective: LinkObjective::MaxMinSnr,
            seed: 0,
            coherence_budget_s: 0.08,
            frames_per_measurement: 2,
            actuation: ActuationKind::Oracle,
        }
    }
}

impl ControllerSpec {
    /// Builds the runnable controller.
    pub fn build(&self) -> Controller {
        let mut c = Controller::new(self.strategy, self.objective);
        c.seed = self.seed;
        c.coherence_budget_s = self.coherence_budget_s;
        c.frames_per_measurement = self.frames_per_measurement;
        c.actuation = match self.actuation {
            ActuationKind::Oracle => ActuationMode::Oracle,
            ActuationKind::Wired => ActuationMode::Transport(TransportActuation::wired()),
            ActuationKind::Ism => ActuationMode::Transport(TransportActuation::ism()),
        };
        c
    }
}

/// A loop-level query: answered from the event loop's own state (engine
/// snapshot, trace tail) without mutating the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Full engine snapshot.
    Status,
    /// Registered links only.
    Links,
    /// The last `n` retained trace lines.
    TraceTail(usize),
    /// The Prometheus text exposition of the session metrics.
    Metrics,
}

/// One successfully parsed protocol line.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum Line {
    /// Blank line or comment: nothing to do.
    Blank,
    /// Rebuild the session space.
    Space(SpaceSpec),
    /// Rebuild the session controller.
    Controller(ControllerSpec),
    /// An engine command.
    Command(EngineCommand),
    /// A loop query.
    Query(Query),
}

// ---------------------------------------------------------------------------
// field helpers
// ---------------------------------------------------------------------------

fn split_fields<'a>(
    verb: &str,
    tokens: &[&'a str],
    known: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, Diagnostic> {
    let mut out = Vec::with_capacity(tokens.len());
    for tok in tokens {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| Diagnostic::new(format!("{verb}: expected key=value, got `{tok}`")))?;
        if !known.contains(&k) {
            return Err(Diagnostic::new(format!(
                "{verb}: unknown field `{k}` (expected one of {})",
                known.join(", ")
            )));
        }
        out.push((k, v));
    }
    Ok(out)
}

fn get<'a>(verb: &str, fields: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, Diagnostic> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| Diagnostic::new(format!("{verb}: missing field `{key}`")))
}

fn opt<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn parse_f64(verb: &str, key: &str, s: &str) -> Result<f64, Diagnostic> {
    let v: f64 = s
        .parse()
        .map_err(|_| Diagnostic::new(format!("{verb}: `{key}` is not a number: `{s}`")))?;
    if !v.is_finite() {
        return Err(Diagnostic::new(format!(
            "{verb}: `{key}` must be finite, got `{s}`"
        )));
    }
    Ok(v)
}

fn parse_int<T: std::str::FromStr>(verb: &str, key: &str, s: &str) -> Result<T, Diagnostic> {
    s.parse()
        .map_err(|_| Diagnostic::new(format!("{verb}: `{key}` is not a valid integer: `{s}`")))
}

fn parse_triple(verb: &str, key: &str, s: &str) -> Result<Vec3, Diagnostic> {
    let mut it = s.split(',');
    let mut next = |axis: &str| -> Result<f64, Diagnostic> {
        let part = it.next().ok_or_else(|| {
            Diagnostic::new(format!("{verb}: `{key}` needs x,y,z (missing {axis})"))
        })?;
        parse_f64(verb, key, part)
    };
    let v = Vec3::new(next("x")?, next("y")?, next("z")?);
    if it.next().is_some() {
        return Err(Diagnostic::new(format!(
            "{verb}: `{key}` has more than three components: `{s}`"
        )));
    }
    Ok(v)
}

fn parse_node(verb: &str, key: &str, s: &str) -> Result<RadioNode, Diagnostic> {
    let (pos, vel) = match s.split_once('@') {
        Some((p, v)) => (parse_triple(verb, key, p)?, parse_triple(verb, key, v)?),
        None => (parse_triple(verb, key, s)?, Vec3::ZERO),
    };
    let mut node = RadioNode::omni_at(pos);
    node.velocity = vel;
    Ok(node)
}

fn render_node(node: &RadioNode) -> String {
    let p = node.position;
    let v = node.velocity;
    if v == Vec3::ZERO {
        format!("{},{},{}", p.x, p.y, p.z)
    } else {
        format!("{},{},{}@{},{},{}", p.x, p.y, p.z, v.x, v.y, v.z)
    }
}

/// Stable wire label of an objective.
pub fn objective_label(obj: LinkObjective) -> &'static str {
    match obj {
        LinkObjective::MaxMinSnr => "max-min-snr",
        LinkObjective::MaxMeanSnr => "max-mean-snr",
        LinkObjective::Flatness => "flatness",
        LinkObjective::MaxThroughput => "max-throughput",
        LinkObjective::FavorLowBand => "favor-low-band",
        LinkObjective::FavorHighBand => "favor-high-band",
    }
}

fn parse_objective(verb: &str, s: &str) -> Result<LinkObjective, Diagnostic> {
    match s {
        "max-min-snr" => Ok(LinkObjective::MaxMinSnr),
        "max-mean-snr" => Ok(LinkObjective::MaxMeanSnr),
        "flatness" => Ok(LinkObjective::Flatness),
        "max-throughput" => Ok(LinkObjective::MaxThroughput),
        "favor-low-band" => Ok(LinkObjective::FavorLowBand),
        "favor-high-band" => Ok(LinkObjective::FavorHighBand),
        other => Err(Diagnostic::new(format!(
            "{verb}: unknown objective `{other}`"
        ))),
    }
}

fn render_strategy(strategy: Strategy) -> String {
    match strategy {
        Strategy::Exhaustive => "exhaustive".to_string(),
        Strategy::Greedy { max_sweeps } => format!("greedy:{max_sweeps}"),
        Strategy::Random { budget } => format!("random:{budget}"),
        Strategy::Annealing { budget } => format!("annealing:{budget}"),
    }
}

fn parse_strategy(verb: &str, s: &str) -> Result<Strategy, Diagnostic> {
    let (name, arg) = match s.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (s, None),
    };
    let need = |what: &str| -> Result<usize, Diagnostic> {
        let a = arg
            .ok_or_else(|| Diagnostic::new(format!("{verb}: strategy `{name}` needs `:{what}`")))?;
        parse_int(verb, "strategy", a)
    };
    match name {
        "exhaustive" => match arg {
            None => Ok(Strategy::Exhaustive),
            Some(_) => Err(Diagnostic::new(format!(
                "{verb}: strategy `exhaustive` takes no argument"
            ))),
        },
        "greedy" => Ok(Strategy::Greedy {
            max_sweeps: need("max-sweeps")?,
        }),
        "random" => Ok(Strategy::Random {
            budget: need("budget")?,
        }),
        "annealing" => Ok(Strategy::Annealing {
            budget: need("budget")?,
        }),
        other => Err(Diagnostic::new(format!(
            "{verb}: unknown strategy `{other}`"
        ))),
    }
}

// ---------------------------------------------------------------------------
// parse
// ---------------------------------------------------------------------------

/// Parses one protocol line. Never panics: malformed input becomes a
/// [`Diagnostic`].
pub fn parse_line(raw: &str) -> Result<Line, Diagnostic> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Line::Blank);
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let (verb, rest) = match tokens.split_first() {
        Some((v, r)) => (*v, r),
        None => return Ok(Line::Blank),
    };
    match verb {
        "measure" => expect_bare(verb, rest, Line::Command(EngineCommand::Measurement)),
        "episode" => expect_bare(verb, rest, Line::Command(EngineCommand::RunEpisode)),
        "snapshot" => expect_bare(verb, rest, Line::Command(EngineCommand::Snapshot)),
        "status" => expect_bare(verb, rest, Line::Query(Query::Status)),
        "links" => expect_bare(verb, rest, Line::Query(Query::Links)),
        "metrics" => expect_bare(verb, rest, Line::Query(Query::Metrics)),
        "trace-tail" => match rest {
            [] => Ok(Line::Query(Query::TraceTail(usize::MAX))),
            [n] => Ok(Line::Query(Query::TraceTail(parse_int(verb, "n", n)?))),
            _ => Err(Diagnostic::new("trace-tail: expected at most one argument")),
        },
        "space" => {
            let fields = split_fields(verb, rest, &["lab-seed", "elements", "element-seed"])?;
            let mut spec = SpaceSpec::default();
            if let Some(v) = opt(&fields, "lab-seed") {
                spec.lab_seed = parse_int(verb, "lab-seed", v)?;
            }
            if let Some(v) = opt(&fields, "elements") {
                spec.elements = parse_int(verb, "elements", v)?;
            }
            if let Some(v) = opt(&fields, "element-seed") {
                spec.element_seed = parse_int(verb, "element-seed", v)?;
            }
            if spec.elements == 0 {
                return Err(Diagnostic::new("space: `elements` must be at least 1"));
            }
            Ok(Line::Space(spec))
        }
        "controller" => {
            let fields = split_fields(
                verb,
                rest,
                &[
                    "strategy",
                    "objective",
                    "seed",
                    "budget-s",
                    "frames",
                    "actuation",
                ],
            )?;
            let mut spec = ControllerSpec::default();
            if let Some(v) = opt(&fields, "strategy") {
                spec.strategy = parse_strategy(verb, v)?;
            }
            if let Some(v) = opt(&fields, "objective") {
                spec.objective = parse_objective(verb, v)?;
            }
            if let Some(v) = opt(&fields, "seed") {
                spec.seed = parse_int(verb, "seed", v)?;
            }
            if let Some(v) = opt(&fields, "budget-s") {
                spec.coherence_budget_s = parse_f64(verb, "budget-s", v)?;
                if spec.coherence_budget_s <= 0.0 {
                    return Err(Diagnostic::new("controller: `budget-s` must be positive"));
                }
            }
            if let Some(v) = opt(&fields, "frames") {
                spec.frames_per_measurement = parse_int(verb, "frames", v)?;
                if spec.frames_per_measurement < 2 {
                    return Err(Diagnostic::new("controller: `frames` must be at least 2"));
                }
            }
            if let Some(v) = opt(&fields, "actuation") {
                spec.actuation = match v {
                    "oracle" => ActuationKind::Oracle,
                    "wired" => ActuationKind::Wired,
                    "ism" => ActuationKind::Ism,
                    other => {
                        return Err(Diagnostic::new(format!(
                            "controller: unknown actuation `{other}` (oracle, wired, ism)"
                        )))
                    }
                };
            }
            Ok(Line::Controller(spec))
        }
        "churn" => parse_churn(rest),
        "fault" => parse_fault(rest),
        other => Err(Diagnostic::new(format!(
            "unknown command `{other}` (measure, episode, snapshot, status, links, \
             trace-tail, metrics, space, controller, churn, fault)"
        ))),
    }
}

fn expect_bare(verb: &str, rest: &[&str], line: Line) -> Result<Line, Diagnostic> {
    if rest.is_empty() {
        Ok(line)
    } else {
        Err(Diagnostic::new(format!("{verb}: takes no arguments")))
    }
}

fn parse_churn(rest: &[&str]) -> Result<Line, Diagnostic> {
    let (kind, rest) = match rest.split_first() {
        Some((k, r)) => (*k, r),
        None => {
            return Err(Diagnostic::new(
                "churn: expected a sub-verb (assoc, roam, leave)",
            ))
        }
    };
    match kind {
        "assoc" => {
            let verb = "churn assoc";
            let fields = split_fields(verb, rest, &["label", "obj", "w", "tx", "rx", "carrier"])?;
            let label = get(verb, &fields, "label")?.to_string();
            let objective = parse_objective(verb, get(verb, &fields, "obj")?)?;
            let weight = parse_f64(verb, "w", get(verb, &fields, "w")?)?;
            let tx = parse_node(verb, "tx", get(verb, &fields, "tx")?)?;
            let rx = parse_node(verb, "rx", get(verb, &fields, "rx")?)?;
            let carrier = parse_f64(verb, "carrier", get(verb, &fields, "carrier")?)?;
            if carrier <= 0.0 {
                return Err(Diagnostic::new("churn assoc: `carrier` must be positive"));
            }
            let sounder = Sounder::new(
                Numerology::wifi20(carrier),
                SdrRadio::warp(tx),
                SdrRadio::warp(rx),
            );
            Ok(Line::Command(EngineCommand::Churn(ChurnEvent::Associate {
                label,
                sounder,
                objective,
                weight,
            })))
        }
        "roam" => {
            let verb = "churn roam";
            let fields = split_fields(verb, rest, &["id", "to"])?;
            let id: u32 = parse_int(verb, "id", get(verb, &fields, "id")?)?;
            let to = parse_node(verb, "to", get(verb, &fields, "to")?)?;
            Ok(Line::Command(EngineCommand::Churn(ChurnEvent::Roam {
                id: LinkId(id),
                to,
            })))
        }
        "leave" => {
            let verb = "churn leave";
            let fields = split_fields(verb, rest, &["id"])?;
            let id: u32 = parse_int(verb, "id", get(verb, &fields, "id")?)?;
            Ok(Line::Command(EngineCommand::Churn(ChurnEvent::Leave {
                id: LinkId(id),
            })))
        }
        other => Err(Diagnostic::new(format!(
            "churn: unknown sub-verb `{other}` (assoc, roam, leave)"
        ))),
    }
}

fn parse_fault(rest: &[&str]) -> Result<Line, Diagnostic> {
    let verb = "fault";
    if rest == ["clear"] || rest.is_empty() {
        return Ok(Line::Command(EngineCommand::InjectFault(FaultSpec::none())));
    }
    let fields = split_fields(verb, rest, &["burst", "dead", "stuck"])?;
    let mut spec = FaultSpec::none();
    if let Some(v) = opt(&fields, "burst") {
        let parts: Vec<&str> = v.split(',').collect();
        if parts.len() != 4 {
            return Err(Diagnostic::new(
                "fault: `burst` needs p-enter,p-exit,loss-good,loss-bad",
            ));
        }
        let burst = BurstSpec {
            p_enter_burst: parse_f64(verb, "burst", parts[0])?,
            p_exit_burst: parse_f64(verb, "burst", parts[1])?,
            loss_good: parse_f64(verb, "burst", parts[2])?,
            loss_bad: parse_f64(verb, "burst", parts[3])?,
        };
        for (name, p) in [
            ("p-enter", burst.p_enter_burst),
            ("p-exit", burst.p_exit_burst),
            ("loss-good", burst.loss_good),
            ("loss-bad", burst.loss_bad),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(Diagnostic::new(format!(
                    "fault: burst `{name}` must be a probability in [0, 1], got {p}"
                )));
            }
        }
        spec.burst = Some(burst);
    }
    if let Some(v) = opt(&fields, "dead") {
        for part in v.split(',') {
            spec.dead.push(parse_int(verb, "dead", part)?);
        }
    }
    if let Some(v) = opt(&fields, "stuck") {
        for part in v.split(',') {
            let (e, s) = part.split_once(':').ok_or_else(|| {
                Diagnostic::new(format!(
                    "fault: `stuck` entries are element:state, got `{part}`"
                ))
            })?;
            spec.stuck
                .push((parse_int(verb, "stuck", e)?, parse_int(verb, "stuck", s)?));
        }
    }
    Ok(Line::Command(EngineCommand::InjectFault(spec)))
}

// ---------------------------------------------------------------------------
// render
// ---------------------------------------------------------------------------

/// Serializes an engine command back to its wire line. Round-trips through
/// [`parse_line`] losslessly (floats use shortest round-trip notation).
pub fn render_command(cmd: &EngineCommand) -> String {
    match cmd {
        EngineCommand::Measurement => "measure".to_string(),
        EngineCommand::RunEpisode => "episode".to_string(),
        EngineCommand::Snapshot => "snapshot".to_string(),
        EngineCommand::Churn(ChurnEvent::Associate {
            label,
            sounder,
            objective,
            weight,
        }) => format!(
            "churn assoc label={} obj={} w={} tx={} rx={} carrier={}",
            label,
            objective_label(*objective),
            weight,
            render_node(&sounder.tx.node),
            render_node(&sounder.rx.node),
            sounder.num.carrier_hz,
        ),
        EngineCommand::Churn(ChurnEvent::Roam { id, to }) => {
            format!("churn roam id={} to={}", id.0, render_node(to))
        }
        EngineCommand::Churn(ChurnEvent::Leave { id }) => format!("churn leave id={}", id.0),
        EngineCommand::InjectFault(spec) => render_fault(spec),
    }
}

fn render_fault(spec: &FaultSpec) -> String {
    if spec.is_ideal() {
        return "fault clear".to_string();
    }
    let mut s = "fault".to_string();
    if let Some(b) = &spec.burst {
        s.push_str(&format!(
            " burst={},{},{},{}",
            b.p_enter_burst, b.p_exit_burst, b.loss_good, b.loss_bad
        ));
    }
    if !spec.dead.is_empty() {
        let ids: Vec<String> = spec.dead.iter().map(|e| e.to_string()).collect();
        s.push_str(&format!(" dead={}", ids.join(",")));
    }
    if !spec.stuck.is_empty() {
        let pairs: Vec<String> = spec
            .stuck
            .iter()
            .map(|(e, st)| format!("{e}:{st}"))
            .collect();
        s.push_str(&format!(" stuck={}", pairs.join(",")));
    }
    s
}

/// Serializes a space directive.
pub fn render_space(spec: &SpaceSpec) -> String {
    format!(
        "space lab-seed={} elements={} element-seed={}",
        spec.lab_seed, spec.elements, spec.element_seed
    )
}

/// Serializes a controller directive.
pub fn render_controller(spec: &ControllerSpec) -> String {
    let actuation = match spec.actuation {
        ActuationKind::Oracle => "oracle",
        ActuationKind::Wired => "wired",
        ActuationKind::Ism => "ism",
    };
    format!(
        "controller strategy={} objective={} seed={} budget-s={} frames={} actuation={}",
        render_strategy(spec.strategy),
        objective_label(spec.objective),
        spec.seed,
        spec.coherence_budget_s,
        spec.frames_per_measurement,
        actuation
    )
}
