//! `pressd` — the PRESS control daemon and its operator CLI.
//!
//! With no subcommand the daemon runs a session over stdin/stdout (or,
//! with `--socket`, serves a persistent session on a Unix socket). The
//! operator subcommands are one-shot clients of a running daemon; `replay`
//! needs no daemon at all — it reproduces a recorded session's output
//! byte-for-byte from the pure core.
//!
//! Like `shell.rs`, this file sits in the press-lint `daemon_shell`
//! carve-out: it may touch the wall clock and process environment, which
//! the pure modules may not.

use std::path::{Path, PathBuf};

use pressd::replay::replay_log;
use pressd::shell;

const USAGE: &str = "\
pressd — PRESS control daemon

usage:
  pressd [--verbose]                 run a session over stdin/stdout
  pressd --socket PATH [--verbose]   serve a persistent session on a Unix socket
  pressd replay FILE                 reproduce a recorded session (no daemon needed)
  pressd status --socket PATH        engine snapshot from a running daemon
  pressd links --socket PATH         registered links and their current scores
  pressd episode --socket PATH       run one optimization episode
  pressd trace-tail [N] --socket PATH   last N retained trace lines
  pressd metrics --socket PATH       Prometheus text exposition of session metrics
  pressd fault-inject ARGS... --socket PATH   arm a fault plan (fault-line syntax)
  pressd quit --socket PATH          shut a running daemon down

The wire protocol (one command per line) is documented in DESIGN.md.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    let mut socket: Option<PathBuf> = None;
    let mut verbose = false;
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                i += 1;
                match args.get(i) {
                    Some(p) => socket = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("pressd: --socket needs a path\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--verbose" => verbose = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => positional.push(other),
        }
        i += 1;
    }

    match positional.split_first() {
        None => {
            let res = match &socket {
                Some(path) => shell::run_socket(path, verbose),
                None => shell::run_stdin(verbose),
            };
            fail_on(res)
        }
        Some((&"replay", rest)) => match rest {
            [file] => match std::fs::read_to_string(file) {
                Ok(log) => {
                    for line in replay_log(&log) {
                        println!("{line}");
                    }
                    0
                }
                Err(e) => {
                    eprintln!("pressd: cannot read {file}: {e}");
                    1
                }
            },
            _ => {
                eprintln!("pressd: replay takes exactly one log file\n{USAGE}");
                2
            }
        },
        Some((&"status", [])) => client(socket.as_deref(), "status"),
        Some((&"links", [])) => client(socket.as_deref(), "links"),
        Some((&"metrics", [])) => client(socket.as_deref(), "metrics"),
        Some((&"episode", [])) => client(socket.as_deref(), "episode"),
        Some((&"trace-tail", rest)) => match rest {
            [] => client(socket.as_deref(), "trace-tail"),
            [n] => client(socket.as_deref(), &format!("trace-tail {n}")),
            _ => {
                eprintln!("pressd: trace-tail takes at most one count\n{USAGE}");
                2
            }
        },
        Some((&"fault-inject", rest)) => {
            let mut line = "fault".to_string();
            for arg in rest {
                line.push(' ');
                line.push_str(arg);
            }
            client(socket.as_deref(), &line)
        }
        Some((&"quit", [])) => match &socket {
            Some(path) => fail_on(shell::send_quit(path)),
            None => {
                eprintln!("pressd: quit needs --socket <path>");
                2
            }
        },
        Some((other, _)) => {
            eprintln!("pressd: unknown subcommand `{other}`\n{USAGE}");
            2
        }
    }
}

fn client(socket: Option<&Path>, line: &str) -> i32 {
    let Some(path) = socket else {
        eprintln!("pressd: this subcommand needs --socket <path>");
        return 2;
    };
    match shell::send(path, line) {
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
            0
        }
        Err(e) => {
            eprintln!("pressd: {e}");
            1
        }
    }
}

fn fail_on(res: std::io::Result<()>) -> i32 {
    match res {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("pressd: {e}");
            1
        }
    }
}
