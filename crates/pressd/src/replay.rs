//! Deterministic replay: a recorded command log in, the session's exact
//! output stream back out.
//!
//! Because [`EventLoop`] is pure — no wall
//! clock, no ambient entropy, no I/O — replaying a log reproduces the
//! live session's JSONL byte-for-byte. CI pins this by running the same
//! log twice and diffing the outputs.

use crate::eventloop::EventLoop;

/// Replays a full command log (one protocol line per element), returning
/// every output line the live session would have produced, in order.
pub fn replay_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> Vec<String> {
    let mut el = EventLoop::new();
    let mut out = Vec::new();
    for line in lines {
        el.handle_line(line, &mut out);
    }
    out
}

/// Replays a log given as one string of newline-separated protocol lines.
pub fn replay_log(log: &str) -> Vec<String> {
    replay_lines(log.lines())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SESSION: &str = "\
# a tiny session
space lab-seed=17 elements=2 element-seed=4
controller strategy=exhaustive objective=max-min-snr seed=3 budget-s=0.08 frames=2 actuation=oracle
churn assoc label=lab obj=max-min-snr w=1 tx=7,5,1.5 rx=6.8,4,1.5 carrier=2462000000
measure
episode
snapshot
";

    #[test]
    fn replaying_the_same_log_twice_is_byte_identical() {
        let a = replay_log(SESSION);
        let b = replay_log(SESSION);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn replay_matches_an_incrementally_fed_live_session() {
        let mut el = EventLoop::new();
        let mut live = Vec::new();
        for line in SESSION.lines() {
            el.handle_line(line, &mut live);
        }
        assert_eq!(live, replay_log(SESSION));
    }
}
