//! Session-level metrics: the daemon's [`MetricsHub`] plus the glue that
//! keeps a live hub and a log-rebuilt hub byte-identical.
//!
//! Two code paths feed the same observe calls:
//!
//! * **Live** — the event loop hands over every trace event it drains from
//!   the engine, every episode summary it renders, every churn round and
//!   every error line, as structured data, in output order.
//! * **Rebuild** — [`SessionMetrics::from_session_output`] parses a
//!   recorded session's *output* lines back into those same calls.
//!
//! Because both paths start from the same pre-registered series set (the
//! [`TraceAggregator`] and [`SloSet`] constructors register every family
//! up front) and make identical observe calls in identical order, the two
//! hubs render byte-identical Prometheus text — the replay-consistency
//! property PR 9 established for event output, extended to metrics.
//!
//! One wrinkle: a `trace-tail` query copies retained trace lines into the
//! session output, so a rebuild would see those events twice. Trace
//! sequence numbers are session-monotonic (the tracer survives engine
//! rebuilds), so [`observe_event`](SessionMetrics::observe_event) simply
//! skips any event whose `seq` it has already consumed.

use press_metrics::{MetricsHub, SeriesId, SloInputs, SloSet, TraceAggregator};
use press_trace::{parse_flat_json, Event};

/// Family name: protocol lines rejected with an error reply.
pub const SESSION_ERRORS_TOTAL: &str = "press_session_errors_total";
/// Family name: link churn rounds applied.
pub const CHURN_ROUNDS_TOTAL: &str = "press_churn_rounds_total";

/// One episode summary, as the event loop renders it (the subset the SLO
/// derivation needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeObs {
    /// Did the episode fit the coherence budget?
    pub within_coherence: bool,
    /// Did verification revert it?
    pub reverted: bool,
    /// Elements left stale (realized ≠ chosen).
    pub stale_elements: u64,
    /// The scheduler's running deferral total at summary time.
    pub deferred_total: u64,
}

/// The daemon's metrics state: hub, aggregator, SLO set, and the seq gate.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMetrics {
    hub: MetricsHub,
    agg: TraceAggregator,
    slo: SloSet,
    errors: SeriesId,
    churn_rounds: SeriesId,
    /// First trace sequence number not yet consumed — the dedup gate for
    /// `trace-tail` replays of already-observed events.
    next_seq: u64,
    inputs: SloInputs,
}

impl Default for SessionMetrics {
    fn default() -> Self {
        SessionMetrics::new()
    }
}

impl SessionMetrics {
    /// A fresh metrics state with the complete series set registered (all
    /// zeros). Two fresh instances render identical exposition.
    pub fn new() -> SessionMetrics {
        let mut hub = MetricsHub::new();
        let agg = TraceAggregator::new(&mut hub);
        let slo = SloSet::register(&mut hub);
        let errors = hub.counter(
            SESSION_ERRORS_TOTAL,
            "Protocol lines rejected with an error reply.",
            &[],
        );
        let churn_rounds = hub.counter(CHURN_ROUNDS_TOTAL, "Link churn rounds applied.", &[]);
        let mut m = SessionMetrics {
            hub,
            agg,
            slo,
            errors,
            churn_rounds,
            next_seq: 0,
            inputs: SloInputs::default(),
        };
        m.slo.update(&mut m.hub, &m.inputs);
        m
    }

    /// Folds one trace event in. Events whose `seq` was already consumed
    /// (trace-tail replays) are skipped.
    pub fn observe_event(&mut self, ev: &Event) {
        if ev.seq < self.next_seq {
            return;
        }
        self.next_seq = ev.seq + 1;
        self.agg.observe(&mut self.hub, ev);
    }

    /// Folds one episode summary in and refreshes the SLO gauges.
    pub fn observe_episode(&mut self, obs: &EpisodeObs) {
        self.inputs.episodes += 1;
        self.inputs.within_coherence += u64::from(obs.within_coherence);
        self.inputs.reverts += u64::from(obs.reverted);
        self.inputs.stale_elements += obs.stale_elements;
        self.inputs.element_episodes += self.agg.last_basis_elements();
        self.inputs.deferred_slots = obs.deferred_total;
        self.slo.update(&mut self.hub, &self.inputs);
    }

    /// Counts one applied churn round.
    pub fn observe_churn(&mut self) {
        self.hub.inc(self.churn_rounds);
    }

    /// Counts one rejected protocol line (parse error or engine refusal).
    pub fn observe_error(&mut self) {
        self.hub.inc(self.errors);
    }

    /// The Prometheus text exposition of everything observed so far.
    pub fn render(&self) -> String {
        self.hub.render()
    }

    /// The hub (read side) — for tests and the SLO getters.
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// Rebuilds the metrics state from a recorded session's *output*
    /// lines. Renders byte-identically to the live hub that produced the
    /// output (see module docs).
    pub fn from_session_output<'a>(lines: impl IntoIterator<Item = &'a str>) -> SessionMetrics {
        let mut m = SessionMetrics::new();
        for line in lines {
            m.observe_output_line(line);
        }
        m
    }

    /// Folds one recorded output line into the rebuild. Lines that carry
    /// no metrics signal (snapshots, link lists, ok acknowledgements,
    /// exposition text) are ignored.
    pub fn observe_output_line(&mut self, line: &str) {
        if let Some(ev) = Event::from_jsonl(line) {
            self.observe_event(&ev);
        } else if line.starts_with("{\"ev\":\"episode\"") {
            if let Some(obs) = parse_episode_line(line) {
                self.observe_episode(&obs);
            }
        } else if line.starts_with("{\"ev\":\"churn\"") {
            self.observe_churn();
        } else if line.starts_with("{\"error\"") {
            self.observe_error();
        }
    }
}

/// Picks the SLO-relevant fields out of a rendered episode summary line.
fn parse_episode_line(line: &str) -> Option<EpisodeObs> {
    let fields = parse_flat_json(line)?;
    let get = |k: &str| {
        fields
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    Some(EpisodeObs {
        within_coherence: get("within_coherence")?.parse().ok()?,
        reverted: get("reverted")?.parse().ok()?,
        stale_elements: get("stale_elements")?.parse().ok()?,
        deferred_total: get("deferred_total")?.parse().ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_metrics::{slo, EPISODES_TOTAL, FRAMES_TOTAL};
    use press_trace::EventKind;

    fn frame_event(seq: u64) -> Event {
        Event {
            seq,
            t_s: 0.0,
            wall_s: None,
            kind: EventKind::FrameTx {
                element: 0,
                attempt: 0,
            },
        }
    }

    #[test]
    fn fresh_instances_render_identically() {
        assert_eq!(
            SessionMetrics::new().render(),
            SessionMetrics::new().render()
        );
        assert!(!SessionMetrics::new().render().is_empty());
    }

    #[test]
    fn seq_gate_skips_replayed_events() {
        let mut m = SessionMetrics::new();
        m.observe_event(&frame_event(0));
        m.observe_event(&frame_event(1));
        // A trace-tail replay re-delivers the same lines; both are gated.
        m.observe_event(&frame_event(0));
        m.observe_event(&frame_event(1));
        m.observe_event(&frame_event(2));
        assert_eq!(
            m.hub().counter_named(FRAMES_TOTAL, &[("event", "tx")]),
            Some(3)
        );
    }

    #[test]
    fn episode_summaries_drive_the_slo_gauges() {
        let mut m = SessionMetrics::new();
        m.observe_episode(&EpisodeObs {
            within_coherence: true,
            reverted: false,
            stale_elements: 0,
            deferred_total: 0,
        });
        m.observe_episode(&EpisodeObs {
            within_coherence: false,
            reverted: true,
            stale_elements: 1,
            deferred_total: 2,
        });
        assert_eq!(m.hub().gauge_named(slo::COHERENCE_RATIO, &[]), Some(0.5));
        assert_eq!(m.hub().gauge_named(slo::REVERT_RATIO, &[]), Some(0.5));
        assert_eq!(m.hub().gauge_named(slo::DEFERRED_SLOTS, &[]), Some(2.0));
    }

    #[test]
    fn rebuild_parses_summary_churn_and_error_lines() {
        let output = [
            "{\"seq\":0,\"t_s\":0,\"kind\":\"episode_start\",\"seed\":1,\"links\":1,\"strategy\":\"greedy\"}",
            "{\"seq\":1,\"t_s\":0.5,\"kind\":\"episode_end\",\"score\":2,\"measurements\":4,\"reverted\":false}",
            "{\"ev\":\"episode\",\"episode\":0,\"slot\":0,\"start_s\":0,\"elapsed_s\":0.5,\
             \"within_coherence\":true,\"deferred_total\":0,\"baseline_score\":1,\"chosen_score\":2,\
             \"measurements\":4,\"reverted\":false,\"stale_elements\":0,\"actuation_frames\":0,\
             \"actuation_retries\":0,\"frames_tx\":0,\"frames_lost\":0,\"acks_rx\":0,\"retries\":0,\
             \"failed_elements\":0}",
            "{\"ev\":\"churn\",\"link\":0,\"live_links\":1}",
            "{\"error\":\"unknown command `bogus`\"}",
            "{\"ok\":\"space\",\"lab_seed\":17,\"elements\":2,\"element_seed\":4}",
        ];
        let m = SessionMetrics::from_session_output(output.iter().copied());
        assert_eq!(m.hub().counter_named(EPISODES_TOTAL, &[]), Some(1));
        assert_eq!(m.hub().counter_named(CHURN_ROUNDS_TOTAL, &[]), Some(1));
        assert_eq!(m.hub().counter_named(SESSION_ERRORS_TOTAL, &[]), Some(1));
        assert_eq!(m.hub().gauge_named(slo::COHERENCE_RATIO, &[]), Some(1.0));
    }
}
