//! Building-scale scenes: the Figure 1 vision.
//!
//! The paper's architecture drawing shows PRESS elements embedded in the
//! walls of a *building*, not a single bench. This module builds a
//! two-room office floor — an interior partition wall with a doorway —
//! so experiments can study the regime the vision actually targets:
//! links that cross rooms, where the doorway and the partition dominate
//! propagation and wall-embedded elements sit exactly where the energy
//! must turn.

use crate::geometry::{Aabb, Plane, Vec3};
use crate::material::Material;
use crate::scene::{RadioNode, Scene, Wall};
use press_math::consts::WIFI_CHANNEL_11_HZ;
use press_math::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the two-room office floor.
#[derive(Debug, Clone)]
pub struct OfficeConfig {
    /// Carrier frequency, Hz.
    pub carrier_hz: f64,
    /// Total floor width (x), meters — split into two rooms.
    pub floor_w: f64,
    /// Floor depth (y), meters.
    pub floor_d: f64,
    /// Ceiling height, meters.
    pub floor_h: f64,
    /// Doorway center along y, meters.
    pub door_y: f64,
    /// Doorway width, meters.
    pub door_w: f64,
    /// Partition material.
    pub partition: Material,
    /// Clutter scatterers per room.
    pub scatterers_per_room: usize,
}

impl Default for OfficeConfig {
    fn default() -> Self {
        OfficeConfig {
            carrier_hz: WIFI_CHANNEL_11_HZ,
            floor_w: 12.0,
            floor_d: 7.0,
            floor_h: 3.0,
            door_y: 2.0,
            door_w: 0.9,
            partition: Material::DRYWALL,
            scatterers_per_room: 10,
        }
    }
}

/// A generated office floor: scene + canonical AP/client placements.
#[derive(Debug, Clone)]
pub struct OfficeFloor {
    /// The environment (both rooms, the partition, clutter).
    pub scene: Scene,
    /// An access point in room A (west).
    pub ap: RadioNode,
    /// A client in room B (east) — NLOS through the partition/doorway.
    pub client: RadioNode,
    /// The partition's x position.
    pub partition_x: f64,
    /// Doorway center.
    pub door_center: Vec3,
    /// Candidate PRESS positions flanking the doorway on both sides.
    pub doorway_candidates: Vec<Vec3>,
}

impl OfficeFloor {
    /// Builds the floor from a seed.
    ///
    /// The interior partition is modelled as both a bounded reflecting wall
    /// (specular echoes on each side) and two blocking slabs that leave a
    /// doorway gap (transmission/diffraction through everything else) —
    /// the door is the energy's main way between rooms.
    pub fn generate(config: &OfficeConfig, seed: u64) -> OfficeFloor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scene = Scene::shoebox(
            config.carrier_hz,
            config.floor_w,
            config.floor_d,
            config.floor_h,
            Material::DRYWALL,
        );
        let px = config.floor_w / 2.0;

        // The partition as a reflector (both rooms see its specular bounce).
        scene.walls.push(Wall {
            plane: Plane::new(Vec3::new(px, 0.0, 0.0), Vec3::X),
            material: config.partition.clone(),
            bounds: Some(Aabb::new(
                Vec3::new(px - 0.06, 0.0, 0.0),
                Vec3::new(px + 0.06, config.floor_d, config.floor_h),
            )),
        });
        // The partition as blockage: two slabs leaving the doorway open.
        let door_lo = config.door_y - config.door_w / 2.0;
        let door_hi = config.door_y + config.door_w / 2.0;
        scene.add_obstacle(
            Aabb::new(
                Vec3::new(px - 0.06, 0.0, 0.0),
                Vec3::new(px + 0.06, door_lo, config.floor_h),
            ),
            config.partition.clone(),
        );
        scene.add_obstacle(
            Aabb::new(
                Vec3::new(px - 0.06, door_hi, 0.0),
                Vec3::new(px + 0.06, config.floor_d, config.floor_h),
            ),
            config.partition.clone(),
        );
        // Above the doorway a lintel remains (door is 2.1 m tall).
        scene.add_obstacle(
            Aabb::new(
                Vec3::new(px - 0.06, door_lo, 2.1),
                Vec3::new(px + 0.06, door_hi, config.floor_h),
            ),
            config.partition.clone(),
        );

        // Clutter in each room.
        for room in 0..2 {
            let x_lo = if room == 0 { 0.5 } else { px + 0.5 };
            let x_hi = if room == 0 {
                px - 0.5
            } else {
                config.floor_w - 0.5
            };
            for _ in 0..config.scatterers_per_room {
                let pos = Vec3::new(
                    rng.gen_range(x_lo..x_hi),
                    rng.gen_range(0.5..config.floor_d - 0.5),
                    rng.gen_range(0.5..config.floor_h - 0.5),
                );
                let mag = 3.0 * (20.0f64 / 3.0).powf(rng.gen::<f64>());
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                scene.add_scatterer(pos, Complex64::from_polar(mag, phase));
            }
        }

        // AP deep in room A, client deep in room B, away from the door line.
        let ap = RadioNode::omni_at(Vec3::new(px * 0.35, config.floor_d * 0.75, 2.2));
        let client = RadioNode::omni_at(Vec3::new(
            config.floor_w - px * 0.3,
            config.floor_d * 0.7,
            1.2,
        ));

        // Candidate PRESS positions: flanking the doorway at head height on
        // both faces of the partition (wall-embedded, as Figure 1 draws).
        let mut doorway_candidates = Vec::new();
        for side in [-0.25f64, 0.25] {
            let x = px + side;
            let mut y = (door_lo - 1.2).max(0.3);
            while y <= (door_hi + 1.2).min(config.floor_d - 0.3) {
                for z in [1.0, 1.6, 2.2] {
                    doorway_candidates.push(Vec3::new(x, y, z));
                }
                y += 0.3;
            }
        }

        let door_center = Vec3::new(px, config.door_y, 1.2);
        OfficeFloor {
            scene,
            ap,
            client,
            partition_x: px,
            door_center,
            doorway_candidates,
        }
    }
}

/// Parameters of the multi-floor campus: floors × rooms × arrays ×
/// client population.
#[derive(Debug, Clone)]
pub struct CampusConfig {
    /// Carrier frequency, Hz.
    pub carrier_hz: f64,
    /// Number of floors stacked in z.
    pub floors: usize,
    /// Rooms per floor, laid out along x.
    pub rooms_per_floor: usize,
    /// Width of each room (x), meters.
    pub room_w: f64,
    /// Floor depth (y), meters.
    pub floor_d: f64,
    /// Per-floor ceiling height, meters.
    pub floor_h: f64,
    /// Doorway center along y in each interior partition, meters.
    pub door_y: f64,
    /// Doorway width, meters.
    pub door_w: f64,
    /// Interior partition material.
    pub partition: Material,
    /// Inter-floor slab material (the RF isolation between floors).
    pub slab: Material,
    /// Clutter scatterers per room.
    pub scatterers_per_room: usize,
    /// Client population per room.
    pub clients_per_room: usize,
    /// Wall-embedded PRESS candidate positions per interior doorway.
    pub elements_per_doorway: usize,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            carrier_hz: WIFI_CHANNEL_11_HZ,
            floors: 2,
            rooms_per_floor: 3,
            room_w: 6.0,
            floor_d: 7.0,
            floor_h: 3.0,
            door_y: 2.0,
            door_w: 0.9,
            partition: Material::DRYWALL,
            slab: Material::CONCRETE,
            scatterers_per_room: 4,
            clients_per_room: 2,
            elements_per_doorway: 4,
        }
    }
}

/// One room of a generated [`Campus`]: its AP and client population.
#[derive(Debug, Clone)]
pub struct CampusRoom {
    /// Floor index (0 = ground).
    pub floor: usize,
    /// Room index along x on its floor.
    pub room: usize,
    /// The room's access point, near the ceiling.
    pub ap: RadioNode,
    /// Client endpoints scattered through the room.
    pub clients: Vec<RadioNode>,
}

/// A generated multi-floor campus: the scene, the per-room population, and
/// the wall-embedded PRESS candidate positions.
///
/// This is [`OfficeFloor`] grown to ROADMAP scale: `floors ×
/// rooms_per_floor` rooms, each with an AP and `clients_per_room` clients,
/// interior partitions with doorways on every floor, and concrete slabs
/// between floors. The slabs are what makes campus *sharding* physical:
/// elements on one floor contribute negligibly to links on another, so the
/// RF-coupling graph decomposes per floor.
#[derive(Debug, Clone)]
pub struct Campus {
    /// The environment (all floors, partitions, slabs, clutter).
    pub scene: Scene,
    /// Rooms in (floor, room) lexicographic order.
    pub rooms: Vec<CampusRoom>,
    /// Candidate PRESS positions flanking every interior doorway, in
    /// (floor, partition) order.
    pub doorway_candidates: Vec<Vec3>,
}

impl Campus {
    /// Builds the campus from a seed. One `StdRng` drives every draw in
    /// (floor, room) order, so the result is a pure function of
    /// `(config, seed)`.
    pub fn generate(config: &CampusConfig, seed: u64) -> Campus {
        assert!(config.floors >= 1 && config.rooms_per_floor >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let total_w = config.room_w * config.rooms_per_floor as f64;
        let total_h = config.floor_h * config.floors as f64;
        let mut scene = Scene::shoebox(
            config.carrier_hz,
            total_w,
            config.floor_d,
            total_h,
            Material::DRYWALL,
        );

        // Concrete slabs between floors: reflector (each floor sees its
        // ceiling/floor bounce) + full-footprint blockage.
        for f in 1..config.floors {
            let z = config.floor_h * f as f64;
            scene.walls.push(Wall {
                plane: Plane::new(Vec3::new(0.0, 0.0, z), Vec3::Z),
                material: config.slab.clone(),
                bounds: Some(Aabb::new(
                    Vec3::new(0.0, 0.0, z - 0.1),
                    Vec3::new(total_w, config.floor_d, z + 0.1),
                )),
            });
            scene.add_obstacle(
                Aabb::new(
                    Vec3::new(0.0, 0.0, z - 0.1),
                    Vec3::new(total_w, config.floor_d, z + 0.1),
                ),
                config.slab.clone(),
            );
        }

        // Interior partitions with doorways, per floor — the OfficeFloor
        // construction repeated at every (floor, partition).
        let door_lo = config.door_y - config.door_w / 2.0;
        let door_hi = config.door_y + config.door_w / 2.0;
        let mut doorway_candidates = Vec::new();
        for f in 0..config.floors {
            let z0 = config.floor_h * f as f64;
            let z1 = z0 + config.floor_h;
            for p in 1..config.rooms_per_floor {
                let px = config.room_w * p as f64;
                scene.walls.push(Wall {
                    plane: Plane::new(Vec3::new(px, 0.0, 0.0), Vec3::X),
                    material: config.partition.clone(),
                    bounds: Some(Aabb::new(
                        Vec3::new(px - 0.06, 0.0, z0),
                        Vec3::new(px + 0.06, config.floor_d, z1),
                    )),
                });
                scene.add_obstacle(
                    Aabb::new(
                        Vec3::new(px - 0.06, 0.0, z0),
                        Vec3::new(px + 0.06, door_lo, z1),
                    ),
                    config.partition.clone(),
                );
                scene.add_obstacle(
                    Aabb::new(
                        Vec3::new(px - 0.06, door_hi, z0),
                        Vec3::new(px + 0.06, config.floor_d, z1),
                    ),
                    config.partition.clone(),
                );
                scene.add_obstacle(
                    Aabb::new(
                        Vec3::new(px - 0.06, door_lo, z0 + 2.1),
                        Vec3::new(px + 0.06, door_hi, z1),
                    ),
                    config.partition.clone(),
                );
                // Wall-embedded candidates flanking this doorway: sides
                // alternate, heights cycle a fixed ladder.
                for k in 0..config.elements_per_doorway {
                    let side = if k % 2 == 0 { -0.25 } else { 0.25 };
                    let z = z0 + [1.0, 1.6, 2.2][(k / 2) % 3];
                    let y = config.door_y + 0.35 * (k / 6) as f64;
                    doorway_candidates.push(Vec3::new(px + side, y, z));
                }
            }
        }

        // Population: clutter, AP and clients per room, in (floor, room)
        // order so the draw sequence is deterministic.
        let mut rooms = Vec::with_capacity(config.floors * config.rooms_per_floor);
        for f in 0..config.floors {
            let z0 = config.floor_h * f as f64;
            for p in 0..config.rooms_per_floor {
                let x_lo = config.room_w * p as f64 + 0.5;
                let x_hi = config.room_w * (p + 1) as f64 - 0.5;
                for _ in 0..config.scatterers_per_room {
                    let pos = Vec3::new(
                        rng.gen_range(x_lo..x_hi),
                        rng.gen_range(0.5..config.floor_d - 0.5),
                        rng.gen_range(z0 + 0.5..z0 + config.floor_h - 0.5),
                    );
                    let mag = 3.0 * (20.0f64 / 3.0).powf(rng.gen::<f64>());
                    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                    scene.add_scatterer(pos, Complex64::from_polar(mag, phase));
                }
                let ap = RadioNode::omni_at(Vec3::new(
                    config.room_w * (p as f64 + 0.5),
                    config.floor_d * 0.75,
                    z0 + 2.2,
                ));
                let clients = (0..config.clients_per_room)
                    .map(|_| {
                        RadioNode::omni_at(Vec3::new(
                            rng.gen_range(x_lo + 0.3..x_hi - 0.3),
                            rng.gen_range(0.8..config.floor_d - 0.8),
                            z0 + rng.gen_range(0.9..1.5),
                        ))
                    })
                    .collect();
                rooms.push(CampusRoom {
                    floor: f,
                    room: p,
                    ap,
                    clients,
                });
            }
        }

        Campus {
            scene,
            rooms,
            doorway_candidates,
        }
    }

    /// Total AP→client links the population implies (one per client).
    pub fn n_links(&self) -> usize {
        let mut n = 0;
        for r in &self.rooms {
            n += r.clients.len();
        }
        n
    }

    /// AP→client endpoint pairs in (floor, room, client) order — the
    /// registration order a campus `SmartSpace` uses.
    pub fn links(&self) -> Vec<(RadioNode, RadioNode)> {
        let mut out = Vec::with_capacity(self.n_links());
        for r in &self.rooms {
            for c in &r.clients {
                out.push((r.ap.clone(), c.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_geometry_sane() {
        let floor = OfficeFloor::generate(&OfficeConfig::default(), 1);
        assert!(floor.scene.walls.len() >= 7, "6 shell walls + partition");
        assert_eq!(floor.scene.obstacles.len(), 3, "two slabs + lintel");
        assert!(!floor.doorway_candidates.is_empty());
        // AP and client on opposite sides of the partition.
        assert!(floor.ap.position.x < floor.partition_x);
        assert!(floor.client.position.x > floor.partition_x);
    }

    #[test]
    fn cross_room_link_is_obstructed_but_door_is_clear() {
        let cfg = OfficeConfig::default();
        let floor = OfficeFloor::generate(&cfg, 1);
        assert!(floor
            .scene
            .is_obstructed(floor.ap.position, floor.client.position));
        // A ray through the middle of the doorway is clear.
        let a = Vec3::new(2.0, cfg.door_y, 1.2);
        let b = Vec3::new(10.0, cfg.door_y, 1.2);
        assert!(!floor.scene.is_obstructed(a, b));
    }

    #[test]
    fn cross_room_channel_is_weak_but_alive() {
        let floor = OfficeFloor::generate(&OfficeConfig::default(), 2);
        let paths = floor.scene.paths(&floor.ap, &floor.client);
        assert!(!paths.is_empty());
        let total: f64 = paths.iter().map(|p| p.gain.norm_sqr()).sum();
        let db = 10.0 * total.log10();
        // Through a drywall partition: tens of dB below a same-room link
        // but far above the noise floor.
        assert!((-110.0..-50.0).contains(&db), "cross-room power {db} dB");
    }

    #[test]
    fn doorway_candidates_flank_the_partition() {
        let floor = OfficeFloor::generate(&OfficeConfig::default(), 3);
        for c in &floor.doorway_candidates {
            assert!((c.x - floor.partition_x).abs() < 0.5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = OfficeFloor::generate(&OfficeConfig::default(), 9);
        let b = OfficeFloor::generate(&OfficeConfig::default(), 9);
        assert_eq!(a.scene.scatterers.len(), b.scene.scatterers.len());
        assert_eq!(
            a.scene.scatterers[3].position,
            b.scene.scatterers[3].position
        );
    }

    #[test]
    fn campus_geometry_and_population_sane() {
        let cfg = CampusConfig::default();
        let campus = Campus::generate(&cfg, 1);
        assert_eq!(campus.rooms.len(), cfg.floors * cfg.rooms_per_floor);
        assert_eq!(
            campus.n_links(),
            cfg.floors * cfg.rooms_per_floor * cfg.clients_per_room
        );
        // 6 shell walls + 1 slab + 2 partitions per floor.
        assert_eq!(
            campus.scene.walls.len(),
            6 + (cfg.floors - 1) + cfg.floors * (cfg.rooms_per_floor - 1)
        );
        assert_eq!(
            campus.doorway_candidates.len(),
            cfg.floors * (cfg.rooms_per_floor - 1) * cfg.elements_per_doorway
        );
        // Every room's population stays inside the room's box.
        for r in &campus.rooms {
            let (x_lo, x_hi) = (cfg.room_w * r.room as f64, cfg.room_w * (r.room + 1) as f64);
            let (z_lo, z_hi) = (
                cfg.floor_h * r.floor as f64,
                cfg.floor_h * (r.floor + 1) as f64,
            );
            for n in std::iter::once(&r.ap).chain(&r.clients) {
                assert!((x_lo..x_hi).contains(&n.position.x), "{:?}", n.position);
                assert!((z_lo..z_hi).contains(&n.position.z), "{:?}", n.position);
            }
        }
    }

    #[test]
    fn campus_cross_floor_is_concrete_blocked() {
        let campus = Campus::generate(&CampusConfig::default(), 2);
        let ground = &campus.rooms[0];
        let upstairs = campus.rooms.iter().find(|r| r.floor == 1).unwrap();
        assert!(campus
            .scene
            .is_obstructed(ground.ap.position, upstairs.ap.position));
    }

    #[test]
    fn campus_deterministic_per_seed() {
        let cfg = CampusConfig::default();
        let a = Campus::generate(&cfg, 7);
        let b = Campus::generate(&cfg, 7);
        assert_eq!(a.scene.scatterers.len(), b.scene.scatterers.len());
        for (ra, rb) in a.rooms.iter().zip(&b.rooms) {
            assert_eq!(ra.ap.position, rb.ap.position);
            for (ca, cb) in ra.clients.iter().zip(&rb.clients) {
                assert_eq!(ca.position, cb.position);
            }
        }
        let c = Campus::generate(&cfg, 8);
        assert_ne!(
            a.rooms[0].clients[0].position, c.rooms[0].clients[0].position,
            "different seeds should move the population"
        );
    }
}
