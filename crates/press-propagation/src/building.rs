//! Building-scale scenes: the Figure 1 vision.
//!
//! The paper's architecture drawing shows PRESS elements embedded in the
//! walls of a *building*, not a single bench. This module builds a
//! two-room office floor — an interior partition wall with a doorway —
//! so experiments can study the regime the vision actually targets:
//! links that cross rooms, where the doorway and the partition dominate
//! propagation and wall-embedded elements sit exactly where the energy
//! must turn.

use crate::geometry::{Aabb, Plane, Vec3};
use crate::material::Material;
use crate::scene::{RadioNode, Scene, Wall};
use press_math::consts::WIFI_CHANNEL_11_HZ;
use press_math::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the two-room office floor.
#[derive(Debug, Clone)]
pub struct OfficeConfig {
    /// Carrier frequency, Hz.
    pub carrier_hz: f64,
    /// Total floor width (x), meters — split into two rooms.
    pub floor_w: f64,
    /// Floor depth (y), meters.
    pub floor_d: f64,
    /// Ceiling height, meters.
    pub floor_h: f64,
    /// Doorway center along y, meters.
    pub door_y: f64,
    /// Doorway width, meters.
    pub door_w: f64,
    /// Partition material.
    pub partition: Material,
    /// Clutter scatterers per room.
    pub scatterers_per_room: usize,
}

impl Default for OfficeConfig {
    fn default() -> Self {
        OfficeConfig {
            carrier_hz: WIFI_CHANNEL_11_HZ,
            floor_w: 12.0,
            floor_d: 7.0,
            floor_h: 3.0,
            door_y: 2.0,
            door_w: 0.9,
            partition: Material::DRYWALL,
            scatterers_per_room: 10,
        }
    }
}

/// A generated office floor: scene + canonical AP/client placements.
#[derive(Debug, Clone)]
pub struct OfficeFloor {
    /// The environment (both rooms, the partition, clutter).
    pub scene: Scene,
    /// An access point in room A (west).
    pub ap: RadioNode,
    /// A client in room B (east) — NLOS through the partition/doorway.
    pub client: RadioNode,
    /// The partition's x position.
    pub partition_x: f64,
    /// Doorway center.
    pub door_center: Vec3,
    /// Candidate PRESS positions flanking the doorway on both sides.
    pub doorway_candidates: Vec<Vec3>,
}

impl OfficeFloor {
    /// Builds the floor from a seed.
    ///
    /// The interior partition is modelled as both a bounded reflecting wall
    /// (specular echoes on each side) and two blocking slabs that leave a
    /// doorway gap (transmission/diffraction through everything else) —
    /// the door is the energy's main way between rooms.
    pub fn generate(config: &OfficeConfig, seed: u64) -> OfficeFloor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scene = Scene::shoebox(
            config.carrier_hz,
            config.floor_w,
            config.floor_d,
            config.floor_h,
            Material::DRYWALL,
        );
        let px = config.floor_w / 2.0;

        // The partition as a reflector (both rooms see its specular bounce).
        scene.walls.push(Wall {
            plane: Plane::new(Vec3::new(px, 0.0, 0.0), Vec3::X),
            material: config.partition.clone(),
            bounds: Some(Aabb::new(
                Vec3::new(px - 0.06, 0.0, 0.0),
                Vec3::new(px + 0.06, config.floor_d, config.floor_h),
            )),
        });
        // The partition as blockage: two slabs leaving the doorway open.
        let door_lo = config.door_y - config.door_w / 2.0;
        let door_hi = config.door_y + config.door_w / 2.0;
        scene.add_obstacle(
            Aabb::new(
                Vec3::new(px - 0.06, 0.0, 0.0),
                Vec3::new(px + 0.06, door_lo, config.floor_h),
            ),
            config.partition.clone(),
        );
        scene.add_obstacle(
            Aabb::new(
                Vec3::new(px - 0.06, door_hi, 0.0),
                Vec3::new(px + 0.06, config.floor_d, config.floor_h),
            ),
            config.partition.clone(),
        );
        // Above the doorway a lintel remains (door is 2.1 m tall).
        scene.add_obstacle(
            Aabb::new(
                Vec3::new(px - 0.06, door_lo, 2.1),
                Vec3::new(px + 0.06, door_hi, config.floor_h),
            ),
            config.partition.clone(),
        );

        // Clutter in each room.
        for room in 0..2 {
            let x_lo = if room == 0 { 0.5 } else { px + 0.5 };
            let x_hi = if room == 0 {
                px - 0.5
            } else {
                config.floor_w - 0.5
            };
            for _ in 0..config.scatterers_per_room {
                let pos = Vec3::new(
                    rng.gen_range(x_lo..x_hi),
                    rng.gen_range(0.5..config.floor_d - 0.5),
                    rng.gen_range(0.5..config.floor_h - 0.5),
                );
                let mag = 3.0 * (20.0f64 / 3.0).powf(rng.gen::<f64>());
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                scene.add_scatterer(pos, Complex64::from_polar(mag, phase));
            }
        }

        // AP deep in room A, client deep in room B, away from the door line.
        let ap = RadioNode::omni_at(Vec3::new(px * 0.35, config.floor_d * 0.75, 2.2));
        let client = RadioNode::omni_at(Vec3::new(
            config.floor_w - px * 0.3,
            config.floor_d * 0.7,
            1.2,
        ));

        // Candidate PRESS positions: flanking the doorway at head height on
        // both faces of the partition (wall-embedded, as Figure 1 draws).
        let mut doorway_candidates = Vec::new();
        for side in [-0.25f64, 0.25] {
            let x = px + side;
            let mut y = (door_lo - 1.2).max(0.3);
            while y <= (door_hi + 1.2).min(config.floor_d - 0.3) {
                for z in [1.0, 1.6, 2.2] {
                    doorway_candidates.push(Vec3::new(x, y, z));
                }
                y += 0.3;
            }
        }

        let door_center = Vec3::new(px, config.door_y, 1.2);
        OfficeFloor {
            scene,
            ap,
            client,
            partition_x: px,
            door_center,
            doorway_candidates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_geometry_sane() {
        let floor = OfficeFloor::generate(&OfficeConfig::default(), 1);
        assert!(floor.scene.walls.len() >= 7, "6 shell walls + partition");
        assert_eq!(floor.scene.obstacles.len(), 3, "two slabs + lintel");
        assert!(!floor.doorway_candidates.is_empty());
        // AP and client on opposite sides of the partition.
        assert!(floor.ap.position.x < floor.partition_x);
        assert!(floor.client.position.x > floor.partition_x);
    }

    #[test]
    fn cross_room_link_is_obstructed_but_door_is_clear() {
        let cfg = OfficeConfig::default();
        let floor = OfficeFloor::generate(&cfg, 1);
        assert!(floor
            .scene
            .is_obstructed(floor.ap.position, floor.client.position));
        // A ray through the middle of the doorway is clear.
        let a = Vec3::new(2.0, cfg.door_y, 1.2);
        let b = Vec3::new(10.0, cfg.door_y, 1.2);
        assert!(!floor.scene.is_obstructed(a, b));
    }

    #[test]
    fn cross_room_channel_is_weak_but_alive() {
        let floor = OfficeFloor::generate(&OfficeConfig::default(), 2);
        let paths = floor.scene.paths(&floor.ap, &floor.client);
        assert!(!paths.is_empty());
        let total: f64 = paths.iter().map(|p| p.gain.norm_sqr()).sum();
        let db = 10.0 * total.log10();
        // Through a drywall partition: tens of dB below a same-room link
        // but far above the noise floor.
        assert!((-110.0..-50.0).contains(&db), "cross-room power {db} dB");
    }

    #[test]
    fn doorway_candidates_flank_the_partition() {
        let floor = OfficeFloor::generate(&OfficeConfig::default(), 3);
        for c in &floor.doorway_candidates {
            assert!((c.x - floor.partition_x).abs() < 0.5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = OfficeFloor::generate(&OfficeConfig::default(), 9);
        let b = OfficeFloor::generate(&OfficeConfig::default(), 9);
        assert_eq!(a.scene.scatterers.len(), b.scene.scatterers.len());
        assert_eq!(
            a.scene.scatterers[3].position,
            b.scene.scatterers[3].position
        );
    }
}
