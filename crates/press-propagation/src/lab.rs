//! Prebuilt scenes mirroring the paper's experimental setups.
//!
//! §3 of the paper describes: a controlled indoor setting; transmitter and
//! receiver with 2 dBi omni antennas; the direct path blocked (for all
//! passive-element experiments) to obtain a channel with significant
//! reflected components; PRESS antennas placed at random grid positions
//! 1–2 m from both endpoints; and a scattering environment that changes with
//! each placement ("due to the movement of our experiment equipment").
//!
//! [`LabSetup`] rebuilds exactly that, with a seed in place of the lab.

use crate::geometry::{Aabb, Vec3};
use crate::material::Material;
use crate::scene::{RadioNode, Scene};
use press_math::consts::WIFI_CHANNEL_11_HZ;
use press_math::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the emulated laboratory.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Carrier frequency, Hz. The paper uses Wi-Fi channel 11.
    pub carrier_hz: f64,
    /// Room width (x), meters.
    pub room_w: f64,
    /// Room depth (y), meters.
    pub room_d: f64,
    /// Room height (z), meters.
    pub room_h: f64,
    /// Number of large flat reflecting panels (cabinet faces, whiteboards,
    /// windows). Their specular echoes spread over one Friis length, so a
    /// panel across the room still returns a strong, long-delay echo — the
    /// dominant source of in-band frequency selectivity indoors.
    pub n_panels: usize,
    /// Number of random clutter scatterers.
    pub n_scatterers: usize,
    /// Scatterer reflectivity magnitude range (log-uniform).
    pub scatter_reflectivity: (f64, f64),
    /// Whether a metal slab blocks the direct TX→RX path (the paper's NLOS
    /// configuration used for all passive-element experiments).
    pub block_los: bool,
    /// Half-width (y) of the blocking slab, meters.
    pub slab_half_width: f64,
    /// Vertical extent of the slab `(z_min, z_max)`, meters (clamped to the
    /// room height).
    pub slab_z: (f64, f64),
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            carrier_hz: WIFI_CHANNEL_11_HZ,
            // Office scale: far wall echoes arrive 30-120 ns after the short
            // bounces, the delay spread a 20 MHz channel needs to show the
            // frequency-selective fading the paper measured.
            room_w: 14.0,
            room_d: 11.0,
            room_h: 3.0,
            // Reflectivity is referenced to two 1 m Friis legs; for a
            // bistatic radar cross-section sigma the equivalent is
            // sqrt(4*pi*sigma)/lambda, i.e. ~8..25 for furniture-sized
            // (0.05..1 m^2) clutter at 2.4 GHz.
            n_panels: 8,
            n_scatterers: 40,
            scatter_reflectivity: (3.0, 10.0),
            block_los: true,
            slab_half_width: 0.9,
            slab_z: (0.0, f64::MAX),
        }
    }
}

/// A fully instantiated laboratory: scene + endpoints + candidate grid for
/// PRESS element placement.
#[derive(Debug, Clone)]
pub struct LabSetup {
    /// The environment.
    pub scene: Scene,
    /// Transmitter node.
    pub tx: RadioNode,
    /// Receiver node.
    pub rx: RadioNode,
    /// Candidate PRESS element positions (the paper's placement grid,
    /// 1–2 m from both endpoints).
    pub element_grid: Vec<Vec3>,
    /// The seed used, for reporting.
    pub seed: u64,
}

impl LabSetup {
    /// Builds the paper's exploratory-study lab from a seed.
    ///
    /// Endpoints sit across the room at table height (1.5 m); when
    /// `block_los` is set a floor-to-ceiling metal slab sits between them,
    /// exactly as the paper "blocks the direct path between the transmitter
    /// and receiver". Scatterers land at seeded random positions with
    /// log-uniform reflectivities and uniform phases.
    pub fn generate(config: &LabConfig, seed: u64) -> LabSetup {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scene = Scene::shoebox(
            config.carrier_hz,
            config.room_w,
            config.room_d,
            config.room_h,
            Material::DRYWALL,
        );

        // A short bench link (~1.5 m) like the paper's: with the endpoints
        // close together every environment echo must detour via the room
        // (>= 5 m round trips) while PRESS elements sit 1-2 m away — the
        // micro-geometry that makes element backscatter competitive with
        // the surviving environment paths. Deliberately asymmetric in every
        // axis so no two wall echoes arrive at the same delay.
        let cx = config.room_w * 0.4;
        let tx = RadioNode::omni_at(Vec3::new(cx - 0.7, config.room_d * 0.40, 1.35));
        let rx = RadioNode::omni_at(Vec3::new(cx + 0.7, config.room_d * 0.44, 1.62));

        if config.block_los {
            // A rack-sized metal slab between the endpoints: shadows the
            // direct ray and the short floor/ceiling bounces, leaving the
            // longer wall echoes — the paper's NLOS channel "with significant
            // reflected components" and strong frequency selectivity.
            let mid = (tx.position + rx.position) * 0.5;
            let (z_lo, z_hi) = config.slab_z;
            scene.add_obstacle(
                Aabb::new(
                    Vec3::new(mid.x - 0.05, mid.y - config.slab_half_width, z_lo.max(0.0)),
                    Vec3::new(
                        mid.x + 0.05,
                        mid.y + config.slab_half_width,
                        z_hi.min(config.room_h),
                    ),
                ),
                Material::METAL,
            );
        }

        // Large flat panels at random positions, axis-aligned (cabinet rows
        // and whiteboards hang parallel to walls), random facing, strongly
        // reflective materials. They enter the tracer as bounded walls, so
        // they produce first- and second-order specular echoes.
        // The bench area around the endpoints is kept clear (panels >= 2.5 m,
        // scatterers >= 1.5 m away): a reflector parked next to an antenna
        // would dominate the link and flatten the channel.
        let place = |rng: &mut StdRng, min_dist: f64| -> Vec3 {
            loop {
                let p = Vec3::new(
                    rng.gen_range(0.5..config.room_w - 0.5),
                    rng.gen_range(0.5..config.room_d - 0.5),
                    rng.gen_range(0.5..config.room_h - 0.5),
                );
                if p.distance(tx.position) >= min_dist && p.distance(rx.position) >= min_dist {
                    return p;
                }
            }
        };

        for _ in 0..config.n_panels {
            let mut center = place(&mut rng, 2.5);
            center.z = 1.5;
            let along_x = rng.gen::<bool>();
            let (normal, half) = if along_x {
                (Vec3::Y, Vec3::new(0.8, 0.02, 1.0))
            } else {
                (Vec3::X, Vec3::new(0.02, 0.8, 1.0))
            };
            // A mid-room echo crosses desks, racks and people: give each
            // panel a random excess loss on top of its intrinsic material.
            let material = Material {
                name: "obstructed-panel",
                reflection_loss_db: rng.gen_range(12.0..25.0),
                transmission_loss_db: 12.0,
            };
            scene.walls.push(crate::scene::Wall {
                plane: crate::geometry::Plane::new(center, normal),
                material,
                bounds: Some(Aabb::new(center - half, center + half)),
            });
        }

        for _ in 0..config.n_scatterers {
            let pos = place(&mut rng, 1.5);
            let (lo, hi) = config.scatter_reflectivity;
            let mag = lo * (hi / lo).powf(rng.gen::<f64>());
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            scene.add_scatterer(pos, Complex64::from_polar(mag, phase));
        }

        // Placement grid 1–2 m from both endpoints: sample points in the room
        // and keep the ones inside the annulus intersection, as the paper's
        // random grid placement does.
        let mut element_grid = Vec::new();
        let step = 0.1;
        let mut y = 0.5;
        while y < config.room_d - 0.5 {
            let mut x = 0.5;
            while x < config.room_w - 0.5 {
                let p = Vec3::new(x, y, 1.5);
                let d_tx = p.distance(tx.position);
                let d_rx = p.distance(rx.position);
                // The experimenter places elements where they can actually
                // reflect: clear views to both endpoints.
                let clear =
                    !scene.is_obstructed(p, tx.position) && !scene.is_obstructed(p, rx.position);
                if (1.0..=2.0).contains(&d_tx) && (1.0..=2.0).contains(&d_rx) && clear {
                    element_grid.push(p);
                }
                x += step;
            }
            y += step;
        }

        LabSetup {
            scene,
            tx,
            rx,
            element_grid,
            seed,
        }
    }

    /// Draws `n` distinct element positions from the placement grid.
    ///
    /// Panics if the grid has fewer than `n` candidates (a misconfigured
    /// room; the default geometry yields dozens).
    pub fn random_element_positions(&self, n: usize, rng: &mut StdRng) -> Vec<Vec3> {
        assert!(
            self.element_grid.len() >= n,
            "placement grid has {} candidates, need {n}",
            self.element_grid.len()
        );
        let mut indices: Vec<usize> = (0..self.element_grid.len()).collect();
        // Partial Fisher-Yates.
        for i in 0..n {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices[..n].iter().map(|&i| self.element_grid[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lab_is_nlos() {
        let lab = LabSetup::generate(&LabConfig::default(), 1);
        assert!(lab.scene.is_obstructed(lab.tx.position, lab.rx.position));
    }

    #[test]
    fn los_variant_is_clear() {
        let cfg = LabConfig {
            block_los: false,
            ..LabConfig::default()
        };
        let lab = LabSetup::generate(&cfg, 1);
        assert!(!lab.scene.is_obstructed(lab.tx.position, lab.rx.position));
    }

    #[test]
    fn grid_respects_annulus() {
        let lab = LabSetup::generate(&LabConfig::default(), 2);
        assert!(!lab.element_grid.is_empty());
        for p in &lab.element_grid {
            let d_tx = p.distance(lab.tx.position);
            let d_rx = p.distance(lab.rx.position);
            assert!((1.0..=2.0).contains(&d_tx), "d_tx={d_tx}");
            assert!((1.0..=2.0).contains(&d_rx), "d_rx={d_rx}");
        }
    }

    #[test]
    fn same_seed_same_lab() {
        let a = LabSetup::generate(&LabConfig::default(), 99);
        let b = LabSetup::generate(&LabConfig::default(), 99);
        assert_eq!(a.scene.scatterers.len(), b.scene.scatterers.len());
        for (s, t) in a.scene.scatterers.iter().zip(&b.scene.scatterers) {
            assert_eq!(s.position, t.position);
            assert_eq!(s.reflectivity, t.reflectivity);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = LabSetup::generate(&LabConfig::default(), 1);
        let b = LabSetup::generate(&LabConfig::default(), 2);
        assert_ne!(
            a.scene.scatterers[0].position,
            b.scene.scatterers[0].position
        );
    }

    #[test]
    fn random_positions_distinct() {
        let lab = LabSetup::generate(&LabConfig::default(), 5);
        let mut rng = StdRng::seed_from_u64(0);
        let pts = lab.random_element_positions(3, &mut rng);
        assert_eq!(pts.len(), 3);
        assert_ne!(pts[0], pts[1]);
        assert_ne!(pts[1], pts[2]);
        assert_ne!(pts[0], pts[2]);
    }

    #[test]
    fn scatterer_count_matches_config() {
        let cfg = LabConfig {
            n_scatterers: 7,
            ..LabConfig::default()
        };
        let lab = LabSetup::generate(&cfg, 3);
        assert_eq!(lab.scene.scatterers.len(), 7);
    }
}
