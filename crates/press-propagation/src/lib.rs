//! # press-propagation
//!
//! Geometric multipath propagation engine for the PRESS reproduction.
//!
//! The paper's measured effects — frequency nulls, null motion under
//! reconfiguration, MIMO condition-number change — are all interference
//! phenomena of coherently superposed propagation paths. This crate builds
//! those paths from first principles:
//!
//! * [`geometry`] — 3-D vectors, planes (mirror images), AABBs (blockage);
//! * [`material`] — reflection/transmission coefficients of building materials;
//! * [`antenna`] — gain patterns (2 dBi omni endpoints, 14 dBi parabolic
//!   PRESS elements, dipoles);
//! * [`path`] — the paper's standard signal model `{φ_l, τ_l, γ_l, θ_l}` and
//!   frequency-response synthesis;
//! * [`scene`] — rooms, obstacles, scatterers and the image-method tracer;
//! * [`fading`] — Doppler, coherence time, and slow channel drift;
//! * [`lab`] — seeded rebuilds of the paper's §3 laboratory setups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod antenna;
pub mod building;
pub mod diffraction;
pub mod fading;
pub mod geometry;
pub mod lab;
pub mod material;
pub mod path;
pub mod scene;

pub use antenna::{Antenna, Pattern};
pub use building::{Campus, CampusConfig, CampusRoom, OfficeConfig, OfficeFloor};
pub use geometry::{Aabb, Plane, Vec3};
pub use lab::{LabConfig, LabSetup};
pub use material::Material;
pub use path::{frequency_response, frequency_response_into, PathKind, SignalPath};
pub use scene::{RadioNode, Scene, TraceConfig};
