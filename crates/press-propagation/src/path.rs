//! Signal paths: the standard geometric channel model.
//!
//! The paper (§2) adopts the standard signal model of Tse & Viswanath (ref. 31 of the paper):
//! each path `l` is characterized by its angle of departure φ_l, propagation
//! delay τ_l, Doppler shift γ_l, angle of arrival θ_l, and a complex gain.
//! The wireless channel at frequency `f` is the coherent superposition
//!
//! `H(f) = Σ_l g_l · e^{−j 2π f τ_l}`.
//!
//! PRESS works by adding, removing, and re-phasing a controllable subset of
//! these paths — so the path list is the single source of truth for
//! everything downstream.

use press_math::Complex64;

/// How a path came to exist. Carried for diagnostics, for the inverse
/// problem (which needs to know which paths are controllable), and for
/// blocking/occlusion bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Direct line-of-sight path.
    LineOfSight,
    /// Specular reflection off wall with the given index (first order).
    WallReflection {
        /// Index into the scene's wall list.
        wall: usize,
    },
    /// Second-order reflection off two walls.
    DoubleReflection {
        /// First wall index.
        first: usize,
        /// Second wall index.
        second: usize,
    },
    /// Diffuse bounce off a point scatterer.
    Scatter {
        /// Index into the scene's scatterer list.
        scatterer: usize,
    },
    /// Path through a PRESS element (TX → element → RX). The element's
    /// reflection coefficient multiplies this path's gain at query time.
    PressElement {
        /// Index of the element in the array.
        element: usize,
    },
}

impl PathKind {
    /// True for paths whose coefficient PRESS can change at runtime.
    pub fn is_controllable(&self) -> bool {
        matches!(self, PathKind::PressElement { .. })
    }
}

/// One propagation path between a transmitter and a receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalPath {
    /// Complex amplitude gain at the carrier: path loss × antenna gains ×
    /// reflection losses × carrier phase. Dimensionless amplitude ratio.
    pub gain: Complex64,
    /// Excess propagation delay over the air, seconds.
    pub delay_s: f64,
    /// Doppler shift of this path, Hz (nonzero only when endpoints or
    /// environment move).
    pub doppler_hz: f64,
    /// Angle of departure at the transmitter (azimuth, radians).
    pub aod_rad: f64,
    /// Angle of arrival at the receiver (azimuth, radians).
    pub aoa_rad: f64,
    /// Provenance of the path.
    pub kind: PathKind,
}

impl SignalPath {
    /// Contribution of this path to the channel at absolute frequency
    /// `freq_hz`, at elapsed time `t_s` (Doppler rotates the phase over time).
    ///
    /// The carrier phase `e^{−j2πf·τ}` is folded in here, *not* pre-baked into
    /// `gain`, so that sweeping subcarrier frequencies exposes the
    /// frequency-selective fading the paper's figures revolve around.
    #[inline]
    pub fn response_at(&self, freq_hz: f64, t_s: f64) -> Complex64 {
        let phase = -2.0 * std::f64::consts::PI * (freq_hz * self.delay_s - self.doppler_hz * t_s);
        self.gain * Complex64::cis(phase)
    }

    /// Power of this path in dB relative to a 0 dB (unit-gain) path.
    pub fn power_db(&self) -> f64 {
        20.0 * self.gain.abs().log10()
    }
}

/// Computes the frequency response of a set of paths at the given absolute
/// frequencies (Hz), at time `t_s`.
pub fn frequency_response(paths: &[SignalPath], freqs_hz: &[f64], t_s: f64) -> Vec<Complex64> {
    let mut out = Vec::new();
    frequency_response_into(paths, freqs_hz, t_s, &mut out);
    out
}

/// Like [`frequency_response`] but accumulating into a caller-owned buffer,
/// so per-evaluation hot loops (campaign sweeps, basis construction) reuse
/// one allocation. The buffer is cleared and refilled; summation order per
/// frequency is identical to [`frequency_response`].
pub fn frequency_response_into(
    paths: &[SignalPath],
    freqs_hz: &[f64],
    t_s: f64,
    out: &mut Vec<Complex64>,
) {
    out.clear();
    out.reserve(freqs_hz.len());
    out.extend(freqs_hz.iter().map(|&f| {
        paths
            .iter()
            .map(|p| p.response_at(f, t_s))
            .sum::<Complex64>()
    }));
}

/// RMS delay spread of a path set, seconds — the standard second central
/// moment of the power-delay profile. Drives coherence *bandwidth*.
pub fn rms_delay_spread(paths: &[SignalPath]) -> f64 {
    let total: f64 = paths.iter().map(|p| p.gain.norm_sqr()).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mean: f64 = paths
        .iter()
        .map(|p| p.gain.norm_sqr() * p.delay_s)
        .sum::<f64>()
        / total;
    let second: f64 = paths
        .iter()
        .map(|p| p.gain.norm_sqr() * (p.delay_s - mean).powi(2))
        .sum::<f64>()
        / total;
    second.sqrt()
}

/// Approximate 50%-correlation coherence bandwidth, `1/(5·σ_τ)` (Rappaport).
pub fn coherence_bandwidth_hz(paths: &[SignalPath]) -> f64 {
    let sigma = rms_delay_spread(paths);
    if sigma <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / (5.0 * sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(gain: f64, delay_ns: f64) -> SignalPath {
        SignalPath {
            gain: Complex64::real(gain),
            delay_s: delay_ns * 1e-9,
            doppler_hz: 0.0,
            aod_rad: 0.0,
            aoa_rad: 0.0,
            kind: PathKind::LineOfSight,
        }
    }

    #[test]
    fn single_path_magnitude_is_flat() {
        let p = [path(0.5, 30.0)];
        let freqs: Vec<f64> = (0..10).map(|k| 2.4e9 + k as f64 * 1e6).collect();
        for h in frequency_response(&p, &freqs, 0.0) {
            assert!((h.abs() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn two_equal_paths_produce_null() {
        // Delay difference of 100 ns => nulls every 10 MHz; at offsets where
        // 2*pi*f*dtau is an odd multiple of pi the paths cancel.
        let paths = [path(1.0, 0.0), path(1.0, 100.0)];
        // f*dtau = k + 0.5  =>  f = (k+0.5)/100ns. Pick k so f near 2.4e9.
        let k = (2.4e9f64 * 100e-9).floor();
        let f_null = (k + 0.5) / 100e-9;
        let f_peak = k / 100e-9;
        let h = frequency_response(&paths, &[f_null, f_peak], 0.0);
        assert!(h[0].abs() < 1e-9, "null depth {}", h[0].abs());
        assert!((h[1].abs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn doppler_rotates_phase_over_time() {
        let mut p = path(1.0, 0.0);
        p.doppler_hz = 10.0;
        let h0 = p.response_at(2.4e9, 0.0);
        let h_quarter = p.response_at(2.4e9, 0.025); // quarter period of 10 Hz
        assert!((h0.arg() - 0.0).abs() < 1e-12);
        assert!((h_quarter.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn delay_spread_of_single_path_is_zero() {
        assert_eq!(rms_delay_spread(&[path(1.0, 55.0)]), 0.0);
    }

    #[test]
    fn delay_spread_two_equal_paths() {
        // Two equal-power paths at 0 and 100 ns: sigma = 50 ns.
        let paths = [path(1.0, 0.0), path(1.0, 100.0)];
        assert!((rms_delay_spread(&paths) - 50e-9).abs() < 1e-12);
        assert!((coherence_bandwidth_hz(&paths) - 4e6).abs() < 1.0);
    }

    #[test]
    fn empty_paths_infinite_coherence() {
        assert!(coherence_bandwidth_hz(&[]).is_infinite());
    }

    #[test]
    fn controllability_flag() {
        assert!(PathKind::PressElement { element: 0 }.is_controllable());
        assert!(!PathKind::LineOfSight.is_controllable());
        assert!(!PathKind::Scatter { scatterer: 3 }.is_controllable());
    }

    #[test]
    fn power_db_of_unit_path_is_zero() {
        assert!(path(1.0, 0.0).power_db().abs() < 1e-12);
        assert!((path(0.1, 0.0).power_db() + 20.0).abs() < 1e-12);
    }
}
