//! Temporal channel dynamics: Doppler spectra, coherence, and slow drift.
//!
//! PRESS must act *within the channel coherence time* (§2 of the paper:
//! ~80 ms while almost stationary, ~6 ms at running speed). This module
//! provides the quantitative side of that budget: Clarke-model temporal
//! autocorrelation, coherence-time estimation, and a seeded random-walk
//! evolution that the measurement campaigns use to emulate the slow
//! environmental drift observed between experimental repetitions.

use crate::path::SignalPath;
use press_math::consts::SPEED_OF_LIGHT;
use press_math::Complex64;
use rand::Rng;

/// Bessel function of the first kind, order zero — `J₀(x)`.
///
/// Series expansion for small |x|, Hankel asymptotic form beyond; accurate to
/// ~1e-7 over the range the Clarke model needs.
pub fn bessel_j0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 8.0 {
        // Power series: sum (-1)^k (x^2/4)^k / (k!)^2.
        let q = ax * ax / 4.0;
        let mut term = 1.0;
        let mut sum = 1.0;
        for k in 1..40 {
            term *= -q / ((k * k) as f64);
            sum += term;
            if term.abs() < 1e-16 {
                break;
            }
        }
        sum
    } else {
        // Hankel asymptotic expansion (Numerical Recipes coefficients).
        let z = 8.0 / ax;
        let y = z * z;
        let p0 = 1.0
            + y * (-0.1098628627e-2
                + y * (0.2734510407e-4 + y * (-0.2073370639e-5 + y * 0.2093887211e-6)));
        let q0 = -0.1562499995e-1
            + y * (0.1430488765e-3
                + y * (-0.6911147651e-5 + y * (0.7621095161e-6 - y * 0.934935152e-7)));
        let xx = ax - std::f64::consts::FRAC_PI_4;
        (std::f64::consts::FRAC_2_PI / ax).sqrt() * (xx.cos() * p0 - z * xx.sin() * q0)
    }
}

/// Maximum Doppler shift (Hz) for an endpoint moving at `speed_mps` with
/// carrier `carrier_hz`.
#[inline]
pub fn max_doppler_hz(speed_mps: f64, carrier_hz: f64) -> f64 {
    speed_mps * carrier_hz / SPEED_OF_LIGHT
}

/// Clarke-model temporal autocorrelation of the channel after `tau_s`
/// seconds: `J₀(2π f_d τ)`.
pub fn clarke_autocorrelation(tau_s: f64, max_doppler: f64) -> f64 {
    bessel_j0(2.0 * std::f64::consts::PI * max_doppler * tau_s)
}

/// Coherence time by the Tse & Viswanath convention the paper cites:
/// `T_c = 1/(4·D_s)` with Doppler spread `D_s = 2·f_d`, i.e. `1/(8·f_d)`.
///
/// This reproduces the paper's quoted budgets: ~80 ms while almost
/// stationary (0.5 mph) and ~6 ms at running speed (6 mph) at 2.4 GHz.
pub fn coherence_time_s(max_doppler: f64) -> f64 {
    if max_doppler <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / (8.0 * max_doppler)
    }
}

/// A slow, seeded random drift applied to environment paths between
/// measurements — emulating the residual motion (people, equipment, air
/// currents) a real lab exhibits between the paper's experimental
/// repetitions.
///
/// Each step perturbs every path's phase by a zero-mean Gaussian of the
/// configured standard deviation and its amplitude by a small relative
/// factor. PRESS-element paths drift too (the environment legs move), but
/// their switched reflection coefficient is applied elsewhere, so control
/// stays exact.
#[derive(Debug, Clone)]
pub struct ChannelDrift {
    /// Per-step phase jitter standard deviation, radians.
    pub phase_sigma_rad: f64,
    /// Per-step relative amplitude jitter standard deviation.
    pub amplitude_sigma: f64,
}

impl ChannelDrift {
    /// Drift magnitudes representative of a quiet lab between repetitions.
    pub fn quiet_lab() -> Self {
        ChannelDrift {
            phase_sigma_rad: 0.08,
            amplitude_sigma: 0.02,
        }
    }

    /// No drift at all (fully static environment).
    pub fn frozen() -> Self {
        ChannelDrift {
            phase_sigma_rad: 0.0,
            amplitude_sigma: 0.0,
        }
    }

    /// Applies one drift step to a path set in place.
    pub fn step<R: Rng + ?Sized>(&self, paths: &mut [SignalPath], rng: &mut R) {
        for p in paths.iter_mut() {
            let dphi = gaussian(rng) * self.phase_sigma_rad;
            let damp = 1.0 + gaussian(rng) * self.amplitude_sigma;
            p.gain = p.gain * Complex64::cis(dphi) * damp.max(0.0);
        }
    }
}

/// Standard normal sample via Box–Muller (avoids depending on rand_distr).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bessel_j0_known_values() {
        assert!((bessel_j0(0.0) - 1.0).abs() < 1e-12);
        assert!((bessel_j0(1.0) - 0.7651976866).abs() < 1e-7);
        assert!((bessel_j0(2.404825557) - 0.0).abs() < 1e-6, "first zero");
        assert!((bessel_j0(10.0) + 0.2459357645).abs() < 1e-6);
        assert!(
            (bessel_j0(-1.0) - bessel_j0(1.0)).abs() < 1e-12,
            "even function"
        );
    }

    #[test]
    fn coherence_time_paper_quotes() {
        // 0.5 mph at 2.462 GHz: ~80 ms in the paper.
        let mph = 0.44704;
        let fd_slow = max_doppler_hz(0.5 * mph, 2.462e9);
        let fd_run = max_doppler_hz(6.0 * mph, 2.462e9);
        let t_slow = coherence_time_s(fd_slow);
        let t_run = coherence_time_s(fd_run);
        assert!((0.05..0.1).contains(&t_slow), "{t_slow}");
        assert!((0.004..0.009).contains(&t_run), "{t_run}");
    }

    #[test]
    fn autocorrelation_decays_from_one() {
        let fd = 10.0;
        assert!((clarke_autocorrelation(0.0, fd) - 1.0).abs() < 1e-12);
        let r1 = clarke_autocorrelation(0.005, fd);
        let r2 = clarke_autocorrelation(0.02, fd);
        assert!(r1 > r2, "correlation decays: {r1} vs {r2}");
    }

    fn some_paths() -> Vec<SignalPath> {
        (0..5)
            .map(|i| SignalPath {
                gain: Complex64::from_polar(0.1 * (i + 1) as f64, i as f64),
                delay_s: i as f64 * 1e-8,
                doppler_hz: 0.0,
                aod_rad: 0.0,
                aoa_rad: 0.0,
                kind: PathKind::LineOfSight,
            })
            .collect()
    }

    #[test]
    fn frozen_drift_is_identity() {
        let mut paths = some_paths();
        let orig = paths.clone();
        let mut rng = StdRng::seed_from_u64(7);
        ChannelDrift::frozen().step(&mut paths, &mut rng);
        for (a, b) in paths.iter().zip(&orig) {
            assert!((a.gain - b.gain).abs() < 1e-12);
        }
    }

    #[test]
    fn drift_changes_phase_not_much_amplitude() {
        let mut paths = some_paths();
        let orig = paths.clone();
        let mut rng = StdRng::seed_from_u64(7);
        ChannelDrift::quiet_lab().step(&mut paths, &mut rng);
        let mut any_phase_change = false;
        for (a, b) in paths.iter().zip(&orig) {
            let rel = (a.gain.abs() - b.gain.abs()).abs() / b.gain.abs();
            assert!(rel < 0.5, "amplitude moved {rel}");
            if (a.gain.arg() - b.gain.arg()).abs() > 1e-6 {
                any_phase_change = true;
            }
        }
        assert!(any_phase_change);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn drift_is_deterministic_per_seed() {
        let mut a = some_paths();
        let mut b = some_paths();
        ChannelDrift::quiet_lab().step(&mut a, &mut StdRng::seed_from_u64(3));
        ChannelDrift::quiet_lab().step(&mut b, &mut StdRng::seed_from_u64(3));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.gain, y.gain);
        }
    }
}
