//! Scenes: rooms, obstacles, scatterers, and the image-method path tracer.
//!
//! A [`Scene`] owns everything about the physical environment *except* the
//! PRESS array (which lives in `press-core` and injects its own controllable
//! paths via [`Scene::bounce_path`]). Given two radio endpoints it produces
//! the list of [`SignalPath`]s connecting them: line of sight, first- and
//! second-order specular wall reflections (image method), and diffuse point
//! scatterers. Obstacles attenuate any leg that crosses them — blocking the
//! direct path with a metal slab is exactly how the paper creates its NLOS
//! setups.

use crate::antenna::Antenna;
use crate::geometry::{Aabb, Plane, Vec3};
use crate::material::Material;
use crate::path::{PathKind, SignalPath};
use press_math::consts::{friis_amplitude_gain, propagation_delay, wavelength, SPEED_OF_LIGHT};
use press_math::Complex64;

/// A radio endpoint: position, antenna, and velocity (for Doppler).
#[derive(Debug, Clone, PartialEq)]
pub struct RadioNode {
    /// Position, meters.
    pub position: Vec3,
    /// Antenna with orientation.
    pub antenna: Antenna,
    /// Velocity, m/s. Zero for the static measurement campaigns.
    pub velocity: Vec3,
}

impl RadioNode {
    /// A stationary node with the paper's 2 dBi omni endpoint antenna.
    pub fn omni_at(position: Vec3) -> Self {
        RadioNode {
            position,
            antenna: Antenna::endpoint_omni(),
            velocity: Vec3::ZERO,
        }
    }

    /// A stationary node with a custom antenna.
    pub fn with_antenna(position: Vec3, antenna: Antenna) -> Self {
        RadioNode {
            position,
            antenna,
            velocity: Vec3::ZERO,
        }
    }
}

/// A flat reflecting surface (wall, floor, ceiling) with finite rectangular
/// extent approximated by an AABB around the surface.
#[derive(Debug, Clone, PartialEq)]
pub struct Wall {
    /// The surface plane.
    pub plane: Plane,
    /// Material determining reflection strength.
    pub material: Material,
    /// Bounding box the specular point must fall within (slightly thickened
    /// around the plane). `None` = infinite wall.
    pub bounds: Option<Aabb>,
}

/// A signal-blocking box (filing cabinet, metal slab, interior wall segment).
#[derive(Debug, Clone, PartialEq)]
pub struct Obstacle {
    /// Geometry.
    pub aabb: Aabb,
    /// Material determining how much power leaks through.
    pub material: Material,
}

/// A diffuse point scatterer (furniture edge, fixture, lab clutter).
///
/// Contributes a TX → scatterer → RX path with the product of two Friis legs
/// and this complex reflectivity. The reflectivity magnitude absorbs the
/// radar-cross-section normalization; its phase is the random carrier phase
/// a real scatterer imparts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scatterer {
    /// Position, meters.
    pub position: Vec3,
    /// Complex amplitude reflectivity (dimensionless, referenced to 1 m legs).
    pub reflectivity: Complex64,
}

/// Path-tracing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Include the direct path (it still crosses obstacles and may be heavily
    /// attenuated — that *is* the NLOS case).
    pub include_los: bool,
    /// Highest specular reflection order to trace (0, 1 or 2).
    pub max_reflection_order: u8,
    /// Drop paths weaker than this amplitude (keeps path lists small).
    pub amplitude_floor: f64,
    /// Model knife-edge diffraction around obstacle edges (the shadowed
    /// field is then the *stronger* of leak-through and bend-around).
    pub diffraction: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            include_los: true,
            max_reflection_order: 2,
            amplitude_floor: 1e-9,
            diffraction: true,
        }
    }
}

/// The physical environment: geometry + materials + clutter.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// Carrier frequency, Hz (phases and Doppler are computed against this).
    pub carrier_hz: f64,
    /// Reflecting surfaces.
    pub walls: Vec<Wall>,
    /// Blocking boxes.
    pub obstacles: Vec<Obstacle>,
    /// Point scatterers.
    pub scatterers: Vec<Scatterer>,
    /// Tracer settings.
    pub trace: TraceConfig,
}

impl Scene {
    /// An empty scene (free space) at the given carrier.
    pub fn free_space(carrier_hz: f64) -> Self {
        Scene {
            carrier_hz,
            walls: Vec::new(),
            obstacles: Vec::new(),
            scatterers: Vec::new(),
            trace: TraceConfig::default(),
        }
    }

    /// A shoebox room `[0,w]×[0,d]×[0,h]` with four walls, floor and ceiling
    /// of the given material.
    pub fn shoebox(carrier_hz: f64, w: f64, d: f64, h: f64, material: Material) -> Self {
        let mut scene = Scene::free_space(carrier_hz);
        let eps = 0.05; // wall bounds thickness
        let mut add = |point: Vec3, normal: Vec3, lo: Vec3, hi: Vec3| {
            scene.walls.push(Wall {
                plane: Plane::new(point, normal),
                material: material.clone(),
                bounds: Some(Aabb::new(
                    lo - Vec3::new(eps, eps, eps),
                    hi + Vec3::new(eps, eps, eps),
                )),
            });
        };
        // x = 0 and x = w walls.
        add(Vec3::ZERO, Vec3::X, Vec3::ZERO, Vec3::new(0.0, d, h));
        add(
            Vec3::new(w, 0.0, 0.0),
            -Vec3::X,
            Vec3::new(w, 0.0, 0.0),
            Vec3::new(w, d, h),
        );
        // y = 0 and y = d walls.
        add(Vec3::ZERO, Vec3::Y, Vec3::ZERO, Vec3::new(w, 0.0, h));
        add(
            Vec3::new(0.0, d, 0.0),
            -Vec3::Y,
            Vec3::new(0.0, d, 0.0),
            Vec3::new(w, d, h),
        );
        // Floor (z = 0) and ceiling (z = h).
        add(Vec3::ZERO, Vec3::Z, Vec3::ZERO, Vec3::new(w, d, 0.0));
        add(
            Vec3::new(0.0, 0.0, h),
            -Vec3::Z,
            Vec3::new(0.0, 0.0, h),
            Vec3::new(w, d, h),
        );
        scene
    }

    /// Adds a blocking obstacle.
    pub fn add_obstacle(&mut self, aabb: Aabb, material: Material) {
        self.obstacles.push(Obstacle { aabb, material });
    }

    /// Adds a point scatterer.
    pub fn add_scatterer(&mut self, position: Vec3, reflectivity: Complex64) {
        self.scatterers.push(Scatterer {
            position,
            reflectivity,
        });
    }

    /// Amplitude attenuation a straight segment suffers from obstacles it
    /// crosses — 1.0 when clear. Per obstacle, the surviving field is the
    /// stronger of (a) leak-through at the material's transmission
    /// coefficient and (b) knife-edge diffraction around the nearest of the
    /// four edges bounding the crossing (when enabled in [`TraceConfig`]);
    /// multiple obstacles multiply.
    pub fn obstruction_amplitude(&self, a: Vec3, b: Vec3) -> f64 {
        let lambda = wavelength(self.carrier_hz);
        let mut amp = 1.0;
        for obs in &self.obstacles {
            let Some((t_in, axis_in, t_out, axis_out)) = obs.aabb.segment_span_axes(a, b) else {
                continue;
            };
            let through = obs.material.transmission_amplitude();
            if !self.trace.diffraction {
                amp *= through;
                continue;
            }
            // Crossing point: middle of the clipped segment.
            let t_mid = (t_in + t_out) / 2.0;
            let cross = a + (b - a) * t_mid;
            let d1 = a.distance(cross);
            let d2 = cross.distance(b);
            // Obstruction depth toward the four *lateral* edges — the faces
            // the ray pierces (entry/exit axes) are not bend-around
            // candidates.
            let depths = [
                (2, obs.aabb.max.z - cross.z),
                (2, cross.z - obs.aabb.min.z),
                (1, obs.aabb.max.y - cross.y),
                (1, cross.y - obs.aabb.min.y),
                (0, obs.aabb.max.x - cross.x),
                (0, cross.x - obs.aabb.min.x),
            ];
            let bend = depths
                .iter()
                .filter(|&&(axis, h)| h > 0.0 && axis != axis_in && axis != axis_out)
                .map(|&(_, h)| crate::diffraction::knife_edge_amplitude(h, d1, d2, lambda))
                .fold(0.0f64, f64::max);
            amp *= through.max(bend).min(1.0);
        }
        amp
    }

    /// True when at least one obstacle cuts the segment.
    pub fn is_obstructed(&self, a: Vec3, b: Vec3) -> bool {
        self.obstacles
            .iter()
            .any(|o| o.aabb.intersects_segment(a, b))
    }

    fn doppler_hz(
        &self,
        tx: &RadioNode,
        rx: &RadioNode,
        first_leg_dir: Vec3,
        last_leg_dir: Vec3,
    ) -> f64 {
        // Rate of change of total path length: positive when the path is
        // getting longer. Doppler shift is -rate/lambda.
        let lambda = wavelength(self.carrier_hz);
        let rate = tx.velocity.dot(-first_leg_dir) + rx.velocity.dot(last_leg_dir);
        -rate / lambda
    }

    /// Builds a direct path between two points with the given extra amplitude
    /// factor (antennas, materials) applied on top of Friis loss and carrier
    /// phase. Internal building block.
    fn leg_gain(&self, len: f64) -> f64 {
        friis_amplitude_gain(len, self.carrier_hz)
    }

    /// Builds the TX → `point` → RX bounce path used for wall images,
    /// scatterers *and PRESS elements* (press-core calls this with the
    /// element's position and its antenna/switch amplitude).
    ///
    /// `reflect_amp` is the complex amplitude applied at the bounce point
    /// (material coefficient, scatterer reflectivity, or PRESS element
    /// response *excluding* its switched reflection coefficient). Obstacle
    /// attenuation is applied to both legs. Returns `None` when the resulting
    /// path falls below the tracer's amplitude floor.
    pub fn bounce_path(
        &self,
        tx: &RadioNode,
        rx: &RadioNode,
        point: Vec3,
        reflect_amp: Complex64,
        kind: PathKind,
    ) -> Option<SignalPath> {
        let leg1 = point - tx.position;
        let leg2 = rx.position - point;
        let (d1, d2) = (leg1.norm(), leg2.norm());
        if d1 < 1e-6 || d2 < 1e-6 {
            return None;
        }
        let u1 = leg1 / d1;
        let u2 = leg2 / d2;
        let amp = self.leg_gain(d1)
            * self.leg_gain(d2)
            * tx.antenna.amplitude_gain(u1)
            * rx.antenna.amplitude_gain(-u2)
            * self.obstruction_amplitude(tx.position, point)
            * self.obstruction_amplitude(point, rx.position);
        let gain = reflect_amp * amp;
        if gain.abs() < self.trace.amplitude_floor {
            return None;
        }
        let delay = propagation_delay(d1 + d2);
        Some(SignalPath {
            gain,
            delay_s: delay,
            doppler_hz: self.doppler_hz(tx, rx, u1, u2),
            aod_rad: u1.azimuth(),
            aoa_rad: (-u2).azimuth(),
            kind,
        })
    }

    fn los_path(&self, tx: &RadioNode, rx: &RadioNode) -> Option<SignalPath> {
        let leg = rx.position - tx.position;
        let d = leg.norm();
        if d < 1e-6 {
            return None;
        }
        let u = leg / d;
        let amp = self.leg_gain(d)
            * tx.antenna.amplitude_gain(u)
            * rx.antenna.amplitude_gain(-u)
            * self.obstruction_amplitude(tx.position, rx.position);
        if amp < self.trace.amplitude_floor {
            return None;
        }
        Some(SignalPath {
            gain: Complex64::real(amp),
            delay_s: propagation_delay(d),
            doppler_hz: self.doppler_hz(tx, rx, u, u),
            aod_rad: u.azimuth(),
            aoa_rad: (-u).azimuth(),
            kind: PathKind::LineOfSight,
        })
    }

    fn first_order_reflection(
        &self,
        tx: &RadioNode,
        rx: &RadioNode,
        wall_idx: usize,
    ) -> Option<SignalPath> {
        let wall = &self.walls[wall_idx];
        // Both endpoints must be on the same side of the wall for a specular
        // reflection to exist.
        let da = wall.plane.signed_distance(tx.position);
        let db = wall.plane.signed_distance(rx.position);
        if da * db <= 0.0 {
            return None;
        }
        let image = wall.plane.mirror(tx.position);
        let specular = wall.plane.segment_intersection(image, rx.position)?;
        if let Some(bounds) = &wall.bounds {
            if !bounds.contains(specular) {
                return None;
            }
        }
        // Specular reflection off a large flat surface preserves wavefront
        // curvature: one Friis spreading over the *unfolded* path length
        // (image to receiver), unlike point scatterers' two-leg product.
        let leg1 = specular - tx.position;
        let leg2 = rx.position - specular;
        let (d1, d2) = (leg1.norm(), leg2.norm());
        if d1 < 1e-6 || d2 < 1e-6 {
            return None;
        }
        let u1 = leg1 / d1;
        let u2 = leg2 / d2;
        let amp = self.leg_gain(d1 + d2)
            * tx.antenna.amplitude_gain(u1)
            * rx.antenna.amplitude_gain(-u2)
            * wall.material.reflection_amplitude()
            * self.obstruction_amplitude(tx.position, specular)
            * self.obstruction_amplitude(specular, rx.position);
        if amp < self.trace.amplitude_floor {
            return None;
        }
        Some(SignalPath {
            gain: Complex64::real(amp),
            delay_s: propagation_delay(d1 + d2),
            doppler_hz: self.doppler_hz(tx, rx, u1, u2),
            aod_rad: u1.azimuth(),
            aoa_rad: (-u2).azimuth(),
            kind: PathKind::WallReflection { wall: wall_idx },
        })
    }

    fn second_order_reflection(
        &self,
        tx: &RadioNode,
        rx: &RadioNode,
        first: usize,
        second: usize,
    ) -> Option<SignalPath> {
        let w1 = &self.walls[first];
        let w2 = &self.walls[second];
        // Double image: mirror TX across wall 1, then across wall 2.
        let image1 = w1.plane.mirror(tx.position);
        let image2 = w2.plane.mirror(image1);
        let p2 = w2.plane.segment_intersection(image2, rx.position)?;
        let p1 = w1.plane.segment_intersection(image1, p2)?;
        for (wall, p) in [(w1, p1), (w2, p2)] {
            if let Some(bounds) = &wall.bounds {
                if !bounds.contains(p) {
                    return None;
                }
            }
        }
        let leg0 = p1 - tx.position;
        let leg1 = p2 - p1;
        let leg2 = rx.position - p2;
        let (d0, d1, d2) = (leg0.norm(), leg1.norm(), leg2.norm());
        if d0 < 1e-6 || d1 < 1e-6 || d2 < 1e-6 {
            return None;
        }
        let total = d0 + d1 + d2;
        let u0 = leg0 / d0;
        let u2 = leg2 / d2;
        let amp = friis_amplitude_gain(total, self.carrier_hz)
            * tx.antenna.amplitude_gain(u0)
            * rx.antenna.amplitude_gain(-u2)
            * w1.material.reflection_amplitude()
            * w2.material.reflection_amplitude()
            * self.obstruction_amplitude(tx.position, p1)
            * self.obstruction_amplitude(p1, p2)
            * self.obstruction_amplitude(p2, rx.position);
        if amp < self.trace.amplitude_floor {
            return None;
        }
        Some(SignalPath {
            gain: Complex64::real(amp),
            delay_s: propagation_delay(total),
            doppler_hz: self.doppler_hz(tx, rx, u0, u2),
            aod_rad: u0.azimuth(),
            aoa_rad: (-u2).azimuth(),
            kind: PathKind::DoubleReflection { first, second },
        })
    }

    /// Traces all environment paths (LOS, wall reflections, scatterers)
    /// between two endpoints. PRESS element paths are *not* included — the
    /// array (press-core) appends those itself so it can re-phase them per
    /// configuration without re-tracing the static environment.
    pub fn paths(&self, tx: &RadioNode, rx: &RadioNode) -> Vec<SignalPath> {
        let mut out = Vec::new();
        if self.trace.include_los {
            out.extend(self.los_path(tx, rx));
        }
        if self.trace.max_reflection_order >= 1 {
            for i in 0..self.walls.len() {
                out.extend(self.first_order_reflection(tx, rx, i));
            }
        }
        if self.trace.max_reflection_order >= 2 {
            for i in 0..self.walls.len() {
                for j in 0..self.walls.len() {
                    if i != j {
                        out.extend(self.second_order_reflection(tx, rx, i, j));
                    }
                }
            }
        }
        for (s_idx, s) in self.scatterers.iter().enumerate() {
            out.extend(self.bounce_path(
                tx,
                rx,
                s.position,
                s.reflectivity,
                PathKind::Scatter { scatterer: s_idx },
            ));
        }
        out
    }

    /// Wavelength at the scene carrier, meters.
    pub fn wavelength(&self) -> f64 {
        wavelength(self.carrier_hz)
    }

    /// Coherence time for an endpoint moving at `speed_mps`, by the
    /// Tse & Viswanath convention the paper cites (`1/(8·f_d)`). The paper
    /// quotes ~80 ms at 0.5 mph and ~6 ms at 6 mph for 2.4 GHz, which this
    /// reproduces.
    pub fn coherence_time_s(&self, speed_mps: f64) -> f64 {
        let fd = speed_mps * self.carrier_hz / SPEED_OF_LIGHT;
        crate::fading::coherence_time_s(fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_math::consts::WIFI_CHANNEL_11_HZ;

    fn basic_room() -> Scene {
        Scene::shoebox(WIFI_CHANNEL_11_HZ, 6.0, 5.0, 3.0, Material::DRYWALL)
    }

    fn node(x: f64, y: f64) -> RadioNode {
        RadioNode::omni_at(Vec3::new(x, y, 1.5))
    }

    #[test]
    fn free_space_has_single_los_path() {
        let scene = Scene::free_space(WIFI_CHANNEL_11_HZ);
        let paths = scene.paths(&node(1.0, 1.0), &node(4.0, 1.0));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].kind, PathKind::LineOfSight);
        // 3 m: delay ~10 ns.
        assert!((paths[0].delay_s - 1.0007e-8).abs() < 1e-10);
    }

    #[test]
    fn shoebox_produces_reflections() {
        let scene = basic_room();
        let paths = scene.paths(&node(1.0, 2.0), &node(5.0, 3.0));
        let first_order = paths
            .iter()
            .filter(|p| matches!(p.kind, PathKind::WallReflection { .. }))
            .count();
        let second_order = paths
            .iter()
            .filter(|p| matches!(p.kind, PathKind::DoubleReflection { .. }))
            .count();
        // 6 surfaces => 6 first-order images, all visible inside a convex room.
        assert_eq!(first_order, 6);
        assert!(second_order > 0);
    }

    #[test]
    fn reflection_longer_than_los() {
        let scene = basic_room();
        let paths = scene.paths(&node(1.0, 2.0), &node(5.0, 3.0));
        let los = paths
            .iter()
            .find(|p| p.kind == PathKind::LineOfSight)
            .unwrap();
        for p in &paths {
            if !matches!(p.kind, PathKind::LineOfSight) {
                assert!(p.delay_s > los.delay_s);
                assert!(p.gain.abs() < los.gain.abs());
            }
        }
    }

    #[test]
    fn obstacle_attenuates_los() {
        let mut scene = basic_room();
        let tx = node(1.0, 2.5);
        let rx = node(5.0, 2.5);
        let clear = scene.paths(&tx, &rx);
        let clear_los = clear
            .iter()
            .find(|p| p.kind == PathKind::LineOfSight)
            .unwrap()
            .gain
            .abs();
        scene.add_obstacle(
            Aabb::new(Vec3::new(2.9, 1.5, 0.0), Vec3::new(3.1, 3.5, 3.0)),
            Material::METAL,
        );
        let blocked_with_diffraction = scene.paths(&tx, &rx);
        let blocked_los_diff = blocked_with_diffraction
            .iter()
            .find(|p| p.kind == PathKind::LineOfSight)
            .map(|p| p.gain.abs())
            .unwrap_or(0.0);
        // Diffraction lets more field around than raw transmission, but the
        // path must still be clearly attenuated.
        let through_only = clear_los * Material::METAL.transmission_amplitude();
        assert!(blocked_los_diff >= through_only);
        assert!(blocked_los_diff < clear_los / 3.0);
        // With diffraction disabled the attenuation is exactly the
        // material's transmission coefficient.
        scene.trace.diffraction = false;
        let blocked = scene.paths(&tx, &rx);
        let blocked_los = blocked
            .iter()
            .find(|p| p.kind == PathKind::LineOfSight)
            .map(|p| p.gain.abs())
            .unwrap_or(0.0);
        assert!((blocked_los - through_only).abs() < 1e-12);
        assert!(scene.is_obstructed(tx.position, rx.position));
    }

    #[test]
    fn scatterer_adds_path() {
        let mut scene = Scene::free_space(WIFI_CHANNEL_11_HZ);
        scene.add_scatterer(Vec3::new(2.0, 3.0, 1.5), Complex64::from_polar(0.5, 1.0));
        let paths = scene.paths(&node(1.0, 1.0), &node(4.0, 1.0));
        assert_eq!(paths.len(), 2);
        assert!(paths
            .iter()
            .any(|p| matches!(p.kind, PathKind::Scatter { scatterer: 0 })));
    }

    #[test]
    fn image_method_delay_matches_unfolded_length() {
        // TX and RX 1 m from a metal floor; reflection length via image.
        let mut scene = Scene::free_space(WIFI_CHANNEL_11_HZ);
        scene.walls.push(Wall {
            plane: Plane::new(Vec3::ZERO, Vec3::Z),
            material: Material::METAL,
            bounds: None,
        });
        let tx = RadioNode::with_antenna(Vec3::new(0.0, 0.0, 1.0), Antenna::isotropic());
        let rx = RadioNode::with_antenna(Vec3::new(2.0, 0.0, 1.0), Antenna::isotropic());
        let paths = scene.paths(&tx, &rx);
        let refl = paths
            .iter()
            .find(|p| matches!(p.kind, PathKind::WallReflection { .. }))
            .unwrap();
        // Image at (0,0,-1): distance to RX = sqrt(4 + 4) = 2.828 m.
        let expect = 8f64.sqrt() / SPEED_OF_LIGHT;
        assert!((refl.delay_s - expect).abs() < 1e-12);
    }

    #[test]
    fn doppler_zero_when_static() {
        let scene = basic_room();
        for p in scene.paths(&node(1.0, 1.0), &node(4.0, 2.0)) {
            assert_eq!(p.doppler_hz, 0.0);
        }
    }

    #[test]
    fn doppler_sign_for_approaching_receiver() {
        let scene = Scene::free_space(WIFI_CHANNEL_11_HZ);
        let tx = node(0.0, 0.0);
        let mut rx = node(5.0, 0.0);
        rx.velocity = Vec3::new(-1.0, 0.0, 0.0); // moving toward TX
        let paths = scene.paths(&tx, &rx);
        assert!(paths[0].doppler_hz > 0.0, "approaching => positive Doppler");
        // 1 m/s at 2.462 GHz: ~8.2 Hz.
        assert!((paths[0].doppler_hz - 8.21).abs() < 0.1);
    }

    #[test]
    fn coherence_time_matches_paper_quotes() {
        let scene = basic_room();
        let mph = 0.44704;
        let t_slow = scene.coherence_time_s(0.5 * mph);
        let t_run = scene.coherence_time_s(6.0 * mph);
        assert!((0.05..0.1).contains(&t_slow), "t_slow={t_slow}");
        assert!((0.004..0.009).contains(&t_run), "t_run={t_run}");
        assert!(scene.coherence_time_s(0.0).is_infinite());
    }

    #[test]
    fn bounce_path_near_endpoint_rejected() {
        let scene = Scene::free_space(WIFI_CHANNEL_11_HZ);
        let tx = node(1.0, 1.0);
        let rx = node(4.0, 1.0);
        assert!(scene
            .bounce_path(
                &tx,
                &rx,
                tx.position,
                Complex64::ONE,
                PathKind::PressElement { element: 0 }
            )
            .is_none());
    }

    #[test]
    fn amplitude_floor_drops_weak_paths() {
        let mut scene = Scene::free_space(WIFI_CHANNEL_11_HZ);
        scene.trace.amplitude_floor = 1.0; // absurdly high: everything dropped
        assert!(scene.paths(&node(0.0, 0.0), &node(3.0, 0.0)).is_empty());
    }
}
