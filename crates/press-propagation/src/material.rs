//! Building materials and their RF interaction parameters.
//!
//! Values are representative 2.4 GHz figures from the indoor-propagation
//! literature (ITU-R P.2040-class numbers, rounded). Only two scalars matter
//! to the image-method engine: how much *amplitude* a specular reflection
//! keeps, and how much gets through the material (for blockage modelling).

use press_math::db::db_to_amp;

/// RF properties of a building material at ~2.4 GHz.
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    /// Human-readable name.
    pub name: &'static str,
    /// Loss of a specular reflection off this material, dB (positive).
    pub reflection_loss_db: f64,
    /// Loss of transmission through a typical thickness, dB (positive).
    pub transmission_loss_db: f64,
}

impl Material {
    /// Interior drywall (gypsum over studs) in a working lab: shelving,
    /// posters and windows break up the specular bounce, so the coherent
    /// reflection is weak and the energy reappears as diffuse scatter.
    pub const DRYWALL: Material = Material {
        name: "drywall",
        reflection_loss_db: 8.0,
        transmission_loss_db: 3.0,
    };

    /// A lab wall lined with racks, shelves and cables: the coherent
    /// specular bounce is largely destroyed (the energy reappears as the
    /// diffuse scatterers modelled separately).
    pub const CLUTTERED_WALL: Material = Material {
        name: "cluttered-wall",
        reflection_loss_db: 20.0,
        transmission_loss_db: 6.0,
    };

    /// Poured concrete: strong reflector, strong attenuator.
    pub const CONCRETE: Material = Material {
        name: "concrete",
        reflection_loss_db: 4.0,
        transmission_loss_db: 18.0,
    };

    /// Window glass.
    pub const GLASS: Material = Material {
        name: "glass",
        reflection_loss_db: 7.0,
        transmission_loss_db: 2.0,
    };

    /// Sheet metal: near-perfect reflector, opaque.
    pub const METAL: Material = Material {
        name: "metal",
        reflection_loss_db: 0.5,
        transmission_loss_db: 40.0,
    };

    /// Wooden furniture / doors (and carpeted/cluttered floor, ceiling).
    pub const WOOD: Material = Material {
        name: "wood",
        reflection_loss_db: 12.0,
        transmission_loss_db: 5.0,
    };

    /// RF absorber (anechoic foam) — used to emulate terminated loads and
    /// absorptive test fixtures.
    pub const ABSORBER: Material = Material {
        name: "absorber",
        reflection_loss_db: 30.0,
        transmission_loss_db: 30.0,
    };

    /// Reflection amplitude coefficient in `(0, 1]`.
    pub fn reflection_amplitude(&self) -> f64 {
        db_to_amp(-self.reflection_loss_db)
    }

    /// Transmission amplitude coefficient in `(0, 1]`.
    pub fn transmission_amplitude(&self) -> f64 {
        db_to_amp(-self.transmission_loss_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_in_unit_interval() {
        for m in [
            Material::DRYWALL,
            Material::CONCRETE,
            Material::GLASS,
            Material::METAL,
            Material::WOOD,
            Material::ABSORBER,
        ] {
            let r = m.reflection_amplitude();
            let t = m.transmission_amplitude();
            assert!(r > 0.0 && r <= 1.0, "{}: r={r}", m.name);
            assert!(t > 0.0 && t <= 1.0, "{}: t={t}", m.name);
        }
    }

    #[test]
    fn metal_reflects_better_than_drywall() {
        assert!(Material::METAL.reflection_amplitude() > Material::DRYWALL.reflection_amplitude());
    }

    #[test]
    fn concrete_blocks_more_than_glass() {
        assert!(
            Material::CONCRETE.transmission_amplitude() < Material::GLASS.transmission_amplitude()
        );
    }
}
