//! 3-D vector geometry for ray/image-method propagation.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-D point or vector in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component (m).
    pub x: f64,
    /// y component (m).
    pub y: f64,
    /// z component (m).
    pub z: f64,
}

impl Vec3 {
    /// Origin / zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Unit vector in this direction. Returns `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Angle in radians between this vector and another, in `[0, π]`.
    pub fn angle_to(self, o: Vec3) -> f64 {
        let denom = self.norm() * o.norm();
        if denom < 1e-300 {
            return 0.0;
        }
        (self.dot(o) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Azimuth angle (radians) of the projection onto the xy-plane, measured
    /// from +x toward +y. Used for angle-of-departure/arrival bookkeeping.
    pub fn azimuth(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// True when all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// An infinite plane given by a point on it and a unit normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// Any point on the plane.
    pub point: Vec3,
    /// Unit normal.
    pub normal: Vec3,
}

impl Plane {
    /// Creates a plane; the normal is normalized (panics on zero normal).
    pub fn new(point: Vec3, normal: Vec3) -> Self {
        let normal = normal.normalized().expect("plane normal must be nonzero"); // press-lint: allow(panic-freedom) — documented contract; a zero normal is a caller bug
        Plane { point, normal }
    }

    /// Signed distance from a point to the plane (positive on the normal side).
    #[inline]
    pub fn signed_distance(&self, p: Vec3) -> f64 {
        (p - self.point).dot(self.normal)
    }

    /// Mirror image of a point across the plane — the core of the image
    /// method for specular wall reflections.
    pub fn mirror(&self, p: Vec3) -> Vec3 {
        p - self.normal * (2.0 * self.signed_distance(p))
    }

    /// Intersection of the segment `a→b` with the plane, if the endpoints are
    /// on strictly opposite sides. Returns the intersection point.
    pub fn segment_intersection(&self, a: Vec3, b: Vec3) -> Option<Vec3> {
        let da = self.signed_distance(a);
        let db = self.signed_distance(b);
        // Exact zeros detect the degenerate in-plane segment; a tolerance
        // here would swallow legitimate grazing reflections.
        // press-lint: allow(float-ordering)
        if da == 0.0 && db == 0.0 {
            return None; // Segment lies in the plane; no specular point.
        }
        if (da > 0.0) == (db > 0.0) {
            return None;
        }
        let t = da / (da - db);
        Some(a + (b - a) * t)
    }
}

/// An axis-aligned box, used for signal-blocking obstacles (the paper's NLOS
/// experiments block the direct path with an obstruction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: Vec3::new(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z)),
            max: Vec3::new(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z)),
        }
    }

    /// True when the point lies inside (or on the boundary of) the box.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True when the open segment `a→b` passes through the box (slab method).
    pub fn intersects_segment(&self, a: Vec3, b: Vec3) -> bool {
        self.segment_span(a, b).is_some()
    }

    /// The `(t_enter, t_exit)` parameters of the segment's overlap with the
    /// box, or `None` when it misses (slab method).
    pub fn segment_span(&self, a: Vec3, b: Vec3) -> Option<(f64, f64)> {
        self.segment_span_axes(a, b).map(|(t1, _, t2, _)| (t1, t2))
    }

    /// Like [`segment_span`](Self::segment_span) but also reports which
    /// axis (0=x, 1=y, 2=z) bounds the entry and exit — i.e. which faces
    /// the segment pierces. Axis `usize::MAX` means the segment starts or
    /// ends inside the box on that side.
    pub fn segment_span_axes(&self, a: Vec3, b: Vec3) -> Option<(f64, usize, f64, usize)> {
        let d = b - a;
        let mut tmin = 0.0f64;
        let mut tmax = 1.0f64;
        let mut axis_in = usize::MAX;
        let mut axis_out = usize::MAX;
        for (axis, (da, aa, lo, hi)) in [
            (d.x, a.x, self.min.x, self.max.x),
            (d.y, a.y, self.min.y, self.max.y),
            (d.z, a.z, self.min.z, self.max.z),
        ]
        .into_iter()
        .enumerate()
        {
            if da.abs() < 1e-15 {
                if aa < lo || aa > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / da;
                let (mut t1, mut t2) = ((lo - aa) * inv, (hi - aa) * inv);
                if t1 > t2 {
                    std::mem::swap(&mut t1, &mut t2);
                }
                if t1 > tmin {
                    tmin = t1;
                    axis_in = axis;
                }
                if t2 < tmax {
                    tmax = t2;
                    axis_out = axis;
                }
                if tmin > tmax {
                    return None;
                }
            }
        }
        Some((tmin, axis_in, tmax, axis_out))
    }

    /// Center of the box.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_cross_orthogonality() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 1.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert!((v.normalized().unwrap().norm() - 1.0).abs() < 1e-12);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn angle_between_axes_is_right() {
        assert!((Vec3::X.angle_to(Vec3::Y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(Vec3::X.angle_to(Vec3::X).abs() < 1e-12);
    }

    #[test]
    fn plane_mirror_is_involution() {
        let plane = Plane::new(Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.3, 1.0, -0.2));
        let p = Vec3::new(1.0, -1.0, 4.0);
        let m = plane.mirror(plane.mirror(p));
        assert!(p.distance(m) < 1e-12);
    }

    #[test]
    fn mirror_preserves_distance_to_plane() {
        let plane = Plane::new(Vec3::ZERO, Vec3::Y);
        let p = Vec3::new(1.0, 3.0, -2.0);
        let m = plane.mirror(p);
        assert!((plane.signed_distance(p) + plane.signed_distance(m)).abs() < 1e-12);
        assert_eq!(m, Vec3::new(1.0, -3.0, -2.0));
    }

    #[test]
    fn segment_intersection_midpoint() {
        let plane = Plane::new(Vec3::ZERO, Vec3::X);
        let hit = plane
            .segment_intersection(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(1.0, 2.0, 0.0))
            .unwrap();
        assert!((hit.x).abs() < 1e-12);
        assert!((hit.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_same_side_misses() {
        let plane = Plane::new(Vec3::ZERO, Vec3::X);
        assert!(plane
            .segment_intersection(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 5.0, 1.0))
            .is_none());
    }

    #[test]
    fn aabb_contains() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        assert!(b.contains(Vec3::new(0.5, 0.5, 0.5)));
        assert!(!b.contains(Vec3::new(1.5, 0.5, 0.5)));
    }

    #[test]
    fn aabb_segment_through_box() {
        let b = Aabb::new(Vec3::new(-0.5, -0.5, -0.5), Vec3::new(0.5, 0.5, 0.5));
        assert!(b.intersects_segment(Vec3::new(-2.0, 0.0, 0.0), Vec3::new(2.0, 0.0, 0.0)));
        assert!(!b.intersects_segment(Vec3::new(-2.0, 2.0, 0.0), Vec3::new(2.0, 2.0, 0.0)));
        // Segment ending before the box does not intersect.
        assert!(!b.intersects_segment(Vec3::new(-2.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)));
    }

    #[test]
    fn aabb_corners_normalized() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 2.0), Vec3::new(0.0, 3.0, -2.0));
        assert_eq!(b.min, Vec3::new(0.0, -1.0, -2.0));
        assert_eq!(b.max, Vec3::new(1.0, 3.0, 2.0));
        assert_eq!(b.center(), Vec3::new(0.5, 1.0, 0.0));
    }
}
