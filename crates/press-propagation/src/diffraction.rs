//! Knife-edge diffraction.
//!
//! The paper counts "reflectors, diffractors, and absorbers" among the
//! environment's degrees of freedom. Shadowed paths in our scenes do not
//! just leak *through* obstacles — they bend around their edges. This
//! module implements the classic single knife-edge model: the
//! Fresnel–Kirchhoff diffraction parameter
//!
//! `ν = h · sqrt( 2(d₁+d₂) / (λ·d₁·d₂) )`
//!
//! (`h` = edge clearance above the direct ray, `d₁`,`d₂` = distances from
//! the endpoints to the edge plane) and Lee's piecewise approximation of
//! the resulting attenuation.

/// Lee's approximation of knife-edge diffraction loss in dB (≥ 0) as a
/// function of the Fresnel diffraction parameter ν.
///
/// ν ≤ −1 means generous clearance (no loss); large positive ν means deep
/// shadow (loss grows like `20·log10(ν)`).
pub fn knife_edge_loss_db(v: f64) -> f64 {
    if v <= -1.0 {
        0.0
    } else if v <= 0.0 {
        -(20.0 * (0.5 - 0.62 * v).log10())
    } else if v <= 1.0 {
        -(20.0 * (0.5 * (-0.95 * v).exp()).log10())
    } else if v <= 2.4 {
        let inner: f64 = 0.1184 - (0.38 - 0.1 * v) * (0.38 - 0.1 * v);
        -(20.0 * (0.4 - inner.max(0.0).sqrt()).log10())
    } else {
        -(20.0 * (0.225 / v).log10())
    }
}

/// Fresnel diffraction parameter for an edge `h` meters above (positive =
/// obstructing) the direct ray, with the endpoints `d1` and `d2` meters
/// from the edge plane, at wavelength `lambda`.
pub fn fresnel_v(h: f64, d1: f64, d2: f64, lambda: f64) -> f64 {
    let d1 = d1.max(1e-3);
    let d2 = d2.max(1e-3);
    h * (2.0 * (d1 + d2) / (lambda * d1 * d2)).sqrt()
}

/// Amplitude factor (≤ 1) of a knife edge with the given geometry.
pub fn knife_edge_amplitude(h: f64, d1: f64, d2: f64, lambda: f64) -> f64 {
    let loss = knife_edge_loss_db(fresnel_v(h, d1, d2, lambda));
    10f64.powf(-loss / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearance_means_no_loss() {
        assert_eq!(knife_edge_loss_db(-1.5), 0.0);
        assert_eq!(knife_edge_loss_db(-10.0), 0.0);
    }

    #[test]
    fn grazing_edge_costs_6db() {
        // v = 0 (edge exactly on the ray): half the field gets through.
        let loss = knife_edge_loss_db(0.0);
        assert!((loss - 6.02).abs() < 0.05, "{loss}");
    }

    #[test]
    fn loss_is_nearly_monotone_in_v() {
        // Lee's piecewise fit has ~1 dB seams at the segment boundaries;
        // within that it must grow with the diffraction parameter.
        let mut last = 0.0;
        let mut v = -2.0;
        while v < 6.0 {
            let l = knife_edge_loss_db(v);
            assert!(l >= last - 1.0, "dip at v={v}: {l} after {last}");
            last = l.max(last);
            v += 0.1;
        }
    }

    #[test]
    fn deep_shadow_matches_asymptote() {
        let v = 5.0;
        let loss = knife_edge_loss_db(v);
        let asymptote = -(20.0 * (0.225 / v).log10());
        assert!((loss - asymptote).abs() < 1e-12);
        assert!(loss > 25.0, "{loss}");
    }

    #[test]
    fn fresnel_parameter_scales() {
        let lambda = 0.1218;
        let v1 = fresnel_v(0.5, 1.0, 1.0, lambda);
        let v2 = fresnel_v(1.0, 1.0, 1.0, lambda);
        assert!((v2 / v1 - 2.0).abs() < 1e-12, "linear in h");
        // Longer legs reduce v (wider Fresnel zone).
        let v3 = fresnel_v(0.5, 10.0, 10.0, lambda);
        assert!(v3 < v1);
    }

    #[test]
    fn amplitude_is_bounded() {
        for h in [-2.0, -0.5, 0.0, 0.5, 2.0, 10.0] {
            let a = knife_edge_amplitude(h, 1.0, 2.0, 0.1218);
            assert!(a > 0.0 && a <= 1.0, "h={h}: {a}");
        }
    }

    #[test]
    fn textbook_value_v1() {
        // v = 1: loss ~ 13.5 dB (Lee's approximation).
        let loss = knife_edge_loss_db(1.0);
        assert!((12.5..14.5).contains(&loss), "{loss}");
    }
}
