//! Antenna gain patterns.
//!
//! The paper's prototype uses three antenna types, all modelled here:
//! 2 dBi omni endpoints (PulseLarsen W1030), a 14 dBi / 21°-beamwidth
//! parabolic PRESS element (Laird GD24BP), and plain omni PRESS elements.
//! Patterns return *amplitude* gain as a function of direction so the path
//! tracer can multiply them straight into path coefficients.

use crate::geometry::Vec3;
use press_math::db::db_to_amp;

/// An antenna's radiation pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Ideal isotropic radiator (0 dBi everywhere). Reference pattern.
    Isotropic,
    /// Omnidirectional in azimuth with peak gain in dBi; mild cos² rolloff
    /// toward the vertical, as real sleeve dipoles exhibit.
    Omni {
        /// Peak gain, dBi.
        gain_dbi: f64,
    },
    /// Parabolic dish: Gaussian main lobe of the given −3 dB beamwidth, with
    /// a sidelobe floor. Matches the datasheet-level behaviour the paper's
    /// Laird GD24BP element needs (14 dBi, 21° azimuthal beamwidth).
    Parabolic {
        /// Boresight gain, dBi.
        gain_dbi: f64,
        /// Full −3 dB beamwidth, degrees.
        beamwidth_deg: f64,
        /// Sidelobe level relative to boresight, dB (negative).
        sidelobe_db: f64,
    },
    /// Half-wave dipole: 2.15 dBi peak, toroidal sin² pattern about its axis.
    Dipole,
}

impl Pattern {
    /// The paper's 2 dBi omnidirectional endpoint antenna.
    pub fn endpoint_omni() -> Pattern {
        Pattern::Omni { gain_dbi: 2.0 }
    }

    /// The paper's 14 dBi, 21° beamwidth parabolic PRESS element antenna.
    pub fn press_parabolic() -> Pattern {
        Pattern::Parabolic {
            gain_dbi: 14.0,
            beamwidth_deg: 21.0,
            sidelobe_db: -20.0,
        }
    }

    /// A patch-style PRESS element antenna (the "custom PCB antennas" of
    /// §4.1): moderate gain, wide enough beam to cover both endpoints of a
    /// short link from 1-2 m away.
    pub fn press_patch() -> Pattern {
        Pattern::Parabolic {
            gain_dbi: 9.0,
            beamwidth_deg: 65.0,
            sidelobe_db: -15.0,
        }
    }

    /// Peak gain in dBi.
    pub fn peak_gain_dbi(&self) -> f64 {
        match self {
            Pattern::Isotropic => 0.0,
            Pattern::Omni { gain_dbi } => *gain_dbi,
            Pattern::Parabolic { gain_dbi, .. } => *gain_dbi,
            Pattern::Dipole => 2.15,
        }
    }
}

/// An antenna: a pattern plus an orientation (boresight for directional
/// patterns, element axis for dipoles).
#[derive(Debug, Clone, PartialEq)]
pub struct Antenna {
    /// Radiation pattern.
    pub pattern: Pattern,
    /// Boresight (or dipole axis) direction; need not be normalized.
    pub boresight: Vec3,
}

impl Antenna {
    /// Creates an antenna pointing along `boresight`.
    pub fn new(pattern: Pattern, boresight: Vec3) -> Self {
        Antenna { pattern, boresight }
    }

    /// An isotropic antenna (orientation irrelevant).
    pub fn isotropic() -> Self {
        Antenna::new(Pattern::Isotropic, Vec3::X)
    }

    /// The paper's endpoint antenna: 2 dBi omni, vertical element.
    pub fn endpoint_omni() -> Self {
        Antenna::new(Pattern::endpoint_omni(), Vec3::Z)
    }

    /// Amplitude gain toward `direction` (from the antenna outward).
    ///
    /// Returns `sqrt(linear power gain)` so path coefficients can multiply
    /// TX and RX gains directly.
    pub fn amplitude_gain(&self, direction: Vec3) -> f64 {
        let dir = match direction.normalized() {
            Some(d) => d,
            None => return db_to_amp(self.pattern.peak_gain_dbi()),
        };
        let axis = self.boresight.normalized().unwrap_or(Vec3::Z);
        match &self.pattern {
            Pattern::Isotropic => 1.0,
            Pattern::Omni { gain_dbi } => {
                // Peak in the plane orthogonal to the element axis;
                // smooth rolloff toward the axis (elevation angle e).
                let cos_e = dir.dot(axis).clamp(-1.0, 1.0);
                let planar = (1.0 - cos_e * cos_e).max(0.0); // sin^2(angle to axis)
                let power = db_to_amp(*gain_dbi).powi(2) * (0.2 + 0.8 * planar);
                power.sqrt()
            }
            Pattern::Parabolic {
                gain_dbi,
                beamwidth_deg,
                sidelobe_db,
            } => {
                let theta = dir.angle_to(axis).to_degrees();
                let half_bw = beamwidth_deg / 2.0;
                // Gaussian main lobe: -3 dB at theta == half beamwidth.
                let rolloff_db = -3.0 * (theta / half_bw).powi(2);
                let lobe_db = rolloff_db.max(*sidelobe_db);
                db_to_amp(gain_dbi + lobe_db)
            }
            Pattern::Dipole => {
                let sin_theta = {
                    let c = dir.dot(axis).clamp(-1.0, 1.0);
                    (1.0 - c * c).max(0.0).sqrt()
                };
                // sin^2 power pattern with 2.15 dBi peak; floor keeps paths finite.
                let power = db_to_amp(2.15).powi(2) * (sin_theta * sin_theta).max(1e-4);
                power.sqrt()
            }
        }
    }

    /// Convenience: gain in dB (power) toward a direction.
    pub fn gain_db(&self, direction: Vec3) -> f64 {
        20.0 * self.amplitude_gain(direction).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_is_unity_everywhere() {
        let a = Antenna::isotropic();
        for d in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(1.0, 2.0, -3.0)] {
            assert!((a.amplitude_gain(d) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn omni_peak_in_azimuth_plane() {
        let a = Antenna::endpoint_omni();
        let planar = a.gain_db(Vec3::X);
        let axial = a.gain_db(Vec3::Z);
        assert!((planar - 2.0).abs() < 0.01, "planar={planar}");
        assert!(axial < planar, "axial={axial} planar={planar}");
    }

    #[test]
    fn omni_azimuth_symmetric() {
        let a = Antenna::endpoint_omni();
        let g1 = a.amplitude_gain(Vec3::X);
        let g2 = a.amplitude_gain(Vec3::Y);
        let g3 = a.amplitude_gain(Vec3::new(1.0, 1.0, 0.0));
        assert!((g1 - g2).abs() < 1e-12);
        assert!((g1 - g3).abs() < 1e-12);
    }

    #[test]
    fn parabolic_boresight_gain_and_beamwidth() {
        let a = Antenna::new(Pattern::press_parabolic(), Vec3::X);
        assert!((a.gain_db(Vec3::X) - 14.0).abs() < 0.01);
        // At half the beamwidth off axis (10.5 deg) the gain is 3 dB down.
        let off = Vec3::new(
            (10.5f64).to_radians().cos(),
            (10.5f64).to_radians().sin(),
            0.0,
        );
        assert!(
            (a.gain_db(off) - 11.0).abs() < 0.05,
            "got {}",
            a.gain_db(off)
        );
    }

    #[test]
    fn parabolic_sidelobe_floor() {
        let a = Antenna::new(Pattern::press_parabolic(), Vec3::X);
        let back = a.gain_db(-Vec3::X);
        assert!((back - (14.0 - 20.0)).abs() < 0.01, "back lobe {back}");
    }

    #[test]
    fn dipole_null_along_axis() {
        let a = Antenna::new(Pattern::Dipole, Vec3::Z);
        assert!(a.amplitude_gain(Vec3::Z) < a.amplitude_gain(Vec3::X) / 10.0);
        assert!((a.gain_db(Vec3::X) - 2.15).abs() < 0.05);
    }

    #[test]
    fn zero_direction_degrades_to_peak() {
        let a = Antenna::new(Pattern::press_parabolic(), Vec3::X);
        assert!((a.amplitude_gain(Vec3::ZERO) - db_to_amp(14.0)).abs() < 1e-9);
    }
}
