//! Criterion benches: configuration-search algorithms (§4.2).
//!
//! Measured per full search on oracle channel evaluations, on the paper's
//! 64-configuration prototype space and on an 8-element, 9-state space.

use criterion::{criterion_group, criterion_main, Criterion};
use press_core::{search, CachedLink, ConfigSpace, Configuration, GeneticParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn evaluator() -> (press_core::PressSystem, press_sdr::Sounder, CachedLink) {
    let rig = press::rig::fig4_rig(1);
    let link = CachedLink::trace(
        &rig.system,
        rig.sounder.tx.node.clone(),
        rig.sounder.rx.node.clone(),
    );
    (rig.system, rig.sounder, link)
}

fn bench_small_space(c: &mut Criterion) {
    let (system, sounder, link) = evaluator();
    let space = system.array.config_space();
    let eval = |cfg: &Configuration| sounder.oracle_snr(&link.paths(&system, cfg), 0.0).min_db();

    let mut group = c.benchmark_group("search_64_configs");
    group.sample_size(20);
    group.bench_function("exhaustive", |b| {
        b.iter(|| black_box(search::exhaustive(&space, eval)))
    });
    group.bench_function("greedy", |b| {
        b.iter(|| {
            black_box(search::greedy_coordinate(
                &space,
                Configuration::zeros(3),
                8,
                eval,
            ))
        })
    });
    group.bench_function("annealing_60", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(search::simulated_annealing(
                &space, 60, 3.0, 0.05, &mut rng, eval,
            ))
        })
    });
    group.finish();
}

fn bench_synthetic_large_space(c: &mut Criterion) {
    // Pure algorithm overhead on a cheap synthetic objective, decoupled
    // from channel evaluation cost.
    let space = ConfigSpace::new(vec![9; 8]);
    let target: Vec<usize> = vec![7, 0, 3, 5, 1, 6, 2, 4];
    let eval = |cfg: &Configuration| -> f64 {
        -cfg.states
            .iter()
            .zip(&target)
            .map(|(&s, &t)| (s as f64 - t as f64).abs())
            .sum::<f64>()
    };
    let mut group = c.benchmark_group("search_overhead_43M_space");
    group.bench_function("greedy_sweep", |b| {
        b.iter(|| {
            black_box(search::greedy_coordinate(
                &space,
                Configuration::zeros(8),
                5,
                eval,
            ))
        })
    });
    group.bench_function("annealing_300", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(search::simulated_annealing(
                &space, 300, 3.0, 0.02, &mut rng, eval,
            ))
        })
    });
    group.bench_function("genetic_default", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(search::genetic(
                &space,
                &GeneticParams::default(),
                &mut rng,
                eval,
            ))
        })
    });
    group.finish();
}

fn bench_genetic_batched(c: &mut Criterion) {
    // Genetic search over real basis-cached channel evaluations: scoring
    // each candidate alone through `synthesize_into` vs scoring every
    // generation as one batch through the SoA `BatchEvaluator`. Identical
    // RNG streams and bitwise-identical scores (the batch contract), so
    // the delta is the shared-prefix reuse across each sorted generation.
    use press_core::{min_magnitude_db_metric, BatchEvaluator, LinkBasis, SearchScratch};
    use press_math::Complex64;
    use press_propagation::{LabConfig, LabSetup};
    let lab = LabSetup::generate(&LabConfig::default(), 1);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(5);
    let positions = lab.random_element_positions(6, &mut rng);
    let array = press_core::PressArray::paper_passive(&positions, lambda);
    let system = press_core::PressSystem::new(lab.scene.clone(), array);
    let link = CachedLink::trace(&system, lab.tx.clone(), lab.rx.clone());
    let freqs: Vec<f64> = (0..52)
        .map(|k| 2.462e9 + (k as f64 - 26.0) * 312_500.0)
        .collect();
    let basis = LinkBasis::build(&system, &link, &freqs);
    let space = basis.space().clone();
    let params = GeneticParams {
        population: 48,
        generations: 20,
        ..GeneticParams::default()
    };

    let mut group = c.benchmark_group("genetic_basis_6elem");
    group.sample_size(20);
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut metric = min_magnitude_db_metric();
            let mut h: Vec<Complex64> = Vec::with_capacity(basis.n_subcarriers());
            let mut rng = StdRng::seed_from_u64(7);
            black_box(search::genetic(
                &space,
                &params,
                &mut rng,
                |cfg: &Configuration| {
                    basis.synthesize_into(cfg, 0.0, &mut h);
                    metric(&h)
                },
            ))
        })
    });
    group.bench_function("batched", |b| {
        let mut scratch = SearchScratch::new();
        b.iter(|| {
            let mut metric = min_magnitude_db_metric();
            let mut evaluator = BatchEvaluator::new(&basis);
            let mut rng = StdRng::seed_from_u64(7);
            black_box(search::genetic_batched(
                &space,
                &params,
                &mut rng,
                &mut scratch,
                &mut |configs: &[Configuration], out: &mut Vec<f64>| {
                    evaluator.scores_into(configs, 0.0, &mut metric, out)
                },
            ))
        })
    });
    group.finish();
}

fn bench_inverse_solver(c: &mut Criterion) {
    let (system, sounder, _) = evaluator();
    let freqs = sounder.num.active_freqs_hz();
    let dict = press_core::PressDictionary::from_system(
        &system,
        &sounder.tx.node,
        &sounder.rx.node,
        &freqs,
    );
    let target = dict.channel(&Configuration::new(vec![2, 0, 1]));
    let solver = press_core::InverseSolver::new(target.len());
    let mut staged = press_core::InverseSolver::new(target.len());
    staged.exhaustive_threshold = 0;
    let mut group = c.benchmark_group("inverse_problem");
    group.bench_function("exact_64", |b| {
        b.iter(|| black_box(solver.solve(&dict, &target)))
    });
    group.bench_function("relax_project_refine", |b| {
        b.iter(|| black_box(staged.solve(&dict, &target)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_small_space,
    bench_synthetic_large_space,
    bench_genetic_batched,
    bench_inverse_solver
);
criterion_main!(benches);
