//! Criterion benches: the per-figure inner loops.
//!
//! One entry per figure of the paper's evaluation, timing the unit of work
//! that figure's harness repeats (a full regeneration is the `fig*`
//! binary; these keep `cargo bench` fast while still exercising every
//! pipeline end to end).

use criterion::{criterion_group, criterion_main, Criterion};
use press_core::{run_campaign_over, CachedLink, CampaignConfig, Configuration};
use press_math::Complex64;
use press_phy::mimo::MimoChannel;
use press_phy::snr::null_movement;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Figure 4 unit: one trial over 8 configurations (the harness does 10×64).
fn bench_fig4_unit(c: &mut Criterion) {
    let rig = press::rig::fig4_rig(1);
    let space = rig.system.array.config_space();
    let subset: Vec<Configuration> = (0..8).map(|i| space.config_at(i * 8)).collect();
    let campaign = CampaignConfig {
        n_trials: 1,
        frames_per_config: 4,
        seed: 1,
        ..CampaignConfig::default()
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(20);
    group.bench_function("fig4_trial_8_configs", |b| {
        b.iter(|| {
            black_box(run_campaign_over(
                &rig.system,
                &rig.sounder,
                &campaign,
                &subset,
            ))
        })
    });
    group.finish();
}

/// Figures 5/6 unit: pairwise null/min-SNR statistics over 64 profiles.
fn bench_fig56_stats(c: &mut Criterion) {
    let profiles: Vec<press_phy::SnrProfile> = (0..64)
        .map(|i| {
            press_phy::SnrProfile::new(
                (0..52)
                    .map(|k| 30.0 + 12.0 * ((k + i) as f64 * 0.37).sin())
                    .collect(),
            )
        })
        .collect();
    let mut group = c.benchmark_group("figures");
    group.bench_function("fig5_null_movement_64sq_pairs", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for p in &profiles {
                for q in &profiles {
                    if null_movement(p, q, 5.0).is_some() {
                        count += 1;
                    }
                }
            }
            black_box(count)
        })
    });
    group.bench_function("fig6_extreme_pair_64", |b| {
        b.iter(|| black_box(press_core::analysis::extreme_pair(&profiles)))
    });
    group.finish();
}

/// Figure 7 unit: half-band contrast over a wideband sweep of 64 configs.
fn bench_fig7_unit(c: &mut Criterion) {
    let rig = press::rig::fig7_rig(8);
    let link = CachedLink::trace(
        &rig.system,
        rig.sounder.tx.node.clone(),
        rig.sounder.rx.node.clone(),
    );
    let space = rig.system.array.config_space();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig7_contrast_sweep_64_oracle", |b| {
        b.iter(|| {
            let best = space
                .iter()
                .map(|cfg| {
                    rig.sounder
                        .oracle_snr(&link.paths(&rig.system, &cfg), 0.0)
                        .half_band_contrast_db()
                })
                .fold(f64::NEG_INFINITY, f64::max);
            black_box(best)
        })
    });
    group.finish();
}

/// Figure 8 unit: one coherent 2×2 sounding + condition numbers.
fn bench_fig8_unit(c: &mut Criterion) {
    let rig = press::rig::fig8_rig(0);
    let links: Vec<Vec<CachedLink>> = (0..2)
        .map(|a| {
            (0..2)
                .map(|b| CachedLink::trace(&rig.system, rig.tx[a].clone(), rig.rx[b].clone()))
                .collect()
        })
        .collect();
    let config = Configuration::new(vec![1, 2, 0]);
    let paths: Vec<Vec<Vec<_>>> = links
        .iter()
        .map(|row| row.iter().map(|l| l.paths(&rig.system, &config)).collect())
        .collect();
    let mut group = c.benchmark_group("figures");
    group.bench_function("fig8_coherent_2x2_sounding", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let est = rig.sounder.sound_mimo(&paths, 0.0, 0.0, &mut rng).unwrap();
            let h: Vec<Vec<Vec<Complex64>>> = (0..2)
                .map(|bb| (0..2).map(|a| est[a][bb].h.clone()).collect())
                .collect();
            let ch = MimoChannel::from_scalar_channels(&h);
            black_box(ch.median_condition_db().unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4_unit,
    bench_fig56_stats,
    bench_fig7_unit,
    bench_fig8_unit
);
criterion_main!(benches);
