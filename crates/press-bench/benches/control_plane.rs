//! Criterion benches: control-plane codec and actuation simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use press_control::{actuate, AckPolicy, Message, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let single = Message::SetState {
        seq: 9,
        element: 300,
        state: 2,
    };
    let batch = Message::BatchSet {
        seq: 10,
        assignments: (0..64).map(|e| (e as u16, (e % 4) as u8)).collect(),
    };
    c.bench_function("codec_setstate_roundtrip", |b| {
        b.iter(|| {
            let frame = black_box(&single).encode();
            black_box(Message::decode(&frame).unwrap())
        })
    });
    c.bench_function("codec_batch64_roundtrip", |b| {
        b.iter(|| {
            let frame = black_box(&batch).encode();
            black_box(Message::decode(&frame).unwrap())
        })
    });
}

fn bench_actuation(c: &mut Criterion) {
    let mut group = c.benchmark_group("actuation_sim");
    for n in [64usize, 1024] {
        let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 1)).collect();
        group.bench_with_input(BenchmarkId::new("ism_acked", n), &assignments, |b, a| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(actuate(
                    &Transport::ism(),
                    a,
                    15.0,
                    AckPolicy::PerElement { max_retries: 8 },
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_actuation);
criterion_main!(benches);
