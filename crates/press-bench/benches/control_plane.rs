//! Criterion benches: control-plane codec, actuation simulation, and the
//! disabled-cost of episode tracing (`NullSink` must be free).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use press_control::{actuate, AckPolicy, Message, Transport};
use press_core::{Controller, LinkObjective, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let single = Message::SetState {
        seq: 9,
        element: 300,
        state: 2,
    };
    let batch = Message::BatchSet {
        seq: 10,
        assignments: (0..64).map(|e| (e as u16, (e % 4) as u8)).collect(),
    };
    c.bench_function("codec_setstate_roundtrip", |b| {
        b.iter(|| {
            let frame = black_box(&single).encode();
            black_box(Message::decode(&frame).unwrap())
        })
    });
    c.bench_function("codec_batch64_roundtrip", |b| {
        b.iter(|| {
            let frame = black_box(&batch).encode();
            black_box(Message::decode(&frame).unwrap())
        })
    });
}

fn bench_actuation(c: &mut Criterion) {
    let mut group = c.benchmark_group("actuation_sim");
    for n in [64usize, 1024] {
        let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 1)).collect();
        group.bench_with_input(BenchmarkId::new("ism_acked", n), &assignments, |b, a| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(actuate(
                    &Transport::ism(),
                    a,
                    15.0,
                    AckPolicy::PerElement { max_retries: 8 },
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

/// The tracing acceptance bench: a full closed-loop episode through the
/// public untraced entry point. After the press-trace refactor this is
/// compared against an explicit `NullSink` tracer (and an enabled
/// `MemorySink`) to prove the disabled cost is within noise.
fn bench_episode(c: &mut Criterion) {
    let rig = press::rig::fig4_rig(2);
    let mut ctl = Controller::new(Strategy::Greedy { max_sweeps: 1 }, LinkObjective::MaxMinSnr);
    ctl.actuation = press_core::ActuationMode::Transport(press_core::TransportActuation::ism());
    let mut group = c.benchmark_group("episode");
    group.bench_function("untraced", |b| {
        b.iter(|| black_box(ctl.run_episode(&rig.system, &rig.sounder)))
    });
    group.bench_function("null_traced", |b| {
        b.iter(|| {
            let mut tracer = press_trace::Tracer::null();
            black_box(ctl.run_episode_traced(&rig.system, &rig.sounder, None, &mut tracer))
        })
    });
    group.bench_function("memory_traced", |b| {
        b.iter(|| {
            let mut tracer = press_trace::Tracer::new(press_trace::MemorySink::new());
            black_box(ctl.run_episode_traced(&rig.system, &rig.sounder, None, &mut tracer))
        })
    });
    // The bench harness is the one place allowed to attach a wall clock
    // (press-lint polices every other crate), so the wall-stamped path gets
    // its cost measured here too.
    group.bench_function("memory_traced_wall", |b| {
        let t0 = std::time::Instant::now();
        b.iter(|| {
            let mut tracer = press_trace::Tracer::new(press_trace::MemorySink::new());
            tracer.set_wall_clock(move || t0.elapsed().as_secs_f64());
            black_box(ctl.run_episode_traced(&rig.system, &rig.sounder, None, &mut tracer))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_actuation, bench_episode);
criterion_main!(benches);
