//! Criterion bench: the analyzer over the real workspace, cold vs warm.
//!
//! The claim behind `BENCH_lint.json`: the incremental cache makes warm
//! re-lints decisively cheaper than cold ones. A warm run hashes every
//! file and serves pass 1 from the content-hash cache; only pass 2 (the
//! workspace model lints) runs in full. The gated floor is a 5× speedup —
//! if a change to the cache key or the serializer silently turns hits into
//! misses, the ratio collapses and CI catches it.

use criterion::{criterion_group, criterion_main, Criterion};
use press_lint::workspace::analyze_workspace_with;
use press_lint::Options;
use std::hint::black_box;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn bench_lint_workspace(c: &mut Criterion) {
    let root = workspace_root();
    let cache = std::env::temp_dir().join("press-lint-bench.cache");
    let _ = std::fs::remove_file(&cache);

    let mut group = c.benchmark_group("lint_workspace");
    group.sample_size(10);

    // Cold: no cache at all — every file is lexed and linted.
    group.bench_function("cold", |b| {
        b.iter(|| {
            black_box(analyze_workspace_with(&root, &Options::default()).expect("workspace scan"))
        })
    });

    // Warm: prime the cache once, then every iteration serves pass 1
    // entirely from it (including the cache write-back, as the CLI does).
    let opts = Options {
        cache_path: Some(cache.clone()),
        ..Options::default()
    };
    let primed = analyze_workspace_with(&root, &opts).expect("prime cache");
    assert!(primed.cache_misses > 0);
    group.bench_function("warm", |b| {
        b.iter(|| {
            let report = analyze_workspace_with(&root, &opts).expect("workspace scan");
            assert_eq!(report.cache_misses, 0, "bench must measure a warm cache");
            black_box(report)
        })
    });

    group.finish();
    let _ = std::fs::remove_file(&cache);
}

criterion_group!(benches, bench_lint_workspace);
criterion_main!(benches);
