//! Criterion bench: the metrics hub's cost next to an episode.
//!
//! The claim behind `BENCH_metrics.json`: a live [`MetricsHub`] is free at
//! episode granularity. Three rungs are measured — a whole recorded
//! session replayed through the event loop with its live hub attached
//! (episode included), the pure trace→metrics fold over the same
//! session's event stream, and one full Prometheus-text render of the
//! populated hub. The gated floor is the episode-vs-fold ratio: metrics
//! observation must stay under 2% of episode cost (ratio ≥ 50), or the
//! "observability is free" claim has quietly broken.

use criterion::{criterion_group, criterion_main, Criterion};
use press_metrics::{MetricsHub, TraceAggregator};
use press_trace::Event;
use pressd::replay_log;
use std::hint::black_box;

/// A small session: one link, one exhaustive episode over the default
/// 2-element space — the same shape `event_loop.rs` replays, so the
/// episode rung here is directly comparable to `BENCH_daemon.json`.
const SESSION: &str = "\
space lab-seed=17 elements=2 element-seed=4
controller strategy=exhaustive objective=max-min-snr seed=3 budget-s=0.08 frames=2 actuation=oracle
churn assoc label=lab obj=max-min-snr w=1 tx=7,5,1.5 rx=6.8,4,1.5 carrier=2462000000
measure
episode
snapshot
";

fn bench_metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(10);

    // The session's event stream, recovered once from a replay: this is
    // exactly what the live hub observes while the episode runs.
    let events: Vec<Event> = replay_log(SESSION)
        .iter()
        .filter_map(|line| Event::from_jsonl(line))
        .collect();
    assert!(
        events.len() > 10,
        "the session must emit a real event stream"
    );

    // A whole recorded session through the event loop, live hub attached.
    group.bench_function("episode_with_live_hub", |b| {
        b.iter(|| black_box(replay_log(SESSION)))
    });

    // The pure trace→metrics fold over the same stream: registration plus
    // one observe call per event, no engine.
    group.bench_function("hub_observe_session", |b| {
        b.iter(|| {
            let mut hub = MetricsHub::new();
            let mut agg = TraceAggregator::new(&mut hub);
            for ev in &events {
                agg.observe(&mut hub, ev);
            }
            black_box(hub)
        })
    });

    // One full exposition render of the populated hub.
    let mut hub = MetricsHub::new();
    let mut agg = TraceAggregator::new(&mut hub);
    for ev in &events {
        agg.observe(&mut hub, ev);
    }
    group.bench_function("render_exposition", |b| b.iter(|| black_box(hub.render())));

    group.finish();
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
