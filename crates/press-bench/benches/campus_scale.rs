//! Criterion benches: campus-scale sharded harmonization and churn.
//!
//! The tentpole claims behind `BENCH_campus.json`:
//!
//! * **Near-linear scaling in link count.** Two campuses with the same
//!   floor plan and array (4 floors × 5 rooms, 64 elements) but half vs
//!   full client population (240 vs 500 links) are sharded and optimized
//!   under the same per-shard budget. Per-shard search cost is linear in
//!   the links a shard serves, so the half-size run should land near 0.5×
//!   the full run; the gated floor (0.30) trips when sharding degrades
//!   toward superlinear whole-campus behavior.
//! * **Churn re-association is a cache hit.** Re-adding a departed
//!   endpoint pair must be decisively cheaper than associating a fresh
//!   pair (which walks the scene and builds a basis); the gated ratio is
//!   the speedup of the pair-cache hit over the cold path.

use criterion::{criterion_group, criterion_main, Criterion};
use press_core::{optimize_sharded_parallel, shard_space, LinkObjective, SmartSpace};
use press_propagation::{Campus, CampusConfig, Vec3};
use std::hint::black_box;

/// Couplings at or above this (element energy relative to the static
/// environment) tie a link to an element. Calibrated in press-core's
/// joint tests: same-floor couplings sit well above, concrete-slab-
/// attenuated cross-floor ones well below, so campuses shard per floor.
const COUPLING_FLOOR_DB: f64 = -75.0;
const SHARD_BUDGET: usize = 24;
const THREADS: usize = 4;

/// A 4-floor, 5-room-per-floor campus (64 doorway elements) populated
/// with `clients_per_room` links per room.
fn campus_space(clients_per_room: usize) -> SmartSpace {
    let config = CampusConfig {
        floors: 4,
        rooms_per_floor: 5,
        clients_per_room,
        scatterers_per_room: 2,
        ..CampusConfig::default()
    };
    SmartSpace::campus(&Campus::generate(&config, 1), LinkObjective::MaxMeanSnr)
}

fn bench_sharded_scaling(c: &mut Criterion) {
    let half = campus_space(12); // 240 links
    let full = campus_space(25); // 500 links
    assert_eq!(full.n_links(), 500);
    let half_shards = shard_space(&half, COUPLING_FLOOR_DB, 0.0);
    let full_shards = shard_space(&full, COUPLING_FLOOR_DB, 0.0);

    let mut group = c.benchmark_group("campus_scale");
    group.sample_size(10);
    group.bench_function("sharded_240", |b| {
        b.iter(|| {
            black_box(optimize_sharded_parallel(
                &half,
                &half_shards,
                SHARD_BUDGET,
                1,
                THREADS,
            ))
        })
    });
    group.bench_function("sharded_500", |b| {
        b.iter(|| {
            black_box(optimize_sharded_parallel(
                &full,
                &full_shards,
                SHARD_BUDGET,
                1,
                THREADS,
            ))
        })
    });
    group.finish();
}

fn bench_churn_registry(c: &mut Criterion) {
    // Churn rides the default (small) campus: the costs under test —
    // scene walk + basis build vs pair-cache clone — are per link, not
    // per campus.
    let mut space = SmartSpace::campus(
        &Campus::generate(&CampusConfig::default(), 1),
        LinkObjective::MaxMeanSnr,
    );
    let ids = space.link_ids();
    let template = space.link(ids[1]).sounder.clone();

    let mut group = c.benchmark_group("campus_scale");
    group.sample_size(10);
    group.bench_function("readd_known_pair", |b| {
        let mut cur = ids[0];
        b.iter(|| {
            let sl = space.remove_link(cur);
            cur = space.add_link(&sl.label, sl.sounder, sl.objective, sl.weight);
            black_box(cur);
        })
    });
    group.bench_function("add_new_pair", |b| {
        // Each iteration associates a genuinely new endpoint pair: the
        // client position steps by a counter so no pair key ever repeats
        // (and neither the live registry nor the pair cache can serve it).
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            let mut s = template.clone();
            s.rx.node.position = Vec3::new(
                1.0 + (counter % 40) as f64 * 0.1,
                1.0 + (counter / 40) as f64 * 1e-4,
                1.2,
            );
            let id = space.add_link("fresh", s, LinkObjective::MaxMeanSnr, 1.0);
            black_box(space.remove_link(id));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_scaling, bench_churn_registry);
criterion_main!(benches);
