//! Criterion benches: propagation-engine hot paths.
//!
//! Channel synthesis is the inner loop of every campaign and search —
//! a configuration evaluation is `trace + frequency_response`, and the
//! controller's real-time budget (§2) is spent here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use press_core::{Configuration, LinkBasis};
use press_math::Complex64;
use press_propagation::{frequency_response, LabConfig, LabSetup};
use std::hint::black_box;

fn bench_scene_trace(c: &mut Criterion) {
    let lab = LabSetup::generate(&LabConfig::default(), 1);
    c.bench_function("scene_trace_full_office", |b| {
        b.iter(|| black_box(lab.scene.paths(&lab.tx, &lab.rx)))
    });
}

fn bench_frequency_response(c: &mut Criterion) {
    let lab = LabSetup::generate(&LabConfig::default(), 1);
    let paths = lab.scene.paths(&lab.tx, &lab.rx);
    let mut group = c.benchmark_group("frequency_response");
    for n_sc in [52usize, 102, 256] {
        let freqs: Vec<f64> = (0..n_sc)
            .map(|k| 2.462e9 + (k as f64 - n_sc as f64 / 2.0) * 312_500.0)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_sc), &freqs, |b, freqs| {
            b.iter(|| black_box(frequency_response(&paths, freqs, 0.0)))
        });
    }
    group.finish();
}

fn bench_config_evaluation(c: &mut Criterion) {
    // One full configuration evaluation: element paths + oracle SNR, the
    // unit the search-algorithm budgets count.
    let rig = press::rig::fig4_rig(1);
    let link = press_core::CachedLink::trace(
        &rig.system,
        rig.sounder.tx.node.clone(),
        rig.sounder.rx.node.clone(),
    );
    let config = Configuration::new(vec![1, 2, 0]);
    c.bench_function("config_evaluation_oracle", |b| {
        b.iter(|| {
            let paths = link.paths(&rig.system, black_box(&config));
            black_box(rig.sounder.oracle_snr(&paths, 0.0))
        })
    });
}

fn bench_basis_vs_direct(c: &mut Criterion) {
    // The tentpole comparison: a 64-config sweep evaluated by direct path
    // re-trace + synthesis vs the precomputed link basis (O(N·K) per
    // config). The basis build cost is excluded — it is paid once per link,
    // amortized over every search/campaign evaluation.
    let rig = press::rig::fig4_rig(1);
    let link = press_core::CachedLink::trace(
        &rig.system,
        rig.sounder.tx.node.clone(),
        rig.sounder.rx.node.clone(),
    );
    let basis = LinkBasis::for_numerology(&rig.system, &link, &rig.sounder.num);
    let freqs = rig.sounder.num.active_freqs_hz();
    let configs: Vec<Configuration> = basis.space().iter().collect();

    let mut group = c.benchmark_group("config_sweep_64");
    group.bench_function("direct_retrace", |b| {
        b.iter(|| {
            for config in &configs {
                let paths = link.paths(&rig.system, black_box(config));
                black_box(frequency_response(&paths, &freqs, 0.0));
            }
        })
    });
    group.bench_function("basis_cached", |b| {
        let mut h: Vec<Complex64> = Vec::with_capacity(basis.n_subcarriers());
        b.iter(|| {
            for config in &configs {
                basis.synthesize_into(black_box(config), 0.0, &mut h);
                black_box(&h);
            }
        })
    });
    group.finish();
}

fn bench_incremental_vs_rebuild(c: &mut Criterion) {
    // Single-coordinate move on an 8-element array: full O(N·K)
    // re-synthesis vs the O(K) subtract-old/add-new column update the
    // serial searches ride. (At 3 elements the two are a wash; the
    // incremental win scales with N.)
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let lab = LabSetup::generate(&LabConfig::default(), 1);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(5);
    let positions = lab.random_element_positions(8, &mut rng);
    let array = press_core::PressArray::paper_passive(&positions, lambda);
    let system = press_core::PressSystem::new(lab.scene.clone(), array);
    let link = press_core::CachedLink::trace(&system, lab.tx.clone(), lab.rx.clone());
    let freqs: Vec<f64> = (0..52)
        .map(|k| 2.462e9 + (k as f64 - 26.0) * 312_500.0)
        .collect();
    let basis = LinkBasis::build(&system, &link, &freqs);
    let config = Configuration::new(vec![1, 2, 0, 3, 1, 0, 2, 1]);
    let mut moved = config.clone();
    moved.states[4] = 3;

    let mut group = c.benchmark_group("single_move_8elem");
    group.bench_function("full_synthesis", |b| {
        let mut h: Vec<Complex64> = Vec::with_capacity(basis.n_subcarriers());
        b.iter(|| {
            basis.synthesize_into(black_box(&moved), 0.0, &mut h);
            black_box(&h);
        })
    });
    group.bench_function("incremental_move_pair", |b| {
        // A there-and-back pair of O(K) updates, so the buffer state is
        // iteration-invariant; halve the reported time for one move.
        let mut h = basis.synthesize(&config, 0.0);
        b.iter(|| {
            basis.apply_move(&mut h, 4, black_box(1), black_box(3), 0.0);
            basis.apply_move(&mut h, 4, black_box(3), black_box(1), 0.0);
            black_box(&h);
        })
    });
    group.finish();
}

fn bench_exhaustive_scoring(c: &mut Criterion) {
    // The perf-trajectory headline: scoring a 4096-configuration exhaustive
    // sweep (6 paper elements × 4 states) per-candidate through
    // `synthesize_into` vs in batches through the SoA `BatchEvaluator`.
    // The batch kernel re-accumulates only the columns below each sorted
    // candidate's shared prefix (~M/(M-1) per candidate on a full sweep
    // instead of N), so this is where the prefix stack pays off; the
    // two paths are bitwise-equal by contract (asserted in press-core's
    // tests), so the ratio is pure throughput.
    use press_core::{min_magnitude_db_metric, BatchEvaluator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let lab = LabSetup::generate(&LabConfig::default(), 1);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(5);
    let positions = lab.random_element_positions(6, &mut rng);
    let array = press_core::PressArray::paper_passive(&positions, lambda);
    let system = press_core::PressSystem::new(lab.scene.clone(), array);
    let link = press_core::CachedLink::trace(&system, lab.tx.clone(), lab.rx.clone());
    let freqs: Vec<f64> = (0..52)
        .map(|k| 2.462e9 + (k as f64 - 26.0) * 312_500.0)
        .collect();
    let basis = LinkBasis::build(&system, &link, &freqs);
    let configs: Vec<Configuration> = basis.space().iter().collect();
    assert_eq!(configs.len(), 4096);

    let mut group = c.benchmark_group("exhaustive_scoring_4096");
    group.bench_function("scalar", |b| {
        let mut metric = min_magnitude_db_metric();
        let mut h: Vec<Complex64> = Vec::with_capacity(basis.n_subcarriers());
        b.iter(|| {
            let mut best = f64::NEG_INFINITY;
            for config in &configs {
                basis.synthesize_into(black_box(config), 0.0, &mut h);
                best = best.max(metric(&h));
            }
            black_box(best)
        })
    });
    group.bench_function("batched", |b| {
        // Whole-sweep batch: evaluator scratch is (N+1)·K rows regardless
        // of batch size, and bigger batches mean longer shared prefixes.
        let mut metric = min_magnitude_db_metric();
        let mut evaluator = BatchEvaluator::new(&basis);
        let mut scores: Vec<f64> = Vec::new();
        b.iter(|| {
            let mut best = f64::NEG_INFINITY;
            evaluator.scores_into(black_box(&configs), 0.0, &mut metric, &mut scores);
            for &s in &scores {
                best = best.max(s);
            }
            black_box(best)
        })
    });
    group.finish();
}

fn bench_lab_generation(c: &mut Criterion) {
    c.bench_function("lab_generation", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(LabSetup::generate(&LabConfig::default(), seed))
        })
    });
}

criterion_group!(
    benches,
    bench_scene_trace,
    bench_frequency_response,
    bench_config_evaluation,
    bench_basis_vs_direct,
    bench_incremental_vs_rebuild,
    bench_exhaustive_scoring,
    bench_lab_generation
);
criterion_main!(benches);
