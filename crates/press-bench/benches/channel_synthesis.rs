//! Criterion benches: propagation-engine hot paths.
//!
//! Channel synthesis is the inner loop of every campaign and search —
//! a configuration evaluation is `trace + frequency_response`, and the
//! controller's real-time budget (§2) is spent here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use press_core::Configuration;
use press_propagation::{frequency_response, LabConfig, LabSetup};
use std::hint::black_box;

fn bench_scene_trace(c: &mut Criterion) {
    let lab = LabSetup::generate(&LabConfig::default(), 1);
    c.bench_function("scene_trace_full_office", |b| {
        b.iter(|| black_box(lab.scene.paths(&lab.tx, &lab.rx)))
    });
}

fn bench_frequency_response(c: &mut Criterion) {
    let lab = LabSetup::generate(&LabConfig::default(), 1);
    let paths = lab.scene.paths(&lab.tx, &lab.rx);
    let mut group = c.benchmark_group("frequency_response");
    for n_sc in [52usize, 102, 256] {
        let freqs: Vec<f64> = (0..n_sc)
            .map(|k| 2.462e9 + (k as f64 - n_sc as f64 / 2.0) * 312_500.0)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_sc), &freqs, |b, freqs| {
            b.iter(|| black_box(frequency_response(&paths, freqs, 0.0)))
        });
    }
    group.finish();
}

fn bench_config_evaluation(c: &mut Criterion) {
    // One full configuration evaluation: element paths + oracle SNR, the
    // unit the search-algorithm budgets count.
    let rig = press::rig::fig4_rig(1);
    let link = press_core::CachedLink::trace(
        &rig.system,
        rig.sounder.tx.node.clone(),
        rig.sounder.rx.node.clone(),
    );
    let config = Configuration::new(vec![1, 2, 0]);
    c.bench_function("config_evaluation_oracle", |b| {
        b.iter(|| {
            let paths = link.paths(&rig.system, black_box(&config));
            black_box(rig.sounder.oracle_snr(&paths, 0.0))
        })
    });
}

fn bench_lab_generation(c: &mut Criterion) {
    c.bench_function("lab_generation", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(LabSetup::generate(&LabConfig::default(), seed))
        })
    });
}

criterion_group!(
    benches,
    bench_scene_trace,
    bench_frequency_response,
    bench_config_evaluation,
    bench_lab_generation
);
criterion_main!(benches);
