//! Criterion benches: OFDM PHY hot paths — FFT, modulation, channel
//! estimation, SNR analysis, MIMO conditioning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use press_math::fft::{fft, ifft};
use press_math::svd::{condition_number_db, singular_values};
use press_math::{CMat, Complex64};
use press_phy::channel_est::estimate_channel;
use press_phy::frame::{training_sequence, OfdmModulator};
use press_phy::modulation::Modulation;
use press_phy::numerology::Numerology;
use press_phy::snr::SnrProfile;
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [64usize, 128, 1024] {
        let data: Vec<Complex64> = (0..n).map(|k| Complex64::cis(k as f64 * 0.1)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut v = data.clone();
                fft(&mut v).unwrap();
                ifft(&mut v).unwrap();
                black_box(v)
            })
        });
    }
    group.finish();
}

fn bench_ofdm_modulator(c: &mut Criterion) {
    let num = Numerology::wifi20(2.462e9);
    let modulator = OfdmModulator::new(num);
    let sym = training_sequence(52);
    c.bench_function("ofdm_roundtrip_80_samples", |b| {
        b.iter(|| {
            let t = modulator.to_time(black_box(&sym));
            black_box(modulator.to_freq(&t))
        })
    });
}

fn bench_modulation(c: &mut Criterion) {
    let bits: Vec<bool> = (0..6).map(|i| i % 2 == 0).collect();
    c.bench_function("qam64_map_demap", |b| {
        b.iter(|| {
            let s = Modulation::Qam64.map(black_box(&bits));
            black_box(Modulation::Qam64.demap(s))
        })
    });
}

fn bench_channel_estimation(c: &mut Criterion) {
    let t = training_sequence(52);
    let h: Vec<Complex64> = (0..52)
        .map(|k| Complex64::from_polar(1e-3, k as f64 * 0.3))
        .collect();
    let rx: Vec<Vec<Complex64>> = (0..2)
        .map(|m| {
            t.iter()
                .zip(&h)
                .map(|(tr, hh)| *tr * *hh + Complex64::new(1e-6 * m as f64, 0.0))
                .collect()
        })
        .collect();
    c.bench_function("channel_estimate_52sc_2ltf", |b| {
        b.iter(|| black_box(estimate_channel(&t, black_box(&rx)).unwrap()))
    });
}

fn bench_snr_analysis(c: &mut Criterion) {
    let profile = SnrProfile::new(
        (0..52)
            .map(|k| 20.0 + 15.0 * (k as f64 * 0.4).sin())
            .collect(),
    );
    c.bench_function("snr_null_and_effective", |b| {
        b.iter(|| {
            black_box(profile.most_significant_null(5.0));
            black_box(profile.effective_snr_db(4.0))
        })
    });
}

fn bench_condition_number(c: &mut Criterion) {
    let m2 = CMat::from_fn(2, 2, |i, j| Complex64::new(i as f64 + 0.3, j as f64 - 0.7));
    let m4 = CMat::from_fn(4, 4, |i, j| {
        Complex64::new((i * j) as f64 * 0.1 + 1.0, i as f64 - j as f64)
    });
    c.bench_function("condition_number_2x2_closed_form", |b| {
        b.iter(|| black_box(condition_number_db(black_box(&m2)).unwrap()))
    });
    c.bench_function("singular_values_4x4_jacobi", |b| {
        b.iter(|| black_box(singular_values(black_box(&m4)).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_ofdm_modulator,
    bench_modulation,
    bench_channel_estimation,
    bench_snr_analysis,
    bench_condition_number
);
criterion_main!(benches);
