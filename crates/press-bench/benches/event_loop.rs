//! Criterion bench: the pressd event loop, protocol to episode.
//!
//! The claim behind `BENCH_daemon.json`: the daemon adds negligible
//! overhead around the episode engine. Three rungs of the ladder are
//! measured — pure protocol parse/render over a representative command
//! bundle, a full loop dispatch of a snapshot command (parse + engine +
//! JSONL render, no episode), and the replay of a small recorded session
//! whose cost is dominated by its one real optimization episode. The gated
//! floor is the replay-vs-dispatch ratio: if command dispatch (the
//! daemon's own bookkeeping) ever grows to a meaningful fraction of an
//! episode, the ratio collapses and CI catches it.

use criterion::{criterion_group, criterion_main, Criterion};
use pressd::{parse_line, render_command, replay_log, EventLoop, Line};
use std::hint::black_box;

/// A representative command bundle: every verb, all three churn variants,
/// faults with float payloads.
const COMMANDS: &[&str] = &[
    "measure",
    "episode",
    "snapshot",
    "churn assoc label=lab obj=max-min-snr w=1 tx=7,5,1.5 rx=6.8,4,1.5@0.8,0,0 carrier=2462000000",
    "churn assoc label=guest obj=flatness w=0.5 tx=5.5,6.2,1.3 rx=6.1,5.4,1.4 carrier=2412000000",
    "churn roam id=1 to=6.1,5.4,1.4@0.8,0,0",
    "churn leave id=0",
    "fault burst=0.004,0.2,0.005,0.6 dead=0,1 stuck=4:1,5:0",
    "fault clear",
];

/// A small session: one link, one exhaustive episode over the default
/// 2-element space, plus the cheap bookkeeping commands around it.
const SESSION: &str = "\
space lab-seed=17 elements=2 element-seed=4
controller strategy=exhaustive objective=max-min-snr seed=3 budget-s=0.08 frames=2 actuation=oracle
churn assoc label=lab obj=max-min-snr w=1 tx=7,5,1.5 rx=6.8,4,1.5 carrier=2462000000
measure
episode
snapshot
";

fn bench_event_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_loop");
    group.sample_size(10);

    // Pure protocol: parse every bundle line, render the command back.
    group.bench_function("parse_render", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for line in COMMANDS {
                if let Ok(Line::Command(cmd)) = parse_line(line) {
                    bytes += render_command(&cmd).len();
                }
            }
            black_box(bytes)
        })
    });

    // Full loop dispatch without an episode: parse, engine snapshot, JSONL
    // render — the daemon's per-command overhead.
    group.bench_function("snapshot_command", |b| {
        let mut el = EventLoop::new();
        let mut out = Vec::new();
        el.handle_line(
            "churn assoc label=lab obj=max-min-snr w=1 tx=7,5,1.5 rx=6.8,4,1.5 carrier=2462000000",
            &mut out,
        );
        b.iter(|| {
            let mut out = Vec::new();
            el.handle_line("snapshot", &mut out);
            black_box(out)
        })
    });

    // A whole recorded session, episode included.
    group.bench_function("replay_small_session", |b| {
        b.iter(|| black_box(replay_log(SESSION)))
    });

    group.finish();
}

criterion_group!(benches, bench_event_loop);
criterion_main!(benches);
