//! The perf trajectory: distilling criterion output into checked-in
//! `BENCH_*.json` snapshots and gating regressions against them.
//!
//! Criterion writes per-benchmark medians under
//! `target/criterion/<group>/<bench>/new/estimates.json`. The `press-bench`
//! binary's `distill` subcommand reduces those to one small JSON snapshot
//! per suite (format `press-bench-snapshot/v1`), and `check` compares a
//! fresh run against the checked-in snapshots.
//!
//! ## What gates, what informs
//!
//! Absolute medians are **informational**: they are measured on whatever
//! machine produced the snapshot and CI runners differ, so nanoseconds do
//! not travel. What gates is the **dimensionless ratios** — batched vs
//! scalar throughput, basis vs direct re-trace — which divide out the
//! hardware. `check` fails when a ratio falls below its recorded floor
//! (`min`) or regresses more than the tolerance (default 10%) against the
//! snapshot's value. An `--absolute` flag adds the raw-median gate for
//! same-machine comparisons.
//!
//! Everything here is hand-rolled (a ~100-line JSON parser included)
//! because the workspace takes no serde dependency.

use std::fmt::Write as _;
use std::path::Path;

/// Snapshot format tag; bump on breaking layout changes.
pub const FORMAT: &str = "press-bench-snapshot/v1";

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects keep insertion order (no hash maps — the
/// snapshot files are diffed by humans and written deterministically).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Strict enough for criterion estimates and our
/// own snapshots; not a general-purpose validator.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(String::from("unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    // \uXXXX and the rare escapes never appear in bench ids;
                    // keep them as-is rather than decode surrogates.
                    other => {
                        out.push('\\');
                        out.push(other as char);
                    }
                }
            }
            _ => out.push(c as char),
        }
    }
    Err(String::from("unterminated string"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One benchmark's distilled result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Criterion id, `group/function`.
    pub id: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
}

/// One dimensionless speedup ratio (`num`'s median over `den`'s median —
/// num is the slow/reference side, so values above 1 are wins).
#[derive(Debug, Clone, PartialEq)]
pub struct RatioEntry {
    /// Ratio id for reports, e.g. `exhaustive_scoring_4096/batched_vs_scalar`.
    pub id: String,
    /// Entry id of the numerator (reference / scalar side).
    pub num: String,
    /// Entry id of the denominator (optimized side).
    pub den: String,
    /// The measured ratio, `median(num) / median(den)`.
    pub value: f64,
    /// Hard floor: `check` fails when the current ratio drops below this,
    /// regardless of what the snapshot recorded.
    pub min: f64,
}

/// One suite's perf snapshot (one `BENCH_*.json` file).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Suite name (the criterion bench target), e.g. `channel_synthesis`.
    pub suite: String,
    /// Absolute medians, informational.
    pub entries: Vec<BenchEntry>,
    /// Dimensionless ratios, gating.
    pub ratios: Vec<RatioEntry>,
}

impl Snapshot {
    /// The checked-in filename for this suite.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.suite)
    }

    /// Looks an entry median up by id.
    pub fn median(&self, id: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.median_ns)
    }

    /// Renders the snapshot as deterministic, human-diffable JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"format\": \"{FORMAT}\",");
        let _ = writeln!(out, "  \"suite\": \"{}\",", self.suite);
        let _ = writeln!(out, "  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{ \"id\": \"{}\", \"median_ns\": {:.1} }}{comma}",
                e.id, e.median_ns
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"ratios\": [");
        for (i, r) in self.ratios.iter().enumerate() {
            let comma = if i + 1 < self.ratios.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{ \"id\": \"{}\", \"num\": \"{}\", \"den\": \"{}\", \
                 \"value\": {:.2}, \"min\": {:.2} }}{comma}",
                r.id, r.num, r.den, r.value, r.min
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a snapshot rendered by [`render`](Self::render) (or hand
    /// edited — any `press-bench-snapshot/v1` document).
    pub fn parse(src: &str) -> Result<Snapshot, String> {
        let v = parse_json(src)?;
        let format = v.get("format").and_then(Json::as_str).unwrap_or("");
        if format != FORMAT {
            return Err(format!("unknown snapshot format `{format}`"));
        }
        let suite = v
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("missing suite")?
            .to_string();
        let mut entries = Vec::new();
        for e in v.get("entries").and_then(Json::as_arr).unwrap_or(&[]) {
            entries.push(BenchEntry {
                id: e
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("entry missing id")?
                    .to_string(),
                median_ns: e
                    .get("median_ns")
                    .and_then(Json::as_f64)
                    .ok_or("entry missing median_ns")?,
            });
        }
        let mut ratios = Vec::new();
        for r in v.get("ratios").and_then(Json::as_arr).unwrap_or(&[]) {
            ratios.push(RatioEntry {
                id: r
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("ratio missing id")?
                    .to_string(),
                num: r
                    .get("num")
                    .and_then(Json::as_str)
                    .ok_or("ratio missing num")?
                    .to_string(),
                den: r
                    .get("den")
                    .and_then(Json::as_str)
                    .ok_or("ratio missing den")?
                    .to_string(),
                value: r
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or("ratio missing value")?,
                min: r
                    .get("min")
                    .and_then(Json::as_f64)
                    .ok_or("ratio missing min")?,
            });
        }
        Ok(Snapshot {
            suite,
            entries,
            ratios,
        })
    }
}

// ---------------------------------------------------------------------------
// Suite definitions
// ---------------------------------------------------------------------------

/// Static shape of one suite: which criterion ids to distill and which
/// ratios gate.
#[derive(Debug, Clone)]
pub struct SuiteSpec {
    /// Suite / bench-target name.
    pub suite: &'static str,
    /// Criterion ids (`group/function`) captured as entries.
    pub entry_ids: &'static [&'static str],
    /// Gating ratios: `(id, num, den, min)`.
    pub ratio_specs: &'static [(&'static str, &'static str, &'static str, f64)],
}

/// The suites the perf trajectory tracks.
pub fn suite_specs() -> Vec<SuiteSpec> {
    vec![
        SuiteSpec {
            suite: "channel_synthesis",
            entry_ids: &[
                "config_sweep_64/direct_retrace",
                "config_sweep_64/basis_cached",
                "single_move_8elem/full_synthesis",
                "single_move_8elem/incremental_move_pair",
                "exhaustive_scoring_4096/scalar",
                "exhaustive_scoring_4096/batched",
            ],
            ratio_specs: &[
                // Measured ~2x on the reference run; the floor sits below
                // the run-to-run noise band so it only trips on genuine
                // kernel regressions (the 10% snapshot tolerance does the
                // fine-grained gating).
                (
                    "exhaustive_scoring_4096/batched_vs_scalar",
                    "exhaustive_scoring_4096/scalar",
                    "exhaustive_scoring_4096/batched",
                    1.6,
                ),
                (
                    "config_sweep_64/basis_vs_direct",
                    "config_sweep_64/direct_retrace",
                    "config_sweep_64/basis_cached",
                    5.0,
                ),
            ],
        },
        SuiteSpec {
            suite: "search",
            entry_ids: &["genetic_basis_6elem/scalar", "genetic_basis_6elem/batched"],
            // Generation-sized batches (population 48) share shorter
            // prefixes than a full sweep, so the genetic win is ~1.3x
            // measured; floor below the noise band.
            ratio_specs: &[(
                "genetic_basis_6elem/batched_vs_scalar",
                "genetic_basis_6elem/scalar",
                "genetic_basis_6elem/batched",
                1.1,
            )],
        },
        SuiteSpec {
            suite: "campus",
            entry_ids: &[
                "campus_scale/sharded_240",
                "campus_scale/sharded_500",
                "campus_scale/readd_known_pair",
                "campus_scale/add_new_pair",
            ],
            ratio_specs: &[
                // Near-linear scaling in link count: the half-population
                // campus (240 of 500 links, same floors and array) should
                // cost ~0.48x the full one under the same per-shard
                // budget. The floor trips when sharded cost degrades
                // toward superlinear whole-campus behavior.
                (
                    "campus_scale/half_vs_full",
                    "campus_scale/sharded_240",
                    "campus_scale/sharded_500",
                    0.30,
                ),
                // Re-associating a departed pair is a pair-cache clone;
                // associating a fresh pair walks the scene and builds a
                // basis. The floor trips if churn ever falls back to the
                // cold path.
                (
                    "campus_scale/readd_hit_speedup",
                    "campus_scale/add_new_pair",
                    "campus_scale/readd_known_pair",
                    2.0,
                ),
            ],
        },
        SuiteSpec {
            suite: "daemon",
            entry_ids: &[
                "event_loop/parse_render",
                "event_loop/snapshot_command",
                "event_loop/replay_small_session",
            ],
            // Replaying a one-episode session must stay decisively more
            // expensive than dispatching a single no-episode command: the
            // daemon's own bookkeeping (parse, render, tail ring) is noise
            // next to an episode. The floor trips if dispatch overhead
            // ever grows toward episode cost.
            ratio_specs: &[(
                "event_loop/replay_vs_dispatch",
                "event_loop/replay_small_session",
                "event_loop/snapshot_command",
                2.0,
            )],
        },
        SuiteSpec {
            suite: "metrics",
            entry_ids: &[
                "metrics_overhead/episode_with_live_hub",
                "metrics_overhead/hub_observe_session",
                "metrics_overhead/render_exposition",
            ],
            // A live hub must stay free at episode granularity: folding a
            // session's whole event stream into the hub has to cost under
            // 2% of replaying the session itself (episode included). The
            // floor trips if per-event observation ever grows from
            // pre-resolved handle updates into something with lookups or
            // allocation on the hot path.
            ratio_specs: &[(
                "metrics_overhead/episode_vs_hub_observe",
                "metrics_overhead/episode_with_live_hub",
                "metrics_overhead/hub_observe_session",
                50.0,
            )],
        },
        SuiteSpec {
            suite: "lint",
            entry_ids: &["lint_workspace/cold", "lint_workspace/warm"],
            // A warm analyzer run serves pass 1 from the content-hash
            // cache; only hashing + the model pass remain. Measured well
            // above 5x on the reference run; the floor trips when cache
            // hits silently regress into misses.
            ratio_specs: &[(
                "lint_workspace/warm_speedup",
                "lint_workspace/cold",
                "lint_workspace/warm",
                5.0,
            )],
        },
    ]
}

/// Reads one benchmark's median (ns) from criterion's estimates file under
/// `criterion_dir` (normally `target/criterion`).
pub fn criterion_median_ns(criterion_dir: &Path, id: &str) -> Result<f64, String> {
    let path = criterion_dir.join(id).join("new").join("estimates.json");
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e} (run the benches first)", path.display()))?;
    median_from_estimates(&src).ok_or_else(|| format!("{}: no median estimate", path.display()))
}

/// Extracts `median.point_estimate` from a criterion estimates document.
pub fn median_from_estimates(src: &str) -> Option<f64> {
    parse_json(src)
        .ok()?
        .get("median")?
        .get("point_estimate")?
        .as_f64()
}

/// Distills one suite's current criterion output into a snapshot.
pub fn distill_suite(criterion_dir: &Path, spec: &SuiteSpec) -> Result<Snapshot, String> {
    let mut entries = Vec::new();
    for id in spec.entry_ids {
        entries.push(BenchEntry {
            id: (*id).to_string(),
            median_ns: criterion_median_ns(criterion_dir, id)?,
        });
    }
    let snapshot = Snapshot {
        suite: spec.suite.to_string(),
        entries,
        ratios: Vec::new(),
    };
    let ratios = spec
        .ratio_specs
        .iter()
        .map(|(id, num, den, min)| {
            let n = snapshot
                .median(num)
                .ok_or_else(|| format!("no entry {num}"))?;
            let d = snapshot
                .median(den)
                .ok_or_else(|| format!("no entry {den}"))?;
            Ok(RatioEntry {
                id: (*id).to_string(),
                num: (*num).to_string(),
                den: (*den).to_string(),
                value: n / d,
                min: *min,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Snapshot { ratios, ..snapshot })
}

// ---------------------------------------------------------------------------
// The regression gate
// ---------------------------------------------------------------------------

/// Compares a fresh run against the checked-in baseline. Returns the list
/// of failures (empty = gate passes).
///
/// * Every baseline ratio must exist in the current run, clear its hard
///   floor (`min`), and sit within `tolerance` (fractional, e.g. `0.10`)
///   of the baseline value — a batched-vs-scalar speedup that decays from
///   2.6× to 2.2× is a >10% median regression even though both beat 2×.
/// * Absolute medians gate only when `absolute` is set (same-machine
///   comparisons); cross-machine they are informational.
pub fn check_against(
    baseline: &Snapshot,
    current: &Snapshot,
    tolerance: f64,
    absolute: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    for r in &baseline.ratios {
        let Some(cur) = current.ratios.iter().find(|c| c.id == r.id) else {
            failures.push(format!(
                "{}: ratio `{}` missing from run",
                baseline.suite, r.id
            ));
            continue;
        };
        if cur.value < r.min {
            failures.push(format!(
                "{}: `{}` = {:.2}x fell below its floor of {:.2}x",
                baseline.suite, r.id, cur.value, r.min
            ));
        }
        if cur.value < r.value * (1.0 - tolerance) {
            failures.push(format!(
                "{}: `{}` regressed {:.2}x -> {:.2}x (>{:.0}% below snapshot)",
                baseline.suite,
                r.id,
                r.value,
                cur.value,
                tolerance * 100.0
            ));
        }
    }
    if absolute {
        for e in &baseline.entries {
            let Some(cur) = current.median(&e.id) else {
                failures.push(format!(
                    "{}: entry `{}` missing from run",
                    baseline.suite, e.id
                ));
                continue;
            };
            if cur > e.median_ns * (1.0 + tolerance) {
                failures.push(format!(
                    "{}: `{}` regressed {:.0}ns -> {:.0}ns (>{:.0}% above snapshot)",
                    baseline.suite,
                    e.id,
                    e.median_ns,
                    cur,
                    tolerance * 100.0
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> Snapshot {
        Snapshot {
            suite: "channel_synthesis".to_string(),
            entries: vec![
                BenchEntry {
                    id: "g/scalar".to_string(),
                    median_ns: 1000.0,
                },
                BenchEntry {
                    id: "g/batched".to_string(),
                    median_ns: 400.0,
                },
            ],
            ratios: vec![RatioEntry {
                id: "g/batched_vs_scalar".to_string(),
                num: "g/scalar".to_string(),
                den: "g/batched".to_string(),
                value: 2.5,
                min: 2.0,
            }],
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let s = snapshot();
        let parsed = Snapshot::parse(&s.render()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_rejects_other_formats() {
        assert!(Snapshot::parse("{\"format\": \"v0\", \"suite\": \"x\"}").is_err());
        assert!(Snapshot::parse("not json").is_err());
    }

    #[test]
    fn json_parser_handles_nested_documents() {
        let v = parse_json(
            "{\"median\": {\"confidence_interval\": {\"lower_bound\": 1.5e3}, \
             \"point_estimate\": 2048.25}, \"slope\": null, \"ok\": true, \
             \"tags\": [\"a\", \"b\"]}",
        )
        .unwrap();
        assert_eq!(
            v.get("median")
                .unwrap()
                .get("point_estimate")
                .unwrap()
                .as_f64(),
            Some(2048.25)
        );
        assert_eq!(v.get("slope"), Some(&Json::Null));
        assert_eq!(v.get("tags").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn median_extraction_matches_criterion_layout() {
        let src = "{\"mean\": {\"point_estimate\": 9.0}, \
                   \"median\": {\"point_estimate\": 1234.5, \"standard_error\": 3.0}}";
        assert_eq!(median_from_estimates(src), Some(1234.5));
        assert_eq!(median_from_estimates("{}"), None);
    }

    #[test]
    fn gate_passes_when_ratios_hold() {
        let base = snapshot();
        let mut current = snapshot();
        // A small improvement passes.
        current.ratios[0].value = 2.6;
        assert!(check_against(&base, &current, 0.10, false).is_empty());
        // A small in-tolerance decay passes too.
        current.ratios[0].value = 2.3;
        assert!(check_against(&base, &current, 0.10, false).is_empty());
    }

    #[test]
    fn gate_fails_on_ratio_regression_or_floor() {
        let base = snapshot();
        // 2.5 -> 2.1: above the 2.0 floor but >10% below the snapshot.
        let mut current = snapshot();
        current.ratios[0].value = 2.1;
        let failures = check_against(&base, &current, 0.10, false);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("regressed"), "{failures:?}");
        // 1.8: below the hard floor as well.
        current.ratios[0].value = 1.8;
        let failures = check_against(&base, &current, 0.10, false);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("floor"), "{failures:?}");
    }

    #[test]
    fn absolute_gate_is_opt_in() {
        let base = snapshot();
        let mut current = snapshot();
        current.entries[0].median_ns = 1500.0; // 50% slower scalar...
        current.ratios[0].value = 3.75; // ...which *helps* the ratio
        assert!(check_against(&base, &current, 0.10, false).is_empty());
        let failures = check_against(&base, &current, 0.10, true);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("g/scalar"), "{failures:?}");
    }

    #[test]
    fn suite_specs_reference_their_own_entries() {
        for spec in suite_specs() {
            for (_, num, den, min) in spec.ratio_specs {
                assert!(spec.entry_ids.contains(num), "{num}");
                assert!(spec.entry_ids.contains(den), "{den}");
                // Speedup ratios gate with floors >= 1x; scaling fractions
                // (e.g. campus half-vs-full, near 0.5 by design) gate with
                // sub-1x floors that trip when cost turns superlinear. A
                // non-positive floor gates nothing either way.
                assert!(*min > 0.0, "a non-positive ratio floor gates nothing");
            }
        }
    }
}
