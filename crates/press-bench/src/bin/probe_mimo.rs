//! MIMO conditioning probe: oracle (noiseless) condition-number spread
//! across PRESS configurations, to separate true conditioning changes from
//! measurement-noise saturation in the Figure 8 harness.

use press::rig::fig8_rig;
use press_core::{CachedLink, LinkBasis};
use press_math::Complex64;
use press_phy::mimo::MimoChannel;

fn main() {
    let rig = fig8_rig(0);
    let space = rig.system.array.config_space();
    let links: Vec<Vec<CachedLink>> = (0..2)
        .map(|a| {
            (0..2)
                .map(|b| CachedLink::trace(&rig.system, rig.tx[a].clone(), rig.rx[b].clone()))
                .collect()
        })
        .collect();
    let freqs = rig.sounder.num.active_freqs_hz();
    // Per-link bases: the 64-config sweep synthesizes channels from cached
    // columns instead of re-tracing paths per configuration.
    let bases: Vec<Vec<LinkBasis>> = links
        .iter()
        .map(|row| {
            row.iter()
                .map(|link| LinkBasis::build(&rig.system, link, &freqs))
                .collect()
        })
        .collect();
    let mut medians = Vec::new();
    for config in space.iter() {
        let h: Vec<Vec<Vec<Complex64>>> = (0..2)
            .map(|b| {
                (0..2)
                    .map(|a| bases[a][b].synthesize(&config, 0.0))
                    .collect()
            })
            .collect();
        let ch = MimoChannel::from_scalar_channels(&h);
        medians.push(ch.median_condition_db().unwrap());
    }
    medians.sort_by(f64::total_cmp);
    println!(
        "oracle median condition: min {:.2} dB, median {:.2} dB, max {:.2} dB, spread {:.2} dB",
        medians[0],
        medians[32],
        medians[63],
        medians[63] - medians[0]
    );
}
