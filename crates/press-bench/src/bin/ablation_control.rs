//! Ablation (§4.2): control plane mechanism vs timing budgets.
//!
//! "Likely wireless control plane candidates are low-frequency, low-rate
//! bands … ultrasound … as well as wires." The paper's timing constraints:
//! the channel coherence time (~80 ms standing, ~6 ms running) and the
//! packet-level 1–2 ms aspiration. This harness actuates arrays of 16–1024
//! elements over each transport, with per-element acknowledgements and
//! retries, and checks which budgets each mechanism meets.

use press::rig::{ElementPlacement, NetworkRig, PairLayout};
use press_bench::write_csv;
use press_control::{actuate, AckPolicy, ClusteredControl, FaultPlan, SpaceMetrics, Transport};
use press_core::{ActuationMode, Controller, LinkObjective, Strategy, TransportActuation};
use press_propagation::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("# Ablation: control plane transport vs actuation deadline");
    println!("# per-element acks, <=8 retries, 15 m worst-case controller-element range\n");
    let budgets = [
        ("packet 2 ms", 2e-3),
        ("running 6 ms", 6e-3),
        ("standing 80 ms", 80e-3),
    ];
    println!(
        "{:>12} {:>10} {:>14} {:>10} | {:>12} {:>13} {:>15}",
        "transport", "elements", "completion", "frames", budgets[0].0, budgets[1].0, budgets[2].0
    );
    let mut rows = Vec::new();
    for (name, transport) in [
        ("wired", Transport::wired()),
        ("ism", Transport::ism()),
        ("ultrasound", Transport::ultrasound()),
    ] {
        for n in [16usize, 64, 256, 1024] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 1)).collect();
            let report = actuate(
                &transport,
                &assignments,
                15.0,
                AckPolicy::PerElement { max_retries: 8 },
                &mut rng,
            );
            let verdicts: Vec<&str> = budgets
                .iter()
                .map(|&(_, b)| {
                    if report.complete() && report.completion_s <= b {
                        "meets"
                    } else {
                        "MISSES"
                    }
                })
                .collect();
            println!(
                "{name:>12} {n:>10} {:>12.2}ms {:>10} | {:>12} {:>13} {:>15}",
                report.completion_s * 1e3,
                report.frames_sent,
                verdicts[0],
                verdicts[1],
                verdicts[2]
            );
            rows.push(format!(
                "{name},{n},{:.6},{},{},{},{}",
                report.completion_s, report.frames_sent, verdicts[0], verdicts[1], verdicts[2]
            ));
        }
    }
    // The Section 4.2 hybrid: ISM backbone to cluster heads, wired panel
    // buses inside (32 elements per panel).
    for n in [64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(n as u64 + 1);
        let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 1)).collect();
        let hybrid = ClusteredControl::ism_heads_wired_panels(32);
        let report = hybrid.actuate(&assignments, &mut rng);
        let verdicts: Vec<&str> = budgets
            .iter()
            .map(|&(_, b)| {
                if report.complete() && report.completion_s <= b {
                    "meets"
                } else {
                    "MISSES"
                }
            })
            .collect();
        println!(
            "{:>12} {n:>10} {:>12.2}ms {:>10} | {:>12} {:>13} {:>15}",
            "ism+wired32",
            report.completion_s * 1e3,
            report.frames_sent,
            verdicts[0],
            verdicts[1],
            verdicts[2]
        );
        rows.push(format!(
            "ism+wired32,{n},{:.6},{},{},{},{}",
            report.completion_s, report.frames_sent, verdicts[0], verdicts[1], verdicts[2]
        ));
    }
    write_csv(
        "ablation_control.csv",
        "transport,n_elements,completion_s,frames,packet_2ms,running_6ms,standing_80ms",
        &rows,
    );
    println!("\n# expectations: wires meet every budget; the ISM radio covers coherence-time");
    println!("# budgets but strains the packet timescale at building sizes; ultrasound only");
    println!("# suits slowly varying rooms.");

    // Same transports, but closing the loop: a 3-client SmartSpace episode
    // (measure → search → actuate → verify) per transport, with
    // control-plane metrics attributed per LinkId.
    println!("\n# SmartSpace closed-loop episode per transport (3 clients, one array)");
    let rig = NetworkRig::builder()
        .lab_seed(6)
        .pairs(PairLayout::Clients(vec![
            Vec3::new(7.0, 5.0, 1.5),
            Vec3::new(6.8, 4.0, 1.5),
            Vec3::new(5.5, 6.2, 1.3),
        ]))
        .placement(ElementPlacement::RandomInLab {
            count: 3,
            rng_seed: 2,
        })
        .build();
    let space = rig.smart_space(LinkObjective::MaxMeanSnr);
    let link_ids: Vec<(u32, String)> = space
        .links()
        .iter()
        .map(|sl| (sl.id.0, sl.label.clone()))
        .collect();
    let mut space_rows = Vec::new();
    for (name, transport, policy) in [
        (
            "wired",
            Transport::wired(),
            AckPolicy::PerElement { max_retries: 4 },
        ),
        (
            "ism",
            Transport::ism(),
            AckPolicy::Adaptive {
                max_retries: 6,
                batch_cap: 16,
            },
        ),
        (
            "ultrasound",
            Transport::ultrasound(),
            AckPolicy::Adaptive {
                max_retries: 6,
                batch_cap: 16,
            },
        ),
    ] {
        let mut controller = Controller::new(
            Strategy::Annealing { budget: 40 },
            LinkObjective::MaxMeanSnr,
        );
        controller.seed = 9;
        controller.coherence_budget_s = 0.5;
        controller.actuation = ActuationMode::Transport(TransportActuation {
            transport,
            policy,
            distance_m: 15.0,
            faults: FaultPlan::none(),
        });
        let mut metrics = SpaceMetrics::new(&link_ids);
        let report = controller.run_space_episode_instrumented(&space, Some(&mut metrics));
        println!(
            "{name:>12}: score {:+.2} -> {:+.2}, {} frames, {} stale elements{}",
            report.baseline_score,
            report.chosen_score,
            report.actuation_frames,
            report.stale_elements,
            if report.reverted { " (reverted)" } else { "" }
        );
        for row in metrics.csv_rows() {
            space_rows.push(format!("{name},{row}"));
        }
    }
    write_csv(
        "ablation_control_space.csv",
        &format!("transport,{}", SpaceMetrics::csv_header()),
        &space_rows,
    );
}
