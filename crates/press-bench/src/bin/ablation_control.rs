//! Ablation (§4.2): control plane mechanism vs timing budgets.
//!
//! "Likely wireless control plane candidates are low-frequency, low-rate
//! bands … ultrasound … as well as wires." The paper's timing constraints:
//! the channel coherence time (~80 ms standing, ~6 ms running) and the
//! packet-level 1–2 ms aspiration. This harness actuates arrays of 16–1024
//! elements over each transport, with per-element acknowledgements and
//! retries, and checks which budgets each mechanism meets.

use press_bench::write_csv;
use press_control::{actuate, AckPolicy, ClusteredControl, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("# Ablation: control plane transport vs actuation deadline");
    println!("# per-element acks, <=8 retries, 15 m worst-case controller-element range\n");
    let budgets = [
        ("packet 2 ms", 2e-3),
        ("running 6 ms", 6e-3),
        ("standing 80 ms", 80e-3),
    ];
    println!(
        "{:>12} {:>10} {:>14} {:>10} | {:>12} {:>13} {:>15}",
        "transport", "elements", "completion", "frames", budgets[0].0, budgets[1].0, budgets[2].0
    );
    let mut rows = Vec::new();
    for (name, transport) in [
        ("wired", Transport::wired()),
        ("ism", Transport::ism()),
        ("ultrasound", Transport::ultrasound()),
    ] {
        for n in [16usize, 64, 256, 1024] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 1)).collect();
            let report = actuate(
                &transport,
                &assignments,
                15.0,
                AckPolicy::PerElement { max_retries: 8 },
                &mut rng,
            );
            let verdicts: Vec<&str> = budgets
                .iter()
                .map(|&(_, b)| {
                    if report.complete() && report.completion_s <= b {
                        "meets"
                    } else {
                        "MISSES"
                    }
                })
                .collect();
            println!(
                "{name:>12} {n:>10} {:>12.2}ms {:>10} | {:>12} {:>13} {:>15}",
                report.completion_s * 1e3,
                report.frames_sent,
                verdicts[0],
                verdicts[1],
                verdicts[2]
            );
            rows.push(format!(
                "{name},{n},{:.6},{},{},{},{}",
                report.completion_s, report.frames_sent, verdicts[0], verdicts[1], verdicts[2]
            ));
        }
    }
    // The Section 4.2 hybrid: ISM backbone to cluster heads, wired panel
    // buses inside (32 elements per panel).
    for n in [64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(n as u64 + 1);
        let assignments: Vec<(u16, u8)> = (0..n as u16).map(|e| (e, 1)).collect();
        let hybrid = ClusteredControl::ism_heads_wired_panels(32);
        let report = hybrid.actuate(&assignments, &mut rng);
        let verdicts: Vec<&str> = budgets
            .iter()
            .map(|&(_, b)| {
                if report.complete() && report.completion_s <= b {
                    "meets"
                } else {
                    "MISSES"
                }
            })
            .collect();
        println!(
            "{:>12} {n:>10} {:>12.2}ms {:>10} | {:>12} {:>13} {:>15}",
            "ism+wired32",
            report.completion_s * 1e3,
            report.frames_sent,
            verdicts[0],
            verdicts[1],
            verdicts[2]
        );
        rows.push(format!(
            "ism+wired32,{n},{:.6},{},{},{},{}",
            report.completion_s, report.frames_sent, verdicts[0], verdicts[1], verdicts[2]
        ));
    }
    write_csv(
        "ablation_control.csv",
        "transport,n_elements,completion_s,frames,packet_2ms,running_6ms,standing_80ms",
        &rows,
    );
    println!("\n# expectations: wires meet every budget; the ISM radio covers coherence-time");
    println!("# budgets but strains the packet timescale at building sizes; ultrasound only");
    println!("# suits slowly varying rooms.");
}
