//! Figure 7: two PRESS configurations with opposite frequency selectivity.
//!
//! Paper procedure (§3.2.2): USRP N210 endpoints, elements with four
//! reflective phases and no absorptive load, and "instead of randomly
//! generated element placement, the elements and the surrounding
//! environment were manipulated until a frequency-selective channel was
//! found". Two configurations are then shown whose channels "exhibit clear
//! and opposite frequency selectivity; each one favors its own half of the
//! band" — the primitive behind the network harmonization of Figure 2.
//!
//! We emulate the manual manipulation by scanning lab seeds and keeping the
//! one where the best pro-low-band and pro-high-band configurations are
//! most strongly opposed.

use press::rig::fig7_rig;
use press_bench::{sparkline, write_csv};
use press_core::{run_campaign, CampaignConfig};
use press_phy::snr::SnrProfile;

fn contrast_extremes(profiles: &[SnrProfile]) -> (usize, usize, f64, f64) {
    let mut best_low = (0usize, f64::NEG_INFINITY);
    let mut best_high = (0usize, f64::NEG_INFINITY);
    for (i, p) in profiles.iter().enumerate() {
        let c = p.half_band_contrast_db();
        if c > best_low.1 {
            best_low = (i, c);
        }
        if -c > best_high.1 {
            best_high = (i, -c);
        }
    }
    (best_low.0, best_high.0, best_low.1, best_high.1)
}

fn main() {
    println!("# Figure 7 — opposite frequency selectivity (network harmonization primitive)");
    println!("# USRP N210 endpoints, 102 active subcarriers, 4 reflective phases per element\n");

    // "Manipulate the environment until a frequency-selective channel is
    // found": scan candidate setups, keep the most opposed pair.
    let mut best: Option<(u64, f64)> = None;
    for seed in 0..12u64 {
        let rig = fig7_rig(seed);
        let campaign = CampaignConfig {
            n_trials: 3,
            frames_per_config: 4,
            seed,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&rig.system, &rig.sounder, &campaign);
        let means = result.mean_profiles();
        let (_, _, c_low, c_high) = contrast_extremes(&means);
        let opposition = c_low.min(c_high);
        if best.is_none_or(|(_, b)| opposition > b) {
            best = Some((seed, opposition));
        }
    }
    let (seed, opposition) = best.expect("scanned seeds");
    println!("# selected setup seed {seed} (min one-sided contrast {opposition:.1} dB)\n");

    let rig = fig7_rig(seed);
    let campaign = CampaignConfig {
        n_trials: 10,
        frames_per_config: 4,
        seed,
        ..CampaignConfig::default()
    };
    let result = run_campaign(&rig.system, &rig.sounder, &campaign);
    let means = result.mean_profiles();
    let (i_low, i_high, c_low, c_high) = contrast_extremes(&means);
    let lambda = rig.system.lambda();
    let label_low = rig.system.array.label_of(&result.configs[i_low], lambda);
    let label_high = rig.system.array.label_of(&result.configs[i_high], lambda);

    println!("low-band config  {label_low}: contrast {c_low:+.1} dB (favors subcarriers 1-51)");
    println!("    {}", sparkline(&means[i_low].snr_db));
    println!(
        "high-band config {label_high}: contrast {:+.1} dB (favors subcarriers 52-102)",
        -c_high
    );
    println!("    {}", sparkline(&means[i_high].snr_db));

    let rows: Vec<String> = (0..means[i_low].len())
        .map(|k| {
            format!(
                "{k},{:.3},{:.3}",
                means[i_low].snr_db[k], means[i_high].snr_db[k]
            )
        })
        .collect();
    write_csv(
        "fig7.csv",
        "subcarrier,snr_low_band_config_db,snr_high_band_config_db",
        &rows,
    );

    println!("\n# paper: two configurations each favoring its own half of the band;");
    println!(
        "# measured one-sided contrasts: {c_low:+.1} dB and {:+.1} dB",
        -c_high
    );
}
