//! Path-budget probe: prints every path's power and provenance for the
//! Figure 4 rig, plus the element path powers — the raw material for
//! calibrating the simulated physics.

use press::rig::fig4_rig;
use press_core::Configuration;

fn main() {
    for seed in 0..4u64 {
        println!("==== seed {seed}");
        probe(seed);
    }
}

fn probe(seed: u64) {
    let rig = fig4_rig(seed);
    let tx = &rig.sounder.tx.node;
    let rx = &rig.sounder.rx.node;
    let mut env = rig.system.environment_paths(tx, rx);
    env.sort_by(|a, b| b.gain.abs().total_cmp(&a.gain.abs()));
    println!("environment paths ({}):", env.len());
    for p in env.iter().take(8) {
        println!(
            "  {:>8.1} dB  delay {:6.1} ns  {:?}",
            p.power_db(),
            p.delay_s * 1e9,
            p.kind
        );
    }
    let elem = rig.system.array.paths(
        &rig.system.scene,
        tx,
        rx,
        &Configuration::new(vec![0, 0, 0]),
    );
    println!("element paths:");
    for p in &elem {
        println!(
            "  {:>8.1} dB  delay {:6.1} ns  {:?}",
            p.power_db(),
            p.delay_s * 1e9,
            p.kind
        );
    }
}
