//! `press-bench` — the perf-trajectory CLI.
//!
//! ```sh
//! cargo bench -p press-bench --bench channel_synthesis
//! cargo bench -p press-bench --bench search_algorithms
//! cargo run --release -p press-bench --bin press-bench -- distill
//! cargo run --release -p press-bench --bin press-bench -- check
//! ```
//!
//! `distill` reduces the latest criterion run under `target/criterion` into
//! the checked-in `BENCH_*.json` snapshots at the workspace root; `check`
//! re-distills and gates the dimensionless speedup ratios against those
//! snapshots (hard floors plus a >10% regression tolerance). See
//! `press_bench::perf` for the format and the gating policy.

use press_bench::perf::{check_against, distill_suite, suite_specs, Snapshot};
use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

struct Opts {
    criterion_dir: PathBuf,
    tolerance: f64,
    absolute: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        criterion_dir: workspace_root().join("target").join("criterion"),
        tolerance: 0.10,
        absolute: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--criterion-dir" => {
                let v = it.next().ok_or("--criterion-dir needs a path")?;
                opts.criterion_dir = PathBuf::from(v);
            }
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a fraction")?;
                opts.tolerance = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance `{v}`: {e}"))?;
            }
            "--absolute" => opts.absolute = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn print_snapshot(s: &Snapshot) {
    println!("  suite {}", s.suite);
    for e in &s.entries {
        println!("    {:<44} {:>12.1} ns", e.id, e.median_ns);
    }
    for r in &s.ratios {
        println!("    {:<44} {:>11.2}x  (floor {:.2}x)", r.id, r.value, r.min);
    }
}

fn distill(opts: &Opts) -> Result<(), String> {
    let root = workspace_root();
    for spec in suite_specs() {
        let snap = distill_suite(&opts.criterion_dir, &spec)?;
        let path = root.join(snap.file_name());
        std::fs::write(&path, snap.render()).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote {}", path.display());
        print_snapshot(&snap);
    }
    Ok(())
}

fn check(opts: &Opts) -> Result<Vec<String>, String> {
    let root = workspace_root();
    let mut failures = Vec::new();
    for spec in suite_specs() {
        let path = root.join(format!("BENCH_{}.json", spec.suite));
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let baseline = Snapshot::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        let current = distill_suite(&opts.criterion_dir, &spec)?;
        println!("current run:");
        print_snapshot(&current);
        println!("checked-in snapshot ({}):", path.display());
        print_snapshot(&baseline);
        failures.extend(check_against(
            &baseline,
            &current,
            opts.tolerance,
            opts.absolute,
        ));
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!(
            "usage: press-bench <distill|check> [--criterion-dir DIR] [--tolerance F] [--absolute]"
        );
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("press-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match cmd.as_str() {
        "distill" => distill(&opts).map(|()| Vec::new()),
        "check" => check(&opts),
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match outcome {
        Ok(failures) if failures.is_empty() => {
            if cmd == "check" {
                println!("perf gate: PASS");
            }
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            println!("perf gate: FAIL");
            for f in &failures {
                println!("  {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("press-bench: {e}");
            ExitCode::FAILURE
        }
    }
}
