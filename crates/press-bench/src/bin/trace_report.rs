//! Post-mortem analysis of a press-trace JSONL file: per-phase latency
//! tables, transport accounting, and per-strategy convergence CSVs.
//!
//! ```sh
//! cargo run --release --example lossy_control -- --trace results/lossy_control.jsonl
//! cargo run --release -p press-bench --bin trace_report -- results/lossy_control.jsonl
//! ```
//!
//! Phase durations come from `phase_start`/`phase_end` pairs on the
//! emulated episode clock (`t_s`), so the tables are as deterministic as
//! the trace itself. Search convergence is exported as
//! `results/convergence_<strategy>.csv` with one row per candidate
//! evaluation, numbered by the enclosing episode.

use press_bench::write_csv;
use press_control::Histogram;
use press_trace::{Event, EventKind, Phase};
use std::collections::BTreeMap;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/lossy_control.jsonl".to_string());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let mut events: Vec<Event> = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_jsonl(line) {
            Some(ev) => events.push(ev),
            None => skipped += 1,
        }
    }
    println!(
        "{path}: {} events ({} unparseable lines skipped)\n",
        events.len(),
        skipped
    );

    // --- per-phase latency tables -------------------------------------
    let mut open: BTreeMap<&'static str, f64> = BTreeMap::new();
    let mut durations: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    // Transport accounting.
    let mut episodes = 0u64;
    let mut frames_tx = 0u64;
    let mut frames_lost = 0u64;
    let mut acks = 0u64;
    let mut backoffs = 0u64;
    let mut bursts = 0u64;
    let mut gave_up = 0u64;
    let mut reverts = 0u64;
    for ev in &events {
        match ev.kind {
            EventKind::EpisodeStart { .. } => episodes += 1,
            EventKind::PhaseStart { phase } => {
                open.insert(phase.name(), ev.t_s);
            }
            EventKind::PhaseEnd { phase, .. } => {
                if let Some(t0) = open.remove(phase.name()) {
                    durations
                        .entry(phase.name())
                        .or_insert_with(Histogram::latency_grid)
                        .observe(ev.t_s - t0);
                }
            }
            EventKind::FrameTx { .. } => frames_tx += 1,
            EventKind::FrameLost { .. } => frames_lost += 1,
            EventKind::AckRx { .. } => acks += 1,
            EventKind::Backoff { .. } => backoffs += 1,
            EventKind::BurstTransition { .. } => bursts += 1,
            EventKind::GaveUp { .. } => gave_up += 1,
            EventKind::Reverted { .. } => reverts += 1,
            _ => {}
        }
    }

    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "phase", "count", "mean s", "p50 est s", "p95 est s", "p99 est s", "max s"
    );
    // Report in episode order, not alphabetically.
    for phase in [
        Phase::Measure,
        Phase::Search,
        Phase::Actuate,
        Phase::Verify,
        Phase::Revert,
    ] {
        if let Some(h) = durations.get(phase.name()) {
            println!(
                "{:<10} {:>6} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
                phase.name(),
                h.count(),
                h.mean(),
                h.quantile_est(0.5),
                h.quantile_est(0.95),
                h.quantile_est(0.99),
                h.max()
            );
        }
    }

    let loss_rate = if frames_tx > 0 {
        frames_lost as f64 / frames_tx as f64
    } else {
        0.0
    };
    println!(
        "\ntransport: {frames_tx} frames tx, {frames_lost} lost ({:.1}%), {acks} acks, \
         {backoffs} backoffs, {bursts} burst transitions, {gave_up} gave up",
        100.0 * loss_rate
    );
    println!("episodes: {episodes}, reverts: {reverts}");

    // --- convergence CSVs ---------------------------------------------
    // One file per strategy, one row per candidate evaluation; the episode
    // column counts episode_start events so repeated runs of the same
    // strategy stay distinguishable.
    let mut convergence: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    let mut episode = 0u64;
    for ev in &events {
        match ev.kind {
            EventKind::EpisodeStart { .. } => episode += 1,
            EventKind::SearchStep {
                strategy,
                iteration,
                score,
                best,
                accepted,
            } => {
                convergence.entry(strategy).or_default().push(format!(
                    "{episode},{iteration},{score},{best},{}",
                    u8::from(accepted)
                ));
            }
            _ => {}
        }
    }
    for (strategy, rows) in &convergence {
        // write_csv logs the path itself.
        write_csv(
            &format!("convergence_{strategy}.csv"),
            "episode,iteration,score,best,accepted",
            rows,
        );
    }
}
