//! Post-mortem analysis of a press-trace JSONL file: per-phase latency
//! tables, transport accounting, and per-strategy convergence CSVs.
//!
//! ```sh
//! cargo run --release --example lossy_control -- --trace results/lossy_control.jsonl
//! cargo run --release -p press-bench --bin trace_report -- results/lossy_control.jsonl
//! cargo run --release -p press-bench --bin trace_report -- results/lossy_control.jsonl --metrics
//! ```
//!
//! Aggregation is routed through the shared [`press_metrics::TraceAggregator`]
//! — the same fold the daemon's live hub and the trace→metrics rebuild
//! use — so there is exactly one quantile code path
//! (`Histogram::quantile_est`) and one event-counting truth in the
//! stack. Phase durations come from `phase_start`/`phase_end` pairs on
//! the emulated episode clock (`t_s`), so the tables are as deterministic
//! as the trace itself. With `--metrics` the report prints the Prometheus
//! text exposition instead — a pure function of the log, so rendering the
//! same file twice must be byte-identical (CI diffs exactly that). Search
//! convergence is exported as `results/convergence_<strategy>.csv` with
//! one row per candidate evaluation, numbered by the enclosing episode.

use press_bench::write_csv;
use press_metrics::{MetricsHub, TraceAggregator, PHASES};
use press_trace::{Event, EventKind};
use std::collections::BTreeMap;

fn main() {
    let mut path: Option<String> = None;
    let mut metrics_only = false;
    for arg in std::env::args().skip(1) {
        if arg == "--metrics" {
            metrics_only = true;
        } else {
            path = Some(arg);
        }
    }
    let path = path.unwrap_or_else(|| "results/lossy_control.jsonl".to_string());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let mut events: Vec<Event> = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_jsonl(line) {
            Some(ev) => events.push(ev),
            None => skipped += 1,
        }
    }

    // One aggregation truth: the same fold the daemon's live hub and the
    // trace→metrics rebuild use.
    let mut hub = MetricsHub::new();
    let mut agg = TraceAggregator::new(&mut hub);
    for ev in &events {
        agg.observe(&mut hub, ev);
    }

    if metrics_only {
        // Exposition only: a pure function of the log, fit for byte-diffing.
        print!("{}", hub.render());
        return;
    }

    println!(
        "{path}: {} events ({} unparseable lines skipped)\n",
        events.len(),
        skipped
    );

    // --- per-phase latency tables -------------------------------------
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "phase", "count", "mean s", "p50 est s", "p95 est s", "p99 est s", "max s"
    );
    // Report in episode order, not alphabetically.
    for phase in PHASES {
        let h = agg.phase_seconds(&hub, phase);
        if h.count() > 0 {
            println!(
                "{:<10} {:>6} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
                phase.name(),
                h.count(),
                h.mean(),
                h.quantile_est(0.5),
                h.quantile_est(0.95),
                h.quantile_est(0.99),
                h.max()
            );
        }
    }

    let frames_tx = agg.frames_tx(&hub);
    let frames_lost = agg.frames_lost(&hub);
    let loss_rate = if frames_tx > 0 {
        frames_lost as f64 / frames_tx as f64
    } else {
        0.0
    };
    println!(
        "\ntransport: {frames_tx} frames tx, {frames_lost} lost ({:.1}%), {} acks, \
         {} backoffs, {} burst transitions, {} gave up",
        100.0 * loss_rate,
        agg.acks_rx(&hub),
        agg.backoffs(&hub),
        agg.burst_transitions(&hub),
        agg.gave_up(&hub)
    );
    println!(
        "episodes: {}, reverts: {}",
        agg.episodes(&hub),
        agg.reverts(&hub)
    );

    // --- convergence CSVs ---------------------------------------------
    // One file per strategy, one row per candidate evaluation; the episode
    // column counts episode_start events so repeated runs of the same
    // strategy stay distinguishable.
    let mut convergence: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    let mut episode = 0u64;
    for ev in &events {
        match ev.kind {
            EventKind::EpisodeStart { .. } => episode += 1,
            EventKind::SearchStep {
                strategy,
                iteration,
                score,
                best,
                accepted,
            } => {
                convergence.entry(strategy).or_default().push(format!(
                    "{episode},{iteration},{score},{best},{}",
                    u8::from(accepted)
                ));
            }
            _ => {}
        }
    }
    for (strategy, rows) in &convergence {
        // write_csv logs the path itself.
        write_csv(
            &format!("convergence_{strategy}.csv"),
            "episode,iteration,score,best,accepted",
            rows,
        );
    }
}
