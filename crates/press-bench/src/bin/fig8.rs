//! Figure 8: distribution of the 2×2 MIMO channel condition number across
//! subcarriers, per PRESS configuration.
//!
//! Paper procedure (§3.2.3): a 2×2 NLOS MIMO link (USRP X310 + two UBX-160),
//! omnidirectional PRESS elements co-linear with the transmit pair at λ
//! spacing; for each of the 64 configurations measure the 2×2 channel
//! matrix per subcarrier, average 50 successive measurements, and plot the
//! CDF of the condition number (dB) across subcarriers. The paper
//! highlights the best (lowest) and worst (highest) configurations and a
//! ~1.5 dB conditioning change.

use press::rig::fig8_rig;
use press_bench::{cdf_rows, write_csv};
use press_core::{CachedLink, Configuration};
use press_math::Complex64;
use press_phy::mimo::MimoChannel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 0u64;
    println!("# Figure 8 — 2x2 MIMO condition number CDF per PRESS configuration");
    let rig = fig8_rig(seed);
    let space = rig.system.array.config_space();
    let n_sc = rig.sounder.num.n_active();
    let mut rng = StdRng::seed_from_u64(seed);

    // Cache the four scalar links (tx_a -> rx_b).
    let links: Vec<Vec<CachedLink>> = (0..2)
        .map(|a| {
            (0..2)
                .map(|b| CachedLink::trace(&rig.system, rig.tx[a].clone(), rig.rx[b].clone()))
                .collect()
        })
        .collect();

    let mut summary: Vec<(usize, f64)> = Vec::new();
    let mut per_config_conds: Vec<Vec<f64>> = Vec::new();
    let mut lo_phase = 0.0f64;
    for config in space.iter() {
        // 50 successive measurements, averaged (paper's procedure). The
        // X310's chains stay mutually coherent; the common LO reference
        // drifts slowly between successive frames.
        let mut measurements = Vec::with_capacity(50);
        for _ in 0..50 {
            let paths: Vec<Vec<Vec<_>>> = links
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|link| link.paths(&rig.system, &config))
                        .collect()
                })
                .collect();
            let est = rig
                .sounder
                .sound_mimo(&paths, lo_phase, 0.0, &mut rng)
                .expect("two training symbols");
            lo_phase += 0.002; // slow inter-frame drift
                               // h[rx][tx][subcarrier]
            let h: Vec<Vec<Vec<Complex64>>> = (0..2)
                .map(|b| (0..2).map(|a| est[a][b].h.clone()).collect())
                .collect();
            measurements.push(MimoChannel::from_scalar_channels(&h));
        }
        let avg = MimoChannel::average(&measurements);
        let conds: Vec<f64> = avg
            .condition_numbers_db()
            .expect("2x2 matrices")
            .into_iter()
            .filter(|c| c.is_finite())
            .collect();
        let idx = summary.len();
        let median = {
            let mut v = conds.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        summary.push((idx, median));
        per_config_conds.push(conds);
    }

    let (best_idx, best_median) = *summary
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("64 configs");
    let (worst_idx, worst_median) = *summary
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("64 configs");

    let lambda = rig.system.lambda();
    let configs: Vec<Configuration> = space.iter().collect();
    println!(
        "best (lowest) config:  {} median condition {best_median:.2} dB",
        rig.system.array.label_of(&configs[best_idx], lambda)
    );
    println!(
        "worst (highest) config: {} median condition {worst_median:.2} dB",
        rig.system.array.label_of(&configs[worst_idx], lambda)
    );
    println!(
        "conditioning change between extremes: {:.2} dB (paper: ~1.5 dB)",
        worst_median - best_median
    );

    // CSV: full CDFs for every configuration (the paper plots all 64 with
    // best/worst highlighted).
    let mut rows = Vec::new();
    for (cfg_idx, conds) in per_config_conds.iter().enumerate() {
        for r in cdf_rows(conds) {
            rows.push(format!("{cfg_idx},{r}"));
        }
    }
    write_csv("fig8.csv", "config,condition_db,cdf", &rows);
    write_csv(
        "fig8_summary.csv",
        "config,median_condition_db",
        &summary
            .iter()
            .map(|(i, m)| format!("{i},{m:.4}"))
            .collect::<Vec<_>>(),
    );
    println!(
        "# {} subcarriers per CDF, 50 measurements averaged per configuration",
        n_sc
    );
}
