//! Calibration probe: quick look at the Figure 4 campaign dynamics so the
//! simulated physics can be tuned against the paper's headline numbers.

use press::rig::fig4_rig;
use press_core::{headline_stats, run_campaign, CampaignConfig};

fn main() {
    for seed in 0..8u64 {
        let rig = fig4_rig(seed);
        let campaign = CampaignConfig {
            n_trials: 10,
            frames_per_config: 4,
            seed,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&rig.system, &rig.sounder, &campaign);
        let h = headline_stats(&result);
        let means = result.mean_profiles();
        let snr_range: Vec<f64> = means.iter().map(|p| p.mean_db()).collect();
        let lo = snr_range.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = snr_range.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let sel: f64 = means.iter().map(|p| p.selectivity_db()).sum::<f64>() / means.len() as f64;
        println!(
            "seed {seed}: mean-SNR range [{lo:.1},{hi:.1}] dB, avg selectivity {sel:.1} dB, \
             max_mean_change {:.1} (paper 18.6), max_within {:.1} (26), null_move {} (9), \
             pairs10dB {:.2} (0.38), min<20dB {:.2} (<0.09)",
            h.max_mean_snr_change_db,
            h.max_within_trial_change_db,
            h.max_null_movement,
            h.frac_pairs_10db,
            h.frac_min_below_20db
        );
    }
}
