//! Ablation: the closed control loop under transport loss, burst
//! interference, element failures, and ack policies.
//!
//! Two sections, one CSV (`results/ablation_control_loop.csv`):
//!
//! 1. **Actuation sweep** — transport × loss regime × ack policy for a
//!    64-element batch, 20 seeds per cell, with a [`ControlMetrics`]
//!    registry per cell and the fraction of trials fitting each coherence
//!    budget (80 ms standing / 6 ms walking / 2 ms packet timescale).
//! 2. **Closed loop** — full [`Controller::run_episode`] episodes on the
//!    Figure-4 rig with the actuation mode in the loop: the oracle path vs
//!    a wired transport vs lossy fire-and-forget vs adaptive retry under
//!    interference. Stale elements make the *verified* score diverge from
//!    the oracle's — the cost of an unreliable control plane in dB.

use press::rig::fig4_rig;
use press_bench::write_csv;
use press_control::{
    actuate_with, AckPolicy, ControlMetrics, ElementFaults, FaultPlan, GilbertElliott, Transport,
};
use press_core::{ActuationMode, Controller, LinkObjective, Strategy, TransportActuation};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_ELEMENTS: u16 = 64;
const TRIALS: u64 = 20;
const BUDGETS: [(&str, f64); 3] = [
    ("standing_80ms", 80e-3),
    ("walking_6ms", 6e-3),
    ("packet_2ms", 2e-3),
];

fn regimes() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("clean", FaultPlan::none()),
        (
            "interference",
            FaultPlan::bursty(GilbertElliott::interference()),
        ),
        // Hostile: long jamming bursts plus broken hardware (2 dead, 2
        // stuck elements drawn deterministically below).
        (
            "hostile",
            FaultPlan {
                burst: Some(GilbertElliott::jammed()),
                elements: ElementFaults::seeded(
                    N_ELEMENTS,
                    2,
                    2,
                    4,
                    &mut StdRng::seed_from_u64(99),
                ),
            },
        ),
    ]
}

fn policies() -> Vec<(&'static str, AckPolicy)> {
    vec![
        ("none", AckPolicy::None),
        ("per_element_r8", AckPolicy::PerElement { max_retries: 8 }),
        (
            "adaptive_r8_b16",
            AckPolicy::Adaptive {
                max_retries: 8,
                batch_cap: 16,
            },
        ),
    ]
}

fn main() {
    println!("# Ablation: closed control loop — transport x loss regime x ack policy");
    println!("# {N_ELEMENTS} elements, {TRIALS} seeds/cell; coherence budgets 80/6/2 ms\n");

    let mut rows = Vec::new();
    println!(
        "{:>10} {:>13} {:>16} {:>9} {:>8} {:>8} {:>11} | {:>8} {:>8} {:>8}",
        "transport",
        "regime",
        "policy",
        "loss",
        "retries",
        "failed",
        "unconfirmed",
        "80ms",
        "6ms",
        "2ms"
    );
    for (tname, transport) in [
        ("wired", Transport::wired()),
        ("ism", Transport::ism()),
        ("ultrasound", Transport::ultrasound()),
    ] {
        for (rname, plan) in regimes() {
            for (pname, policy) in policies() {
                let mut metrics = ControlMetrics::new();
                let mut fits = [0u64; 3];
                for seed in 0..TRIALS {
                    let mut faults = plan.clone();
                    let mut rng = StdRng::seed_from_u64(seed);
                    let assignments: Vec<(u16, u8)> = (0..N_ELEMENTS).map(|e| (e, 1)).collect();
                    let report = actuate_with(
                        &transport,
                        &assignments,
                        15.0,
                        policy,
                        &mut faults,
                        Some(&mut metrics),
                        &mut rng,
                    );
                    for (slot, &(_, budget)) in fits.iter_mut().zip(&BUDGETS) {
                        if report.complete() && report.completion_s <= budget {
                            *slot += 1;
                        }
                    }
                }
                let frac = |k: u64| -> String { format!("{:.2}", k as f64 / TRIALS as f64) };
                println!(
                    "{tname:>10} {rname:>13} {pname:>16} {:>8.1}% {:>8} {:>8} {:>11} | {:>8} {:>8} {:>8}",
                    100.0 * metrics.frame_loss_rate(),
                    metrics.retries,
                    metrics.failed_elements,
                    metrics.unconfirmed_elements,
                    frac(fits[0]),
                    frac(fits[1]),
                    frac(fits[2])
                );
                rows.push(format!(
                    "actuation,{tname},{rname},{pname},{},{},{},{},{},,,",
                    N_ELEMENTS,
                    metrics.csv_row(),
                    frac(fits[0]),
                    frac(fits[1]),
                    frac(fits[2])
                ));
            }
        }
    }

    // -----------------------------------------------------------------
    // Closed loop: the controller's verified score when the actuation it
    // commands is only partially applied.
    // -----------------------------------------------------------------
    println!("\n# Closed loop (Figure-4 rig, exhaustive search, MaxMinSnr):");
    println!(
        "{:>22} {:>14} {:>14} {:>8} {:>7}",
        "actuation", "score dB", "vs oracle dB", "stale", "frames"
    );
    let rig = fig4_rig(2);
    let base = Controller::new(Strategy::Exhaustive, LinkObjective::MaxMinSnr);
    let lossy_ism = Transport::IsmRadio {
        bitrate_bps: 250e3,
        loss_prob: 0.5,
        mac_latency_s: 1e-3,
    };
    let modes: Vec<(&str, ActuationMode)> = vec![
        ("oracle", ActuationMode::Oracle),
        (
            "wired",
            ActuationMode::Transport(TransportActuation::wired()),
        ),
        (
            "lossy_fire_and_forget",
            ActuationMode::Transport(TransportActuation {
                transport: lossy_ism.clone(),
                policy: AckPolicy::None,
                distance_m: 15.0,
                faults: FaultPlan::bursty(GilbertElliott::interference()),
            }),
        ),
        (
            "lossy_adaptive",
            ActuationMode::Transport(TransportActuation {
                transport: lossy_ism,
                policy: AckPolicy::Adaptive {
                    max_retries: 8,
                    batch_cap: 16,
                },
                distance_m: 15.0,
                faults: FaultPlan::bursty(GilbertElliott::interference()),
            }),
        ),
    ];
    let episode_seeds = 0..8u64;
    let mut oracle_mean = 0.0f64;
    for (mname, mode) in modes {
        let mut metrics = ControlMetrics::new();
        let mut score_sum = 0.0f64;
        let mut stale_sum = 0usize;
        let mut frames_sum = 0usize;
        for seed in episode_seeds.clone() {
            let mut c = base.clone();
            c.seed = seed;
            c.actuation = mode.clone();
            let r = c.run_episode_instrumented(&rig.system, &rig.sounder, Some(&mut metrics));
            score_sum += r.chosen_score;
            stale_sum += r.stale_elements;
            frames_sum += r.actuation_frames;
        }
        let n = episode_seeds.clone().count() as f64;
        let mean = score_sum / n;
        if mname == "oracle" {
            oracle_mean = mean;
        }
        println!(
            "{mname:>22} {mean:>14.3} {:>14.3} {:>8} {:>7}",
            mean - oracle_mean,
            stale_sum,
            frames_sum
        );
        rows.push(format!(
            "closed_loop,{mname},interference,episode,{},{},,,,{:.4},{:.4},{}",
            rig.system.array.elements.len(),
            metrics.csv_row(),
            mean,
            mean - oracle_mean,
            stale_sum
        ));
    }

    write_csv(
        "ablation_control_loop.csv",
        &format!(
            "section,transport,regime,policy,n_elements,{},fit_standing_80ms,fit_walking_6ms,fit_packet_2ms,score_db,delta_vs_oracle_db,stale_elements",
            ControlMetrics::csv_header()
        ),
        &rows,
    );
    println!("\n# expectations: acks + adaptive retry keep wired/ism complete under every");
    println!("# regime (at retransmission cost); fire-and-forget strands elements as soon");
    println!("# as loss appears, and the closed loop shows the stranded array's verified");
    println!("# score falling below the oracle's.");
}
