//! Ablation (§4.2): navigating the M^N search space.
//!
//! "With N PRESS elements, each having M possible reflection coefficients,
//! enumerating the M^N possibilities … becomes impractical. We will …
//! apply heuristics to prune the space." This harness compares the
//! heuristics on a realistic large array (8 elements × 9 states ≈ 43M
//! configurations) against the exhaustive optimum of a small array, using
//! oracle channel evaluations. Reported: solution quality vs evaluations
//! spent — the currency that matters when every evaluation is a channel
//! measurement inside a coherence time.

use press_bench::write_csv;
use press_core::{
    min_magnitude_db_metric, search, snr_metric, BasisEvaluator, CachedLink, Configuration,
    GeneticParams, LinkBasis, LinkObjective, PlacedElement, PressArray, PressSystem,
};
use press_elements::Element;
use press_math::consts::WIFI_CHANNEL_11_HZ;
use press_phy::Numerology;
use press_propagation::antenna::{Antenna, Pattern};
use press_propagation::{LabConfig, LabSetup};
use press_sdr::{SdrRadio, Sounder};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Bench {
    system: PressSystem,
    sounder: Sounder,
    link: CachedLink,
}

fn build(seed: u64, n_elements: usize, n_phases: usize) -> Bench {
    let lab = LabSetup::generate(&LabConfig::default(), seed);
    let lambda = lab.scene.wavelength();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15));
    let positions = lab.random_element_positions(n_elements, &mut rng);
    let aim = (lab.tx.position + lab.rx.position) * 0.5;
    let elements: Vec<PlacedElement> = positions
        .iter()
        .map(|&p| PlacedElement {
            element: Element::quantized_passive(n_phases, true, lambda),
            position: p,
            antenna: Antenna::new(Pattern::press_patch(), aim - p),
        })
        .collect();
    let system = PressSystem::new(lab.scene.clone(), PressArray::new(elements));
    let sounder = Sounder::new(
        Numerology::wifi20(WIFI_CHANNEL_11_HZ),
        SdrRadio::warp(lab.tx.clone()),
        SdrRadio::warp(lab.rx.clone()),
    );
    let link = CachedLink::trace(&system, sounder.tx.node.clone(), sounder.rx.node.clone());
    Bench {
        system,
        sounder,
        link,
    }
}

fn main() {
    println!("# Ablation: search algorithms over the configuration space\n");

    // --- Small space: how close do heuristics get to the true optimum? ---
    println!("## small array (3 elements x 4 states = 64): distance to exhaustive optimum");
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "algorithm", "score dB", "evals", "gap dB"
    );
    let mut rows = vec![];
    {
        let b = build(1, 3, 3); // 3 phases + off = 4 states
                                // Basis-cached evaluation: channels come from the precomputed link
                                // basis (O(N·K) per configuration, O(K) for single-element moves)
                                // instead of re-tracing every path per candidate.
        let basis = LinkBasis::for_numerology(&b.system, &b.link, &b.sounder.num);
        let params = b.sounder.snr_params();
        let mut ev = BasisEvaluator::new(&basis, 0.0, snr_metric(params, LinkObjective::MaxMinSnr));
        let mut eval = |c: &Configuration| ev.evaluate(c);
        let space = b.system.array.config_space();
        // The exhaustive sweep fans out over threads; exact-mode evaluators
        // keep the result identical at any thread count.
        let exhaustive = search::exhaustive_parallel(&space, 4, || {
            let mut ev =
                BasisEvaluator::exact(&basis, 0.0, snr_metric(params, LinkObjective::MaxMinSnr));
            move |c: &Configuration| ev.evaluate(c)
        });
        let mut report = |name: &str, r: &search::SearchResult| {
            println!(
                "{:>12} {:>12.2} {:>12} {:>10.2}",
                name,
                r.score,
                r.evaluations,
                exhaustive.score - r.score
            );
            rows.push(format!(
                "small,{name},{:.4},{},{:.4}",
                r.score,
                r.evaluations,
                exhaustive.score - r.score
            ));
        };
        report("exhaustive", &exhaustive);
        report(
            "greedy",
            &search::greedy_coordinate(&space, Configuration::zeros(3), 8, &mut eval),
        );
        let mut rng = StdRng::seed_from_u64(7);
        report(
            "hillclimb",
            &search::hill_climb(&space, 3, 20, &mut rng, &mut eval),
        );
        let mut rng = StdRng::seed_from_u64(7);
        report(
            "annealing",
            &search::simulated_annealing(&space, 60, 3.0, 0.05, &mut rng, &mut eval),
        );
        let mut rng = StdRng::seed_from_u64(7);
        report(
            "genetic",
            &search::genetic(&space, &GeneticParams::default(), &mut rng, &mut eval),
        );
        let mut rng = StdRng::seed_from_u64(7);
        report(
            "random30",
            &search::random_search(&space, 30, &mut rng, &mut eval),
        );
        println!(
            "# basis evaluator: {} evaluations, {} full syntheses (rest incremental/cached)",
            ev.evaluations(),
            ev.full_syntheses()
        );
    }

    // --- Large space: quality at equal evaluation budgets. ---
    println!("\n## large array (8 elements x 9 states = 43e6): quality at ~300 evaluations");
    println!("{:>12} {:>12} {:>12}", "algorithm", "score dB", "evals");
    {
        let b = build(2, 8, 8); // 8 phases + off = 9 states
                                // Raw channel magnitude (no receiver SNR cap): with 8 strong
                                // elements the SNR saturates and would blunt the comparison.
        let basis = LinkBasis::for_numerology(&b.system, &b.link, &b.sounder.num);
        let mut ev = BasisEvaluator::new(&basis, 0.0, min_magnitude_db_metric());
        let mut eval = |c: &Configuration| ev.evaluate(c);
        let space = b.system.array.config_space();
        let mut report = |name: &str, r: &search::SearchResult| {
            println!("{:>12} {:>12.2} {:>12}", name, r.score, r.evaluations);
            rows.push(format!("large,{name},{:.4},{},", r.score, r.evaluations));
        };
        report(
            "greedy",
            &search::greedy_coordinate(&space, Configuration::zeros(8), 5, &mut eval),
        );
        let mut rng = StdRng::seed_from_u64(3);
        report(
            "hillclimb",
            &search::hill_climb(&space, 2, 30, &mut rng, &mut eval),
        );
        let mut rng = StdRng::seed_from_u64(3);
        report(
            "annealing",
            &search::simulated_annealing(&space, 300, 3.0, 0.02, &mut rng, &mut eval),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let gp = GeneticParams {
            population: 30,
            generations: 9,
            ..GeneticParams::default()
        };
        report(
            "genetic",
            &search::genetic(&space, &gp, &mut rng, &mut eval),
        );
        let mut rng = StdRng::seed_from_u64(3);
        report(
            "random300",
            &search::random_search(&space, 300, &mut rng, &mut eval),
        );
        println!(
            "# basis evaluator: {} evaluations, {} full syntheses (rest incremental/cached)",
            ev.evaluations(),
            ev.full_syntheses()
        );
    }
    write_csv(
        "ablation_search.csv",
        "space,algorithm,score_db,evaluations,gap_db",
        &rows,
    );
    println!("\n# heuristics should sit within ~1 dB of exhaustive on the small space and");
    println!("# beat random sampling decisively on the large one.");
}
