//! Figure 4: per-subcarrier SNR for the two extreme PRESS configurations at
//! eight random element placements (a)–(h).
//!
//! Paper procedure (§3.2): at each of eight randomly generated element
//! placements, measure the channel for all 64 reflection-coefficient
//! configurations, 10 sweeps each; plot, per placement, the two
//! configurations whose per-subcarrier SNR differs the most on any single
//! subcarrier. Headlines: largest mean-SNR change on a subcarrier 18.6 dB;
//! largest within-repetition change 26 dB.
//!
//! Run with `--los` to reproduce the line-of-sight control instead, where
//! the paper found the effect "limited to less than 2 dB".

use press::rig::{fig4_los_rig, fig4_rig};
use press_bench::{sparkline, write_csv};
use press_core::analysis::extreme_pair;
use press_core::{headline_stats, run_campaign, CampaignConfig};

fn main() {
    let los = std::env::args().any(|a| a == "--los");
    let mode = if los {
        "LOS control"
    } else {
        "NLOS (paper Figure 4)"
    };
    println!("# Figure 4 — {mode}");
    println!("# 3 passive elements x 4 states = 64 configurations, 10 trials each\n");

    let mut global_max_mean = 0.0f64;
    let mut global_max_within = 0.0f64;
    let mut rows = Vec::new();

    for (panel, seed) in (0..8u64).enumerate() {
        let rig = if los {
            fig4_los_rig(seed)
        } else {
            fig4_rig(seed)
        };
        let campaign = CampaignConfig {
            n_trials: 10,
            frames_per_config: 4,
            seed,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&rig.system, &rig.sounder, &campaign);
        let means = result.mean_profiles();
        let (i, j, delta) = extreme_pair(&means).expect("64 configs");
        let stats = headline_stats(&result);
        global_max_mean = global_max_mean.max(stats.max_mean_snr_change_db);
        global_max_within = global_max_within.max(stats.max_within_trial_change_db);

        let lambda = rig.system.lambda();
        let label_i = rig.system.array.label_of(&result.configs[i], lambda);
        let label_j = rig.system.array.label_of(&result.configs[j], lambda);
        let panel_name = (b'a' + panel as u8) as char;
        println!(
            "({panel_name}) placement seed {seed}: extreme pair {label_i} vs {label_j}, \
             max single-subcarrier mean-SNR delta {delta:.1} dB"
        );
        println!("    {label_i:>18} {}", sparkline(&means[i].snr_db));
        println!("    {label_j:>18} {}", sparkline(&means[j].snr_db));

        for (k, (a, b)) in means[i].snr_db.iter().zip(&means[j].snr_db).enumerate() {
            rows.push(format!("{panel_name},{k},{a:.3},{b:.3}"));
        }
    }

    let name = if los { "fig4_los.csv" } else { "fig4.csv" };
    write_csv(
        name,
        "placement,subcarrier,snr_config_a_db,snr_config_b_db",
        &rows,
    );

    println!("\n# Headlines across the eight placements:");
    println!(
        "#   largest change in mean SNR on any subcarrier: {global_max_mean:.1} dB (paper: 18.6 dB)"
    );
    println!(
        "#   largest within-trial change:                  {global_max_within:.1} dB (paper: 26 dB)"
    );
    if los {
        println!("#   (paper expects the LOS effect to stay under ~2 dB per subcarrier)");
    }
}
