//! Figure 5: complementary CDF of null movement between pairs of PRESS
//! configurations.
//!
//! Paper procedure (§3.2.1, data from the Figure 4(e) placement): for each
//! experimental repetition, take the most significant null of each of the
//! 64 configurations (argmin-SNR subcarrier, counted only when ≥ 5 dB below
//! the profile median) and plot the CCDF of the |Δ subcarrier| over all 64²
//! configuration pairs — one curve per repetition. The paper observes most
//! pairs move the null 0–1 subcarriers, a tail beyond 3 subcarriers
//! (1 MHz), and movements up to ~9 subcarriers.

use press::rig::fig4_rig;
use press_bench::{ccdf_rows, write_csv};
use press_core::analysis::null_movements;
use press_core::{run_campaign, CampaignConfig};

/// The placement used for Figures 5 and 6 (the paper uses its placement
/// "(e)" — the panel whose null structure is cleanest; pass `--seed N` to
/// choose another).
pub const FIG5_SEED: u64 = 2;

fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(FIG5_SEED)
}

fn main() {
    let seed = seed_from_args();
    let rig = fig4_rig(seed);
    let campaign = CampaignConfig {
        n_trials: 10,
        frames_per_config: 4,
        seed,
        ..CampaignConfig::default()
    };
    println!("# Figure 5 — CCDF of null movement (subcarriers), placement seed {seed}");
    let result = run_campaign(&rig.system, &rig.sounder, &campaign);

    let mut rows = Vec::new();
    let mut max_move = 0usize;
    let mut pooled = Vec::new();
    for (trial, profiles) in result.profiles.iter().enumerate() {
        let moves = null_movements(profiles);
        if moves.is_empty() {
            println!("trial {trial}: no configurations exhibit a null");
            continue;
        }
        let as_f: Vec<f64> = moves.iter().map(|&m| m as f64).collect();
        for r in ccdf_rows(&as_f) {
            rows.push(format!("{trial},{r}"));
        }
        let m = *moves.iter().max().unwrap();
        max_move = max_move.max(m);
        let nulled = (moves.len() as f64).sqrt() as usize;
        println!(
            "trial {trial}: {} configs with nulls, {} pairs, max movement {m} subcarriers",
            nulled,
            moves.len()
        );
        pooled.extend(as_f);
    }
    write_csv("fig5.csv", "trial,movement_subcarriers,ccdf", &rows);

    if let Some(ecdf) = press_math::Ecdf::new(&pooled) {
        println!("\n# pooled across trials:");
        for x in [0.0, 1.0, 3.0, 9.0] {
            println!("#   P(movement > {x:>2}) = {:.3}", ecdf.ccdf(x));
        }
    }
    println!("# largest null movement: {max_move} subcarriers (paper: ~9, tail past 3)");
}
