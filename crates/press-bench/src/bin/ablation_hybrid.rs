//! Ablation (§3/§4.1): passive-active hybrid arrays on line-of-sight links.
//!
//! The paper's LOS experiments found passive elements "limited to less than
//! 2 dB" because "the line-of-sight signal dominates over the reflection of
//! much lower strength", and proposes hybrid arrays where "a small number
//! of active PRESS elements might replace several more passive elements".
//! This harness measures the achievable per-subcarrier SNR swing on a LOS
//! link as active (PhyCloak-style) elements join a passive array, and
//! reports the power/cost bill of each mix.
//!
//! The link lives in a single-link [`SmartSpace`]: the registry owns the
//! environment trace and the channel basis, and the per-variant element
//! re-programming goes through the documented invalidation story (mutate
//! the array → [`LinkBasis::rebuild`](press_core::LinkBasis::rebuild)).

use press::rig::fig4_los_rig;
use press_bench::write_csv;
use press_core::{Configuration, LinkObjective, SmartSpace};
use press_elements::{deployment_budget, Element};

/// Max |per-subcarrier channel-magnitude delta| (dB) between settings of
/// the controllable elements, on oracle channels. Works on raw |H| rather
/// than SNR so the receiver's SNR saturation cannot mask the comparison
/// (a strong LOS link pegs every estimated profile at the 50 dB cap).
fn los_swing(space: &SmartSpace) -> f64 {
    let sl = &space.links()[0];
    let cfg_space = space.system().array.config_space_passive_only();
    let mut mag_profiles: Vec<Vec<f64>> = Vec::new();
    for phase_step in 0..4usize {
        for active_on in [false, true] {
            let mut sys = space.system().clone();
            for pe in sys.array.elements.iter_mut() {
                if !pe.element.is_passive() {
                    pe.element.program_active(
                        12.0,
                        phase_step as f64 * std::f64::consts::FRAC_PI_2,
                        active_on,
                    );
                }
            }
            let config = Configuration::new(
                cfg_space
                    .states_per_element
                    .iter()
                    .map(|&m| phase_step.min(m - 1))
                    .collect(),
            );
            // `program_active` mutates element responses, so each variant
            // rebuilds the registry basis (the invalidation story: mutate
            // the array → rebuild; the sweep over configs then rides the
            // cached columns). The environment trace is the registry's —
            // walked once for the whole sweep.
            let mut basis = sl.basis.clone();
            basis.rebuild(&sys, &sl.link);
            let h = basis.synthesize(&config, 0.0);
            mag_profiles.push(h.iter().map(|x| 20.0 * x.abs().log10()).collect());
        }
    }
    let mut best = 0.0f64;
    for i in 0..mag_profiles.len() {
        for j in 0..i {
            for (a, b) in mag_profiles[i].iter().zip(&mag_profiles[j]) {
                best = best.max((a - b).abs());
            }
        }
    }
    best
}

fn main() {
    println!("# Ablation: passive-active hybrid on a line-of-sight link");
    println!(
        "{:>9} {:>9} {:>14} {:>12} {:>12}",
        "passive", "active", "max swing dB", "power W", "cost USD"
    );
    let mut rows = Vec::new();
    for n_active in 0..4usize {
        let rig = fig4_los_rig(1);
        let mut system = rig.system.clone();
        // Replace the last `n_active` passive elements with actives at the
        // same positions (isotropic relays with a 12 dB gain cap).
        let n = system.array.len();
        for i in (n - n_active)..n {
            system.array.elements[i].element = Element::active(12.0);
        }
        let space = SmartSpace::single(system, rig.sounder.clone(), LinkObjective::MaxMinSnr);
        let swing = los_swing(&space);
        let elements: Vec<Element> = space
            .system()
            .array
            .elements
            .iter()
            .map(|pe| pe.element.clone())
            .collect();
        let budget = deployment_budget(&elements);
        println!(
            "{:>9} {:>9} {:>14.2} {:>12.3} {:>12.0}",
            n - n_active,
            n_active,
            swing,
            budget.total_power_w,
            budget.total_cost_usd
        );
        rows.push(format!(
            "{},{n_active},{swing:.4},{:.6},{:.2}",
            n - n_active,
            budget.total_power_w,
            budget.total_cost_usd
        ));
    }
    write_csv(
        "ablation_hybrid.csv",
        "n_passive,n_active,max_swing_db,power_w,cost_usd",
        &rows,
    );
    println!("\n# paper: passive-only LOS effect < 2 dB; active elements unlock LOS control");
    println!("# at orders of magnitude more power and cost per element.");
}
