//! Ablation (§3.2.3): PRESS impact vs MIMO dimension.
//!
//! The paper closes its MIMO study with a prediction: "we anticipate the
//! impact of the PRESS elements to increase as the MIMO channel dimension
//! increases past 2 × 2, as previously shown [21, 37]." This harness sweeps
//! N×N links (N = 2, 3, 4) over the 64 PRESS configurations on oracle
//! channels and reports how much the array can move the channel's
//! conditioning and capacity at each dimension.

use press_bench::write_csv;
use press_core::{CachedLink, LinkBasis, PressArray, PressSystem};
use press_math::Complex64;
use press_phy::mimo::MimoChannel;
use press_phy::Numerology;
use press_propagation::{LabConfig, LabSetup, RadioNode, Vec3};

fn main() {
    println!("# Ablation: PRESS impact vs MIMO dimension (paper's closing §3 prediction)");
    println!("# spread = worst-best median condition number over the 64 configs,");
    println!("# averaged across 4 bench seeds\n");
    println!(
        "{:>6} {:>16} {:>16} {:>14} {:>16}",
        "N x N", "mean best cond", "mean worst cond", "spread dB", "capacity swing"
    );
    let mut rows = Vec::new();
    for n in [2usize, 3, 4] {
        let mut bests = 0.0;
        let mut worsts = 0.0;
        let mut spreads = 0.0;
        let mut caps = 0.0;
        let seeds = 4;
        for seed in 0..seeds {
            let (best, worst, cap_swing) = sweep(n, seed);
            bests += best / seeds as f64;
            worsts += worst / seeds as f64;
            spreads += (worst - best) / seeds as f64;
            caps += cap_swing / seeds as f64;
        }
        println!(
            "{:>6} {:>13.2} dB {:>13.2} dB {:>11.2} dB {:>13.2} Mb/s",
            format!("{n}x{n}"),
            bests,
            worsts,
            spreads,
            caps
        );
        rows.push(format!("{n},{bests:.4},{worsts:.4},{spreads:.4},{caps:.4}"));
    }
    write_csv(
        "ablation_mimo_dim.csv",
        "dim,best_median_cond_db,worst_median_cond_db,spread_db,capacity_swing_mbps",
        &rows,
    );
    println!("\n# measured: leverage at 4x4 exceeds 2x2 (as the paper anticipates) but is");
    println!("# not monotone — the rank-starved NLOS channel's baseline conditioning");
    println!("# collapses faster than the array's leverage grows at 3x3. Moving an");
    println!("# N-stream channel takes commensurate, angularly diverse control DoF.");
}

/// Builds an N×N link on the Figure 8 bench geometry and sweeps the 64
/// PRESS configurations; returns (best, worst) median condition number (dB)
/// and the open-loop capacity swing at 20 dB SNR.
fn sweep(n: usize, seed: u64) -> (f64, f64, f64) {
    let lab = LabSetup::generate(
        &LabConfig {
            slab_half_width: 0.45,
            slab_z: (0.8, 2.2),
            ..LabConfig::default()
        },
        seed,
    );
    let lambda = lab.scene.wavelength();
    let half = lambda / 4.0;
    // N-antenna uniform linear arrays along y at both ends.
    let antennas = |center: Vec3| -> Vec<RadioNode> {
        (0..n)
            .map(|k| {
                let offset = (k as f64 - (n as f64 - 1.0) / 2.0) * 2.0 * half;
                RadioNode::omni_at(center + Vec3::new(0.0, offset, 0.0))
            })
            .collect()
    };
    let tx = antennas(lab.tx.position);
    let rx = antennas(lab.rx.position);
    // Elements scale with the array (N+2 of them) and flank it on BOTH
    // sides for angular diversity — a low-rank colinear cluster cannot move
    // an N-stream channel's conditioning once N outgrows it.
    let n_elements = n + 2;
    let positions: Vec<Vec3> = (0..n_elements)
        .map(|k| {
            let side = if k % 2 == 0 { 1.0 } else { -1.0 };
            let rank = (k / 2) as f64;
            lab.tx.position + Vec3::new(0.1 * side, side * (1.2 + rank * lambda), 0.0)
        })
        .collect();
    let array = PressArray::paper_passive(&positions, lambda);
    let system = PressSystem::new(lab.scene.clone(), array);
    let space = system.array.config_space();
    let num = Numerology::wifi20(press_math::consts::WIFI_CHANNEL_11_HZ);
    let freqs = num.active_freqs_hz();
    let spacing = num.subcarrier_spacing_hz();

    let links: Vec<Vec<CachedLink>> = tx
        .iter()
        .map(|t| {
            rx.iter()
                .map(|r| CachedLink::trace(&system, t.clone(), r.clone()))
                .collect()
        })
        .collect();
    // One basis per (tx antenna, rx antenna) link: the 64-config sweep then
    // costs O(N·K) per entry instead of a full path re-trace + synthesis.
    let bases: Vec<Vec<LinkBasis>> = links
        .iter()
        .map(|row| {
            row.iter()
                .map(|link| LinkBasis::build(&system, link, &freqs))
                .collect()
        })
        .collect();

    let mut best = f64::INFINITY;
    let mut worst = f64::NEG_INFINITY;
    let mut cap_min = f64::INFINITY;
    let mut cap_max = f64::NEG_INFINITY;
    for config in space.iter() {
        let h: Vec<Vec<Vec<Complex64>>> = (0..n)
            .map(|b| {
                (0..n)
                    .map(|a| bases[a][b].synthesize(&config, 0.0))
                    .collect()
            })
            .collect();
        let ch = MimoChannel::from_scalar_channels(&h);
        let cond = ch.median_condition_db().expect("square matrices");
        // Normalize the channel to unit mean-square entry so the 20 dB SNR
        // is a *receive* SNR and capacity differences isolate conditioning.
        let energy: f64 = ch
            .per_subcarrier
            .iter()
            .map(|m| m.frobenius_norm().powi(2))
            .sum::<f64>()
            / (ch.n_subcarriers() * n * n) as f64;
        let scale = Complex64::real(1.0 / energy.sqrt());
        let normalized =
            MimoChannel::new(ch.per_subcarrier.iter().map(|m| m.scale(scale)).collect());
        let cap = normalized
            .capacity_bps(20.0, spacing)
            .expect("square matrices")
            / 1e6;
        best = best.min(cond);
        worst = worst.max(cond);
        cap_min = cap_min.min(cap);
        cap_max = cap_max.max(cap);
    }
    (best, worst, cap_max - cap_min)
}
